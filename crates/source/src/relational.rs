//! A small in-memory relational store — the stand-in for the remote
//! relational DBMSs (the paper's `WrapperPostgres` targets).
//!
//! The store is deliberately simple: named tables with declared columns and
//! rows of [`StructValue`]s.  The DISCO wrapper evaluates pushed algebra
//! expressions against it; the store itself only offers scans and simple
//! native filters, which is all a wrapper needs.

use std::collections::BTreeMap;

use disco_value::{StructValue, Value};
use parking_lot::RwLock;

use crate::{Result, SourceError};

/// One relation: declared columns plus rows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    name: String,
    columns: Vec<String>,
    rows: Vec<StructValue>,
}

impl Table {
    /// Creates an empty table with declared columns.
    pub fn new<I, S>(name: impl Into<String>, columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            name: name.into(),
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// The table name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared columns, in order.
    #[must_use]
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts a row.  Missing declared columns are filled with `null`;
    /// undeclared columns are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`SourceError::UnknownColumn`] if the row has a field the
    /// table does not declare.
    pub fn insert(&mut self, row: StructValue) -> Result<()> {
        for (field, _) in row.iter() {
            if !self.columns.iter().any(|c| c == field) {
                return Err(SourceError::UnknownColumn {
                    table: self.name.clone(),
                    column: field.to_owned(),
                });
            }
        }
        let mut complete = Vec::with_capacity(self.columns.len());
        for column in &self.columns {
            let value = row.field(column).cloned().unwrap_or(Value::Null);
            complete.push((column.clone(), value));
        }
        self.rows
            .push(StructValue::new(complete).expect("columns are unique"));
        Ok(())
    }

    /// Inserts a row built from `(column, value)` pairs.
    ///
    /// # Errors
    ///
    /// Same as [`Table::insert`], plus duplicate-field errors.
    pub fn insert_values<N, I>(&mut self, values: I) -> Result<()>
    where
        N: Into<std::sync::Arc<str>>,
        I: IntoIterator<Item = (N, Value)>,
    {
        let row = StructValue::new(values)?;
        self.insert(row)
    }

    /// The rows, in insertion order.
    #[must_use]
    pub fn rows(&self) -> &[StructValue] {
        &self.rows
    }

    /// Total number of scalar cells (rows × columns) — a proxy for data
    /// volume used by the cost experiments.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.rows.len() * self.columns.len()
    }
}

/// A collection of tables behind one repository address.
///
/// Thread-safe: the runtime issues `exec` calls in parallel (§4), so
/// wrappers may scan concurrently.
#[derive(Debug, Default)]
pub struct RelationalStore {
    tables: RwLock<BTreeMap<String, Table>>,
}

impl RelationalStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        RelationalStore::default()
    }

    /// Creates or replaces a table.
    pub fn put_table(&self, table: Table) {
        self.tables.write().insert(table.name().to_owned(), table);
    }

    /// Returns a clone of the named table.
    ///
    /// # Errors
    ///
    /// Returns [`SourceError::UnknownTable`] when absent.
    pub fn table(&self, name: &str) -> Result<Table> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| SourceError::UnknownTable(name.to_owned()))
    }

    /// Scans all rows of a table.
    ///
    /// # Errors
    ///
    /// Returns [`SourceError::UnknownTable`] when absent.
    pub fn scan(&self, name: &str) -> Result<Vec<StructValue>> {
        Ok(self.table(name)?.rows().to_vec())
    }

    /// Inserts a row into an existing table.
    ///
    /// # Errors
    ///
    /// Returns [`SourceError::UnknownTable`] or [`SourceError::UnknownColumn`].
    pub fn insert(&self, table: &str, row: StructValue) -> Result<()> {
        let mut tables = self.tables.write();
        let t = tables
            .get_mut(table)
            .ok_or_else(|| SourceError::UnknownTable(table.to_owned()))?;
        t.insert(row)
    }

    /// The table names, sorted.
    #[must_use]
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// Number of rows in a table (0 when the table is unknown).
    #[must_use]
    pub fn row_count(&self, table: &str) -> usize {
        self.tables.read().get(table).map_or(0, Table::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn person_table() -> Table {
        let mut t = Table::new("person0", ["name", "salary"]);
        t.insert_values([("name", Value::from("Mary")), ("salary", Value::Int(200))])
            .unwrap();
        t
    }

    #[test]
    fn insert_and_scan() {
        let store = RelationalStore::new();
        store.put_table(person_table());
        let rows = store.scan("person0").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].field("name").unwrap(), &Value::from("Mary"));
        assert!(store.scan("missing").is_err());
    }

    #[test]
    fn missing_columns_become_null_and_unknown_columns_are_rejected() {
        let mut t = Table::new("t", ["a", "b"]);
        t.insert_values([("a", Value::Int(1))]).unwrap();
        assert_eq!(t.rows()[0].field("b").unwrap(), &Value::Null);
        let err = t.insert_values([("z", Value::Int(1))]).unwrap_err();
        assert!(matches!(err, SourceError::UnknownColumn { .. }));
    }

    #[test]
    fn rows_are_normalised_to_declared_column_order() {
        let mut t = Table::new("t", ["a", "b"]);
        t.insert_values([("b", Value::Int(2)), ("a", Value::Int(1))])
            .unwrap();
        let names: Vec<&str> = t.rows()[0].field_names().collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn store_level_insert_and_counts() {
        let store = RelationalStore::new();
        store.put_table(Table::new("t", ["a"]));
        store
            .insert("t", StructValue::new(vec![("a", Value::Int(1))]).unwrap())
            .unwrap();
        assert_eq!(store.row_count("t"), 1);
        assert_eq!(store.row_count("missing"), 0);
        assert_eq!(store.table_names(), vec!["t"]);
        assert!(store.insert("missing", StructValue::default()).is_err());
        assert_eq!(store.table("t").unwrap().cell_count(), 1);
    }
}
