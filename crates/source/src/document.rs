//! A keyword-searchable document source (a WAIS-style information server).
//!
//! This source is schema-poor on purpose: its only native operation is a
//! keyword search returning matching documents.  Its wrapper advertises
//! `get` plus a restricted `select` (equality on the `keyword`
//! pseudo-attribute), exercising DISCO's handling of "servers which have a
//! less powerful query capability".

use disco_value::{StructValue, Value};

/// One document in the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Stable identifier.
    pub id: i64,
    /// Title.
    pub title: String,
    /// Body text.
    pub body: String,
    /// Indexed keywords.
    pub keywords: Vec<String>,
}

impl Document {
    /// Creates a document.
    pub fn new(id: i64, title: impl Into<String>, body: impl Into<String>) -> Self {
        Document {
            id,
            title: title.into(),
            body: body.into(),
            keywords: Vec::new(),
        }
    }

    /// Adds an indexed keyword.
    #[must_use]
    pub fn with_keyword(mut self, keyword: impl Into<String>) -> Self {
        self.keywords.push(keyword.into());
        self
    }

    /// Renders the document as the tuple its wrapper exposes to the
    /// mediator (`id`, `title`, `body`, `keyword` = comma-joined keywords).
    #[must_use]
    pub fn to_row(&self) -> StructValue {
        StructValue::new(vec![
            ("id", Value::Int(self.id)),
            ("title", Value::from(self.title.clone())),
            ("body", Value::from(self.body.clone())),
            ("keyword", Value::from(self.keywords.join(","))),
        ])
        .expect("distinct fields")
    }
}

/// A keyword-indexed document collection.
#[derive(Debug, Clone, Default)]
pub struct DocumentStore {
    documents: Vec<Document>,
}

impl DocumentStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        DocumentStore::default()
    }

    /// Adds a document.
    pub fn add(&mut self, document: Document) {
        self.documents.push(document);
    }

    /// Number of documents.
    #[must_use]
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// Returns `true` when the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// Full scan: every document as a row.
    #[must_use]
    pub fn scan(&self) -> Vec<StructValue> {
        self.documents.iter().map(Document::to_row).collect()
    }

    /// Native keyword search: documents whose keyword list or title
    /// contains `keyword` (case-insensitive).
    #[must_use]
    pub fn search(&self, keyword: &str) -> Vec<StructValue> {
        let needle = keyword.to_ascii_lowercase();
        self.documents
            .iter()
            .filter(|d| {
                d.keywords.iter().any(|k| k.to_ascii_lowercase() == needle)
                    || d.title.to_ascii_lowercase().contains(&needle)
            })
            .map(Document::to_row)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> DocumentStore {
        let mut s = DocumentStore::new();
        s.add(
            Document::new(1, "Water quality in the Seine", "ph and turbidity readings")
                .with_keyword("water")
                .with_keyword("seine"),
        );
        s.add(
            Document::new(2, "Staff salaries 1995", "annual salary report").with_keyword("salary"),
        );
        s
    }

    #[test]
    fn scan_exposes_rows_with_schema() {
        let rows = store().scan();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].field("id").unwrap(), &Value::Int(1));
        assert!(rows[0]
            .field("keyword")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("water"));
    }

    #[test]
    fn keyword_search_matches_keywords_and_titles() {
        let s = store();
        assert_eq!(s.search("water").len(), 1);
        assert_eq!(s.search("SALARY").len(), 1);
        assert_eq!(s.search("salaries").len(), 1, "title substring match");
        assert_eq!(s.search("nothing").len(), 0);
    }

    #[test]
    fn empty_store() {
        let s = DocumentStore::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.scan().is_empty());
    }
}
