//! Deterministic synthetic-data generators for the workloads the paper
//! motivates.
//!
//! * `person` / `student` relations — the running example of §1–§2,
//! * `employee` / `manager` relations — the join-pushdown example of §3.2,
//! * water-quality measurement relations — the environmental target
//!   application of §1 ("multiple databases, distributed geographically,
//!   contain measurements of water quality … all of these measurements have
//!   the same type"),
//! * keyword documents — the WAIS-style sources mentioned in §2.2.
//!
//! All generators are seeded so experiments are reproducible.

use disco_value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::document::{Document, DocumentStore};
use crate::relational::Table;

const FIRST_NAMES: &[&str] = &[
    "Mary",
    "Sam",
    "Anthony",
    "Louiqa",
    "Patrick",
    "Daniela",
    "Olga",
    "Nicolas",
    "Catherine",
    "Eric",
    "Yannis",
    "Peter",
    "Victor",
    "Alexandre",
    "Sophie",
    "Jean",
    "Claire",
    "Michel",
    "Isabelle",
    "Marc",
];

const SITES: &[&str] = &[
    "seine", "loire", "rhone", "garonne", "dordogne", "marne", "oise", "somme", "vilaine",
    "charente",
];

/// Generates a `person`-typed table (`name`, `salary`, `id`) with `rows`
/// rows.  `source_index` offsets ids so different sources hold different
/// (but overlapping-by-construction) people.
#[must_use]
pub fn person_table(name: &str, rows: usize, source_index: u64, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed ^ (source_index.wrapping_mul(0x9E37_79B9)));
    let mut table = Table::new(name, ["id", "name", "salary"]);
    for i in 0..rows {
        let id = i as i64;
        let person_name = format!(
            "{}-{}",
            FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
            source_index * 1_000_000 + i as u64
        );
        let salary = rng.gen_range(0..500i64);
        table
            .insert_values([
                ("id", Value::Int(id)),
                ("name", Value::from(person_name)),
                ("salary", Value::Int(salary)),
            ])
            .expect("columns match");
    }
    table
}

/// Generates an `employee` table (`name`, `dept`, `salary`).
#[must_use]
pub fn employee_table(name: &str, rows: usize, departments: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut table = Table::new(name, ["id", "name", "dept", "salary"]);
    for i in 0..rows {
        table
            .insert_values([
                ("id", Value::Int(i as i64)),
                (
                    "name",
                    Value::from(format!(
                        "{}-{}",
                        FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
                        i
                    )),
                ),
                (
                    "dept",
                    Value::Int(rng.gen_range(0..departments.max(1) as i64)),
                ),
                ("salary", Value::Int(rng.gen_range(100..900i64))),
            ])
            .expect("columns match");
    }
    table
}

/// Generates a `manager` table (`name`, `dept`) with one manager per
/// department.
#[must_use]
pub fn manager_table(name: &str, departments: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut table = Table::new(name, ["name", "dept"]);
    for dept in 0..departments {
        table
            .insert_values([
                (
                    "name",
                    Value::from(format!(
                        "mgr-{}-{}",
                        FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
                        dept
                    )),
                ),
                ("dept", Value::Int(dept as i64)),
            ])
            .expect("columns match");
    }
    table
}

/// Generates a water-quality measurement table
/// (`site`, `day`, `ph`, `turbidity`, `dissolved_oxygen`) — the paper's
/// environmental application.  Each geographically distributed source
/// measures one site; all sources share the same type, which is exactly
/// the situation DISCO's multi-extent interfaces are designed for.
#[must_use]
pub fn water_quality_table(name: &str, site_index: usize, days: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed ^ (site_index as u64).wrapping_mul(0x85EB_CA6B));
    let site = format!(
        "{}-{:02}",
        SITES[site_index % SITES.len()],
        site_index / SITES.len() + 1
    );
    let mut table = Table::new(name, ["site", "day", "ph", "turbidity", "dissolved_oxygen"]);
    for day in 0..days {
        let ph: f64 = 6.5 + rng.gen_range(0.0..2.0);
        let turbidity = rng.gen_range(0..40i64);
        let oxygen: f64 = 5.0 + rng.gen_range(0.0..7.0);
        table
            .insert_values([
                ("site", Value::from(site.clone())),
                ("day", Value::Int(day as i64)),
                ("ph", Value::Float((ph * 100.0).round() / 100.0)),
                ("turbidity", Value::Int(turbidity)),
                (
                    "dissolved_oxygen",
                    Value::Float((oxygen * 100.0).round() / 100.0),
                ),
            ])
            .expect("columns match");
    }
    table
}

/// Generates a keyword-document store with `count` documents.
#[must_use]
pub fn document_store(count: usize, seed: u64) -> DocumentStore {
    let mut rng = StdRng::seed_from_u64(seed);
    let topics = [
        "water",
        "salary",
        "pollution",
        "schema",
        "mediator",
        "wrapper",
    ];
    let mut store = DocumentStore::new();
    for i in 0..count {
        let topic = topics[rng.gen_range(0..topics.len())];
        let doc = Document::new(
            i as i64,
            format!("Report {i} on {topic}"),
            format!("Synthetic body text about {topic} number {i}."),
        )
        .with_keyword(topic)
        .with_keyword(format!("report-{}", i % 7));
        store.add(doc);
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn person_tables_are_deterministic_and_sized() {
        let a = person_table("person0", 50, 0, 7);
        let b = person_table("person0", 50, 0, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        assert_eq!(a.columns(), &["id", "name", "salary"]);
        // Different source index ⇒ different contents.
        let c = person_table("person1", 50, 1, 7);
        assert_ne!(a.rows()[0], c.rows()[0]);
    }

    #[test]
    fn employees_reference_valid_departments_and_managers_cover_them() {
        let employees = employee_table("employee0", 200, 8, 3);
        let managers = manager_table("manager0", 8, 3);
        assert_eq!(managers.len(), 8);
        for row in employees.rows() {
            let dept = row.field("dept").unwrap().as_int().unwrap();
            assert!((0..8).contains(&dept));
        }
    }

    #[test]
    fn water_quality_measurements_are_plausible() {
        let t = water_quality_table("m0", 3, 30, 11);
        assert_eq!(t.len(), 30);
        for row in t.rows() {
            let ph = row.field("ph").unwrap().as_float().unwrap();
            assert!((6.0..9.0).contains(&ph), "ph out of range: {ph}");
            let site = row.field("site").unwrap().as_str().unwrap().to_owned();
            assert!(site.starts_with("garonne"));
        }
    }

    #[test]
    fn distinct_sites_for_distinct_source_indexes() {
        let a = water_quality_table("m0", 0, 1, 5);
        let b = water_quality_table("m1", 1, 1, 5);
        assert_ne!(
            a.rows()[0].field("site").unwrap(),
            b.rows()[0].field("site").unwrap()
        );
    }

    #[test]
    fn document_store_generation() {
        let docs = document_store(25, 9);
        assert_eq!(docs.len(), 25);
        assert!(!docs.search("water").is_empty() || !docs.search("salary").is_empty());
    }
}
