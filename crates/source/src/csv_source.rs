//! A CSV / flat-file data source.
//!
//! The paper notes that "the DISCO model can be applied to a variety of
//! information servers, such as WAIS servers, file systems, specialized
//! image servers, etc."  The CSV source plays the role of the *file
//! system* style of source: a header line names the columns, every further
//! line is a row, and the only native operation is a full scan — its
//! wrapper therefore advertises a `get`-only capability set.

use disco_value::{StructValue, Value};

use crate::relational::Table;
use crate::{Result, SourceError};

/// Parses CSV text (first line = header) into a [`Table`].
///
/// Values are typed by inference: integers, then floats, then strings.
/// Empty cells become `null`.
///
/// # Errors
///
/// Returns [`SourceError::Csv`] when a data line has more fields than the
/// header, or the text is empty.
pub fn parse_csv(name: &str, text: &str) -> Result<Table> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(SourceError::Csv {
        line: 1,
        message: "empty csv text".into(),
    })?;
    let columns: Vec<String> = header.split(',').map(|c| c.trim().to_owned()).collect();
    if columns.iter().any(String::is_empty) {
        return Err(SourceError::Csv {
            line: 1,
            message: "empty column name in header".into(),
        });
    }
    let mut table = Table::new(name, columns.clone());
    for (idx, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() > columns.len() {
            return Err(SourceError::Csv {
                line: idx + 1,
                message: format!(
                    "row has {} fields but header declares {}",
                    cells.len(),
                    columns.len()
                ),
            });
        }
        let mut fields = Vec::with_capacity(columns.len());
        for (i, column) in columns.iter().enumerate() {
            let raw = cells.get(i).map(|c| c.trim()).unwrap_or("");
            fields.push((column.clone(), infer_value(raw)));
        }
        let row = StructValue::new(fields)?;
        table.insert(row)?;
    }
    Ok(table)
}

/// A file-backed (here: string-backed) data source holding one CSV table.
#[derive(Debug, Clone)]
pub struct CsvSource {
    table: Table,
}

impl CsvSource {
    /// Parses the CSV text into a source.
    ///
    /// # Errors
    ///
    /// See [`parse_csv`].
    pub fn from_text(name: &str, text: &str) -> Result<CsvSource> {
        Ok(CsvSource {
            table: parse_csv(name, text)?,
        })
    }

    /// The parsed table.
    #[must_use]
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Full scan — the only native operation a flat file supports.
    #[must_use]
    pub fn scan(&self) -> Vec<StructValue> {
        self.table.rows().to_vec()
    }
}

fn infer_value(raw: &str) -> Value {
    if raw.is_empty() {
        return Value::Null;
    }
    if let Ok(i) = raw.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = raw.parse::<f64>() {
        return Value::Float(f);
    }
    match raw {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        other => Value::from(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WATER_CSV: &str =
        "site,ph,turbidity,flag\nseine-01,7.2,3,true\nseine-02,6.9,5,false\nloire-01,,2,true\n";

    #[test]
    fn parses_header_and_rows_with_type_inference() {
        let source = CsvSource::from_text("measurements", WATER_CSV).unwrap();
        let rows = source.scan();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].field("site").unwrap(), &Value::from("seine-01"));
        assert_eq!(rows[0].field("ph").unwrap(), &Value::Float(7.2));
        assert_eq!(rows[0].field("turbidity").unwrap(), &Value::Int(3));
        assert_eq!(rows[0].field("flag").unwrap(), &Value::Bool(true));
        assert_eq!(rows[2].field("ph").unwrap(), &Value::Null);
        assert_eq!(source.table().columns().len(), 4);
    }

    #[test]
    fn short_rows_pad_with_null_and_long_rows_error() {
        let t = parse_csv("t", "a,b\n1\n").unwrap();
        assert_eq!(t.rows()[0].field("b").unwrap(), &Value::Null);
        let err = parse_csv("t", "a,b\n1,2,3\n").unwrap_err();
        assert!(matches!(err, SourceError::Csv { line: 2, .. }));
    }

    #[test]
    fn empty_text_and_bad_header_error() {
        assert!(parse_csv("t", "").is_err());
        assert!(parse_csv("t", "a,,c\n").is_err());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let t = parse_csv("t", "a\n1\n\n2\n").unwrap();
        assert_eq!(t.len(), 2);
    }
}
