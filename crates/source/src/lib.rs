//! # disco-source
//!
//! Simulated heterogeneous data sources for the DISCO reproduction.
//!
//! The paper evaluates DISCO against autonomous remote servers (relational
//! DBMSs, WAIS servers, file systems).  This crate substitutes
//! deterministic in-process equivalents that exercise the same code paths
//! through the wrapper interface:
//!
//! * [`RelationalStore`] / [`Table`] — an in-memory relational source,
//! * [`CsvSource`] — a flat-file source whose only native operation is a
//!   full scan,
//! * [`DocumentStore`] — a keyword-searchable, WAIS-style source,
//! * [`SimulatedLink`] / [`NetworkProfile`] — the simulated network path
//!   (latency, jitter, availability, fail/slow injection) that drives the
//!   partial-evaluation and cost-calibration experiments,
//! * [`generator`] — seeded workload generators (persons, students,
//!   employees/managers, water-quality measurements, documents).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csv_source;
mod document;
mod error;
pub mod generator;
mod net;
mod relational;

pub use csv_source::{parse_csv, CsvSource};
pub use document::{Document, DocumentStore};
pub use error::SourceError;
pub use net::{Availability, NetworkProfile, SimulatedLink};
pub use relational::{RelationalStore, Table};

/// Convenience result alias for source operations.
pub type Result<T> = std::result::Result<T, SourceError>;
