//! Simulated network path to a data source.
//!
//! DISCO targets a wide-area environment where "it is likely that some of
//! the data sources will be unavailable" (§4) and where per-source access
//! cost varies widely (§3.3).  The real paper ran against remote servers;
//! this reproduction substitutes a deterministic simulator: every
//! repository gets a [`NetworkProfile`] describing its availability and
//! latency, and the wrapper consults the profile before answering.
//!
//! The simulator produces both *simulated* costs (returned as numbers, fed
//! to the calibrating cost model) and, optionally, *real* delays (short
//! sleeps) so that the runtime's deadline-based partial evaluation is
//! exercised with genuine wall-clock behaviour.

use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Availability state of a simulated source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Availability {
    /// The source answers normally.
    Available,
    /// The source does not answer at all (calls block until the deadline).
    Unavailable,
    /// The source answers, but only after an extra fixed delay — useful for
    /// deadline-boundary experiments.
    Slow {
        /// Extra delay in milliseconds.
        extra_ms: u64,
    },
    /// The source answers, but its throughput is degraded: every *chunk*
    /// of a streamed answer pays an extra fixed delay.  With chunking
    /// disabled (one chunk per call) this behaves like [`Availability::Slow`];
    /// with chunking enabled it models a link that trickles data out —
    /// the shape the streamed-resolution fault-injection tests exercise.
    Degraded {
        /// Extra delay per chunk, in milliseconds.
        chunk_extra_ms: u64,
    },
}

/// The latency/availability profile of the path to one repository.
#[derive(Debug, Clone)]
pub struct NetworkProfile {
    /// Fixed per-call latency in microseconds.
    pub base_latency_us: u64,
    /// Additional latency per row transferred, in microseconds.
    pub per_row_us: u64,
    /// Relative jitter (0.0–1.0) applied to the total latency.
    pub jitter: f64,
    /// Availability state.
    pub availability: Availability,
    /// When `true`, [`SimulatedLink::call_delay`] actually sleeps; when
    /// `false` it only reports the simulated duration.
    pub real_sleep: bool,
    /// Rows per streamed answer chunk.  `0` (the default) disables
    /// chunking: a streamed call delivers its whole answer as one chunk,
    /// which makes [`SimulatedLink::chunk_delay`] equivalent to
    /// [`SimulatedLink::call_delay`].
    pub chunk_rows: usize,
}

impl Default for NetworkProfile {
    fn default() -> Self {
        NetworkProfile {
            base_latency_us: 500,
            per_row_us: 5,
            jitter: 0.1,
            availability: Availability::Available,
            real_sleep: false,
            chunk_rows: 0,
        }
    }
}

impl NetworkProfile {
    /// A fast, local-area profile.
    #[must_use]
    pub fn fast() -> Self {
        NetworkProfile {
            base_latency_us: 100,
            per_row_us: 1,
            ..NetworkProfile::default()
        }
    }

    /// A slow, wide-area profile.
    #[must_use]
    pub fn wide_area() -> Self {
        NetworkProfile {
            base_latency_us: 20_000,
            per_row_us: 50,
            ..NetworkProfile::default()
        }
    }

    /// Marks the source unavailable.
    #[must_use]
    pub fn unavailable() -> Self {
        NetworkProfile {
            availability: Availability::Unavailable,
            ..NetworkProfile::default()
        }
    }

    /// Sets the availability state.
    #[must_use]
    pub fn with_availability(mut self, availability: Availability) -> Self {
        self.availability = availability;
        self
    }

    /// Enables real sleeping for wall-clock experiments.
    #[must_use]
    pub fn with_real_sleep(mut self, real_sleep: bool) -> Self {
        self.real_sleep = real_sleep;
        self
    }

    /// Sets the rows-per-chunk of streamed answers (`0` disables chunking).
    #[must_use]
    pub fn with_chunk_rows(mut self, chunk_rows: usize) -> Self {
        self.chunk_rows = chunk_rows;
        self
    }

    /// Number of chunks an answer of `rows` rows is delivered in.
    #[must_use]
    pub fn chunks_for(&self, rows: usize) -> usize {
        if self.chunk_rows == 0 || rows <= self.chunk_rows {
            1
        } else {
            rows.div_ceil(self.chunk_rows)
        }
    }
}

/// The simulated link to one repository.
///
/// Thread-safe: `exec` calls run in parallel.
#[derive(Debug)]
pub struct SimulatedLink {
    endpoint: String,
    profile: Mutex<NetworkProfile>,
    rng: Mutex<StdRng>,
    calls: Mutex<u64>,
    chunks: Mutex<u64>,
}

impl SimulatedLink {
    /// Creates a link with a deterministic jitter seed.
    pub fn new(endpoint: impl Into<String>, profile: NetworkProfile, seed: u64) -> Self {
        SimulatedLink {
            endpoint: endpoint.into(),
            profile: Mutex::new(profile),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            calls: Mutex::new(0),
            chunks: Mutex::new(0),
        }
    }

    /// The endpoint (repository) name.
    #[must_use]
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// Replaces the profile (e.g. to fail or recover a source mid-test).
    pub fn set_profile(&self, profile: NetworkProfile) {
        *self.profile.lock() = profile;
    }

    /// Changes only the availability state.
    pub fn set_availability(&self, availability: Availability) {
        self.profile.lock().availability = availability;
    }

    /// The current availability state.
    #[must_use]
    pub fn availability(&self) -> Availability {
        self.profile.lock().availability
    }

    /// Returns `true` when the source currently answers.
    #[must_use]
    pub fn is_available(&self) -> bool {
        !matches!(self.profile.lock().availability, Availability::Unavailable)
    }

    /// Number of calls made over this link.
    #[must_use]
    pub fn call_count(&self) -> u64 {
        *self.calls.lock()
    }

    /// Number of streamed chunks delivered over this link (bumped once per
    /// [`SimulatedLink::chunk_delay`]) — lets tests observe whether a
    /// cancelled call actually stopped producing chunks.
    #[must_use]
    pub fn chunk_count(&self) -> u64 {
        *self.chunks.lock()
    }

    /// Applies the profile's jitter to a raw microsecond latency.
    fn jittered(&self, profile: &NetworkProfile, raw_us: f64) -> Duration {
        let jitter_factor = if profile.jitter > 0.0 {
            let j: f64 = self.rng.lock().gen_range(-profile.jitter..=profile.jitter);
            1.0 + j
        } else {
            1.0
        };
        let us = (raw_us * jitter_factor).max(0.0);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        Duration::from_micros(us as u64)
    }

    /// Sleeps for `duration` in short slices, returning early (with `false`)
    /// as soon as `cancelled` reports the consumer disconnected.  This is
    /// what lets a deadline-cancelled wrapper call wind down instead of
    /// blocking detached in the background.
    fn sleep_cancellable(duration: Duration, cancelled: &dyn Fn() -> bool) -> bool {
        const SLICE: Duration = Duration::from_millis(2);
        let end = std::time::Instant::now() + duration;
        loop {
            if cancelled() {
                return false;
            }
            let now = std::time::Instant::now();
            if now >= end {
                return true;
            }
            std::thread::sleep((end - now).min(SLICE));
        }
    }

    /// Simulates one call transferring `rows` rows: returns the simulated
    /// latency, sleeping for it when the profile asks for real sleeps.
    ///
    /// Returns `None` when the source is unavailable (the caller decides
    /// whether to block, error, or mark the source unavailable for partial
    /// evaluation).
    #[must_use]
    pub fn call_delay(&self, rows: usize) -> Option<Duration> {
        let profile = self.profile.lock().clone();
        *self.calls.lock() += 1;
        match profile.availability {
            Availability::Unavailable => None,
            Availability::Available | Availability::Slow { .. } | Availability::Degraded { .. } => {
                let extra_ms = match profile.availability {
                    Availability::Slow { extra_ms } => extra_ms,
                    // A whole-answer call pays the per-chunk penalty for
                    // every chunk the answer would have streamed in.
                    Availability::Degraded { chunk_extra_ms } => {
                        chunk_extra_ms * profile.chunks_for(rows) as u64
                    }
                    Availability::Available | Availability::Unavailable => 0,
                };
                let raw_us = profile.base_latency_us as f64
                    + profile.per_row_us as f64 * rows as f64
                    + extra_ms as f64 * 1000.0;
                let duration = self.jittered(&profile, raw_us);
                if profile.real_sleep {
                    std::thread::sleep(duration);
                }
                Some(duration)
            }
        }
    }

    /// The chunk sizes an answer of `rows` rows streams in under the
    /// current profile.  Always at least one chunk, so even empty answers
    /// pay (and report) the base latency.
    #[must_use]
    pub fn chunk_sizes(&self, rows: usize) -> Vec<usize> {
        let profile = self.profile.lock().clone();
        let chunks = profile.chunks_for(rows);
        if chunks <= 1 {
            return vec![rows];
        }
        let size = profile.chunk_rows;
        (0..chunks)
            .map(|i| {
                let start = i * size;
                ((i + 1) * size).min(rows) - start
            })
            .collect()
    }

    /// Simulates the delivery of one streamed chunk of `rows` rows; the
    /// first chunk of a call additionally pays the base latency (and bumps
    /// the call counter), mirroring [`SimulatedLink::call_delay`].
    ///
    /// When the profile asks for real sleeps the delay is slept in short
    /// slices, polling `cancelled` between slices so a deadline-cancelled
    /// call stops promptly.  Returns `None` when the source is
    /// unavailable; cancellation still returns the simulated duration (the
    /// caller checks `cancelled` itself).
    #[must_use]
    pub fn chunk_delay(
        &self,
        rows: usize,
        first: bool,
        cancelled: &dyn Fn() -> bool,
    ) -> Option<Duration> {
        let profile = self.profile.lock().clone();
        if first {
            *self.calls.lock() += 1;
        }
        *self.chunks.lock() += 1;
        match profile.availability {
            Availability::Unavailable => None,
            Availability::Available | Availability::Slow { .. } | Availability::Degraded { .. } => {
                let extra_ms = match profile.availability {
                    // The whole-call penalty lands on the first chunk.
                    Availability::Slow { extra_ms } if first => extra_ms,
                    Availability::Slow { .. } => 0,
                    Availability::Degraded { chunk_extra_ms } => chunk_extra_ms,
                    Availability::Available | Availability::Unavailable => 0,
                };
                let base_us = if first { profile.base_latency_us } else { 0 };
                let raw_us = base_us as f64
                    + profile.per_row_us as f64 * rows as f64
                    + extra_ms as f64 * 1000.0;
                let duration = self.jittered(&profile, raw_us);
                if profile.real_sleep {
                    Self::sleep_cancellable(duration, cancelled);
                }
                Some(duration)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn available_links_report_latency_scaling_with_rows() {
        let link = SimulatedLink::new(
            "r0",
            NetworkProfile {
                base_latency_us: 1000,
                per_row_us: 10,
                jitter: 0.0,
                availability: Availability::Available,
                real_sleep: false,
                chunk_rows: 0,
            },
            42,
        );
        let small = link.call_delay(10).unwrap();
        let large = link.call_delay(10_000).unwrap();
        assert!(large > small);
        assert_eq!(small, Duration::from_micros(1000 + 100));
        assert_eq!(link.call_count(), 2);
    }

    #[test]
    fn unavailable_links_return_none() {
        let link = SimulatedLink::new("r0", NetworkProfile::unavailable(), 1);
        assert!(!link.is_available());
        assert!(link.call_delay(5).is_none());
        // Recovery.
        link.set_availability(Availability::Available);
        assert!(link.is_available());
        assert!(link.call_delay(5).is_some());
    }

    #[test]
    fn slow_links_add_extra_delay() {
        let mk = |availability| {
            SimulatedLink::new(
                "r0",
                NetworkProfile {
                    base_latency_us: 100,
                    per_row_us: 0,
                    jitter: 0.0,
                    availability,
                    real_sleep: false,
                    chunk_rows: 0,
                },
                7,
            )
        };
        let normal = mk(Availability::Available).call_delay(1).unwrap();
        let slow = mk(Availability::Slow { extra_ms: 5 })
            .call_delay(1)
            .unwrap();
        assert!(slow >= normal + Duration::from_millis(5));
    }

    #[test]
    fn jitter_is_deterministic_for_a_seed() {
        let a = SimulatedLink::new("r0", NetworkProfile::default(), 99);
        let b = SimulatedLink::new("r0", NetworkProfile::default(), 99);
        assert_eq!(a.call_delay(100), b.call_delay(100));
    }

    #[test]
    fn real_sleep_actually_sleeps() {
        let link = SimulatedLink::new(
            "r0",
            NetworkProfile {
                base_latency_us: 2000,
                per_row_us: 0,
                jitter: 0.0,
                availability: Availability::Available,
                real_sleep: true,
                chunk_rows: 0,
            },
            3,
        );
        let start = std::time::Instant::now();
        let _ = link.call_delay(1);
        assert!(start.elapsed() >= Duration::from_micros(1500));
    }
}
