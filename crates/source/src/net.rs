//! Simulated network path to a data source.
//!
//! DISCO targets a wide-area environment where "it is likely that some of
//! the data sources will be unavailable" (§4) and where per-source access
//! cost varies widely (§3.3).  The real paper ran against remote servers;
//! this reproduction substitutes a deterministic simulator: every
//! repository gets a [`NetworkProfile`] describing its availability and
//! latency, and the wrapper consults the profile before answering.
//!
//! The simulator produces both *simulated* costs (returned as numbers, fed
//! to the calibrating cost model) and, optionally, *real* delays (short
//! sleeps) so that the runtime's deadline-based partial evaluation is
//! exercised with genuine wall-clock behaviour.

use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Availability state of a simulated source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Availability {
    /// The source answers normally.
    Available,
    /// The source does not answer at all (calls block until the deadline).
    Unavailable,
    /// The source answers, but only after an extra fixed delay — useful for
    /// deadline-boundary experiments.
    Slow {
        /// Extra delay in milliseconds.
        extra_ms: u64,
    },
}

/// The latency/availability profile of the path to one repository.
#[derive(Debug, Clone)]
pub struct NetworkProfile {
    /// Fixed per-call latency in microseconds.
    pub base_latency_us: u64,
    /// Additional latency per row transferred, in microseconds.
    pub per_row_us: u64,
    /// Relative jitter (0.0–1.0) applied to the total latency.
    pub jitter: f64,
    /// Availability state.
    pub availability: Availability,
    /// When `true`, [`SimulatedLink::call_delay`] actually sleeps; when
    /// `false` it only reports the simulated duration.
    pub real_sleep: bool,
}

impl Default for NetworkProfile {
    fn default() -> Self {
        NetworkProfile {
            base_latency_us: 500,
            per_row_us: 5,
            jitter: 0.1,
            availability: Availability::Available,
            real_sleep: false,
        }
    }
}

impl NetworkProfile {
    /// A fast, local-area profile.
    #[must_use]
    pub fn fast() -> Self {
        NetworkProfile {
            base_latency_us: 100,
            per_row_us: 1,
            ..NetworkProfile::default()
        }
    }

    /// A slow, wide-area profile.
    #[must_use]
    pub fn wide_area() -> Self {
        NetworkProfile {
            base_latency_us: 20_000,
            per_row_us: 50,
            ..NetworkProfile::default()
        }
    }

    /// Marks the source unavailable.
    #[must_use]
    pub fn unavailable() -> Self {
        NetworkProfile {
            availability: Availability::Unavailable,
            ..NetworkProfile::default()
        }
    }

    /// Sets the availability state.
    #[must_use]
    pub fn with_availability(mut self, availability: Availability) -> Self {
        self.availability = availability;
        self
    }

    /// Enables real sleeping for wall-clock experiments.
    #[must_use]
    pub fn with_real_sleep(mut self, real_sleep: bool) -> Self {
        self.real_sleep = real_sleep;
        self
    }
}

/// The simulated link to one repository.
///
/// Thread-safe: `exec` calls run in parallel.
#[derive(Debug)]
pub struct SimulatedLink {
    endpoint: String,
    profile: Mutex<NetworkProfile>,
    rng: Mutex<StdRng>,
    calls: Mutex<u64>,
}

impl SimulatedLink {
    /// Creates a link with a deterministic jitter seed.
    pub fn new(endpoint: impl Into<String>, profile: NetworkProfile, seed: u64) -> Self {
        SimulatedLink {
            endpoint: endpoint.into(),
            profile: Mutex::new(profile),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            calls: Mutex::new(0),
        }
    }

    /// The endpoint (repository) name.
    #[must_use]
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// Replaces the profile (e.g. to fail or recover a source mid-test).
    pub fn set_profile(&self, profile: NetworkProfile) {
        *self.profile.lock() = profile;
    }

    /// Changes only the availability state.
    pub fn set_availability(&self, availability: Availability) {
        self.profile.lock().availability = availability;
    }

    /// The current availability state.
    #[must_use]
    pub fn availability(&self) -> Availability {
        self.profile.lock().availability
    }

    /// Returns `true` when the source currently answers.
    #[must_use]
    pub fn is_available(&self) -> bool {
        !matches!(self.profile.lock().availability, Availability::Unavailable)
    }

    /// Number of calls made over this link.
    #[must_use]
    pub fn call_count(&self) -> u64 {
        *self.calls.lock()
    }

    /// Simulates one call transferring `rows` rows: returns the simulated
    /// latency, sleeping for it when the profile asks for real sleeps.
    ///
    /// Returns `None` when the source is unavailable (the caller decides
    /// whether to block, error, or mark the source unavailable for partial
    /// evaluation).
    #[must_use]
    pub fn call_delay(&self, rows: usize) -> Option<Duration> {
        let profile = self.profile.lock().clone();
        *self.calls.lock() += 1;
        match profile.availability {
            Availability::Unavailable => None,
            Availability::Available | Availability::Slow { .. } => {
                let extra_ms = match profile.availability {
                    Availability::Slow { extra_ms } => extra_ms,
                    _ => 0,
                };
                let raw_us = profile.base_latency_us as f64
                    + profile.per_row_us as f64 * rows as f64
                    + extra_ms as f64 * 1000.0;
                let jitter_factor = if profile.jitter > 0.0 {
                    let j: f64 = self.rng.lock().gen_range(-profile.jitter..=profile.jitter);
                    1.0 + j
                } else {
                    1.0
                };
                let us = (raw_us * jitter_factor).max(0.0);
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let duration = Duration::from_micros(us as u64);
                if profile.real_sleep {
                    std::thread::sleep(duration);
                }
                Some(duration)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn available_links_report_latency_scaling_with_rows() {
        let link = SimulatedLink::new(
            "r0",
            NetworkProfile {
                base_latency_us: 1000,
                per_row_us: 10,
                jitter: 0.0,
                availability: Availability::Available,
                real_sleep: false,
            },
            42,
        );
        let small = link.call_delay(10).unwrap();
        let large = link.call_delay(10_000).unwrap();
        assert!(large > small);
        assert_eq!(small, Duration::from_micros(1000 + 100));
        assert_eq!(link.call_count(), 2);
    }

    #[test]
    fn unavailable_links_return_none() {
        let link = SimulatedLink::new("r0", NetworkProfile::unavailable(), 1);
        assert!(!link.is_available());
        assert!(link.call_delay(5).is_none());
        // Recovery.
        link.set_availability(Availability::Available);
        assert!(link.is_available());
        assert!(link.call_delay(5).is_some());
    }

    #[test]
    fn slow_links_add_extra_delay() {
        let mk = |availability| {
            SimulatedLink::new(
                "r0",
                NetworkProfile {
                    base_latency_us: 100,
                    per_row_us: 0,
                    jitter: 0.0,
                    availability,
                    real_sleep: false,
                },
                7,
            )
        };
        let normal = mk(Availability::Available).call_delay(1).unwrap();
        let slow = mk(Availability::Slow { extra_ms: 5 })
            .call_delay(1)
            .unwrap();
        assert!(slow >= normal + Duration::from_millis(5));
    }

    #[test]
    fn jitter_is_deterministic_for_a_seed() {
        let a = SimulatedLink::new("r0", NetworkProfile::default(), 99);
        let b = SimulatedLink::new("r0", NetworkProfile::default(), 99);
        assert_eq!(a.call_delay(100), b.call_delay(100));
    }

    #[test]
    fn real_sleep_actually_sleeps() {
        let link = SimulatedLink::new(
            "r0",
            NetworkProfile {
                base_latency_us: 2000,
                per_row_us: 0,
                jitter: 0.0,
                availability: Availability::Available,
                real_sleep: true,
            },
            3,
        );
        let start = std::time::Instant::now();
        let _ = link.call_delay(1);
        assert!(start.elapsed() >= Duration::from_micros(1500));
    }
}
