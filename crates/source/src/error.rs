use std::fmt;

/// Errors produced by simulated data sources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// The named table / collection does not exist in the store.
    UnknownTable(String),
    /// A row was inserted with a column the table does not declare.
    UnknownColumn {
        /// Table name.
        table: String,
        /// Offending column.
        column: String,
    },
    /// CSV text could not be parsed.
    Csv {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The source (or the simulated network path to it) is unavailable.
    Unavailable {
        /// The repository / endpoint name.
        endpoint: String,
    },
    /// A value-level error.
    Value(disco_value::ValueError),
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            SourceError::UnknownColumn { table, column } => {
                write!(f, "table {table} has no column {column}")
            }
            SourceError::Csv { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
            SourceError::Unavailable { endpoint } => {
                write!(f, "data source unavailable: {endpoint}")
            }
            SourceError::Value(err) => write!(f, "value error: {err}"),
        }
    }
}

impl std::error::Error for SourceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SourceError::Value(err) => Some(err),
            _ => None,
        }
    }
}

impl From<disco_value::ValueError> for SourceError {
    fn from(err: disco_value::ValueError) -> Self {
        SourceError::Value(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            SourceError::UnknownTable("person0".into()).to_string(),
            "unknown table: person0"
        );
        assert_eq!(
            SourceError::Unavailable {
                endpoint: "r0".into()
            }
            .to_string(),
            "data source unavailable: r0"
        );
    }
}
