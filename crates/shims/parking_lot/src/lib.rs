//! Offline shim for `parking_lot`.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides the small API surface the workspace uses (`Mutex::lock`,
//! `RwLock::read`/`write`, all non-poisoning) on top of `std::sync`.
//! Lock poisoning is transparently recovered: DISCO holds locks only
//! around short, non-panicking critical sections, so recovering the inner
//! data is always safe.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
