//! Offline shim for `rand` 0.8.
//!
//! Provides [`rngs::StdRng`], [`SeedableRng`], and the [`Rng`] extension
//! trait with `gen_range`/`gen_bool`, backed by a splitmix64 generator.
//! The workspace only ever seeds RNGs explicitly (`seed_from_u64`), so the
//! shim is fully deterministic and needs no OS entropy.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = ((u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())) % span;
                (start as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i64, i32, u64, u32, usize);

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform bits in [0, 1).
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        start + unit_f64(rng) * (end - start)
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    //! Concrete RNG implementations.
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator (stand-in for `rand`'s `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014): passes BigCrush on the
            // scales used here and is trivially seedable.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000i64), b.gen_range(0..1000i64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let i = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&i));
            let u = rng.gen_range(0..3usize);
            assert!(u < 3);
            let f = rng.gen_range(0.0..2.0);
            assert!((0.0..2.0).contains(&f));
            let g = rng.gen_range(-0.1..=0.1);
            assert!((-0.1..=0.1).contains(&g));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
