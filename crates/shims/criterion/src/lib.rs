//! Offline shim for `criterion` 0.5.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the Criterion API the workspace's benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `iter`,
//! `iter_batched`, `BenchmarkId`, the `criterion_group!`/`criterion_main!`
//! macros) as a small wall-clock harness.  Each benchmark is warmed up,
//! then timed over `sample_size` samples; the median per-iteration time is
//! printed in a `name  time: [..]` line, grep-compatible with real
//! Criterion output.

//!
//! Like real Criterion, the harness understands a `--test` argument
//! (`cargo bench -- --test`): every benchmark routine runs exactly once
//! and no timing statistics are collected.  CI uses this as a bitrot
//! guard — the benches keep compiling and running without paying for a
//! measurement.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Smoke mode: run each routine once, skip warm-up and sampling.
static TEST_MODE: AtomicBool = AtomicBool::new(false);

/// Enables or disables `--test` smoke mode (set by [`criterion_main!`]
/// when the binary receives a `--test` argument).
pub fn set_test_mode(enabled: bool) {
    TEST_MODE.store(enabled, Ordering::Relaxed);
}

/// Returns `true` when running in `--test` smoke mode.
#[must_use]
pub fn test_mode() -> bool {
    TEST_MODE.load(Ordering::Relaxed)
}

/// Batch sizes for [`Bencher::iter_batched`] (accepted, not tuned).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// Fresh setup for every iteration.
    PerIteration,
}

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Drives the timing loop of one benchmark.
pub struct Bencher {
    sample_size: usize,
    /// Median per-iteration time of the last `iter` call.
    result: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if test_mode() {
            let started = Instant::now();
            black_box(routine());
            self.result = Some(started.elapsed());
            return;
        }
        // Warm-up + calibration: find an iteration count that takes ≥ ~2 ms
        // per sample so timer resolution does not dominate.
        let mut iters_per_sample = 1usize;
        loop {
            let started = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = started.elapsed();
            if elapsed >= Duration::from_millis(2) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 2;
        }
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let started = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples.push(started.elapsed() / iters_per_sample as u32);
        }
        samples.sort();
        self.result = Some(samples[samples.len() / 2]);
    }

    /// Times `routine` over values produced by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if test_mode() {
            let input = setup();
            let started = Instant::now();
            black_box(routine(input));
            self.result = Some(started.elapsed());
            return;
        }
        let mut iters_per_sample = 1usize;
        loop {
            let inputs: Vec<I> = (0..iters_per_sample).map(|_| setup()).collect();
            let started = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = started.elapsed();
            if elapsed >= Duration::from_millis(2) || iters_per_sample >= 1 << 16 {
                break;
            }
            iters_per_sample *= 2;
        }
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters_per_sample).map(|_| setup()).collect();
            let started = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            samples.push(started.elapsed() / iters_per_sample as u32);
        }
        samples.sort();
        self.result = Some(samples[samples.len() / 2]);
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(full_name: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        sample_size,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some(median) => {
            let m = fmt_duration(median);
            println!("{full_name:<60} time: [{m} {m} {m}]");
        }
        None => println!("{full_name:<60} time: [no measurement]"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, f);
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Global sample-size override.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        };
        run_one(name, sample_size, f);
        self
    }
}

/// Declares a benchmark group runner, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench` (and possibly filters); accept and
            // ignore them.  `--test` (as in real Criterion) switches to
            // smoke mode: each routine runs once, untimed statistics.
            let args: Vec<String> = std::env::args().collect();
            $crate::set_test_mode(args.iter().any(|a| a == "--test"));
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `TEST_MODE` is process-global, so tests that read or toggle it must
    /// not run concurrently with each other.
    static TEST_MODE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn bench_function_produces_a_measurement() {
        let _guard = TEST_MODE_LOCK.lock().unwrap();
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("shim_smoke", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn smoke_mode_runs_each_routine_once() {
        let _guard = TEST_MODE_LOCK.lock().unwrap();
        set_test_mode(true);
        let mut calls = 0usize;
        let mut c = Criterion::default().sample_size(10);
        c.bench_function("smoke_once", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        set_test_mode(false);
        assert_eq!(calls, 1, "--test mode must run the routine exactly once");
    }

    #[test]
    fn groups_and_ids_compose() {
        let _guard = TEST_MODE_LOCK.lock().unwrap();
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("f", 4), &4, |b, n| {
            b.iter(|| black_box(n * 2));
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
    }
}
