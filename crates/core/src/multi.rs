//! Mediator composition (Fig. 1): mediators accessing other mediators.
//!
//! "This distributed architecture permits DBAs to develop mediators
//! independently and permits mediators to be combined."  A lower-level
//! mediator is exposed to an upper-level mediator through
//! [`MediatorWrapper`], a wrapper whose `submit` translates the pushed
//! algebra expression back to OQL and runs it on the inner mediator.
//! Together with [`disco_catalog::CatalogComponent`] this reproduces the
//! A/M/C/W/D topology of Fig. 1.

use std::sync::Arc;
use std::time::Duration;

use disco_algebra::{logical_to_oql, CapabilitySet, LogicalExpr, OperatorKind};
use disco_catalog::{CatalogComponent, MediatorAdvertisement};
use disco_oql::print_expr;
use disco_value::Bag;
use disco_wrapper::{Wrapper, WrapperAnswer, WrapperError};

use crate::Mediator;

/// A wrapper that forwards pushed expressions to another mediator.
///
/// The inner mediator is a full DISCO mediator, so this wrapper advertises
/// `get`, `select` and `project` with composition (joins across the inner
/// mediator's own sources are left to the inner mediator's optimizer by
/// shipping the corresponding OQL).
pub struct MediatorWrapper {
    name: String,
    inner: Arc<Mediator>,
}

impl MediatorWrapper {
    /// Creates a wrapper named `name` over `inner`.
    pub fn new(name: impl Into<String>, inner: Arc<Mediator>) -> Self {
        MediatorWrapper {
            name: name.into(),
            inner,
        }
    }

    /// The wrapped mediator.
    #[must_use]
    pub fn inner(&self) -> &Arc<Mediator> {
        &self.inner
    }
}

impl std::fmt::Debug for MediatorWrapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MediatorWrapper")
            .field("name", &self.name)
            .field("inner", &self.inner.name())
            .finish()
    }
}

impl Wrapper for MediatorWrapper {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> &str {
        "mediator"
    }

    fn capabilities(&self) -> CapabilitySet {
        CapabilitySet::new([
            OperatorKind::Get,
            OperatorKind::Select,
            OperatorKind::Project,
        ])
        .with_composition(true)
    }

    fn submit(&self, expr: &LogicalExpr) -> Result<WrapperAnswer, WrapperError> {
        self.capabilities()
            .accepts_named(expr, &self.name)
            .map_err(WrapperError::Capability)?;
        let started = std::time::Instant::now();
        let oql = pushed_expr_to_oql(expr);
        let answer = self.inner.query(&oql).map_err(|err| {
            WrapperError::Algebra(disco_algebra::AlgebraError::Unsupported(format!(
                "inner mediator {} failed: {err}",
                self.inner.name()
            )))
        })?;
        if !answer.is_complete() {
            // The inner mediator could not reach some of *its* sources; for
            // the outer mediator this inner mediator counts as unavailable,
            // propagating partial evaluation up the hierarchy.
            return Err(WrapperError::Unavailable {
                endpoint: self.inner.name().to_owned(),
            });
        }
        let rows: Bag = answer.data().clone();
        Ok(WrapperAnswer {
            rows,
            rows_scanned: answer.stats().rows_transferred,
            latency: started.elapsed().max(Duration::from_micros(1)),
        })
    }

    fn is_available(&self) -> bool {
        true
    }
}

/// Renders a pushed expression as OQL for the inner mediator, keeping rows
/// as structs: a projection onto a single attribute must still return
/// `struct(attr: …)` tuples (not bare values), because the outer mediator
/// continues to address the attribute by name.
fn pushed_expr_to_oql(expr: &LogicalExpr) -> String {
    fn render(expr: &LogicalExpr) -> Option<String> {
        match expr {
            LogicalExpr::Get { collection } => Some(collection.clone()),
            LogicalExpr::Filter { input, predicate } => {
                let inner = render(input)?;
                let pred = print_expr(&disco_algebra::scalar_to_oql(predicate, Some("t")));
                Some(format!("select t from t in {inner} where {pred}"))
            }
            LogicalExpr::Project { input, columns } => {
                // Projection keeps struct shape regardless of arity.
                let fields = columns
                    .iter()
                    .map(|c| format!("{c}: t.{c}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                match input.as_ref() {
                    LogicalExpr::Filter {
                        input: inner,
                        predicate,
                    } => {
                        let base = render(inner)?;
                        let pred = print_expr(&disco_algebra::scalar_to_oql(predicate, Some("t")));
                        Some(format!(
                            "select struct({fields}) from t in {base} where {pred}"
                        ))
                    }
                    other => {
                        let base = render(other)?;
                        Some(format!("select struct({fields}) from t in {base}"))
                    }
                }
            }
            _ => None,
        }
    }
    render(expr).unwrap_or_else(|| print_expr(&logical_to_oql(expr)))
}

/// A small helper that registers a mediator's interfaces with a catalog
/// component (the C box of Fig. 1).
pub fn advertise(mediator: &Mediator, catalog: &mut CatalogComponent) {
    let interfaces: Vec<String> = mediator
        .catalog()
        .interfaces()
        .map(|i| i.name().to_owned())
        .collect();
    let mut advertisement = MediatorAdvertisement::new(mediator.name())
        .with_extent_count(mediator.catalog().stats().extents);
    for interface in interfaces {
        advertisement = advertisement.with_interface(interface);
    }
    catalog.advertise(advertisement);
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_catalog::{Attribute, InterfaceDef, MetaExtent, Repository, TypeRef};
    use disco_source::{NetworkProfile, Table};
    use disco_value::Value;

    /// Builds a two-level hierarchy: the `hr` mediator integrates the two
    /// person sources; the `corp` mediator integrates `hr` as one source.
    fn hierarchy() -> (Arc<Mediator>, Mediator) {
        let mut hr = Mediator::new("hr");
        hr.register_person_demo().unwrap();
        let hr = Arc::new(hr);

        let mut corp = Mediator::new("corp");
        corp.define_interface(
            InterfaceDef::new("Person")
                .with_extent_name("person")
                .with_attribute(Attribute::new("name", TypeRef::String))
                .with_attribute(Attribute::new("salary", TypeRef::Int)),
        )
        .unwrap();
        corp.register_repository(Repository::new("r_hr")).unwrap();
        corp.register_wrapper(Arc::new(MediatorWrapper::new("w_hr", Arc::clone(&hr))))
            .unwrap();
        // The lower mediator's collection is its implicit `person` extent;
        // in the upper mediator it appears as the extent `person_hr`, with
        // a transformation map relating the two names (§2.2.2).
        corp.register_extent(
            MetaExtent::new("person_hr", "Person", "w_hr", "r_hr").with_map(
                disco_catalog::TypeMap::builder()
                    .relation("person", "person_hr")
                    .build()
                    .unwrap(),
            ),
        )
        .unwrap();
        (hr, corp)
    }

    #[test]
    fn queries_flow_through_the_mediator_hierarchy() {
        let (_hr, corp) = hierarchy();
        let answer = corp
            .query("select x.name from x in person where x.salary > 10")
            .unwrap();
        assert!(answer.is_complete());
        assert_eq!(
            *answer.data(),
            [Value::from("Mary"), Value::from("Sam")]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn upper_mediator_can_combine_local_and_remote_sources() {
        let (_hr, mut corp) = hierarchy();
        let mut t = Table::new("person_local", ["name", "salary"]);
        t.insert_values([("name", Value::from("Olga")), ("salary", Value::Int(400))])
            .unwrap();
        corp.add_relational_source(
            "person_local",
            "Person",
            "r_local",
            t,
            NetworkProfile::fast(),
            CapabilitySet::full(),
        )
        .unwrap();
        let answer = corp
            .query("select x.name from x in person where x.salary > 10")
            .unwrap();
        assert_eq!(answer.data().len(), 3);
    }

    #[test]
    fn catalog_component_tracks_advertisements() {
        let (hr, corp) = hierarchy();
        let mut component = CatalogComponent::new();
        advertise(&hr, &mut component);
        advertise(&corp, &mut component);
        assert_eq!(component.len(), 2);
        let person_mediators = component.mediators_for_interface("Person");
        assert_eq!(person_mediators.len(), 2);
        assert!(component.total_extents() >= 3);
    }

    #[test]
    fn mediator_wrapper_rejects_unsupported_pushes() {
        let (hr, _corp) = hierarchy();
        let wrapper = MediatorWrapper::new("w_hr", hr);
        assert_eq!(wrapper.kind(), "mediator");
        let join = LogicalExpr::SourceJoin {
            left: Box::new(LogicalExpr::get("person0")),
            right: Box::new(LogicalExpr::get("person1")),
            on: vec![("name".into(), "name".into())],
        };
        assert!(matches!(
            wrapper.submit(&join).unwrap_err(),
            WrapperError::Capability(_)
        ));
        // A plain get of the inner mediator's extent works.
        let answer = wrapper.submit(&LogicalExpr::get("person")).unwrap();
        assert_eq!(answer.rows_returned(), 2);
    }
}
