use std::fmt;

/// Errors surfaced by the mediator facade.
#[derive(Debug, Clone, PartialEq)]
pub enum MediatorError {
    /// Schema / catalog error (duplicate or unknown names, cyclic views…).
    Catalog(disco_catalog::CatalogError),
    /// OQL / ODL parse or resolution error.
    Oql(disco_oql::OqlError),
    /// Query compilation or optimization error.
    Optimizer(disco_optimizer::OptimizerError),
    /// Execution error (capability violation, type conflict, …).
    Runtime(disco_runtime::RuntimeError),
    /// A wrapper kind referenced in ODL has no registered implementation.
    UnboundWrapper {
        /// The wrapper name from the ODL statement.
        name: String,
        /// The wrapper kind.
        kind: String,
    },
    /// A statement the mediator cannot apply (e.g. a bare query inside a
    /// schema-only ODL load).
    Unsupported(String),
}

impl fmt::Display for MediatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MediatorError::Catalog(err) => write!(f, "catalog error: {err}"),
            MediatorError::Oql(err) => write!(f, "query language error: {err}"),
            MediatorError::Optimizer(err) => write!(f, "optimizer error: {err}"),
            MediatorError::Runtime(err) => write!(f, "runtime error: {err}"),
            MediatorError::UnboundWrapper { name, kind } => write!(
                f,
                "wrapper {name} of kind {kind} has no registered implementation; call bind_wrapper first"
            ),
            MediatorError::Unsupported(msg) => write!(f, "unsupported statement: {msg}"),
        }
    }
}

impl std::error::Error for MediatorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MediatorError::Catalog(err) => Some(err),
            MediatorError::Oql(err) => Some(err),
            MediatorError::Optimizer(err) => Some(err),
            MediatorError::Runtime(err) => Some(err),
            _ => None,
        }
    }
}

impl From<disco_catalog::CatalogError> for MediatorError {
    fn from(err: disco_catalog::CatalogError) -> Self {
        MediatorError::Catalog(err)
    }
}

impl From<disco_oql::OqlError> for MediatorError {
    fn from(err: disco_oql::OqlError) -> Self {
        MediatorError::Oql(err)
    }
}

impl From<disco_optimizer::OptimizerError> for MediatorError {
    fn from(err: disco_optimizer::OptimizerError) -> Self {
        MediatorError::Optimizer(err)
    }
}

impl From<disco_runtime::RuntimeError> for MediatorError {
    fn from(err: disco_runtime::RuntimeError) -> Self {
        MediatorError::Runtime(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: MediatorError = disco_catalog::CatalogError::UnknownExtent("x".into()).into();
        assert!(e.to_string().contains("unknown extent"));
        let e = MediatorError::UnboundWrapper {
            name: "w0".into(),
            kind: "postgres".into(),
        };
        assert!(e.to_string().contains("bind_wrapper"));
    }
}
