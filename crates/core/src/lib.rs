//! # disco-core
//!
//! The DISCO mediator facade — the single-process Prototype 0 of Fig. 2,
//! combining the ODL/OQL parsers, the internal database (catalog), the
//! query optimizer, the run-time system and the wrapper bindings — plus
//! mediator composition (Fig. 1): mediators can be stacked by exposing a
//! lower mediator to an upper one through [`MediatorWrapper`], and a
//! [`disco_catalog::CatalogComponent`] tracks which mediator advertises
//! which interfaces.
//!
//! The central type is [`Mediator`]; see its documentation for the
//! registration (DBA) and query (end-user) interfaces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod mediator;
mod multi;

pub use error::MediatorError;
pub use mediator::Mediator;
pub use multi::{advertise, MediatorWrapper};

// Re-exported so downstream users of the facade can name the common types
// without depending on every crate individually.
pub use disco_algebra::CapabilitySet;
pub use disco_catalog::{
    Attribute, Catalog, InterfaceDef, MetaExtent, Repository, TypeMap, TypeRef, ViewDef, WrapperDef,
};
pub use disco_optimizer::{CostParams, Plan};
pub use disco_runtime::{Answer, ExecutionStats, ResolutionMode};
pub use disco_source::{Availability, NetworkProfile, Table};
pub use disco_value::{Bag, StructValue, Value};

/// Convenience result alias for mediator operations.
pub type Result<T> = std::result::Result<T, MediatorError>;
