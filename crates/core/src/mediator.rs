//! The DISCO mediator (Prototype 0, Fig. 2): a single component combining
//! the ODL/OQL parsers, the internal database (catalog), the query
//! optimizer, the run-time system and the wrapper bindings.

use std::sync::Arc;
use std::time::Duration;

use disco_algebra::CapabilitySet;
use disco_catalog::{Catalog, InterfaceDef, MetaExtent, Repository, TypeMap, ViewDef, WrapperDef};
use disco_optimizer::{CalibrationStore, CostParams, Optimizer, Plan, PlanCache};
use disco_oql::{parse_query, parse_statements, OdlStatement};
use disco_runtime::{Answer, Executor, ResolutionMode};
use disco_source::{NetworkProfile, RelationalStore, SimulatedLink, Table};
use disco_value::Value;
use disco_wrapper::{CsvWrapper, DocumentWrapper, RelationalWrapper, Wrapper, WrapperRegistry};

use crate::{MediatorError, Result};

/// The DISCO mediator.
///
/// A mediator owns an internal database (the [`Catalog`]), a registry of
/// wrapper implementations, a self-calibrating cost store and a plan
/// cache.  Database administrators register repositories, wrappers,
/// interfaces, extents and views (programmatically or by loading ODL
/// text); end users and applications submit OQL queries and receive
/// [`Answer`]s that may be partial when sources are unavailable.
///
/// # Examples
///
/// ```
/// use disco_core::Mediator;
///
/// # fn main() -> Result<(), disco_core::MediatorError> {
/// let mut mediator = Mediator::new("hr");
/// mediator.register_person_demo()?;
/// let answer = mediator.query("select x.name from x in person where x.salary > 10")?;
/// assert_eq!(answer.data().len(), 2);
/// # Ok(())
/// # }
/// ```
pub struct Mediator {
    name: String,
    catalog: Catalog,
    registry: WrapperRegistry,
    calibration: Arc<CalibrationStore>,
    plan_cache: PlanCache,
    deadline: Option<Duration>,
    cost_params: CostParams,
    resolution: ResolutionMode,
}

impl std::fmt::Debug for Mediator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mediator")
            .field("name", &self.name)
            .field("catalog", &self.catalog.stats())
            .field("wrappers", &self.registry.names())
            .finish()
    }
}

impl Mediator {
    /// Creates an empty mediator.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Mediator {
            name: name.into(),
            catalog: Catalog::new(),
            registry: WrapperRegistry::new(),
            calibration: Arc::new(CalibrationStore::new()),
            plan_cache: PlanCache::new(),
            deadline: Some(Duration::from_millis(500)),
            cost_params: CostParams::default(),
            resolution: ResolutionMode::default(),
        }
    }

    /// The mediator's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Read access to the internal catalog.
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the catalog, for advanced schema manipulation.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// The wrapper registry.
    #[must_use]
    pub fn registry(&self) -> &WrapperRegistry {
        &self.registry
    }

    /// The calibration store shared by the optimizer and executor.
    #[must_use]
    pub fn calibration(&self) -> &Arc<CalibrationStore> {
        &self.calibration
    }

    /// Sets the partial-evaluation deadline (`None` waits indefinitely).
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
    }

    /// The partial-evaluation deadline currently in force.
    #[must_use]
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The resolution mode queries execute under.
    #[must_use]
    pub fn resolution(&self) -> ResolutionMode {
        self.resolution
    }

    /// The mediator-side cost constants the optimizer plans with.
    #[must_use]
    pub fn cost_params(&self) -> CostParams {
        self.cost_params
    }

    /// Chooses how wrapper answers meet the combine step:
    /// [`ResolutionMode::Streamed`] (the default) feeds row chunks into
    /// the pipeline as sources answer — the answer's
    /// [`ExecutionStats`](disco_runtime::ExecutionStats) then reports
    /// `time_to_first_row` well below the total latency when sources are
    /// skewed; [`ResolutionMode::Blocking`] restores the pre-streaming
    /// collect-then-combine behaviour for A/B measurement.
    pub fn set_resolution(&mut self, resolution: ResolutionMode) {
        self.resolution = resolution;
    }

    /// Overrides the mediator-side cost constants.
    pub fn set_cost_params(&mut self, params: CostParams) {
        self.cost_params = params;
    }

    // ------------------------------------------------------------------
    // Registration (the DBA interface, §2)
    // ------------------------------------------------------------------

    /// Registers a repository object.
    ///
    /// # Errors
    ///
    /// Returns catalog errors (duplicate names).
    pub fn register_repository(&mut self, repository: Repository) -> Result<()> {
        self.catalog.add_repository(repository)?;
        Ok(())
    }

    /// Registers a wrapper implementation, recording it in the catalog
    /// under its own name.
    ///
    /// # Errors
    ///
    /// Returns catalog errors (duplicate names).
    pub fn register_wrapper(&mut self, wrapper: Arc<dyn Wrapper>) -> Result<()> {
        self.catalog
            .add_wrapper(WrapperDef::new(wrapper.name(), wrapper.kind()))?;
        self.registry.register(wrapper);
        Ok(())
    }

    /// Binds a wrapper implementation to a name already declared in ODL
    /// (`w0 := WrapperPostgres()`), without touching the catalog.
    pub fn bind_wrapper(&mut self, wrapper: Arc<dyn Wrapper>) {
        self.registry.register(wrapper);
    }

    /// Defines a mediator interface.
    ///
    /// # Errors
    ///
    /// Returns catalog errors.
    pub fn define_interface(&mut self, interface: InterfaceDef) -> Result<()> {
        self.catalog.define_interface(interface)?;
        Ok(())
    }

    /// Registers an extent — the DISCO
    /// `extent e of I wrapper w repository r [map …];` declaration.
    ///
    /// # Errors
    ///
    /// Returns catalog errors (unknown interface/wrapper/repository).
    pub fn register_extent(&mut self, extent: MetaExtent) -> Result<()> {
        self.catalog.add_extent(extent)?;
        Ok(())
    }

    /// Removes an extent (a data source leaves the federation).
    ///
    /// # Errors
    ///
    /// Returns catalog errors.
    pub fn remove_extent(&mut self, name: &str) -> Result<MetaExtent> {
        Ok(self.catalog.remove_extent(name)?)
    }

    /// Defines a view (`define name as <query>`), recording the names the
    /// body references for cycle detection.
    ///
    /// # Errors
    ///
    /// Returns parse errors and catalog errors (duplicates, cycles).
    pub fn define_view(&mut self, name: &str, body: &str) -> Result<()> {
        let parsed = parse_query(body)?;
        let references = parsed.referenced_collections();
        self.catalog
            .define_view(ViewDef::new(name, body).with_references(references))?;
        Ok(())
    }

    /// Loads a sequence of ODL / DISCO statements (interfaces, extents,
    /// repository assignments, views).  Wrapper assignments are recorded in
    /// the catalog but their implementation must be bound separately with
    /// [`Mediator::bind_wrapper`].
    ///
    /// # Errors
    ///
    /// Returns parse and catalog errors; bare queries are rejected (use
    /// [`Mediator::query`]).
    pub fn load_odl(&mut self, text: &str) -> Result<usize> {
        let statements = parse_statements(text)?;
        let count = statements.len();
        for statement in statements {
            self.apply_statement(statement)?;
        }
        Ok(count)
    }

    fn apply_statement(&mut self, statement: OdlStatement) -> Result<()> {
        match statement {
            OdlStatement::Interface {
                name,
                supertype,
                extent_name,
                attributes,
            } => {
                let mut def = InterfaceDef::new(name);
                if let Some(sup) = supertype {
                    def = def.with_supertype(sup);
                }
                if let Some(extent) = extent_name {
                    def = def.with_extent_name(extent);
                }
                for attr in attributes {
                    def = def.with_attribute(disco_catalog::Attribute::new(
                        attr.name,
                        disco_catalog::TypeRef::from_odl_name(&attr.type_name),
                    ));
                }
                self.define_interface(def)
            }
            OdlStatement::Extent {
                extent,
                interface,
                wrapper,
                repository,
                map,
            } => {
                let mut meta = MetaExtent::new(&extent, interface, wrapper, repository);
                if let Some(map_text) = map {
                    let parsed = TypeMap::parse(&map_text, &extent)?;
                    meta = meta.with_map(parsed);
                }
                self.register_extent(meta)
            }
            OdlStatement::Define { name, body } => {
                let references = body.referenced_collections();
                let body_text = disco_oql::print_expr(&body);
                self.catalog
                    .define_view(ViewDef::new(name, body_text).with_references(references))?;
                Ok(())
            }
            OdlStatement::RepositoryAssign { name, fields } => {
                let mut repo = Repository::new(name);
                for (field, value) in fields {
                    let text = match value {
                        Value::Str(s) => s.as_ref().to_owned(),
                        other => other.to_string(),
                    };
                    repo = match field.as_str() {
                        "host" => repo.with_host(text),
                        "name" => repo.with_db_name(text),
                        "address" => repo.with_address(text),
                        other => repo.with_property(other, text),
                    };
                }
                self.register_repository(repo)
            }
            OdlStatement::WrapperAssign { name, kind } => {
                self.catalog.add_wrapper(WrapperDef::new(&name, &kind))?;
                if self.registry.wrapper(&name).is_none() {
                    // The catalog entry exists; the implementation must be
                    // bound before the extent is queried.  This is not an
                    // error yet — mirroring the paper, where locating the
                    // wrapper implementation is a separate DBA/DBI step.
                }
                Ok(())
            }
            OdlStatement::Query(_) => Err(MediatorError::Unsupported(
                "bare query inside an ODL load; use Mediator::query".into(),
            )),
        }
    }

    // ------------------------------------------------------------------
    // Convenience registration of simulated sources
    // ------------------------------------------------------------------

    /// Registers a simulated relational data source in one step: creates a
    /// store holding `table`, a simulated network link, a
    /// [`RelationalWrapper`] with the given capability set, the repository,
    /// and the extent.  Returns the link so tests and experiments can
    /// inject failures or change latency.
    ///
    /// # Errors
    ///
    /// Returns catalog errors (duplicate or missing names).
    pub fn add_relational_source(
        &mut self,
        extent: &str,
        interface: &str,
        repository: &str,
        table: Table,
        profile: NetworkProfile,
        capabilities: CapabilitySet,
    ) -> Result<Arc<SimulatedLink>> {
        let wrapper_name = format!("w_{extent}");
        let store = Arc::new(RelationalStore::new());
        store.put_table(table);
        let link = Arc::new(SimulatedLink::new(repository, profile, seed_from(extent)));
        let wrapper = RelationalWrapper::new(&wrapper_name, store, Arc::clone(&link))
            .with_capabilities(capabilities);
        if self.catalog.repository(repository).is_err() {
            self.register_repository(Repository::new(repository))?;
        }
        self.register_wrapper(Arc::new(wrapper))?;
        self.register_extent(MetaExtent::new(
            extent,
            interface,
            &wrapper_name,
            repository,
        ))?;
        Ok(link)
    }

    /// Registers a simulated CSV (flat-file) source; its wrapper is
    /// `get`-only.
    ///
    /// # Errors
    ///
    /// Returns catalog errors and CSV parse errors.
    pub fn add_csv_source(
        &mut self,
        extent: &str,
        interface: &str,
        repository: &str,
        csv_text: &str,
        profile: NetworkProfile,
    ) -> Result<Arc<SimulatedLink>> {
        let wrapper_name = format!("w_{extent}");
        let source = disco_source::CsvSource::from_text(extent, csv_text)
            .map_err(|e| MediatorError::Unsupported(format!("csv source: {e}")))?;
        let link = Arc::new(SimulatedLink::new(repository, profile, seed_from(extent)));
        let wrapper = CsvWrapper::new(&wrapper_name, source, Arc::clone(&link));
        if self.catalog.repository(repository).is_err() {
            self.register_repository(Repository::new(repository))?;
        }
        self.register_wrapper(Arc::new(wrapper))?;
        self.register_extent(MetaExtent::new(
            extent,
            interface,
            &wrapper_name,
            repository,
        ))?;
        Ok(link)
    }

    /// Registers a simulated keyword-document (WAIS-style) source.
    ///
    /// # Errors
    ///
    /// Returns catalog errors.
    pub fn add_document_source(
        &mut self,
        extent: &str,
        interface: &str,
        repository: &str,
        store: disco_source::DocumentStore,
        profile: NetworkProfile,
    ) -> Result<Arc<SimulatedLink>> {
        let wrapper_name = format!("w_{extent}");
        let link = Arc::new(SimulatedLink::new(repository, profile, seed_from(extent)));
        let wrapper = DocumentWrapper::new(&wrapper_name, Arc::new(store), Arc::clone(&link));
        if self.catalog.repository(repository).is_err() {
            self.register_repository(Repository::new(repository))?;
        }
        self.register_wrapper(Arc::new(wrapper))?;
        self.register_extent(MetaExtent::new(
            extent,
            interface,
            &wrapper_name,
            repository,
        ))?;
        Ok(link)
    }

    /// Builds the paper's introductory scenario: a `Person` interface with
    /// two sources — `r0` holding Mary (salary 200) and `r1` holding Sam
    /// (salary 50).
    ///
    /// # Errors
    ///
    /// Returns catalog errors if the names are already taken.
    pub fn register_person_demo(&mut self) -> Result<()> {
        self.define_interface(
            InterfaceDef::new("Person")
                .with_extent_name("person")
                .with_attribute(disco_catalog::Attribute::new(
                    "name",
                    disco_catalog::TypeRef::String,
                ))
                .with_attribute(disco_catalog::Attribute::new(
                    "salary",
                    disco_catalog::TypeRef::Int,
                )),
        )?;
        let mut t0 = Table::new("person0", ["name", "salary"]);
        t0.insert_values([("name", Value::from("Mary")), ("salary", Value::Int(200))])
            .map_err(|e| MediatorError::Unsupported(e.to_string()))?;
        let mut t1 = Table::new("person1", ["name", "salary"]);
        t1.insert_values([("name", Value::from("Sam")), ("salary", Value::Int(50))])
            .map_err(|e| MediatorError::Unsupported(e.to_string()))?;
        self.add_relational_source(
            "person0",
            "Person",
            "r0",
            t0,
            NetworkProfile::fast(),
            CapabilitySet::full(),
        )?;
        self.add_relational_source(
            "person1",
            "Person",
            "r1",
            t1,
            NetworkProfile::fast(),
            CapabilitySet::full(),
        )?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Query processing (the end-user interface, §1.3, §3, §4)
    // ------------------------------------------------------------------

    /// Optimizes a query and returns the chosen plan without executing it.
    ///
    /// # Errors
    ///
    /// Returns parse, compilation and optimization errors.
    pub fn explain(&self, query: &str) -> Result<Plan> {
        let optimizer = Optimizer::with_store(self.registry.clone(), Arc::clone(&self.calibration))
            .with_cost_params(self.cost_params);
        Ok(optimizer.optimize_text(query, &self.catalog)?)
    }

    /// Processes an OQL query end to end: parse, expand views and implicit
    /// extents, optimize (using the plan cache), execute with parallel
    /// wrapper calls, and return a complete or partial [`Answer`].
    ///
    /// # Errors
    ///
    /// Returns parse/compile/optimize errors and hard execution errors;
    /// unavailable sources yield a partial answer, not an error.
    pub fn query(&self, query: &str) -> Result<Answer> {
        let plan = match self.plan_cache.get(query, self.catalog.generation()) {
            Some(plan) => plan,
            None => {
                let plan = self.explain(query)?;
                self.plan_cache.put(&plan);
                plan
            }
        };
        let executor = Executor::new(self.registry.clone())
            .with_deadline(self.deadline)
            .with_resolution(self.resolution)
            .with_calibration(Arc::clone(&self.calibration));
        Ok(executor.execute(&plan.physical, &self.catalog)?)
    }

    /// Resubmits a (typically partial) answer as a new query — the §4
    /// recovery path: once the unavailable sources are back, resubmission
    /// returns the answer that would have been obtained originally.
    ///
    /// # Errors
    ///
    /// Same as [`Mediator::query`].
    pub fn resubmit(&self, answer: &Answer) -> Result<Answer> {
        self.query(&answer.as_query_text())
    }

    /// `(hits, misses)` of the plan cache.
    #[must_use]
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        self.plan_cache.stats()
    }
}

/// Deterministic per-extent seed for simulated links.
fn seed_from(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |acc, b| {
        (acc ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_source::Availability;

    fn demo_mediator() -> Mediator {
        let mut m = Mediator::new("demo");
        m.register_person_demo().unwrap();
        m
    }

    #[test]
    fn paper_intro_query_returns_both_names() {
        let m = demo_mediator();
        let answer = m
            .query("select x.name from x in person where x.salary > 10")
            .unwrap();
        assert!(answer.is_complete());
        assert_eq!(
            *answer.data(),
            [Value::from("Mary"), Value::from("Sam")]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn mediator_surfaces_first_row_latency_under_streamed_resolution() {
        let m = demo_mediator();
        let answer = m
            .query("select x.name from x in person where x.salary > 10")
            .unwrap();
        let t_first = answer
            .time_to_first_row()
            .expect("streamed resolution reports first-row latency");
        assert!(t_first <= answer.stats().elapsed);
        // The blocking mode still works and agrees on the data.
        let mut blocking = demo_mediator();
        blocking.set_resolution(ResolutionMode::Blocking);
        let b = blocking
            .query("select x.name from x in person where x.salary > 10")
            .unwrap();
        assert_eq!(b.data(), answer.data());
    }

    #[test]
    fn explicit_extent_query_returns_only_that_source() {
        let m = demo_mediator();
        let answer = m
            .query("select x.name from x in person0 where x.salary > 10")
            .unwrap();
        assert_eq!(*answer.data(), [Value::from("Mary")].into_iter().collect());
    }

    #[test]
    fn adding_a_source_changes_answers_but_not_the_query() {
        let mut m = demo_mediator();
        let query = "select x.name from x in person where x.salary > 10";
        assert_eq!(m.query(query).unwrap().data().len(), 2);
        let mut t2 = Table::new("person2", ["name", "salary"]);
        t2.insert_values([("name", Value::from("Olga")), ("salary", Value::Int(120))])
            .unwrap();
        m.add_relational_source(
            "person2",
            "Person",
            "r2",
            t2,
            NetworkProfile::fast(),
            CapabilitySet::full(),
        )
        .unwrap();
        assert_eq!(m.query(query).unwrap().data().len(), 3);
    }

    #[test]
    fn unavailable_source_yields_partial_answer_and_resubmission_recovers() {
        let mut m = Mediator::new("demo");
        m.register_person_demo().unwrap();
        // Make r0 unavailable through its link.
        let link = {
            // Re-register person0 with a link we keep; simpler: grab the
            // wrapper and flip availability via a fresh registration is not
            // possible, so rebuild the mediator with a kept link.
            let mut m2 = Mediator::new("demo2");
            m2.define_interface(
                InterfaceDef::new("Person")
                    .with_extent_name("person")
                    .with_attribute(disco_catalog::Attribute::new(
                        "name",
                        disco_catalog::TypeRef::String,
                    ))
                    .with_attribute(disco_catalog::Attribute::new(
                        "salary",
                        disco_catalog::TypeRef::Int,
                    )),
            )
            .unwrap();
            let mut t0 = Table::new("person0", ["name", "salary"]);
            t0.insert_values([("name", Value::from("Mary")), ("salary", Value::Int(200))])
                .unwrap();
            let mut t1 = Table::new("person1", ["name", "salary"]);
            t1.insert_values([("name", Value::from("Sam")), ("salary", Value::Int(50))])
                .unwrap();
            let link0 = m2
                .add_relational_source(
                    "person0",
                    "Person",
                    "r0",
                    t0,
                    NetworkProfile::fast(),
                    CapabilitySet::full(),
                )
                .unwrap();
            m2.add_relational_source(
                "person1",
                "Person",
                "r1",
                t1,
                NetworkProfile::fast(),
                CapabilitySet::full(),
            )
            .unwrap();
            m = m2;
            link0
        };
        link.set_availability(Availability::Unavailable);
        let query = "select x.name from x in person where x.salary > 10";
        let partial = m.query(query).unwrap();
        assert!(!partial.is_complete());
        assert_eq!(*partial.data(), [Value::from("Sam")].into_iter().collect());
        assert_eq!(partial.unavailable_sources(), &["r0".to_owned()]);
        assert!(partial.as_query_text().contains("person0"));

        // The source recovers; resubmitting the partial answer returns the
        // complete answer, as §4 promises.
        link.set_availability(Availability::Available);
        let complete = m.resubmit(&partial).unwrap();
        assert!(complete.is_complete());
        assert_eq!(
            *complete.data(),
            [Value::from("Mary"), Value::from("Sam")]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn odl_load_defines_schema_and_maps() {
        let mut m = Mediator::new("odl");
        let count = m
            .load_odl(
                "r5 := Repository(host=\"rodin\", name=\"db\", address=\"123.45.6.7\");\n\
                 w5 := WrapperPostgres();\n\
                 interface PersonPrime (extent personprime) { attribute String n; attribute Short s; }\n\
                 extent personprime0 of PersonPrime wrapper w5 repository r5 \
                     map ((person0=personprime0),(n=n),(s=s));",
            )
            .unwrap();
        assert_eq!(count, 4);
        assert!(m.catalog().repository("r5").is_ok());
        assert!(m.catalog().wrapper("w5").is_ok());
        assert!(m.catalog().interface("PersonPrime").is_ok());
        let extent = m.catalog().extent("personprime0").unwrap();
        assert_eq!(extent.source_relation(), "person0");
        // Bare queries are rejected inside ODL loads.
        assert!(m.load_odl("select x from x in person").is_err());
    }

    #[test]
    fn views_expand_in_queries() {
        let mut m = demo_mediator();
        m.define_view("rich", "select x from x in person where x.salary > 100")
            .unwrap();
        let answer = m.query("select r.name from r in rich").unwrap();
        assert_eq!(*answer.data(), [Value::from("Mary")].into_iter().collect());
    }

    #[test]
    fn plan_cache_hits_and_invalidates() {
        let mut m = demo_mediator();
        let query = "select x.name from x in person";
        m.query(query).unwrap();
        m.query(query).unwrap();
        let (hits, _misses) = m.plan_cache_stats();
        assert!(hits >= 1);
        // Adding a source invalidates the cached plan on next use.
        let mut t2 = Table::new("person9", ["name", "salary"]);
        t2.insert_values([("name", Value::from("New")), ("salary", Value::Int(1))])
            .unwrap();
        m.add_relational_source(
            "person9",
            "Person",
            "r9",
            t2,
            NetworkProfile::fast(),
            CapabilitySet::full(),
        )
        .unwrap();
        let answer = m.query(query).unwrap();
        assert_eq!(answer.data().len(), 3);
    }

    #[test]
    fn explain_reports_alternatives() {
        let m = demo_mediator();
        let plan = m
            .explain("select x.name from x in person where x.salary > 10")
            .unwrap();
        assert!(plan.alternatives.len() >= 2);
        assert!(plan.physical.collect_execs().len() == 2);
    }

    #[test]
    fn document_and_csv_sources_are_queryable() {
        let mut m = Mediator::new("mixed");
        m.define_interface(
            InterfaceDef::new("Measurement")
                .with_extent_name("measurement")
                .with_attribute(disco_catalog::Attribute::new(
                    "site",
                    disco_catalog::TypeRef::String,
                ))
                .with_attribute(disco_catalog::Attribute::new(
                    "ph",
                    disco_catalog::TypeRef::Float,
                )),
        )
        .unwrap();
        m.add_csv_source(
            "measurement0",
            "Measurement",
            "r_csv",
            "site,ph\nseine-01,7.2\nseine-02,6.9\n",
            NetworkProfile::fast(),
        )
        .unwrap();
        let answer = m
            .query("select x.site from x in measurement where x.ph > 7.0")
            .unwrap();
        assert_eq!(
            *answer.data(),
            [Value::from("seine-01")].into_iter().collect()
        );

        m.define_interface(
            InterfaceDef::new("Report")
                .with_extent_name("report")
                .with_attribute(disco_catalog::Attribute::new(
                    "id",
                    disco_catalog::TypeRef::Int,
                ))
                .with_attribute(disco_catalog::Attribute::new(
                    "title",
                    disco_catalog::TypeRef::String,
                ))
                .with_attribute(disco_catalog::Attribute::new(
                    "body",
                    disco_catalog::TypeRef::String,
                ))
                .with_attribute(disco_catalog::Attribute::new(
                    "keyword",
                    disco_catalog::TypeRef::String,
                )),
        )
        .unwrap();
        m.add_document_source(
            "report0",
            "Report",
            "r_doc",
            disco_source::generator::document_store(20, 3),
            NetworkProfile::fast(),
        )
        .unwrap();
        let answer = m.query("select d.title from d in report").unwrap();
        assert_eq!(answer.data().len(), 20);
    }
}
