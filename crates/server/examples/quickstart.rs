//! The README quickstart, compiled: one federated query through the
//! mediator directly, then the same engine behind a concurrent
//! `DiscoServer` session.
//!
//! ```console
//! $ cargo run -p disco-server --example quickstart
//! ```

use disco_core::Mediator;
use disco_server::{DiscoServer, ServerConfig};

fn main() -> disco_core::Result<()> {
    let mut mediator = Mediator::new("hr");
    // Registers two wrapped relational sources under one `person`
    // interface — the paper's multi-extent setup, in miniature.
    mediator.register_person_demo()?;

    let answer = mediator.query("select x.name from x in person where x.salary > 10")?;
    println!(
        "direct: {} rows, residual: {:?}",
        answer.data().len(),
        answer.residual()
    );

    let server = DiscoServer::from_mediator(&mediator, ServerConfig::default());
    let session = server.session();
    let answer = session.query("select x.name from x in person")?;
    println!("via server session: {} rows", answer.data().len());
    Ok(())
}
