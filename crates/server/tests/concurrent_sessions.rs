//! Concurrent-session behaviour of the serving layer: parity with serial
//! execution, copy-on-write catalog isolation, per-query deadline and
//! row-budget isolation, and shared connection-pool metering.

use std::sync::Arc;
use std::time::Duration;

use disco_core::{
    Attribute, Availability, CapabilitySet, InterfaceDef, Mediator, NetworkProfile, Table, TypeRef,
    Value,
};
use disco_server::{DiscoServer, ServerConfig};

/// A `Person` interface federated over `sources` relational sources,
/// each holding `rows` people with salaries 0, 100, 200, …
fn person_mediator(sources: usize, rows: usize, profile: NetworkProfile) -> Mediator {
    let mut mediator = Mediator::new("serving-test");
    mediator
        .define_interface(
            InterfaceDef::new("Person")
                .with_extent_name("person")
                .with_attribute(Attribute::new("name", TypeRef::String))
                .with_attribute(Attribute::new("salary", TypeRef::Int)),
        )
        .unwrap();
    for s in 0..sources {
        let extent = format!("person{s}");
        let mut table = Table::new(&extent, ["name", "salary"]);
        for r in 0..rows {
            table
                .insert_values([
                    ("name", Value::from(format!("p{s}_{r}").as_str())),
                    ("salary", Value::Int(100 * r as i64)),
                ])
                .unwrap();
        }
        mediator
            .add_relational_source(
                &extent,
                "Person",
                &format!("r{s}"),
                table,
                profile.clone(),
                CapabilitySet::full(),
            )
            .unwrap();
    }
    mediator
}

const QUERIES: [&str; 3] = [
    "select x.name from x in person where x.salary > 150",
    "select x.salary from x in person",
    "select x.name from x in person where x.salary = 0",
];

#[test]
fn concurrent_sessions_match_serial_answers() {
    let mediator = person_mediator(3, 4, NetworkProfile::fast());
    // Exercise admission control too: at most 2 queries execute at once.
    let server =
        DiscoServer::from_mediator(&mediator, ServerConfig::default().with_max_concurrent(2));

    // Serial ground truth, straight from the mediator.
    let expected: Vec<_> = QUERIES.iter().map(|q| mediator.query(q).unwrap()).collect();
    for answer in &expected {
        assert!(answer.is_complete());
    }

    let threads = 8;
    let per_thread = 6;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let server = &server;
            let expected = &expected;
            scope.spawn(move || {
                let session = server.session();
                for i in 0..per_thread {
                    let pick = (t + i) % QUERIES.len();
                    let answer = session.query(QUERIES[pick]).unwrap();
                    assert!(answer.is_complete());
                    assert_eq!(
                        answer.data(),
                        expected[pick].data(),
                        "concurrent answer diverged from serial for {:?}",
                        QUERIES[pick]
                    );
                }
            });
        }
    });

    let stats = server.stats();
    assert_eq!(stats.queries_served, (threads * per_thread) as u64);
    // 48 queries over 3 texts against one catalog generation: the shared
    // plan cache must have been reused across sessions.
    assert!(stats.plan_cache.0 > 0, "expected plan-cache hits");
}

#[test]
fn mid_flight_catalog_update_does_not_affect_admitted_queries() {
    // One slow source so the first query is reliably in flight while the
    // schema changes under it.
    let slow = NetworkProfile::fast()
        .with_availability(Availability::Slow { extra_ms: 80 })
        .with_real_sleep(true);
    let mut mediator = person_mediator(1, 2, slow);
    mediator.set_deadline(None);
    let server = DiscoServer::from_mediator(&mediator, ServerConfig::default());

    let in_flight = {
        let session = server.session();
        std::thread::spawn(move || session.query("select x.name from x in person").unwrap())
    };
    // Give the query time to be admitted and take its snapshot.
    std::thread::sleep(Duration::from_millis(20));

    // DDL while the query is in flight: a second Person source appears.
    // The wrapper implementation must be registered before the extent
    // becomes queryable; the registry is shared and synchronized.
    let store = Arc::new(disco_source::RelationalStore::new());
    let mut table = Table::new("person_extra", ["name", "salary"]);
    table
        .insert_values([
            ("name", Value::from("Newcomer")),
            ("salary", Value::Int(999)),
        ])
        .unwrap();
    store.put_table(table);
    let link = Arc::new(disco_source::SimulatedLink::new(
        "r_extra",
        NetworkProfile::fast(),
        7,
    ));
    server
        .registry()
        .register(Arc::new(disco_wrapper::RelationalWrapper::new(
            "w_person_extra",
            store,
            link,
        )));
    server
        .update_catalog(|catalog| {
            catalog.add_repository(disco_core::Repository::new("r_extra"))?;
            catalog.add_wrapper(disco_core::WrapperDef::new("w_person_extra", "relational"))?;
            catalog.add_extent(disco_core::MetaExtent::new(
                "person_extra",
                "Person",
                "w_person_extra",
                "r_extra",
            ))
        })
        .unwrap();

    // The admitted query answered against its snapshot: no Newcomer.
    let old = in_flight.join().unwrap();
    assert!(old.is_complete());
    assert_eq!(old.data().len(), 2);
    assert!(!old.data().iter().any(|v| *v == Value::from("Newcomer")));

    // A query admitted after the update sees the new source.
    let new = server
        .session()
        .query("select x.name from x in person")
        .unwrap();
    assert!(new.is_complete());
    assert_eq!(new.data().len(), 3);
    assert!(new.data().iter().any(|v| *v == Value::from("Newcomer")));
}

#[test]
fn per_query_deadline_cancels_only_its_own_query() {
    let slow = NetworkProfile::fast()
        .with_availability(Availability::Slow { extra_ms: 150 })
        .with_real_sleep(true);
    let mediator = person_mediator(1, 2, slow);
    let server = DiscoServer::from_mediator(&mediator, ServerConfig::default());

    let strict = server
        .session()
        .with_deadline(Some(Duration::from_millis(25)));
    let patient = server.session().with_deadline(None);
    std::thread::scope(|scope| {
        let strict_answer =
            scope.spawn(move || strict.query("select x.name from x in person").unwrap());
        let patient_answer =
            scope.spawn(move || patient.query("select x.name from x in person").unwrap());
        let strict_answer = strict_answer.join().unwrap();
        let patient_answer = patient_answer.join().unwrap();
        // The strict session's query hit its deadline: partial answer
        // with a residual over the slow source.
        assert!(!strict_answer.is_complete());
        assert_eq!(strict_answer.unavailable_sources(), &["r0".to_owned()]);
        // The concurrent patient query was untouched by that cancellation.
        assert!(patient_answer.is_complete());
        assert_eq!(patient_answer.data().len(), 2);
    });
}

#[test]
fn row_budget_degrades_to_a_partial_answer_with_residual() {
    let mediator = person_mediator(2, 1, NetworkProfile::fast());
    let server = DiscoServer::from_mediator(&mediator, ServerConfig::default());
    let session = server.session().with_row_budget(Some(1));
    let answer = session.query("select x.name from x in person").unwrap();
    // Two sources of one row each against a budget of one: exactly one
    // source delivers, the other is cancelled through the deadline path
    // and becomes residual.
    assert!(!answer.is_complete());
    assert_eq!(answer.data().len(), 1);
    assert_eq!(answer.unavailable_sources().len(), 1);
    assert!(answer.residual().is_some());

    // An unbudgeted session on the same server is unaffected.
    let full = server
        .session()
        .query("select x.name from x in person")
        .unwrap();
    assert!(full.is_complete());
    assert_eq!(full.data().len(), 2);
}

#[test]
fn shared_source_pool_caps_concurrency_and_meters_waits() {
    let slow = NetworkProfile::fast()
        .with_availability(Availability::Slow { extra_ms: 20 })
        .with_real_sleep(true);
    let mut mediator = person_mediator(2, 2, slow);
    mediator.set_deadline(None);
    let pool = Arc::new(disco_runtime::SourcePool::new(1));
    let server = DiscoServer::from_mediator(
        &mediator,
        ServerConfig::default().with_source_pool(Arc::clone(&pool)),
    );
    let expected = mediator.query("select x.salary from x in person").unwrap();

    std::thread::scope(|scope| {
        for _ in 0..4 {
            let server = &server;
            let expected = &expected;
            scope.spawn(move || {
                let answer = server
                    .session()
                    .query("select x.salary from x in person")
                    .unwrap();
                assert!(answer.is_complete());
                assert_eq!(answer.data(), expected.data());
            });
        }
    });

    // 8 wrapper calls over 2 repositories at cap 1, each holding its
    // slot ≥ 20 ms: queuing must have happened and been metered.
    let (queued, waited) = pool.queue_stats();
    assert!(queued > 0, "expected queued wrapper calls");
    assert!(waited > Duration::ZERO);
    let stats = server.stats();
    assert_eq!(stats.source_pool_queued, Some((queued, waited)));
}
