//! # disco-server
//!
//! A concurrent **serving layer** over the DISCO mediator: where
//! [`disco_core::Mediator`] answers one query at a time over an owned
//! catalog, a [`DiscoServer`] fronts the same engine for many sessions
//! at once — the paper's "millions of users" deployment shape, following
//! the gateway pattern of hybrid-cloud SQL serving tiers.
//!
//! What the server adds on top of the single-query engine:
//!
//! * **Copy-on-write catalog snapshots** — every query plans and executes
//!   against an immutable `Arc<Catalog>` snapshot taken at admission;
//!   DDL goes through [`DiscoServer::update_catalog`], which clones,
//!   mutates, and atomically swaps ([`disco_catalog::CatalogHandle`]).
//!   A schema update never blocks — or is observed by — an in-flight
//!   query.
//! * **A shared wrapper-connection pool** — one
//!   [`SourcePool`] gates wrapper calls
//!   across *all* sessions with per-repository concurrency caps; calls
//!   beyond a cap queue, and their queued time is metered into the
//!   query's [`ExecutionStats::source_wait`](disco_runtime::ExecutionStats).
//! * **Per-query deadlines and row budgets** — both enforced through the
//!   streamed-resolution cancellation path, so a query that exceeds its
//!   budget degrades to a partial answer with a residual query (§4 of
//!   the paper) instead of failing.
//! * **Admission control with round-robin fairness** — when N concurrent
//!   queries would oversubscribe the shared morsel worker pool, at most
//!   [`ServerConfig::max_concurrent`] execute at once and freed slots
//!   rotate across sessions, so no session starves behind a chatty
//!   neighbour.
//! * **A shared plan cache** — keyed by query text and catalog
//!   generation, so sessions reuse each other's optimized plans and a
//!   catalog update invalidates exactly the stale entries.
//!
//! # Examples
//!
//! ```
//! use disco_core::Mediator;
//! use disco_server::{DiscoServer, ServerConfig};
//!
//! # fn main() -> disco_core::Result<()> {
//! let mut mediator = Mediator::new("demo");
//! mediator.register_person_demo()?;
//! let server = DiscoServer::from_mediator(&mediator, ServerConfig::default());
//!
//! // Sessions are cheap; each runs queries concurrently with the others.
//! let session = server.session();
//! let answer = session.query("select x.name from x in person where x.salary > 100")?;
//! assert!(answer.is_complete());
//!
//! // DDL is copy-on-write: in-flight queries keep their snapshot.
//! server.update_catalog(|catalog| {
//!     catalog.add_repository(disco_core::Repository::new("r_new"))
//! })?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use disco_catalog::{Catalog, CatalogError, CatalogHandle};
use disco_core::{Mediator, Result};
use disco_optimizer::{CalibrationStore, CostParams, Optimizer, PlanCache};
use disco_runtime::{Answer, Executor, ResolutionMode, SourcePool};
use disco_wrapper::WrapperRegistry;

use crate::admission::Admission;

/// Serving-layer configuration, applied to every session unless the
/// session overrides it.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Maximum queries executing concurrently; the rest queue and are
    /// admitted round-robin across sessions.  `0` (the default) disables
    /// admission control.
    pub max_concurrent: usize,
    /// Shared wrapper-connection pool.  `None` (the default) leaves
    /// wrapper calls unpooled; set one to cap per-repository concurrency
    /// across all sessions.
    pub source_pool: Option<Arc<SourcePool>>,
    /// Default per-query row budget (total rows transferred from
    /// sources).  `None` is unlimited.
    pub row_budget: Option<usize>,
    /// Worker threads of the mediator-side combine step per query
    /// (`0` defers to `DISCO_THREADS`, `1` is serial).
    pub threads: usize,
}

impl ServerConfig {
    /// Bounds concurrent query execution (see
    /// [`ServerConfig::max_concurrent`]).
    #[must_use]
    pub fn with_max_concurrent(mut self, max_concurrent: usize) -> Self {
        self.max_concurrent = max_concurrent;
        self
    }

    /// Shares a wrapper-connection pool across every session.
    #[must_use]
    pub fn with_source_pool(mut self, pool: Arc<SourcePool>) -> Self {
        self.source_pool = Some(pool);
        self
    }

    /// Sets the default per-query row budget.
    #[must_use]
    pub fn with_row_budget(mut self, budget: Option<usize>) -> Self {
        self.row_budget = budget;
        self
    }

    /// Sets the per-query worker-thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Shared state of one server: everything a session needs, behind `Arc`.
#[derive(Debug)]
struct ServerShared {
    catalog: CatalogHandle,
    registry: WrapperRegistry,
    calibration: Arc<CalibrationStore>,
    plan_cache: PlanCache,
    admission: Admission,
    config: ServerConfig,
    /// Defaults mirrored from the mediator the server was built from.
    deadline: Option<Duration>,
    resolution: ResolutionMode,
    cost_params: CostParams,
    next_session: AtomicU64,
    queries_served: AtomicU64,
}

/// Aggregate serving-layer counters, for dashboards and benchmarks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStats {
    /// Queries completed (successfully or not) across all sessions.
    pub queries_served: u64,
    /// Queries that had to queue at admission, and their total queued
    /// time.
    pub admission_queued: (u64, Duration),
    /// `(hits, misses)` of the shared plan cache.
    pub plan_cache: (u64, u64),
    /// `(calls that queued, total queued time)` of the shared source
    /// pool, when one is configured.
    pub source_pool_queued: Option<(u64, Duration)>,
}

/// A concurrent multi-session front end over one mediator engine.
///
/// Cloning the server is cheap; clones share catalog, plan cache,
/// calibration store, connection pool, and admission slots.  See the
/// crate-level documentation for the full model.
#[derive(Debug, Clone)]
pub struct DiscoServer {
    shared: Arc<ServerShared>,
}

impl DiscoServer {
    /// Builds a server from a configured [`Mediator`]: the catalog is
    /// snapshotted copy-on-write, and the registry, calibration store,
    /// deadline, resolution mode, and cost parameters are shared or
    /// mirrored.  The mediator itself is not consumed — but note that
    /// registrations made on it *after* this call do not reach the
    /// server (use [`DiscoServer::update_catalog`] instead).
    #[must_use]
    pub fn from_mediator(mediator: &Mediator, config: ServerConfig) -> Self {
        DiscoServer {
            shared: Arc::new(ServerShared {
                catalog: CatalogHandle::new(mediator.catalog().clone()),
                registry: mediator.registry().clone(),
                calibration: Arc::clone(mediator.calibration()),
                plan_cache: PlanCache::new(),
                admission: Admission::new(config.max_concurrent),
                config,
                deadline: mediator.deadline(),
                resolution: mediator.resolution(),
                cost_params: mediator.cost_params(),
                next_session: AtomicU64::new(1),
                queries_served: AtomicU64::new(0),
            }),
        }
    }

    /// Opens a session.  Sessions are cheap handles; one per client.
    #[must_use]
    pub fn session(&self) -> Session {
        Session {
            shared: Arc::clone(&self.shared),
            id: self.shared.next_session.fetch_add(1, Ordering::Relaxed),
            deadline: self.shared.deadline,
            row_budget: self.shared.config.row_budget,
        }
    }

    /// Applies a schema update copy-on-write: queries already admitted
    /// keep their snapshot; queries admitted afterwards see the new
    /// catalog (and miss the plan cache, whose entries are keyed by
    /// catalog generation).
    ///
    /// # Errors
    ///
    /// Propagates catalog errors from `mutate`; on error the catalog is
    /// unchanged.
    pub fn update_catalog<T>(
        &self,
        mutate: impl FnOnce(&mut Catalog) -> std::result::Result<T, CatalogError>,
    ) -> Result<T> {
        Ok(self.shared.catalog.update(mutate)?)
    }

    /// The copy-on-write catalog handle (for advanced callers that want
    /// to hold snapshots directly).
    #[must_use]
    pub fn catalog(&self) -> &CatalogHandle {
        &self.shared.catalog
    }

    /// The shared wrapper registry.  It is internally synchronized:
    /// wrappers registered here become visible to every session.
    #[must_use]
    pub fn registry(&self) -> &WrapperRegistry {
        &self.shared.registry
    }

    /// Aggregate serving-layer counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            queries_served: self.shared.queries_served.load(Ordering::Relaxed),
            admission_queued: self.shared.admission.queue_stats(),
            plan_cache: self.shared.plan_cache.stats(),
            source_pool_queued: self
                .shared
                .config
                .source_pool
                .as_ref()
                .map(|pool| pool.queue_stats()),
        }
    }
}

/// One client's handle onto a [`DiscoServer`].
///
/// A session carries per-session defaults (deadline, row budget) that
/// override the server's; every [`Session::query`] takes a fresh catalog
/// snapshot, so sessions observe schema updates between queries but
/// never within one.
#[derive(Debug, Clone)]
pub struct Session {
    shared: Arc<ServerShared>,
    id: u64,
    deadline: Option<Duration>,
    row_budget: Option<usize>,
}

impl Session {
    /// The server-assigned session id (used for round-robin fairness).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Overrides the deadline for this session's queries (`None` waits
    /// for every source).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Overrides the row budget for this session's queries (`None` is
    /// unlimited).
    #[must_use]
    pub fn with_row_budget(mut self, budget: Option<usize>) -> Self {
        self.row_budget = budget;
        self
    }

    /// Processes one OQL query: admission (bounded concurrency,
    /// round-robin across sessions), catalog snapshot, shared plan
    /// cache, then execution with the session's deadline and row budget
    /// and the server's shared connection pool.  Unavailable or
    /// budget-cancelled sources yield a partial [`Answer`] with a
    /// residual query, exactly as [`Mediator::query`] would.
    ///
    /// # Errors
    ///
    /// Returns parse/compile/optimize errors and hard execution errors;
    /// unavailability is not an error.
    pub fn query(&self, query: &str) -> Result<Answer> {
        let _slot = self.shared.admission.admit(self.id);
        let snapshot = self.shared.catalog.snapshot();
        let plan = match self.shared.plan_cache.get(query, snapshot.generation()) {
            Some(plan) => plan,
            None => {
                let optimizer = Optimizer::with_store(
                    self.shared.registry.clone(),
                    Arc::clone(&self.shared.calibration),
                )
                .with_cost_params(self.shared.cost_params);
                let plan = optimizer.optimize_text(query, &snapshot)?;
                self.shared.plan_cache.put(&plan);
                plan
            }
        };
        let mut executor = Executor::new(self.shared.registry.clone())
            .with_deadline(self.deadline)
            .with_resolution(self.shared.resolution)
            .with_threads(self.shared.config.threads)
            .with_calibration(Arc::clone(&self.shared.calibration))
            .with_row_budget(self.row_budget);
        if let Some(pool) = &self.shared.config.source_pool {
            executor = executor.with_source_pool(Arc::clone(pool));
        }
        let answer = executor.execute(&plan.physical, &snapshot)?;
        self.shared.queries_served.fetch_add(1, Ordering::Relaxed);
        Ok(answer)
    }
}
