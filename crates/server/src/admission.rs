//! Admission control with round-robin fairness across sessions.
//!
//! The morsel worker pool is a fixed, shared resource: when N concurrent
//! queries each want every worker, throughput is best served by bounding
//! how many queries *execute* at once and queueing the rest.  Plain FIFO
//! admission lets one chatty session monopolize the server — its next
//! query is always the oldest waiter.  [`Admission`] therefore grants
//! freed slots **round-robin over sessions**: among the sessions with
//! queued queries, the next session after the most recently admitted one
//! (in session-id order, wrapping) goes first, and within a session its
//! queries stay FIFO.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One queued admission request.
#[derive(Debug, Clone, Copy)]
struct Waiter {
    session: u64,
    ticket: u64,
}

#[derive(Debug, Default)]
struct AdmissionState {
    /// Queries currently admitted (executing).
    active: usize,
    /// Queued requests in arrival order (FIFO within a session).
    waiting: Vec<Waiter>,
    /// Tickets granted but not yet claimed by their waiter.
    granted: BTreeSet<u64>,
    /// Monotonic ticket source.
    next_ticket: u64,
    /// The session admitted most recently from the queue; the next grant
    /// goes to the closest session id after it, wrapping around.
    rr_cursor: u64,
}

/// Bounds how many queries execute concurrently, granting freed slots
/// round-robin across sessions.
///
/// `max_concurrent == 0` disables admission control (every query is
/// admitted immediately) — the right setting when the worker pool is not
/// oversubscribed.
#[derive(Debug)]
pub(crate) struct Admission {
    max_concurrent: usize,
    state: Mutex<AdmissionState>,
    freed: Condvar,
    /// Requests that had to queue, and their total queued time.
    queued_requests: AtomicU64,
    queued_wait_us: AtomicU64,
}

impl Admission {
    pub(crate) fn new(max_concurrent: usize) -> Self {
        Admission {
            max_concurrent,
            state: Mutex::new(AdmissionState::default()),
            freed: Condvar::new(),
            queued_requests: AtomicU64::new(0),
            queued_wait_us: AtomicU64::new(0),
        }
    }

    /// `(requests that queued, total queued time)` since construction.
    pub(crate) fn queue_stats(&self) -> (u64, Duration) {
        (
            self.queued_requests.load(Ordering::Relaxed),
            Duration::from_micros(self.queued_wait_us.load(Ordering::Relaxed)),
        )
    }

    /// Blocks until `session`'s query may execute; the returned guard
    /// frees the slot on drop.  Returns `None` when admission control is
    /// disabled.
    pub(crate) fn admit(&self, session: u64) -> Option<AdmissionGuard<'_>> {
        if self.max_concurrent == 0 {
            return None;
        }
        let started = Instant::now();
        let mut state = lock(&self.state);
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.waiting.push(Waiter { session, ticket });
        self.grant_slots(&mut state);
        let mut queued = false;
        while !state.granted.remove(&ticket) {
            if !queued {
                queued = true;
                self.queued_requests.fetch_add(1, Ordering::Relaxed);
            }
            state = self
                .freed
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(state);
        if queued {
            self.queued_wait_us
                .fetch_add(started.elapsed().as_micros() as u64, Ordering::Relaxed);
        }
        Some(AdmissionGuard { admission: self })
    }

    /// Admits queued requests while slots are free: the next session
    /// after `rr_cursor` (wrapping) goes first, FIFO within a session.
    fn grant_slots(&self, state: &mut AdmissionState) {
        let mut granted_any = false;
        while state.active < self.max_concurrent && !state.waiting.is_empty() {
            let cursor = state.rr_cursor;
            // The closest waiting session strictly after the cursor, or
            // the smallest waiting session when none is (wrap-around).
            let after = state
                .waiting
                .iter()
                .filter(|w| w.session > cursor)
                .map(|w| w.session)
                .min();
            let session = after.unwrap_or_else(|| {
                state
                    .waiting
                    .iter()
                    .map(|w| w.session)
                    .min()
                    .expect("waiting is non-empty")
            });
            let index = state
                .waiting
                .iter()
                .enumerate()
                .filter(|(_, w)| w.session == session)
                .min_by_key(|(_, w)| w.ticket)
                .map(|(i, _)| i)
                .expect("session has a waiter");
            let waiter = state.waiting.remove(index);
            state.active += 1;
            state.rr_cursor = waiter.session;
            state.granted.insert(waiter.ticket);
            granted_any = true;
        }
        if granted_any {
            self.freed.notify_all();
        }
    }

    fn release(&self) {
        let mut state = lock(&self.state);
        state.active = state.active.saturating_sub(1);
        self.grant_slots(&mut state);
    }

    /// Number of requests currently queued (test hook).
    #[cfg(test)]
    fn waiting_len(&self) -> usize {
        lock(&self.state).waiting.len()
    }
}

/// RAII guard of one admitted query; dropping it frees the slot and
/// admits the next queued request.
#[derive(Debug)]
pub(crate) struct AdmissionGuard<'a> {
    admission: &'a Admission,
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.admission.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn disabled_admission_never_blocks() {
        let admission = Admission::new(0);
        assert!(admission.admit(1).is_none());
        assert_eq!(admission.queue_stats().0, 0);
    }

    #[test]
    fn slots_bound_concurrency() {
        let admission = Arc::new(Admission::new(2));
        let a = admission.admit(1);
        let b = admission.admit(2);
        assert!(a.is_some() && b.is_some());
        // A third admit would block; verify via the waiting queue from
        // another thread instead of deadlocking this one.
        let worker = {
            let admission = Arc::clone(&admission);
            std::thread::spawn(move || {
                let guard = admission.admit(3);
                assert!(guard.is_some());
            })
        };
        while admission.waiting_len() == 0 {
            std::thread::yield_now();
        }
        drop(a);
        worker.join().unwrap();
        let (queued, _) = admission.queue_stats();
        assert_eq!(queued, 1);
    }

    #[test]
    fn freed_slots_rotate_round_robin_across_sessions() {
        let admission = Arc::new(Admission::new(1));
        let holder = admission.admit(10).expect("first slot");
        let order = Arc::new(Mutex::new(Vec::new()));
        // Enqueue sessions out of id order; 3 first, then 1, then 2.
        let mut workers = Vec::new();
        for session in [3u64, 1, 2] {
            let worker_admission = Arc::clone(&admission);
            let order = Arc::clone(&order);
            workers.push(std::thread::spawn(move || {
                let guard = worker_admission.admit(session).expect("admitted");
                lock(&order).push(session);
                // Hold briefly so releases arrive one at a time.
                std::thread::sleep(Duration::from_millis(2));
                drop(guard);
            }));
            // Deterministic queue order: wait until this waiter is queued.
            while admission.waiting_len() < order_len_target(&workers) {
                std::thread::yield_now();
            }
        }
        drop(holder);
        for worker in workers {
            worker.join().unwrap();
        }
        // Cursor sits at 10 → wraps to the smallest session, then ascends.
        assert_eq!(*lock(&order), vec![1, 2, 3]);
    }

    fn order_len_target(workers: &[std::thread::JoinHandle<()>]) -> usize {
        workers.len()
    }
}
