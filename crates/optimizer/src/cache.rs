//! Plan caching with extent-update invalidation (§3.3).
//!
//! "If query optimization plans are cached, the mediator must monitor
//! updates to extents, and modify or recompute plans that are affected by
//! updates to the extents understood by the mediator."  The catalog bumps
//! a generation counter on every schema/extent change; cached plans carry
//! the generation they were built against and are discarded when it no
//! longer matches.

use std::collections::BTreeMap;

use parking_lot::RwLock;

use crate::planner::Plan;

/// A cache of optimized plans keyed by query text.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: RwLock<BTreeMap<String, Plan>>,
    hits: RwLock<u64>,
    misses: RwLock<u64>,
}

impl PlanCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Looks up a cached plan for `query`, returning it only when it was
    /// built against the current catalog generation; stale entries are
    /// removed.
    #[must_use]
    pub fn get(&self, query: &str, current_generation: u64) -> Option<Plan> {
        let cached = self.plans.read().get(query).cloned();
        match cached {
            Some(plan) if plan.catalog_generation == current_generation => {
                *self.hits.write() += 1;
                Some(plan)
            }
            Some(_) => {
                // Stale: an extent was added or removed since the plan was built.
                self.plans.write().remove(query);
                *self.misses.write() += 1;
                None
            }
            None => {
                *self.misses.write() += 1;
                None
            }
        }
    }

    /// Stores a plan under its query text (no-op for plans without text).
    pub fn put(&self, plan: &Plan) {
        if let Some(query) = &plan.query {
            self.plans.write().insert(query.clone(), plan.clone());
        }
    }

    /// Number of cached plans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.plans.read().len()
    }

    /// Returns `true` when the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.plans.read().is_empty()
    }

    /// `(hits, misses)` counters.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (*self.hits.read(), *self.misses.read())
    }

    /// Clears the cache.
    pub fn clear(&self) {
        self.plans.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::Optimizer;
    use disco_algebra::CapabilitySet;
    use disco_catalog::{
        Attribute, Catalog, InterfaceDef, MetaExtent, Repository, TypeRef, WrapperDef,
    };
    use std::collections::BTreeMap;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.define_interface(
            InterfaceDef::new("Person")
                .with_extent_name("person")
                .with_attribute(Attribute::new("name", TypeRef::String))
                .with_attribute(Attribute::new("salary", TypeRef::Int)),
        )
        .unwrap();
        c.add_wrapper(WrapperDef::new("w0", "relational")).unwrap();
        c.add_repository(Repository::new("r0")).unwrap();
        c.add_extent(MetaExtent::new("person0", "Person", "w0", "r0"))
            .unwrap();
        c
    }

    #[test]
    fn cache_hits_for_same_generation_and_invalidates_on_extent_updates() {
        let mut cat = catalog();
        let optimizer = Optimizer::new(BTreeMap::<String, CapabilitySet>::new());
        let cache = PlanCache::new();
        let query = "select x.name from x in person";
        let plan = optimizer.optimize_text(query, &cat).unwrap();
        cache.put(&plan);
        assert!(cache.get(query, cat.generation()).is_some());
        assert_eq!(cache.stats().0, 1);

        // Adding a new person source must invalidate the cached plan — the
        // implicit `person` extent now covers one more source.
        cat.add_repository(Repository::new("r9")).unwrap();
        cat.add_extent(MetaExtent::new("person9", "Person", "w0", "r9"))
            .unwrap();
        assert!(cache.get(query, cat.generation()).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.stats().1, 1);
    }

    #[test]
    fn unknown_queries_miss() {
        let cache = PlanCache::new();
        assert!(cache.get("select 1", 0).is_none());
        assert_eq!(cache.stats(), (0, 1));
        assert_eq!(cache.len(), 0);
        cache.clear();
    }
}
