//! The self-calibrating cost store (§3.3).
//!
//! "DISCO solves this problem by recording previous `exec` calls to a data
//! source and the actual cost of the call.  When the exec call finishes,
//! the arguments of the call, the time taken and the amount of data
//! generated is recorded.  A new call is compared to the previous calls."
//!
//! Three lookup outcomes, exactly as in the paper:
//!
//! * **exact match** — a previous call with identical arguments; a
//!   smoothing function combines the recorded observations,
//! * **close match** — a previous call with the same structure but
//!   different constants (found through the plan fingerprint, a
//!   predicate-based matching in the spirit of the paper's reference to
//!   predicate-based caching); the smoothed observations are used,
//! * **default** — no information: "a default time cost of 0 and a data
//!   cost of 1 is used", which biases the optimizer towards pushing the
//!   maximum amount of computation to the data source.

use std::collections::BTreeMap;

use disco_algebra::LogicalExpr;
use parking_lot::RwLock;

/// How many exactly-matching observations are kept per call shape
/// ("only a fixed number of exactly matching calls are recorded").
const MAX_OBSERVATIONS: usize = 8;

/// One recorded `exec` call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Wall-clock (or simulated) time of the call, in milliseconds.
    pub time_ms: f64,
    /// Number of rows the call returned.
    pub rows: f64,
}

/// The source of a cost estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchKind {
    /// An exactly matching previous call was found.
    Exact,
    /// A structurally matching call (constants differ) was found.
    Close,
    /// No matching call; the paper's defaults were used.
    Default,
}

/// A cost estimate for an `exec` call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Estimated time in milliseconds.
    pub time_ms: f64,
    /// Estimated rows returned.
    pub rows: f64,
    /// How the estimate was obtained.
    pub source: MatchKind,
}

impl CostEstimate {
    /// The paper's default estimate: time 0, data 1.
    #[must_use]
    pub fn default_estimate() -> Self {
        CostEstimate {
            time_ms: 0.0,
            rows: 1.0,
            source: MatchKind::Default,
        }
    }
}

/// Per-repository health tracking: the best (lowest) per-row latency
/// ever observed is the repository's baseline; each call's latency in
/// excess of that baseline feeds an exponential moving average.  A
/// chronically degraded source accumulates a large smoothed excess; a
/// recovered source decays it by half per healthy observation.
#[derive(Debug, Clone, Copy)]
struct Degradation {
    /// Fastest observed per-row latency (ms/row) — the healthy baseline.
    best_per_row_ms: f64,
    /// Smoothed per-call latency excess over the baseline, in ms.
    excess_ms: f64,
}

#[derive(Debug, Default)]
struct StoreInner {
    /// Exact observations keyed by `(repository, plan text)`.
    exact: BTreeMap<(String, String), Vec<Observation>>,
    /// Close-match observations keyed by `(repository, plan fingerprint)`.
    close: BTreeMap<(String, String), Vec<Observation>>,
    /// Per-repository degradation state, keyed by repository name.
    degraded: BTreeMap<String, Degradation>,
}

/// Thread-safe store of recorded `exec` calls with smoothing.
#[derive(Debug, Default)]
pub struct CalibrationStore {
    inner: RwLock<StoreInner>,
}

impl CalibrationStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        CalibrationStore::default()
    }

    /// Records a finished `exec` call: the repository, the shipped
    /// expression, the time taken and the rows returned.
    pub fn record(&self, repository: &str, expr: &LogicalExpr, time_ms: f64, rows: usize) {
        #[allow(clippy::cast_precision_loss)]
        let obs = Observation {
            time_ms,
            rows: rows as f64,
        };
        let exact_key = (repository.to_owned(), expr.to_string());
        let close_key = (repository.to_owned(), expr.fingerprint());
        let mut inner = self.inner.write();
        push_capped(&mut inner.exact, exact_key, obs);
        push_capped(&mut inner.close, close_key, obs);
    }

    /// Feeds one observed source call into the repository's degradation
    /// tracker: `latency_ms` of wall/simulated latency (including any
    /// time the mediator spent blocked waiting on the source's chunks)
    /// for `rows` rows returned.
    ///
    /// The lowest per-row latency ever seen is the repository's healthy
    /// baseline; the excess of each call over that baseline is smoothed
    /// (EWMA) into a penalty that [`CalibrationStore::estimate`] adds to
    /// every estimate against the repository — so repeated queries
    /// re-plan around a chronically degraded source, and the penalty
    /// halves with each healthy call once the source recovers.
    pub fn note_source_wait(&self, repository: &str, latency_ms: f64, rows: usize) {
        if !latency_ms.is_finite() || latency_ms < 0.0 {
            return;
        }
        #[allow(clippy::cast_precision_loss)]
        let per_row = latency_ms / rows.max(1) as f64;
        let mut inner = self.inner.write();
        let entry = inner
            .degraded
            .entry(repository.to_owned())
            .or_insert(Degradation {
                best_per_row_ms: per_row,
                excess_ms: 0.0,
            });
        if per_row < entry.best_per_row_ms {
            entry.best_per_row_ms = per_row;
        }
        #[allow(clippy::cast_precision_loss)]
        let excess = (per_row - entry.best_per_row_ms) * rows.max(1) as f64;
        let alpha = 0.5;
        entry.excess_ms = alpha * excess + (1.0 - alpha) * entry.excess_ms;
    }

    /// The smoothed latency excess (ms) of `repository` over its healthy
    /// baseline — `0.0` for an untracked or healthy repository.
    #[must_use]
    pub fn degradation_ms(&self, repository: &str) -> f64 {
        self.inner
            .read()
            .degraded
            .get(repository)
            .map_or(0.0, |d| d.excess_ms)
    }

    /// Estimates the cost of an `exec` call against `repository` shipping
    /// `expr`, using exact → close → default lookup.  The repository's
    /// smoothed degradation penalty ([`CalibrationStore::
    /// note_source_wait`]) is added to the time estimate of every match
    /// kind, so a chronically slow source costs more than its recorded
    /// call shapes alone suggest.
    #[must_use]
    pub fn estimate(&self, repository: &str, expr: &LogicalExpr) -> CostEstimate {
        let inner = self.inner.read();
        let penalty = inner.degraded.get(repository).map_or(0.0, |d| d.excess_ms);
        let exact_key = (repository.to_owned(), expr.to_string());
        if let Some(observations) = inner.exact.get(&exact_key) {
            if !observations.is_empty() {
                let (time_ms, rows) = smooth(observations);
                return CostEstimate {
                    time_ms: time_ms + penalty,
                    rows,
                    source: MatchKind::Exact,
                };
            }
        }
        let close_key = (repository.to_owned(), expr.fingerprint());
        if let Some(observations) = inner.close.get(&close_key) {
            if !observations.is_empty() {
                let (time_ms, rows) = smooth(observations);
                return CostEstimate {
                    time_ms: time_ms + penalty,
                    rows,
                    source: MatchKind::Close,
                };
            }
        }
        let mut estimate = CostEstimate::default_estimate();
        estimate.time_ms += penalty;
        estimate
    }

    /// Number of distinct exact call shapes recorded.
    #[must_use]
    pub fn exact_shapes(&self) -> usize {
        self.inner.read().exact.len()
    }

    /// Number of distinct close-match (fingerprint) shapes recorded.
    #[must_use]
    pub fn close_shapes(&self) -> usize {
        self.inner.read().close.len()
    }

    /// Total number of stored observations (exact side).
    #[must_use]
    pub fn observation_count(&self) -> usize {
        self.inner.read().exact.values().map(Vec::len).sum()
    }

    /// Clears every recorded observation and degradation state.
    pub fn clear(&self) {
        let mut inner = self.inner.write();
        inner.exact.clear();
        inner.close.clear();
        inner.degraded.clear();
    }
}

/// Appends an observation, keeping only the most recent
/// [`MAX_OBSERVATIONS`] entries per key.
fn push_capped(
    map: &mut BTreeMap<(String, String), Vec<Observation>>,
    key: (String, String),
    obs: Observation,
) {
    let entry = map.entry(key).or_default();
    entry.push(obs);
    if entry.len() > MAX_OBSERVATIONS {
        let excess = entry.len() - MAX_OBSERVATIONS;
        entry.drain(0..excess);
    }
}

/// The smoothing function: an exponentially weighted average favouring the
/// most recent observations.
fn smooth(observations: &[Observation]) -> (f64, f64) {
    let alpha = 0.5;
    let mut time = observations[0].time_ms;
    let mut rows = observations[0].rows;
    for obs in &observations[1..] {
        time = alpha * obs.time_ms + (1.0 - alpha) * time;
        rows = alpha * obs.rows + (1.0 - alpha) * rows;
    }
    (time, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_algebra::{ScalarExpr, ScalarOp};

    fn filter_plan(threshold: i64) -> LogicalExpr {
        LogicalExpr::get("person0").filter(ScalarExpr::binary(
            ScalarOp::Gt,
            ScalarExpr::attr("salary"),
            ScalarExpr::constant(threshold),
        ))
    }

    #[test]
    fn defaults_match_the_paper() {
        let store = CalibrationStore::new();
        let est = store.estimate("r0", &filter_plan(10));
        assert_eq!(est.source, MatchKind::Default);
        assert_eq!(est.time_ms, 0.0);
        assert_eq!(est.rows, 1.0);
    }

    #[test]
    fn exact_match_after_recording_same_call() {
        let store = CalibrationStore::new();
        store.record("r0", &filter_plan(10), 12.0, 40);
        let est = store.estimate("r0", &filter_plan(10));
        assert_eq!(est.source, MatchKind::Exact);
        assert!((est.time_ms - 12.0).abs() < 1e-9);
        assert!((est.rows - 40.0).abs() < 1e-9);
    }

    #[test]
    fn close_match_when_only_constants_differ() {
        let store = CalibrationStore::new();
        store.record("r0", &filter_plan(10), 12.0, 40);
        let est = store.estimate("r0", &filter_plan(99));
        assert_eq!(est.source, MatchKind::Close);
        assert!(est.time_ms > 0.0);
    }

    #[test]
    fn different_repository_or_structure_falls_back_to_default() {
        let store = CalibrationStore::new();
        store.record("r0", &filter_plan(10), 12.0, 40);
        assert_eq!(
            store.estimate("r1", &filter_plan(10)).source,
            MatchKind::Default
        );
        let other = LogicalExpr::get("person0").project(["name"]);
        assert_eq!(store.estimate("r0", &other).source, MatchKind::Default);
    }

    #[test]
    fn smoothing_tracks_recent_observations_and_caps_history() {
        let store = CalibrationStore::new();
        for i in 0..20 {
            store.record("r0", &filter_plan(10), f64::from(i), 10);
        }
        assert_eq!(store.observation_count(), MAX_OBSERVATIONS);
        let est = store.estimate("r0", &filter_plan(10));
        // The estimate is pulled towards the most recent (larger) values.
        assert!(est.time_ms > 15.0, "estimate {est:?}");
        assert_eq!(store.exact_shapes(), 1);
        assert_eq!(store.close_shapes(), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let store = CalibrationStore::new();
        store.record("r0", &filter_plan(10), 5.0, 3);
        store.note_source_wait("r0", 100.0, 1);
        store.note_source_wait("r0", 900.0, 1);
        store.clear();
        assert_eq!(store.exact_shapes(), 0);
        assert_eq!(store.degradation_ms("r0"), 0.0);
        assert_eq!(
            store.estimate("r0", &filter_plan(10)).source,
            MatchKind::Default
        );
    }

    #[test]
    fn degradation_penalty_raises_estimates_for_slow_sources() {
        let store = CalibrationStore::new();
        store.record("r0", &filter_plan(10), 12.0, 40);
        // Healthy baseline: 1 ms/row.  The source then degrades ~10x.
        store.note_source_wait("r0", 40.0, 40);
        assert_eq!(store.degradation_ms("r0"), 0.0, "baseline is healthy");
        store.note_source_wait("r0", 400.0, 40);
        let penalty = store.degradation_ms("r0");
        assert!((penalty - 180.0).abs() < 1e-9, "penalty {penalty}");
        let est = store.estimate("r0", &filter_plan(10));
        assert_eq!(est.source, MatchKind::Exact);
        assert!((est.time_ms - (12.0 + penalty)).abs() < 1e-9);
        // Other repositories are unaffected, including their defaults.
        assert_eq!(store.estimate("r1", &filter_plan(10)).time_ms, 0.0);
        // The default estimate for the degraded repository also carries
        // the penalty, steering the optimizer away even without history.
        let other = LogicalExpr::get("person9").project(["name"]);
        let default = store.estimate("r0", &other);
        assert_eq!(default.source, MatchKind::Default);
        assert!((default.time_ms - penalty).abs() < 1e-9);
    }

    #[test]
    fn degradation_penalty_decays_once_the_source_recovers() {
        let store = CalibrationStore::new();
        store.note_source_wait("r0", 10.0, 10);
        store.note_source_wait("r0", 100.0, 10);
        let degraded = store.degradation_ms("r0");
        assert!(degraded > 0.0);
        for _ in 0..8 {
            store.note_source_wait("r0", 10.0, 10);
        }
        let recovered = store.degradation_ms("r0");
        assert!(
            recovered < degraded / 100.0,
            "penalty should decay: {degraded} -> {recovered}"
        );
    }
}
