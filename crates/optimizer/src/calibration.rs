//! The self-calibrating cost store (§3.3).
//!
//! "DISCO solves this problem by recording previous `exec` calls to a data
//! source and the actual cost of the call.  When the exec call finishes,
//! the arguments of the call, the time taken and the amount of data
//! generated is recorded.  A new call is compared to the previous calls."
//!
//! Three lookup outcomes, exactly as in the paper:
//!
//! * **exact match** — a previous call with identical arguments; a
//!   smoothing function combines the recorded observations,
//! * **close match** — a previous call with the same structure but
//!   different constants (found through the plan fingerprint, a
//!   predicate-based matching in the spirit of the paper's reference to
//!   predicate-based caching); the smoothed observations are used,
//! * **default** — no information: "a default time cost of 0 and a data
//!   cost of 1 is used", which biases the optimizer towards pushing the
//!   maximum amount of computation to the data source.

use std::collections::BTreeMap;

use disco_algebra::LogicalExpr;
use parking_lot::RwLock;

/// How many exactly-matching observations are kept per call shape
/// ("only a fixed number of exactly matching calls are recorded").
const MAX_OBSERVATIONS: usize = 8;

/// One recorded `exec` call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Wall-clock (or simulated) time of the call, in milliseconds.
    pub time_ms: f64,
    /// Number of rows the call returned.
    pub rows: f64,
}

/// The source of a cost estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchKind {
    /// An exactly matching previous call was found.
    Exact,
    /// A structurally matching call (constants differ) was found.
    Close,
    /// No matching call; the paper's defaults were used.
    Default,
}

/// A cost estimate for an `exec` call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Estimated time in milliseconds.
    pub time_ms: f64,
    /// Estimated rows returned.
    pub rows: f64,
    /// How the estimate was obtained.
    pub source: MatchKind,
}

impl CostEstimate {
    /// The paper's default estimate: time 0, data 1.
    #[must_use]
    pub fn default_estimate() -> Self {
        CostEstimate {
            time_ms: 0.0,
            rows: 1.0,
            source: MatchKind::Default,
        }
    }
}

#[derive(Debug, Default)]
struct StoreInner {
    /// Exact observations keyed by `(repository, plan text)`.
    exact: BTreeMap<(String, String), Vec<Observation>>,
    /// Close-match observations keyed by `(repository, plan fingerprint)`.
    close: BTreeMap<(String, String), Vec<Observation>>,
}

/// Thread-safe store of recorded `exec` calls with smoothing.
#[derive(Debug, Default)]
pub struct CalibrationStore {
    inner: RwLock<StoreInner>,
}

impl CalibrationStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        CalibrationStore::default()
    }

    /// Records a finished `exec` call: the repository, the shipped
    /// expression, the time taken and the rows returned.
    pub fn record(&self, repository: &str, expr: &LogicalExpr, time_ms: f64, rows: usize) {
        #[allow(clippy::cast_precision_loss)]
        let obs = Observation {
            time_ms,
            rows: rows as f64,
        };
        let exact_key = (repository.to_owned(), expr.to_string());
        let close_key = (repository.to_owned(), expr.fingerprint());
        let mut inner = self.inner.write();
        push_capped(&mut inner.exact, exact_key, obs);
        push_capped(&mut inner.close, close_key, obs);
    }

    /// Estimates the cost of an `exec` call against `repository` shipping
    /// `expr`, using exact → close → default lookup.
    #[must_use]
    pub fn estimate(&self, repository: &str, expr: &LogicalExpr) -> CostEstimate {
        let inner = self.inner.read();
        let exact_key = (repository.to_owned(), expr.to_string());
        if let Some(observations) = inner.exact.get(&exact_key) {
            if !observations.is_empty() {
                let (time_ms, rows) = smooth(observations);
                return CostEstimate {
                    time_ms,
                    rows,
                    source: MatchKind::Exact,
                };
            }
        }
        let close_key = (repository.to_owned(), expr.fingerprint());
        if let Some(observations) = inner.close.get(&close_key) {
            if !observations.is_empty() {
                let (time_ms, rows) = smooth(observations);
                return CostEstimate {
                    time_ms,
                    rows,
                    source: MatchKind::Close,
                };
            }
        }
        CostEstimate::default_estimate()
    }

    /// Number of distinct exact call shapes recorded.
    #[must_use]
    pub fn exact_shapes(&self) -> usize {
        self.inner.read().exact.len()
    }

    /// Number of distinct close-match (fingerprint) shapes recorded.
    #[must_use]
    pub fn close_shapes(&self) -> usize {
        self.inner.read().close.len()
    }

    /// Total number of stored observations (exact side).
    #[must_use]
    pub fn observation_count(&self) -> usize {
        self.inner.read().exact.values().map(Vec::len).sum()
    }

    /// Clears every recorded observation.
    pub fn clear(&self) {
        let mut inner = self.inner.write();
        inner.exact.clear();
        inner.close.clear();
    }
}

/// Appends an observation, keeping only the most recent
/// [`MAX_OBSERVATIONS`] entries per key.
fn push_capped(
    map: &mut BTreeMap<(String, String), Vec<Observation>>,
    key: (String, String),
    obs: Observation,
) {
    let entry = map.entry(key).or_default();
    entry.push(obs);
    if entry.len() > MAX_OBSERVATIONS {
        let excess = entry.len() - MAX_OBSERVATIONS;
        entry.drain(0..excess);
    }
}

/// The smoothing function: an exponentially weighted average favouring the
/// most recent observations.
fn smooth(observations: &[Observation]) -> (f64, f64) {
    let alpha = 0.5;
    let mut time = observations[0].time_ms;
    let mut rows = observations[0].rows;
    for obs in &observations[1..] {
        time = alpha * obs.time_ms + (1.0 - alpha) * time;
        rows = alpha * obs.rows + (1.0 - alpha) * rows;
    }
    (time, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_algebra::{ScalarExpr, ScalarOp};

    fn filter_plan(threshold: i64) -> LogicalExpr {
        LogicalExpr::get("person0").filter(ScalarExpr::binary(
            ScalarOp::Gt,
            ScalarExpr::attr("salary"),
            ScalarExpr::constant(threshold),
        ))
    }

    #[test]
    fn defaults_match_the_paper() {
        let store = CalibrationStore::new();
        let est = store.estimate("r0", &filter_plan(10));
        assert_eq!(est.source, MatchKind::Default);
        assert_eq!(est.time_ms, 0.0);
        assert_eq!(est.rows, 1.0);
    }

    #[test]
    fn exact_match_after_recording_same_call() {
        let store = CalibrationStore::new();
        store.record("r0", &filter_plan(10), 12.0, 40);
        let est = store.estimate("r0", &filter_plan(10));
        assert_eq!(est.source, MatchKind::Exact);
        assert!((est.time_ms - 12.0).abs() < 1e-9);
        assert!((est.rows - 40.0).abs() < 1e-9);
    }

    #[test]
    fn close_match_when_only_constants_differ() {
        let store = CalibrationStore::new();
        store.record("r0", &filter_plan(10), 12.0, 40);
        let est = store.estimate("r0", &filter_plan(99));
        assert_eq!(est.source, MatchKind::Close);
        assert!(est.time_ms > 0.0);
    }

    #[test]
    fn different_repository_or_structure_falls_back_to_default() {
        let store = CalibrationStore::new();
        store.record("r0", &filter_plan(10), 12.0, 40);
        assert_eq!(
            store.estimate("r1", &filter_plan(10)).source,
            MatchKind::Default
        );
        let other = LogicalExpr::get("person0").project(["name"]);
        assert_eq!(store.estimate("r0", &other).source, MatchKind::Default);
    }

    #[test]
    fn smoothing_tracks_recent_observations_and_caps_history() {
        let store = CalibrationStore::new();
        for i in 0..20 {
            store.record("r0", &filter_plan(10), f64::from(i), 10);
        }
        assert_eq!(store.observation_count(), MAX_OBSERVATIONS);
        let est = store.estimate("r0", &filter_plan(10));
        // The estimate is pulled towards the most recent (larger) values.
        assert!(est.time_ms > 15.0, "estimate {est:?}");
        assert_eq!(store.exact_shapes(), 1);
        assert_eq!(store.close_shapes(), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let store = CalibrationStore::new();
        store.record("r0", &filter_plan(10), 5.0, 3);
        store.clear();
        assert_eq!(store.exact_shapes(), 0);
        assert_eq!(
            store.estimate("r0", &filter_plan(10)).source,
            MatchKind::Default
        );
    }
}
