use std::fmt;

/// Errors produced during query compilation and optimization.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizerError {
    /// A name in the query could not be resolved to an extent, view or
    /// interface.
    UnresolvedCollection(String),
    /// The query uses a construct the compiler does not support.
    Unsupported(String),
    /// A range variable was referenced but never bound in a `from` clause.
    UnboundVariable(String),
    /// An error from the catalog.
    Catalog(disco_catalog::CatalogError),
    /// An error from the OQL front end.
    Oql(disco_oql::OqlError),
    /// An error from the algebra layer.
    Algebra(disco_algebra::AlgebraError),
}

impl fmt::Display for OptimizerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizerError::UnresolvedCollection(name) => {
                write!(f, "unresolved collection in from clause: {name}")
            }
            OptimizerError::Unsupported(msg) => write!(f, "unsupported query construct: {msg}"),
            OptimizerError::UnboundVariable(v) => write!(f, "unbound range variable: {v}"),
            OptimizerError::Catalog(err) => write!(f, "catalog error: {err}"),
            OptimizerError::Oql(err) => write!(f, "query error: {err}"),
            OptimizerError::Algebra(err) => write!(f, "algebra error: {err}"),
        }
    }
}

impl std::error::Error for OptimizerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OptimizerError::Catalog(err) => Some(err),
            OptimizerError::Oql(err) => Some(err),
            OptimizerError::Algebra(err) => Some(err),
            _ => None,
        }
    }
}

impl From<disco_catalog::CatalogError> for OptimizerError {
    fn from(err: disco_catalog::CatalogError) -> Self {
        OptimizerError::Catalog(err)
    }
}

impl From<disco_oql::OqlError> for OptimizerError {
    fn from(err: disco_oql::OqlError) -> Self {
        OptimizerError::Oql(err)
    }
}

impl From<disco_algebra::AlgebraError> for OptimizerError {
    fn from(err: disco_algebra::AlgebraError) -> Self {
        OptimizerError::Algebra(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert_eq!(
            OptimizerError::UnresolvedCollection("person9".into()).to_string(),
            "unresolved collection in from clause: person9"
        );
        let e: OptimizerError = disco_catalog::CatalogError::UnknownExtent("x".into()).into();
        assert!(matches!(e, OptimizerError::Catalog(_)));
        let e: OptimizerError = disco_algebra::AlgebraError::DivisionByZero.into();
        assert!(matches!(e, OptimizerError::Algebra(_)));
    }
}
