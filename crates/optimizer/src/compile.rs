//! Compilation of (resolved) OQL expressions into the logical algebra.
//!
//! "The optimizer first accepts queries written in the declarative OQL and
//! transforms the query into an expression on an algebraic machine" (§3.1).
//! The compiler produces a *canonical* plan: one `submit(get)` per data
//! source, wrapped in `bind` nodes for the range variables, mediator-side
//! joins for multi-variable `from` clauses, a filter for the `where`
//! clause, and a generalized projection for the `select` clause.  The
//! optimizer's transformation rules then normalize and push work towards
//! the wrappers.

use disco_catalog::{Catalog, MetaExtent, NameBinding};
use disco_oql::ast::{Expr as OqlExpr, FromBinding, SelectExpr};
use disco_oql::parse_query;
use disco_oql::resolve::resolve_query;

use disco_algebra::{agg_from_oql, data_of, scalar_op_from_oql, LogicalExpr, ScalarExpr};

use crate::{OptimizerError, Result};

/// Compiles OQL text into a canonical logical plan: parses, expands views
/// and implicit extents against the catalog, then compiles.
///
/// # Errors
///
/// Returns parse errors, unresolved-collection errors and unsupported
/// construct errors.
pub fn compile_text(query: &str, catalog: &Catalog) -> Result<LogicalExpr> {
    let ast = parse_query(query)?;
    compile_query(&ast, catalog)
}

/// Compiles a parsed OQL expression (expanding views and implicit extents
/// first).
///
/// # Errors
///
/// See [`compile_text`].
pub fn compile_query(ast: &OqlExpr, catalog: &Catalog) -> Result<LogicalExpr> {
    let resolved = resolve_query(ast, catalog)?;
    let mut compiler = Compiler {
        catalog,
        bound_vars: Vec::new(),
    };
    compiler.compile_collection(&resolved)
}

struct Compiler<'a> {
    catalog: &'a Catalog,
    /// Variables bound by enclosing selects (for correlated sub-queries).
    bound_vars: Vec<String>,
}

impl Compiler<'_> {
    /// Compiles an expression appearing in *collection position* (the whole
    /// query, a `from` collection, an argument of `union`/`flatten`).
    fn compile_collection(&mut self, expr: &OqlExpr) -> Result<LogicalExpr> {
        match expr {
            OqlExpr::Select(sel) => self.compile_select(sel),
            OqlExpr::Union(items) => {
                let compiled = items
                    .iter()
                    .map(|i| self.compile_collection(i))
                    .collect::<Result<Vec<_>>>()?;
                Ok(LogicalExpr::Union(compiled))
            }
            OqlExpr::BagConstruct(items) => {
                // A bag of literals is data; a bag of sub-queries is a union
                // of their results (the §2.3 `personnew` view).
                if items.iter().all(OqlExpr::is_data) {
                    let values = items
                        .iter()
                        .map(literal_value)
                        .collect::<Result<Vec<_>>>()?;
                    Ok(LogicalExpr::Data(values.into_iter().collect()))
                } else {
                    let compiled = items
                        .iter()
                        .map(|i| self.compile_collection(i))
                        .collect::<Result<Vec<_>>>()?;
                    Ok(LogicalExpr::Union(compiled))
                }
            }
            OqlExpr::ListConstruct(items) => {
                let values = items
                    .iter()
                    .map(literal_value)
                    .collect::<Result<Vec<_>>>()?;
                Ok(LogicalExpr::Data(values.into_iter().collect()))
            }
            OqlExpr::Flatten(inner) => Ok(LogicalExpr::Flatten(Box::new(
                self.compile_collection(inner)?,
            ))),
            OqlExpr::Ident(name) => self.compile_named_collection(name),
            OqlExpr::Literal(value) => Ok(data_of([value.clone()])),
            OqlExpr::Aggregate(func, inner) => Ok(LogicalExpr::Aggregate {
                func: agg_from_oql(*func),
                input: Box::new(self.compile_collection(inner)?),
            }),
            other => Err(OptimizerError::Unsupported(format!(
                "expression in collection position: {other:?}"
            ))),
        }
    }

    /// Compiles a named collection: a registered extent becomes
    /// `submit(repository, get(extent))`.
    fn compile_named_collection(&mut self, name: &str) -> Result<LogicalExpr> {
        // Range variables of enclosing selects may be used as collections in
        // correlated sub-queries only through path expressions, which are
        // not collections; a bare variable is unsupported.
        match self.catalog.resolve(name) {
            Ok(NameBinding::Extent(extent)) => Ok(submit_of(&extent)),
            Ok(NameBinding::InterfaceExtent { extents, .. })
            | Ok(NameBinding::RecursiveExtent { extents, .. }) => {
                let submits: Vec<LogicalExpr> = extents.iter().map(submit_of).collect();
                Ok(match submits.len() {
                    0 => LogicalExpr::Data(disco_value::Bag::new()),
                    1 => submits.into_iter().next().expect("one element"),
                    _ => LogicalExpr::Union(submits),
                })
            }
            Ok(NameBinding::View(_)) | Err(_) => {
                Err(OptimizerError::UnresolvedCollection(name.to_owned()))
            }
        }
    }

    fn compile_select(&mut self, sel: &SelectExpr) -> Result<LogicalExpr> {
        if sel.bindings.is_empty() {
            return Err(OptimizerError::Unsupported(
                "select without a from clause".into(),
            ));
        }
        // Compile each binding into an environment-row producing plan.
        let mut plans: Vec<(String, LogicalExpr)> = Vec::new();
        for FromBinding { var, collection } in &sel.bindings {
            let source_plan = self.compile_collection(collection)?;
            plans.push((var.clone(), source_plan));
        }
        let newly_bound: Vec<String> = plans.iter().map(|(v, _)| v.clone()).collect();
        self.bound_vars.extend(newly_bound.iter().cloned());

        // Narrow each source to the attributes the query actually uses,
        // when they can be determined (projection pushdown opportunity).
        let needed = needed_attributes(sel);
        let mut bound_plans: Vec<LogicalExpr> = Vec::new();
        for (var, plan) in plans {
            let narrowed = match needed.iter().find(|(v, _)| *v == var) {
                Some((_, Some(attrs))) if !attrs.is_empty() && supports_narrowing(&plan) => {
                    insert_projection(plan, attrs)
                }
                _ => plan,
            };
            bound_plans.push(LogicalExpr::Bind {
                var,
                input: Box::new(narrowed),
            });
        }

        // Combine bindings with mediator joins (left-deep).
        let where_scalar = sel
            .where_clause
            .as_ref()
            .map(|w| self.compile_scalar(w))
            .transpose()?;
        let mut iter = bound_plans.into_iter();
        let first = iter.next().expect("at least one binding");
        let combined = if sel.bindings.len() == 1 {
            match where_scalar {
                Some(pred) => first.filter(pred),
                None => first,
            }
        } else {
            let mut joined = first;
            let mut remaining = iter.peekable();
            while let Some(next) = remaining.next() {
                let is_last = remaining.peek().is_none();
                joined = LogicalExpr::Join {
                    left: Box::new(joined),
                    right: Box::new(next),
                    // Attach the where clause to the outermost join so the
                    // implementation rules can extract equi-join keys.
                    predicate: if is_last { where_scalar.clone() } else { None },
                };
            }
            joined
        };

        let projection = self.compile_scalar(&sel.projection)?;
        let mut result = combined.map_project(projection);
        if sel.distinct {
            result = LogicalExpr::Distinct(Box::new(result));
        }
        for _ in &newly_bound {
            self.bound_vars.pop();
        }
        Ok(result)
    }

    /// Compiles a scalar (projection / predicate) expression.
    fn compile_scalar(&mut self, expr: &OqlExpr) -> Result<ScalarExpr> {
        match expr {
            OqlExpr::Literal(v) => Ok(ScalarExpr::Const(v.clone())),
            OqlExpr::Ident(name) => {
                if self.bound_vars.contains(name) {
                    Ok(ScalarExpr::Var(name.clone()))
                } else {
                    // An unbound identifier in scalar position is treated as
                    // a symbolic constant (e.g. `x.interface = Person` in the
                    // meta-extent query); it compares by name.
                    Ok(ScalarExpr::Const(disco_value::Value::from(name.clone())))
                }
            }
            OqlExpr::Path(base, field) => {
                let base = self.compile_scalar(base)?;
                Ok(ScalarExpr::Field(Box::new(base), field.clone()))
            }
            OqlExpr::Binary { op, left, right } => Ok(ScalarExpr::Binary {
                op: scalar_op_from_oql(*op),
                left: Box::new(self.compile_scalar(left)?),
                right: Box::new(self.compile_scalar(right)?),
            }),
            OqlExpr::Not(inner) => Ok(ScalarExpr::Not(Box::new(self.compile_scalar(inner)?))),
            OqlExpr::StructConstruct(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for (name, e) in fields {
                    out.push((name.clone().into(), self.compile_scalar(e)?));
                }
                Ok(ScalarExpr::StructLit(out))
            }
            OqlExpr::Aggregate(func, inner) => {
                // A correlated aggregate sub-query: compile the inner
                // collection with the outer variables still visible.
                let plan = self.compile_correlated(inner)?;
                Ok(ScalarExpr::Agg(agg_from_oql(*func), Box::new(plan)))
            }
            OqlExpr::Call(name, args) => {
                let mut out = Vec::with_capacity(args.len());
                for a in args {
                    out.push(self.compile_scalar(a)?);
                }
                Ok(ScalarExpr::Call(name.clone(), out))
            }
            OqlExpr::Select(_)
            | OqlExpr::Union(_)
            | OqlExpr::BagConstruct(_)
            | OqlExpr::ListConstruct(_)
            | OqlExpr::Flatten(_) => Err(OptimizerError::Unsupported(
                "collection-valued expression used as a scalar (wrap it in an aggregate)".into(),
            )),
            OqlExpr::Element(inner) => {
                // element(select …) — evaluate the sub-query and take its
                // single element; modelled as a min aggregate over one value.
                let plan = self.compile_correlated(inner)?;
                Ok(ScalarExpr::Agg(disco_algebra::AggKind::Min, Box::new(plan)))
            }
        }
    }

    /// Compiles a sub-query that may reference enclosing range variables.
    fn compile_correlated(&mut self, expr: &OqlExpr) -> Result<LogicalExpr> {
        self.compile_collection(expr)
    }
}

/// Builds `submit(repository, wrapper, get(extent))` for one registered
/// extent.
fn submit_of(extent: &MetaExtent) -> LogicalExpr {
    LogicalExpr::get(extent.extent_name()).submit(
        extent.repository(),
        extent.wrapper(),
        extent.extent_name(),
    )
}

/// For each range variable of a select, the set of attributes the query
/// uses (`None` when the variable is used whole, so no narrowing is safe).
fn needed_attributes(sel: &SelectExpr) -> Vec<(String, Option<Vec<String>>)> {
    let vars: Vec<String> = sel.bindings.iter().map(|b| b.var.clone()).collect();
    let mut out: Vec<(String, Option<Vec<String>>)> =
        vars.iter().map(|v| (v.clone(), Some(Vec::new()))).collect();
    let mut exprs: Vec<&OqlExpr> = vec![&sel.projection];
    if let Some(w) = &sel.where_clause {
        exprs.push(w);
    }
    for e in exprs {
        collect_var_usage(e, &vars, &mut out);
    }
    out
}

fn collect_var_usage(
    expr: &OqlExpr,
    vars: &[String],
    out: &mut Vec<(String, Option<Vec<String>>)>,
) {
    match expr {
        OqlExpr::Path(base, field) => {
            if let OqlExpr::Ident(name) = base.as_ref() {
                if vars.contains(name) {
                    if let Some((_, Some(attrs))) = out.iter_mut().find(|(v, _)| v == name) {
                        if !attrs.contains(field) {
                            attrs.push(field.clone());
                        }
                    }
                    return;
                }
            }
            collect_var_usage(base, vars, out);
        }
        OqlExpr::Ident(name) => {
            // The variable is used whole (e.g. `select x from …`): narrowing
            // would change the result.
            if let Some(entry) = out.iter_mut().find(|(v, _)| v == name) {
                entry.1 = None;
            }
        }
        OqlExpr::Binary { left, right, .. } => {
            collect_var_usage(left, vars, out);
            collect_var_usage(right, vars, out);
        }
        OqlExpr::Not(inner)
        | OqlExpr::Flatten(inner)
        | OqlExpr::Element(inner)
        | OqlExpr::Aggregate(_, inner) => collect_var_usage(inner, vars, out),
        OqlExpr::StructConstruct(fields) => {
            for (_, e) in fields {
                collect_var_usage(e, vars, out);
            }
        }
        OqlExpr::Call(_, args)
        | OqlExpr::Union(args)
        | OqlExpr::BagConstruct(args)
        | OqlExpr::ListConstruct(args) => {
            for a in args {
                collect_var_usage(a, vars, out);
            }
        }
        OqlExpr::Select(inner) => {
            // A correlated sub-query may use outer variables anywhere inside.
            collect_var_usage(&inner.projection, vars, out);
            if let Some(w) = &inner.where_clause {
                collect_var_usage(w, vars, out);
            }
            for b in &inner.bindings {
                collect_var_usage(&b.collection, vars, out);
            }
        }
        OqlExpr::Literal(_) => {}
    }
}

/// Narrowing projections are only safe over plans that produce source rows.
fn supports_narrowing(plan: &LogicalExpr) -> bool {
    match plan {
        LogicalExpr::Submit { .. } | LogicalExpr::Get { .. } => true,
        LogicalExpr::Union(items) => items.iter().all(supports_narrowing),
        _ => false,
    }
}

/// Inserts `project(attrs, …)` directly above each submit/get in the plan.
fn insert_projection(plan: LogicalExpr, attrs: &[String]) -> LogicalExpr {
    match plan {
        LogicalExpr::Union(items) => LogicalExpr::Union(
            items
                .into_iter()
                .map(|i| insert_projection(i, attrs))
                .collect(),
        ),
        other => LogicalExpr::Project {
            input: Box::new(other),
            columns: attrs.to_vec(),
        },
    }
}

fn literal_value(expr: &OqlExpr) -> Result<disco_value::Value> {
    match expr {
        OqlExpr::Literal(v) => Ok(v.clone()),
        OqlExpr::StructConstruct(fields) => {
            let mut out = Vec::with_capacity(fields.len());
            for (name, e) in fields {
                out.push((name.clone(), literal_value(e)?));
            }
            Ok(disco_value::Value::Struct(
                disco_value::StructValue::new(out).map_err(disco_algebra::AlgebraError::from)?,
            ))
        }
        OqlExpr::BagConstruct(items) => Ok(disco_value::Value::Bag(
            items
                .iter()
                .map(literal_value)
                .collect::<Result<disco_value::Bag>>()?,
        )),
        other => Err(OptimizerError::Unsupported(format!(
            "non-literal value in data position: {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_catalog::{Attribute, InterfaceDef, Repository, TypeRef, ViewDef, WrapperDef};

    fn paper_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.define_interface(
            InterfaceDef::new("Person")
                .with_extent_name("person")
                .with_attribute(Attribute::new("id", TypeRef::Int))
                .with_attribute(Attribute::new("name", TypeRef::String))
                .with_attribute(Attribute::new("salary", TypeRef::Int)),
        )
        .unwrap();
        c.add_wrapper(WrapperDef::new("w0", "relational")).unwrap();
        for r in ["r0", "r1"] {
            c.add_repository(Repository::new(r)).unwrap();
        }
        c.add_extent(MetaExtent::new("person0", "Person", "w0", "r0"))
            .unwrap();
        c.add_extent(MetaExtent::new("person1", "Person", "w0", "r1"))
            .unwrap();
        c
    }

    #[test]
    fn intro_query_compiles_to_canonical_plan() {
        let catalog = paper_catalog();
        let plan = compile_text(
            "select x.name from x in person where x.salary > 10",
            &catalog,
        )
        .unwrap();
        let text = plan.to_string();
        // One submit per source, narrowing projections inserted above them
        // (the optimizer decides later whether they can be pushed), bind,
        // filter and map on top.
        assert!(
            text.contains("project(name, salary, submit(r0, get(person0)))"),
            "{text}"
        );
        assert!(
            text.contains("project(name, salary, submit(r1, get(person1)))"),
            "{text}"
        );
        assert!(text.starts_with("map("), "{text}");
        assert!(text.contains("select((x.salary > 10)"), "{text}");
    }

    #[test]
    fn single_extent_query_compiles_without_union() {
        let catalog = paper_catalog();
        let plan = compile_text("select x.name from x in person0", &catalog).unwrap();
        assert_eq!(plan.collect_submits().len(), 1);
        assert_eq!(plan.collections(), vec!["person0"]);
    }

    #[test]
    fn select_star_variable_disables_narrowing() {
        let catalog = paper_catalog();
        let plan =
            compile_text("select x from x in person0 where x.salary > 10", &catalog).unwrap();
        let text = plan.to_string();
        assert!(
            !text.contains("project("),
            "whole-row use must not narrow: {text}"
        );
    }

    #[test]
    fn two_binding_query_compiles_to_join_with_predicate() {
        let catalog = paper_catalog();
        let plan = compile_text(
            "select struct(name: x.name, salary: x.salary + y.salary) \
             from x in person0, y in person1 where x.id = y.id",
            &catalog,
        )
        .unwrap();
        let text = plan.to_string();
        assert!(text.contains("mjoin("), "{text}");
        assert_eq!(plan.collect_submits().len(), 2);
    }

    #[test]
    fn view_reference_is_expanded_before_compilation() {
        let mut catalog = paper_catalog();
        catalog
            .define_view(
                ViewDef::new("rich", "select x from x in person where x.salary > 100")
                    .with_references(["person"]),
            )
            .unwrap();
        let plan = compile_text("select r.name from r in rich", &catalog).unwrap();
        // The view body ranges over both person sources.
        assert_eq!(plan.collect_submits().len(), 2);
    }

    #[test]
    fn aggregate_query_compiles_to_aggregate_node() {
        let catalog = paper_catalog();
        let plan = compile_text("sum(select x.salary from x in person0)", &catalog).unwrap();
        assert!(matches!(plan, LogicalExpr::Aggregate { .. }));
    }

    #[test]
    fn correlated_aggregate_in_projection_compiles() {
        let catalog = paper_catalog();
        let plan = compile_text(
            "select struct(name: x.name, total: sum(select z.salary from z in person where x.id = z.id)) \
             from x in person0",
            &catalog,
        )
        .unwrap();
        // The correlated sub-plan appears inside the projection.
        let text = plan.to_string();
        assert!(text.contains("sum("), "{text}");
    }

    #[test]
    fn distinct_and_literal_bags() {
        let catalog = paper_catalog();
        let plan = compile_text("select distinct x.name from x in person0", &catalog).unwrap();
        assert!(matches!(plan, LogicalExpr::Distinct(_)));
        let plan = compile_text("bag(\"Sam\", \"Mary\")", &catalog).unwrap();
        assert!(matches!(plan, LogicalExpr::Data(_)));
    }

    #[test]
    fn partial_answer_resubmission_compiles() {
        // The §1.3 / §4 partial answer is itself a query; it must compile.
        let catalog = paper_catalog();
        let plan = compile_text(
            "union(select y.name from y in person0 where y.salary > 10, bag(\"Sam\"))",
            &catalog,
        )
        .unwrap();
        match &plan {
            LogicalExpr::Union(items) => {
                assert_eq!(items.len(), 2);
                assert!(matches!(items[1], LogicalExpr::Data(_)));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn unknown_collection_is_reported() {
        let catalog = paper_catalog();
        let err = compile_text("select x from x in mystery", &catalog).unwrap_err();
        assert!(matches!(err, OptimizerError::UnresolvedCollection(_)));
    }

    #[test]
    fn empty_interface_compiles_to_empty_data() {
        let mut catalog = paper_catalog();
        catalog
            .define_interface(InterfaceDef::new("Empty").with_extent_name("empty"))
            .unwrap();
        let plan = compile_text("select x from x in empty", &catalog).unwrap();
        assert_eq!(plan.collect_submits().len(), 0);
    }
}
