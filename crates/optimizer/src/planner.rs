//! The plan search: alternative generation, costing and selection (§3.1).
//!
//! "The search is accomplished by transforming the query into several
//! alternative expressions which can be executed by the run-time system.
//! Each expression has an associated estimated cost.  The expression with
//! the lowest estimated cost is then executed."
//!
//! The optimizer generates alternatives by applying different subsets of
//! the capability-checked pushdown rules (none, selections only,
//! projections only, everything) to the normalized canonical plan, lowers
//! each to the physical algebra, costs them, and picks the cheapest.

use std::sync::Arc;

use disco_algebra::rules::{
    self, push_filter_into_submit, push_join_into_submit, push_project_into_submit,
};
use disco_algebra::{lower, CapabilityLookup, LogicalExpr, PhysicalExpr};
use disco_catalog::Catalog;

use crate::calibration::CalibrationStore;
use crate::compile::compile_text;
use crate::cost::{CostModel, CostParams, PlanCost};
use crate::Result;

/// One alternative considered during the search.
#[derive(Debug, Clone)]
pub struct PlanAlternative {
    /// Which rule subset produced it.
    pub strategy: &'static str,
    /// The logical plan.
    pub logical: LogicalExpr,
    /// Its estimated cost.
    pub cost: PlanCost,
}

/// The outcome of optimization: the chosen plan plus the alternatives that
/// were considered.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The original query text, when the plan came from text.
    pub query: Option<String>,
    /// The catalog generation the plan was built against (for cache
    /// invalidation).
    pub catalog_generation: u64,
    /// The chosen logical plan.
    pub logical: LogicalExpr,
    /// The chosen physical plan.
    pub physical: PhysicalExpr,
    /// Estimated cost of the chosen plan.
    pub cost: PlanCost,
    /// Every alternative considered, including the chosen one.
    pub alternatives: Vec<PlanAlternative>,
}

impl Plan {
    /// The strategy name of the chosen alternative.
    #[must_use]
    pub fn chosen_strategy(&self) -> &'static str {
        self.alternatives
            .iter()
            .find(|a| a.logical == self.logical)
            .map_or("canonical", |a| a.strategy)
    }
}

/// The DISCO query optimizer.
pub struct Optimizer {
    capabilities: Box<dyn CapabilityLookup + Send + Sync>,
    cost_model: CostModel,
}

impl std::fmt::Debug for Optimizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Optimizer")
            .field("cost_params", self.cost_model.params())
            .finish()
    }
}

impl Optimizer {
    /// Creates an optimizer with the given wrapper-capability lookup and a
    /// fresh calibration store.
    pub fn new<C>(capabilities: C) -> Self
    where
        C: CapabilityLookup + Send + Sync + 'static,
    {
        Optimizer {
            capabilities: Box::new(capabilities),
            cost_model: CostModel::new(Arc::new(CalibrationStore::new())),
        }
    }

    /// Creates an optimizer sharing an existing calibration store.
    pub fn with_store<C>(capabilities: C, store: Arc<CalibrationStore>) -> Self
    where
        C: CapabilityLookup + Send + Sync + 'static,
    {
        Optimizer {
            capabilities: Box::new(capabilities),
            cost_model: CostModel::new(store),
        }
    }

    /// Overrides the mediator cost constants.
    #[must_use]
    pub fn with_cost_params(mut self, params: CostParams) -> Self {
        self.cost_model = CostModel::new(Arc::clone(self.cost_model.store())).with_params(params);
        self
    }

    /// The calibration store used for `exec` estimates (the runtime records
    /// finished calls into it).
    #[must_use]
    pub fn calibration(&self) -> &Arc<CalibrationStore> {
        self.cost_model.store()
    }

    /// The cost model.
    #[must_use]
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// Compiles and optimizes OQL text against the catalog.
    ///
    /// # Errors
    ///
    /// Returns compilation errors and lowering errors.
    pub fn optimize_text(&self, query: &str, catalog: &Catalog) -> Result<Plan> {
        let compiled = compile_text(query, catalog)?;
        let mut plan = self.optimize_logical(&compiled, catalog.generation())?;
        plan.query = Some(query.to_owned());
        Ok(plan)
    }

    /// Optimizes an already-compiled logical plan.
    ///
    /// # Errors
    ///
    /// Returns lowering errors (e.g. a bare `get` outside `submit`).
    pub fn optimize_logical(
        &self,
        compiled: &LogicalExpr,
        catalog_generation: u64,
    ) -> Result<Plan> {
        let normalized = rules::normalize(compiled);
        let lookup = self.capabilities.as_ref();

        let mut alternatives: Vec<PlanAlternative> = Vec::new();
        let push_alternative = |strategy: &'static str,
                                logical: LogicalExpr,
                                alternatives: &mut Vec<PlanAlternative>|
         -> Result<()> {
            if alternatives.iter().any(|a| a.logical == logical) {
                return Ok(());
            }
            let physical = lower(&logical)?;
            let cost = self.cost_model.cost(&physical);
            alternatives.push(PlanAlternative {
                strategy,
                logical,
                cost,
            });
            Ok(())
        };

        push_alternative("mediator-only", normalized.clone(), &mut alternatives)?;
        push_alternative(
            "push-selections",
            apply_subset(&normalized, lookup, true, false, false),
            &mut alternatives,
        )?;
        push_alternative(
            "push-projections",
            apply_subset(&normalized, lookup, false, true, false),
            &mut alternatives,
        )?;
        push_alternative(
            "push-selections-projections",
            apply_subset(&normalized, lookup, true, true, false),
            &mut alternatives,
        )?;
        push_alternative(
            "push-everything",
            rules::push_to_wrappers(&normalized, lookup),
            &mut alternatives,
        )?;

        let best = alternatives
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.cost
                    .time_ms
                    .total_cmp(&b.cost.time_ms)
                    .then_with(|| a.logical.size().cmp(&b.logical.size()))
            })
            .map(|(i, _)| i)
            .unwrap_or(0);
        let chosen = alternatives[best].clone();
        let physical = lower(&chosen.logical)?;
        Ok(Plan {
            query: None,
            catalog_generation,
            logical: chosen.logical,
            physical,
            cost: chosen.cost,
            alternatives,
        })
    }
}

/// Applies the selected subset of pushdown rules to a fixpoint.
fn apply_subset(
    expr: &LogicalExpr,
    lookup: &dyn CapabilityLookup,
    filters: bool,
    projections: bool,
    joins: bool,
) -> LogicalExpr {
    let mut current = expr.clone();
    for _ in 0..64 {
        let next = current.rewrite_bottom_up(&|e| {
            let mut result = None;
            if filters {
                result = result.or_else(|| push_filter_into_submit(e, lookup));
            }
            if projections {
                // A projection blocked by a filter that cannot be pushed may
                // still reach the wrapper by commuting below the filter.
                result = result.or_else(|| {
                    let swapped = rules::push_project_below_filter(e)?;
                    let rewritten =
                        swapped.rewrite_bottom_up(&|inner| push_project_into_submit(inner, lookup));
                    (rewritten != swapped).then_some(rewritten)
                });
            }
            if projections {
                result = result.or_else(|| push_project_into_submit(e, lookup));
            }
            if joins {
                result = result.or_else(|| push_join_into_submit(e, lookup));
            }
            result
        });
        if next == current {
            break;
        }
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_algebra::{CapabilitySet, OperatorKind};
    use disco_catalog::{Attribute, InterfaceDef, MetaExtent, Repository, TypeRef, WrapperDef};
    use std::collections::BTreeMap;

    fn catalog_with_two_sources() -> Catalog {
        let mut c = Catalog::new();
        c.define_interface(
            InterfaceDef::new("Person")
                .with_extent_name("person")
                .with_attribute(Attribute::new("id", TypeRef::Int))
                .with_attribute(Attribute::new("name", TypeRef::String))
                .with_attribute(Attribute::new("salary", TypeRef::Int)),
        )
        .unwrap();
        c.add_wrapper(WrapperDef::new("w_full", "relational"))
            .unwrap();
        c.add_wrapper(WrapperDef::new("w_min", "csv")).unwrap();
        c.add_repository(Repository::new("r0")).unwrap();
        c.add_repository(Repository::new("r1")).unwrap();
        c.add_extent(MetaExtent::new("person0", "Person", "w_full", "r0"))
            .unwrap();
        c.add_extent(MetaExtent::new("person1", "Person", "w_min", "r1"))
            .unwrap();
        c
    }

    fn capability_map() -> BTreeMap<String, CapabilitySet> {
        let mut m = BTreeMap::new();
        m.insert(
            "w_full".to_owned(),
            CapabilitySet::new([
                OperatorKind::Get,
                OperatorKind::Select,
                OperatorKind::Project,
            ])
            .with_composition(true),
        );
        m.insert("w_min".to_owned(), CapabilitySet::get_only());
        m
    }

    #[test]
    fn optimizer_pushes_work_to_capable_wrappers_only() {
        let catalog = catalog_with_two_sources();
        let optimizer = Optimizer::new(capability_map());
        let plan = optimizer
            .optimize_text(
                "select x.name from x in person where x.salary > 10",
                &catalog,
            )
            .unwrap();
        let text = plan.logical.to_string();
        assert!(
            text.contains("submit(r0, project(name, select((salary > 10), get(person0))))")
                || text.contains(
                    "submit(r0, select((salary > 10), project(name, salary, get(person0))))"
                )
                || text.contains(
                    "submit(r0, project(name, salary, select((salary > 10), get(person0))))"
                ),
            "capable wrapper branch should be pushed: {text}"
        );
        assert!(
            text.contains("submit(r1, get(person1))"),
            "get-only wrapper branch should ship only get: {text}"
        );
        assert!(plan.alternatives.len() >= 2);
        assert_eq!(plan.physical.collect_execs().len(), 2);
    }

    #[test]
    fn alternatives_include_mediator_only_and_are_costed() {
        let catalog = catalog_with_two_sources();
        let optimizer = Optimizer::new(capability_map());
        let plan = optimizer
            .optimize_text(
                "select x.name from x in person0 where x.salary > 10",
                &catalog,
            )
            .unwrap();
        assert!(plan
            .alternatives
            .iter()
            .any(|a| a.strategy == "mediator-only"));
        for alt in &plan.alternatives {
            assert!(alt.cost.time_ms >= 0.0);
        }
        // The chosen plan is at least as cheap as every alternative.
        for alt in &plan.alternatives {
            assert!(plan.cost.time_ms <= alt.cost.time_ms + 1e-9);
        }
    }

    #[test]
    fn calibration_steers_the_choice() {
        let catalog = catalog_with_two_sources();
        let store = Arc::new(CalibrationStore::new());
        let optimizer = Optimizer::with_store(capability_map(), Arc::clone(&store));
        // Teach the optimizer that pushing the selection to r0 is *slow*
        // (e.g. the source has no index) while plain gets are fast and small.
        let pushed_shape = disco_algebra::LogicalExpr::get("person0")
            .project(["name", "salary"])
            .filter(disco_algebra::ScalarExpr::binary(
                disco_algebra::ScalarOp::Gt,
                disco_algebra::ScalarExpr::attr("salary"),
                disco_algebra::ScalarExpr::constant(10i64),
            ));
        store.record("r0", &pushed_shape, 500.0, 10);
        let plan = optimizer
            .optimize_text(
                "select x.name from x in person0 where x.salary > 10",
                &catalog,
            )
            .unwrap();
        // With the pushed shape now known to be expensive the optimizer may
        // keep work at the mediator; either way the chosen cost must be the
        // minimum over alternatives.
        let min = plan
            .alternatives
            .iter()
            .map(|a| a.cost.time_ms)
            .fold(f64::INFINITY, f64::min);
        assert!((plan.cost.time_ms - min).abs() < 1e-9);
    }

    #[test]
    fn chosen_strategy_is_reported() {
        let catalog = catalog_with_two_sources();
        let optimizer = Optimizer::new(capability_map());
        let plan = optimizer
            .optimize_text("select x.name from x in person0", &catalog)
            .unwrap();
        assert!(!plan.chosen_strategy().is_empty());
        assert_eq!(plan.catalog_generation, catalog.generation());
        assert_eq!(
            plan.query.as_deref(),
            Some("select x.name from x in person0")
        );
    }

    #[test]
    fn unknown_wrappers_default_to_get_only() {
        let catalog = catalog_with_two_sources();
        // Empty capability map: nothing can be pushed.
        let optimizer = Optimizer::new(BTreeMap::<String, CapabilitySet>::new());
        let plan = optimizer
            .optimize_text(
                "select x.name from x in person where x.salary > 10",
                &catalog,
            )
            .unwrap();
        let text = plan.logical.to_string();
        assert!(!text.contains("submit(r0, select"), "{text}");
        assert!(!text.contains("submit(r1, select"), "{text}");
    }
}
