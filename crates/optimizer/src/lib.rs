//! # disco-optimizer
//!
//! The DISCO mediator query optimizer (§3 of the paper): compilation of
//! OQL into the logical algebra, generation of alternative plans by
//! applying capability-checked pushdown rules, a cost model whose `exec`
//! estimates come from a self-calibrating store of recorded wrapper calls
//! (exact match / close match / the paper's time-0-data-1 defaults), plan
//! selection, and a plan cache invalidated by catalog updates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod calibration;
mod compile;
mod cost;
mod error;
mod planner;

pub use cache::PlanCache;
pub use calibration::{CalibrationStore, CostEstimate, MatchKind, Observation};
pub use compile::{compile_query, compile_text};
pub use cost::{CostModel, CostParams, PlanCost};
pub use error::OptimizerError;
pub use planner::{Optimizer, Plan, PlanAlternative};

/// Convenience result alias for optimizer operations.
pub type Result<T> = std::result::Result<T, OptimizerError>;
