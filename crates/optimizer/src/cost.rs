//! The cost model (§3.1, §3.3).
//!
//! "Each expression has an associated estimated cost.  The expression with
//! the lowest estimated cost is then executed by the run time system."
//! Costs of `exec` calls come from the self-calibrating
//! [`CalibrationStore`]; mediator-side algorithms are costed with simple
//! per-row constants.  With no calibration information the defaults
//! (time 0, data 1) make source-side work free, so "the optimizer will
//! choose plans where the maximum amount of computation is done at the
//! data source" — exactly the paper's intended bias.

use std::sync::Arc;

use disco_algebra::PhysicalExpr;

use crate::calibration::CalibrationStore;

/// Tunable constants of the mediator-side cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Cost of processing one row in a mediator-side operator, in ms.
    pub mediator_per_row_ms: f64,
    /// Estimated selectivity of a filter predicate.
    pub filter_selectivity: f64,
    /// Estimated selectivity of a join predicate.
    pub join_selectivity: f64,
    /// Estimated fraction of duplicates removed by `distinct`.
    pub distinct_ratio: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            mediator_per_row_ms: 0.01,
            filter_selectivity: 0.33,
            join_selectivity: 0.1,
            distinct_ratio: 0.8,
        }
    }
}

/// The estimated cost of a (sub)plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanCost {
    /// Estimated total time in milliseconds.
    pub time_ms: f64,
    /// Estimated output cardinality.
    pub rows: f64,
}

impl PlanCost {
    /// A zero cost (empty input).
    #[must_use]
    pub fn zero() -> Self {
        PlanCost {
            time_ms: 0.0,
            rows: 0.0,
        }
    }
}

/// The cost model: a calibration store plus mediator constants.
#[derive(Debug, Clone)]
pub struct CostModel {
    store: Arc<CalibrationStore>,
    params: CostParams,
}

impl CostModel {
    /// Creates a cost model backed by `store`.
    #[must_use]
    pub fn new(store: Arc<CalibrationStore>) -> Self {
        CostModel {
            store,
            params: CostParams::default(),
        }
    }

    /// Overrides the mediator constants.
    #[must_use]
    pub fn with_params(mut self, params: CostParams) -> Self {
        self.params = params;
        self
    }

    /// The calibration store backing `exec` estimates.
    #[must_use]
    pub fn store(&self) -> &Arc<CalibrationStore> {
        &self.store
    }

    /// The mediator constants.
    #[must_use]
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Estimates the cost of a physical plan.
    #[must_use]
    pub fn cost(&self, plan: &PhysicalExpr) -> PlanCost {
        let p = &self.params;
        match plan {
            PhysicalExpr::Exec {
                repository,
                logical,
                ..
            } => {
                let est = self.store.estimate(repository, logical);
                match est.source {
                    crate::calibration::MatchKind::Default => {
                        // The paper's defaults: time 0, data 1 per base
                        // collection.  Selections pushed inside the call
                        // still reduce the estimated output, so pushing is
                        // never estimated as worse than mediator-side
                        // filtering — this realises the paper's "maximum
                        // computation at the data source" bias.
                        PlanCost {
                            time_ms: est.time_ms,
                            rows: default_exec_rows(logical, p),
                        }
                    }
                    _ => PlanCost {
                        time_ms: est.time_ms,
                        rows: est.rows,
                    },
                }
            }
            PhysicalExpr::MemScan(bag) => PlanCost {
                time_ms: 0.0,
                #[allow(clippy::cast_precision_loss)]
                rows: bag.len() as f64,
            },
            PhysicalExpr::FilterOp { input, .. } => {
                let c = self.cost(input);
                PlanCost {
                    time_ms: c.time_ms + c.rows * p.mediator_per_row_ms,
                    rows: c.rows * p.filter_selectivity,
                }
            }
            PhysicalExpr::ProjectOp { input, .. }
            | PhysicalExpr::MapOp { input, .. }
            | PhysicalExpr::BindOp { input, .. } => {
                let c = self.cost(input);
                PlanCost {
                    time_ms: c.time_ms + c.rows * p.mediator_per_row_ms,
                    rows: c.rows,
                }
            }
            PhysicalExpr::NestedLoopJoin { left, right, .. }
            | PhysicalExpr::MergeTuplesJoin { left, right, .. } => {
                let l = self.cost(left);
                let r = self.cost(right);
                PlanCost {
                    time_ms: l.time_ms + r.time_ms + l.rows * r.rows * p.mediator_per_row_ms,
                    rows: (l.rows * r.rows * p.join_selectivity).max(1.0),
                }
            }
            PhysicalExpr::HashJoin { left, right, .. } => {
                let l = self.cost(left);
                let r = self.cost(right);
                PlanCost {
                    time_ms: l.time_ms + r.time_ms + (l.rows + r.rows) * p.mediator_per_row_ms,
                    rows: (l.rows * r.rows * p.join_selectivity).max(1.0),
                }
            }
            PhysicalExpr::MkUnion(items) => {
                let mut total = PlanCost::zero();
                for item in items {
                    let c = self.cost(item);
                    total.time_ms += c.time_ms;
                    total.rows += c.rows;
                }
                total
            }
            PhysicalExpr::MkFlatten(inner) => {
                let c = self.cost(inner);
                PlanCost {
                    time_ms: c.time_ms + c.rows * p.mediator_per_row_ms,
                    rows: c.rows,
                }
            }
            PhysicalExpr::MkDistinct(inner) => {
                let c = self.cost(inner);
                PlanCost {
                    time_ms: c.time_ms + c.rows * p.mediator_per_row_ms,
                    rows: (c.rows * p.distinct_ratio).max(1.0),
                }
            }
            PhysicalExpr::MkAggregate { input, .. } => {
                let c = self.cost(input);
                PlanCost {
                    time_ms: c.time_ms + c.rows * p.mediator_per_row_ms,
                    rows: 1.0,
                }
            }
        }
    }
}

/// Estimated output cardinality of a pushed expression under the default
/// (uncalibrated) assumption of one row per base collection.
fn default_exec_rows(logical: &disco_algebra::LogicalExpr, params: &CostParams) -> f64 {
    use disco_algebra::LogicalExpr as L;
    match logical {
        L::Get { .. } => 1.0,
        L::Filter { input, .. } => default_exec_rows(input, params) * params.filter_selectivity,
        L::Project { input, .. } => default_exec_rows(input, params),
        L::SourceJoin { left, right, .. } => (default_exec_rows(left, params)
            * default_exec_rows(right, params)
            * params.join_selectivity)
            .max(1.0),
        other => other
            .children()
            .iter()
            .map(|c| default_exec_rows(c, params))
            .sum::<f64>()
            .max(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_algebra::{lower, LogicalExpr, ScalarExpr, ScalarOp};

    fn filter_pred() -> ScalarExpr {
        ScalarExpr::binary(
            ScalarOp::Gt,
            ScalarExpr::attr("salary"),
            ScalarExpr::constant(10i64),
        )
    }

    #[test]
    fn defaults_make_pushed_plans_cheaper() {
        // With no calibration data, the pushed plan (filter inside exec)
        // costs less than the mediator-side plan (filter over exec),
        // because source work is free and source output defaults to 1 row.
        let store = Arc::new(CalibrationStore::new());
        let model = CostModel::new(store);
        let pushed = lower(
            &LogicalExpr::get("person0")
                .filter(filter_pred())
                .submit("r0", "w0", "person0"),
        )
        .unwrap();
        let mediator = lower(
            &LogicalExpr::get("person0")
                .submit("r0", "w0", "person0")
                .filter(filter_pred()),
        )
        .unwrap();
        let pushed_cost = model.cost(&pushed);
        let mediator_cost = model.cost(&mediator);
        assert!(pushed_cost.time_ms <= mediator_cost.time_ms);
    }

    #[test]
    fn calibrated_estimates_flow_into_plan_costs() {
        let store = Arc::new(CalibrationStore::new());
        let model = CostModel::new(Arc::clone(&store));
        let shipped = LogicalExpr::get("person0");
        store.record("r0", &shipped, 25.0, 1000);
        let plan = lower(
            &LogicalExpr::get("person0")
                .submit("r0", "w0", "person0")
                .filter(filter_pred()),
        )
        .unwrap();
        let cost = model.cost(&plan);
        assert!(cost.time_ms >= 25.0, "exec time dominates: {cost:?}");
        assert!(cost.rows > 100.0, "filter selectivity applied to 1000 rows");
    }

    #[test]
    fn hash_join_is_cheaper_than_nested_loop_on_large_inputs() {
        let store = Arc::new(CalibrationStore::new());
        // Teach the store that both sources return 1000 rows.
        store.record("r0", &LogicalExpr::get("a"), 1.0, 1000);
        store.record("r1", &LogicalExpr::get("b"), 1.0, 1000);
        let model = CostModel::new(Arc::clone(&store));
        let left = LogicalExpr::get("a").submit("r0", "w0", "a").bind("x");
        let right = LogicalExpr::get("b").submit("r1", "w0", "b").bind("y");
        let equi = ScalarExpr::binary(
            ScalarOp::Eq,
            ScalarExpr::var_field("x", "id"),
            ScalarExpr::var_field("y", "id"),
        );
        let hash = lower(&LogicalExpr::Join {
            left: Box::new(left.clone()),
            right: Box::new(right.clone()),
            predicate: Some(equi),
        })
        .unwrap();
        let nl = lower(&LogicalExpr::Join {
            left: Box::new(left),
            right: Box::new(right),
            predicate: Some(ScalarExpr::binary(
                ScalarOp::Lt,
                ScalarExpr::var_field("x", "id"),
                ScalarExpr::var_field("y", "id"),
            )),
        })
        .unwrap();
        assert!(model.cost(&hash).time_ms < model.cost(&nl).time_ms);
    }

    #[test]
    fn union_and_aggregate_costs_accumulate() {
        let store = Arc::new(CalibrationStore::new());
        store.record("r0", &LogicalExpr::get("a"), 2.0, 10);
        store.record("r1", &LogicalExpr::get("b"), 3.0, 20);
        let model = CostModel::new(Arc::clone(&store));
        let plan = lower(&LogicalExpr::Aggregate {
            func: disco_algebra::AggKind::Count,
            input: Box::new(LogicalExpr::Union(vec![
                LogicalExpr::get("a").submit("r0", "w0", "a"),
                LogicalExpr::get("b").submit("r1", "w0", "b"),
            ])),
        })
        .unwrap();
        let cost = model.cost(&plan);
        assert!(cost.time_ms >= 5.0);
        assert!((cost.rows - 1.0).abs() < f64::EPSILON);
    }
}
