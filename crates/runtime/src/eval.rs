//! The mediator-side evaluator entry points.
//!
//! Since the streaming refactor these are thin shims over the pull-based
//! cursor engine in [`crate::pipeline`]: a plan is opened into a cursor
//! tree and drained into the answer bag.  The public signatures are
//! unchanged from the materializing evaluator they replace — callers that
//! want per-execution instrumentation (or control over the hash-join
//! build side) use [`crate::pipeline::open_with`] /
//! [`evaluate_physical_with_metrics`] directly.
//!
//! The old bag-at-a-time evaluator survives as [`crate::reference`], used
//! by the differential test-suite only.

use disco_algebra::{Env, LogicalExpr, PhysicalExpr};
use disco_value::Bag;

use crate::exec::ResolvedExecs;
use crate::pipeline::{self, PipelineMetrics, PipelineOptions};
use crate::Result;

/// Evaluates a physical plan against resolved `exec` outcomes by
/// streaming it through the cursor pipeline.
///
/// # Errors
///
/// Returns an error if the plan references an unresolved or unavailable
/// `exec` call (the partial-evaluation path must be used instead), or on
/// evaluation errors.
pub fn evaluate_physical(plan: &PhysicalExpr, resolved: &ResolvedExecs) -> Result<Bag> {
    evaluate_with_outer(plan, resolved, &Env::root())
}

/// Evaluates a physical plan, recording pipeline counters (rows buffered
/// by pipeline breakers, join rows merged, rows emitted) into `metrics`.
///
/// # Errors
///
/// See [`evaluate_physical`].
pub fn evaluate_physical_with_metrics(
    plan: &PhysicalExpr,
    resolved: &ResolvedExecs,
    metrics: &PipelineMetrics,
) -> Result<Bag> {
    evaluate_physical_with(plan, resolved, metrics, PipelineOptions::default())
}

/// Evaluates a physical plan with explicit [`PipelineOptions`] — the entry
/// point for choosing the hash-join build side or the worker-thread count
/// (`options.threads`; `1` is the serial path, `0` defers to the
/// `DISCO_THREADS` environment variable) — recording pipeline counters
/// into `metrics`.
///
/// # Errors
///
/// See [`evaluate_physical`].
pub fn evaluate_physical_with(
    plan: &PhysicalExpr,
    resolved: &ResolvedExecs,
    metrics: &PipelineMetrics,
    options: PipelineOptions,
) -> Result<Bag> {
    pipeline::evaluate_physical_streamed(plan, resolved, &Env::root(), metrics, options)
}

/// Evaluates a physical plan with explicit [`PipelineOptions`], without
/// instrumentation (convenience for benches and thread-scaling tests).
///
/// # Errors
///
/// See [`evaluate_physical`].
pub fn evaluate_physical_with_options(
    plan: &PhysicalExpr,
    resolved: &ResolvedExecs,
    options: PipelineOptions,
) -> Result<Bag> {
    let metrics = PipelineMetrics::new();
    evaluate_physical_with(plan, resolved, &metrics, options)
}

/// Evaluates a physical plan with an outer environment (used for
/// correlated sub-queries).
///
/// # Errors
///
/// See [`evaluate_physical`].
pub fn evaluate_with_outer(
    plan: &PhysicalExpr,
    resolved: &ResolvedExecs,
    outer: &Env<'_>,
) -> Result<Bag> {
    let metrics = PipelineMetrics::new();
    pipeline::evaluate_physical_streamed(
        plan,
        resolved,
        outer,
        &metrics,
        PipelineOptions::default(),
    )
}

/// Evaluates a logical plan (typically a data-only residual subtree or a
/// correlated sub-plan) by lowering it and streaming the physical plan.
///
/// # Errors
///
/// See [`evaluate_physical`].
pub fn evaluate_logical(
    plan: &LogicalExpr,
    resolved: &ResolvedExecs,
    outer: &Env<'_>,
) -> Result<Bag> {
    let metrics = PipelineMetrics::new();
    pipeline::evaluate_logical_streamed(plan, resolved, outer, &metrics, PipelineOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RuntimeError;
    use disco_algebra::{data_of, AggKind, ScalarExpr, ScalarOp};
    use disco_value::{StructValue, Value};

    fn person(name: &str, salary: i64, id: i64) -> Value {
        Value::Struct(
            StructValue::new(vec![
                ("id", Value::Int(id)),
                ("name", Value::from(name)),
                ("salary", Value::Int(salary)),
            ])
            .unwrap(),
        )
    }

    fn empty_resolved() -> ResolvedExecs {
        ResolvedExecs::default()
    }

    fn eval(plan: &LogicalExpr) -> Bag {
        evaluate_logical(plan, &empty_resolved(), &Env::root()).unwrap()
    }

    #[test]
    fn intro_query_pipeline_over_data() {
        // map(x.name, select(x.salary > 10, bind(x, data)))
        let data = LogicalExpr::Data(
            [
                person("Mary", 200, 1),
                person("Sam", 50, 2),
                person("Low", 5, 3),
            ]
            .into_iter()
            .collect(),
        );
        let plan = data
            .bind("x")
            .filter(ScalarExpr::binary(
                ScalarOp::Gt,
                ScalarExpr::var_field("x", "salary"),
                ScalarExpr::constant(10i64),
            ))
            .map_project(ScalarExpr::var_field("x", "name"));
        let result = eval(&plan);
        assert_eq!(
            result,
            [Value::from("Mary"), Value::from("Sam")]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn hash_join_combines_sources_on_equal_keys() {
        let left = LogicalExpr::Data(
            [person("Mary", 200, 1), person("Sam", 50, 2)]
                .into_iter()
                .collect(),
        )
        .bind("x");
        let right = LogicalExpr::Data([person("Mary2", 30, 1)].into_iter().collect()).bind("y");
        let join = LogicalExpr::Join {
            left: Box::new(left),
            right: Box::new(right),
            predicate: Some(ScalarExpr::binary(
                ScalarOp::Eq,
                ScalarExpr::var_field("x", "id"),
                ScalarExpr::var_field("y", "id"),
            )),
        }
        .map_project(ScalarExpr::StructLit(vec![
            ("name".into(), ScalarExpr::var_field("x", "name")),
            (
                "total".into(),
                ScalarExpr::binary(
                    ScalarOp::Add,
                    ScalarExpr::var_field("x", "salary"),
                    ScalarExpr::var_field("y", "salary"),
                ),
            ),
        ]));
        let result = eval(&join);
        assert_eq!(result.len(), 1);
        let row = result.iter().next().unwrap().as_struct().unwrap();
        assert_eq!(row.field("total").unwrap(), &Value::Int(230));
    }

    #[test]
    fn correlated_aggregate_uses_outer_row() {
        // The §2.2.3 `multiple` view shape over data:
        // select struct(name: x.name, salary: sum(select z.salary from z in all where x.id = z.id))
        let all: Bag = [
            person("Mary", 200, 1),
            person("Mary-b", 30, 1),
            person("Sam", 50, 2),
        ]
        .into_iter()
        .collect();
        let subplan = LogicalExpr::Data(all.clone())
            .bind("z")
            .filter(ScalarExpr::binary(
                ScalarOp::Eq,
                ScalarExpr::var_field("x", "id"),
                ScalarExpr::var_field("z", "id"),
            ))
            .map_project(ScalarExpr::var_field("z", "salary"));
        let plan = LogicalExpr::Data([person("Mary", 200, 1)].into_iter().collect())
            .bind("x")
            .map_project(ScalarExpr::StructLit(vec![
                ("name".into(), ScalarExpr::var_field("x", "name")),
                (
                    "salary".into(),
                    ScalarExpr::Agg(AggKind::Sum, Box::new(subplan)),
                ),
            ]));
        let result = eval(&plan);
        let row = result.iter().next().unwrap().as_struct().unwrap();
        assert_eq!(row.field("salary").unwrap(), &Value::Int(230));
    }

    #[test]
    fn union_flatten_distinct_aggregate() {
        let plan = LogicalExpr::Aggregate {
            func: AggKind::Count,
            input: Box::new(LogicalExpr::Distinct(Box::new(LogicalExpr::Union(vec![
                data_of([1i64, 2i64, 2i64]),
                data_of([3i64, 3i64]),
            ])))),
        };
        let result = eval(&plan);
        assert_eq!(result, [Value::Int(3)].into_iter().collect());
        let flat = LogicalExpr::Flatten(Box::new(data_of([Value::Bag(
            [Value::Int(1), Value::Int(2)].into_iter().collect(),
        )])));
        assert_eq!(eval(&flat).len(), 2);
    }

    #[test]
    fn source_join_at_mediator_merges_tuples() {
        let employees = LogicalExpr::Data(
            [Value::Struct(
                StructValue::new(vec![("name", Value::from("Mary")), ("dept", Value::Int(1))])
                    .unwrap(),
            )]
            .into_iter()
            .collect(),
        );
        let managers = LogicalExpr::Data(
            [Value::Struct(
                StructValue::new(vec![("mgr", Value::from("Sam")), ("dept", Value::Int(1))])
                    .unwrap(),
            )]
            .into_iter()
            .collect(),
        );
        let join = LogicalExpr::SourceJoin {
            left: Box::new(employees),
            right: Box::new(managers),
            on: vec![("dept".into(), "dept".into())],
        };
        let result = eval(&join);
        assert_eq!(result.len(), 1);
        let row = result.iter().next().unwrap().as_struct().unwrap();
        assert_eq!(row.field("mgr").unwrap(), &Value::from("Sam"));
    }

    #[test]
    fn unresolved_exec_is_an_error() {
        let plan = LogicalExpr::get("person0").submit("r0", "w0", "person0");
        let err = evaluate_logical(&plan, &empty_resolved(), &Env::root()).unwrap_err();
        assert!(matches!(err, RuntimeError::Unsupported(_)));
    }

    #[test]
    fn projection_of_scalar_rows_fails_cleanly() {
        let plan = data_of([1i64, 2i64]).project(["name"]);
        let err = evaluate_logical(&plan, &empty_resolved(), &Env::root()).unwrap_err();
        assert!(matches!(err, RuntimeError::Algebra(_)));
    }

    #[test]
    fn metrics_show_streaming_operators_buffer_nothing() {
        // filter → map over 3 rows: no pipeline breaker, so nothing is
        // buffered and nothing is merged; 2 rows reach the sink.
        let plan = LogicalExpr::Data(
            [
                person("Mary", 200, 1),
                person("Sam", 50, 2),
                person("Low", 5, 3),
            ]
            .into_iter()
            .collect(),
        )
        .bind("x")
        .filter(ScalarExpr::binary(
            ScalarOp::Gt,
            ScalarExpr::var_field("x", "salary"),
            ScalarExpr::constant(10i64),
        ))
        .map_project(ScalarExpr::var_field("x", "name"));
        let physical = disco_algebra::lower(&plan).unwrap();
        let metrics = PipelineMetrics::new();
        let out = evaluate_physical_with_metrics(&physical, &empty_resolved(), &metrics).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(metrics.rows_materialized(), 0);
        assert_eq!(metrics.rows_merged(), 0);
        assert_eq!(metrics.rows_emitted(), 2);
    }

    #[test]
    fn metrics_deep_pipeline_only_breakers_materialize() {
        // filter → hash-join → map-project → distinct: the only buffered
        // rows are the join build side (the smaller input) and the distinct
        // seen-set; the projection consumes join rows frame-wise, so no
        // join row is ever merged into a struct.
        let left: Bag = (0..20)
            .map(|i| person(&format!("p{}", i % 4), 100 + i, i % 8))
            .collect();
        let right: Bag = (0..4).map(|i| person(&format!("r{i}"), 50, i)).collect();
        let right_len = right.len();
        let plan = LogicalExpr::Join {
            left: Box::new(LogicalExpr::Data(left).bind("x").filter(ScalarExpr::binary(
                ScalarOp::Gt,
                ScalarExpr::var_field("x", "salary"),
                ScalarExpr::constant(0i64),
            ))),
            right: Box::new(LogicalExpr::Data(right).bind("y")),
            predicate: Some(ScalarExpr::binary(
                ScalarOp::Eq,
                ScalarExpr::var_field("x", "id"),
                ScalarExpr::var_field("y", "id"),
            )),
        }
        .map_project(ScalarExpr::var_field("x", "name"));
        let plan = LogicalExpr::Distinct(Box::new(plan));
        let physical = disco_algebra::lower(&plan).unwrap();
        let metrics = PipelineMetrics::new();
        let out = evaluate_physical_with_metrics(&physical, &empty_resolved(), &metrics).unwrap();
        assert!(!out.is_empty());
        // Only pipeline breakers buffered rows: the build side (4 rows,
        // the smaller input) and one seen-set entry per distinct value.
        assert_eq!(metrics.rows_materialized(), right_len + out.len());
        assert_eq!(
            metrics.rows_merged(),
            0,
            "projection must consume join rows frame-wise"
        );
    }
}
