//! The mediator-side evaluator: executes a physical plan once every `exec`
//! call has been resolved.
//!
//! The evaluator implements the physical algorithms of §3.3 (`mkunion`,
//! `mkproj`, nested-loop and hash joins, …) over bags of values.
//! Correlated aggregate sub-queries in projections are evaluated through a
//! sub-query callback that re-enters the evaluator with the current
//! environment as outer context.
//!
//! # Zero-clone row plane
//!
//! Rows are `Arc`-backed [`Value`]s, so passing a row from one operator to
//! the next is a reference-count bump.  Scalar expressions are evaluated
//! against a layered [`Env`] — a chain of borrowed scopes (outer query,
//! left join side, right join side) resolved by name lookup — instead of a
//! merged `StructValue` materialised per row.  The hash join keys a real
//! `HashMap` with the canonical `Value` hash, and probes it with borrowed
//! rows; joined output rows are only constructed for pairs that survive
//! the residual predicate.

use std::collections::HashMap;

use disco_algebra::{
    eval_scalar_with, lower, truthy, AlgebraError, Env, LogicalExpr, PhysicalExpr, ScalarExpr,
};
use disco_value::{Bag, StructValue, Value};

use crate::exec::{ExecKey, ExecOutcome, ResolvedExecs};
use crate::{Result, RuntimeError};

/// Evaluates a physical plan against resolved `exec` outcomes.
///
/// # Errors
///
/// Returns an error if the plan references an unresolved or unavailable
/// `exec` call (the partial-evaluation path must be used instead), or on
/// evaluation errors.
pub fn evaluate_physical(plan: &PhysicalExpr, resolved: &ResolvedExecs) -> Result<Bag> {
    evaluate_with_outer(plan, resolved, &Env::root())
}

/// Evaluates a physical plan with an outer environment (used for
/// correlated sub-queries).
///
/// # Errors
///
/// See [`evaluate_physical`].
pub fn evaluate_with_outer(
    plan: &PhysicalExpr,
    resolved: &ResolvedExecs,
    outer: &Env<'_>,
) -> Result<Bag> {
    match plan {
        PhysicalExpr::Exec {
            repository,
            extent,
            logical,
            ..
        } => {
            let key = ExecKey::new(repository, extent, logical);
            match resolved.outcome(&key) {
                Some(ExecOutcome::Rows(rows)) => Ok(rows.clone()),
                Some(ExecOutcome::Unavailable) => Err(RuntimeError::Unsupported(format!(
                    "exec call to unavailable source {repository} reached the evaluator"
                ))),
                None => Err(RuntimeError::Unsupported(format!(
                    "unresolved exec call to {repository} ({extent})"
                ))),
            }
        }
        PhysicalExpr::MemScan(bag) => Ok(bag.clone()),
        PhysicalExpr::FilterOp { input, predicate } => {
            let rows = evaluate_with_outer(input, resolved, outer)?;
            let mut out = Bag::with_capacity(rows.len());
            for row in &rows {
                let env = outer.with_value(row);
                let keep = eval_row_scalar(predicate, &env, resolved)?;
                if truthy(&keep) {
                    // Arc bump, not a deep copy: the output shares the row.
                    out.insert(row.clone());
                }
            }
            Ok(out)
        }
        PhysicalExpr::ProjectOp { input, columns } => {
            let rows = evaluate_with_outer(input, resolved, outer)?;
            let mut out = Bag::with_capacity(rows.len());
            for row in &rows {
                let s = row.as_struct().map_err(AlgebraError::from)?;
                let projected = s
                    .project(columns.iter().map(String::as_str))
                    .map_err(AlgebraError::from)?;
                out.insert(Value::Struct(projected));
            }
            Ok(out)
        }
        PhysicalExpr::MapOp { input, projection } => {
            let rows = evaluate_with_outer(input, resolved, outer)?;
            let mut out = Bag::with_capacity(rows.len());
            for row in &rows {
                let env = outer.with_value(row);
                out.insert(eval_row_scalar(projection, &env, resolved)?);
            }
            Ok(out)
        }
        PhysicalExpr::BindOp { var, input } => {
            let rows = evaluate_with_outer(input, resolved, outer)?;
            let mut out = Bag::with_capacity(rows.len());
            let name: std::sync::Arc<str> = std::sync::Arc::from(var.as_str());
            for row in &rows {
                let env = StructValue::new(vec![(std::sync::Arc::clone(&name), row.clone())])
                    .map_err(AlgebraError::from)?;
                out.insert(Value::Struct(env));
            }
            Ok(out)
        }
        PhysicalExpr::NestedLoopJoin {
            left,
            right,
            predicate,
        } => {
            let left_rows = evaluate_with_outer(left, resolved, outer)?;
            let right_rows = evaluate_with_outer(right, resolved, outer)?;
            let mut out = Bag::new();
            for l in &left_rows {
                let ls = l.as_struct().map_err(AlgebraError::from)?;
                let lenv = outer.with_row(ls);
                for r in &right_rows {
                    let rs = r.as_struct().map_err(AlgebraError::from)?;
                    let keep = match predicate {
                        Some(p) => {
                            let env = lenv.with_row(rs);
                            truthy(&eval_row_scalar(p, &env, resolved)?)
                        }
                        None => true,
                    };
                    if keep {
                        // The merged output row is only built for matches.
                        out.insert(Value::Struct(ls.merged(rs)));
                    }
                }
            }
            Ok(out)
        }
        PhysicalExpr::HashJoin {
            left,
            right,
            left_key,
            right_key,
            residual,
        } => {
            let left_rows = evaluate_with_outer(left, resolved, outer)?;
            let right_rows = evaluate_with_outer(right, resolved, outer)?;
            // Build a hash table of borrowed rows on the right input,
            // keyed by the canonical `Value` hash.
            let mut table: HashMap<Value, Vec<&StructValue>> =
                HashMap::with_capacity(right_rows.len());
            for r in &right_rows {
                let rs = r.as_struct().map_err(AlgebraError::from)?;
                let env = outer.with_row(rs);
                let key = eval_row_scalar(right_key, &env, resolved)?;
                table.entry(key).or_default().push(rs);
            }
            let mut out = Bag::new();
            for l in &left_rows {
                let ls = l.as_struct().map_err(AlgebraError::from)?;
                let lenv = outer.with_row(ls);
                let key = eval_row_scalar(left_key, &lenv, resolved)?;
                if let Some(matches) = table.get(&key) {
                    for rs in matches {
                        let keep = match residual {
                            Some(p) => {
                                let env = lenv.with_row(rs);
                                truthy(&eval_row_scalar(p, &env, resolved)?)
                            }
                            None => true,
                        };
                        if keep {
                            out.insert(Value::Struct(ls.merged(rs)));
                        }
                    }
                }
            }
            Ok(out)
        }
        PhysicalExpr::MergeTuplesJoin { left, right, on } => {
            let left_rows = evaluate_with_outer(left, resolved, outer)?;
            let right_rows = evaluate_with_outer(right, resolved, outer)?;
            let mut out = Bag::new();
            for l in &left_rows {
                let ls = l.as_struct().map_err(AlgebraError::from)?;
                for r in &right_rows {
                    let rs = r.as_struct().map_err(AlgebraError::from)?;
                    let mut matches = true;
                    for (lattr, rattr) in on {
                        let lv = ls.field(lattr).map_err(AlgebraError::from)?;
                        let rv = rs.field(rattr).map_err(AlgebraError::from)?;
                        if lv != rv {
                            matches = false;
                            break;
                        }
                    }
                    if matches {
                        let merged = ls
                            .merge_with_prefix(rs, "right")
                            .map_err(AlgebraError::from)?;
                        out.insert(Value::Struct(merged));
                    }
                }
            }
            Ok(out)
        }
        PhysicalExpr::MkUnion(items) => {
            let mut out = Bag::new();
            for item in items {
                let bag = evaluate_with_outer(item, resolved, outer)?;
                if out.is_empty() {
                    // Adopt the first branch's storage outright.
                    out = bag;
                } else {
                    out.extend(bag);
                }
            }
            Ok(out)
        }
        PhysicalExpr::MkFlatten(inner) => {
            Ok(evaluate_with_outer(inner, resolved, outer)?.flatten())
        }
        PhysicalExpr::MkDistinct(inner) => {
            Ok(evaluate_with_outer(inner, resolved, outer)?.distinct())
        }
        PhysicalExpr::MkAggregate { func, input } => {
            let rows = evaluate_with_outer(input, resolved, outer)?;
            Ok([func.apply(&rows).map_err(RuntimeError::Algebra)?]
                .into_iter()
                .collect())
        }
    }
}

/// Evaluates a logical plan (typically a data-only residual subtree or a
/// correlated sub-plan) by lowering it and running the physical evaluator.
///
/// # Errors
///
/// See [`evaluate_physical`].
pub fn evaluate_logical(
    plan: &LogicalExpr,
    resolved: &ResolvedExecs,
    outer: &Env<'_>,
) -> Result<Bag> {
    let physical = lower(plan).map_err(RuntimeError::Algebra)?;
    evaluate_with_outer(&physical, resolved, outer)
}

/// Evaluates a scalar expression against a row environment, resolving
/// aggregate sub-queries through the evaluator.
fn eval_row_scalar(expr: &ScalarExpr, env: &Env<'_>, resolved: &ResolvedExecs) -> Result<Value> {
    let callback = |plan: &LogicalExpr, outer: &Env<'_>| {
        evaluate_logical(plan, resolved, outer)
            .map_err(|e| AlgebraError::Unsupported(e.to_string()))
    };
    eval_scalar_with(expr, env, &callback).map_err(RuntimeError::Algebra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_algebra::{data_of, AggKind, ScalarOp};

    fn person(name: &str, salary: i64, id: i64) -> Value {
        Value::Struct(
            StructValue::new(vec![
                ("id", Value::Int(id)),
                ("name", Value::from(name)),
                ("salary", Value::Int(salary)),
            ])
            .unwrap(),
        )
    }

    fn empty_resolved() -> ResolvedExecs {
        ResolvedExecs::default()
    }

    fn eval(plan: &LogicalExpr) -> Bag {
        evaluate_logical(plan, &empty_resolved(), &Env::root()).unwrap()
    }

    #[test]
    fn intro_query_pipeline_over_data() {
        // map(x.name, select(x.salary > 10, bind(x, data)))
        let data = LogicalExpr::Data(
            [
                person("Mary", 200, 1),
                person("Sam", 50, 2),
                person("Low", 5, 3),
            ]
            .into_iter()
            .collect(),
        );
        let plan = data
            .bind("x")
            .filter(ScalarExpr::binary(
                ScalarOp::Gt,
                ScalarExpr::var_field("x", "salary"),
                ScalarExpr::constant(10i64),
            ))
            .map_project(ScalarExpr::var_field("x", "name"));
        let result = eval(&plan);
        assert_eq!(
            result,
            [Value::from("Mary"), Value::from("Sam")]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn hash_join_combines_sources_on_equal_keys() {
        let left = LogicalExpr::Data(
            [person("Mary", 200, 1), person("Sam", 50, 2)]
                .into_iter()
                .collect(),
        )
        .bind("x");
        let right = LogicalExpr::Data([person("Mary2", 30, 1)].into_iter().collect()).bind("y");
        let join = LogicalExpr::Join {
            left: Box::new(left),
            right: Box::new(right),
            predicate: Some(ScalarExpr::binary(
                ScalarOp::Eq,
                ScalarExpr::var_field("x", "id"),
                ScalarExpr::var_field("y", "id"),
            )),
        }
        .map_project(ScalarExpr::StructLit(vec![
            ("name".into(), ScalarExpr::var_field("x", "name")),
            (
                "total".into(),
                ScalarExpr::binary(
                    ScalarOp::Add,
                    ScalarExpr::var_field("x", "salary"),
                    ScalarExpr::var_field("y", "salary"),
                ),
            ),
        ]));
        let result = eval(&join);
        assert_eq!(result.len(), 1);
        let row = result.iter().next().unwrap().as_struct().unwrap();
        assert_eq!(row.field("total").unwrap(), &Value::Int(230));
    }

    #[test]
    fn correlated_aggregate_uses_outer_row() {
        // The §2.2.3 `multiple` view shape over data:
        // select struct(name: x.name, salary: sum(select z.salary from z in all where x.id = z.id))
        let all: Bag = [
            person("Mary", 200, 1),
            person("Mary-b", 30, 1),
            person("Sam", 50, 2),
        ]
        .into_iter()
        .collect();
        let subplan = LogicalExpr::Data(all.clone())
            .bind("z")
            .filter(ScalarExpr::binary(
                ScalarOp::Eq,
                ScalarExpr::var_field("x", "id"),
                ScalarExpr::var_field("z", "id"),
            ))
            .map_project(ScalarExpr::var_field("z", "salary"));
        let plan = LogicalExpr::Data([person("Mary", 200, 1)].into_iter().collect())
            .bind("x")
            .map_project(ScalarExpr::StructLit(vec![
                ("name".into(), ScalarExpr::var_field("x", "name")),
                (
                    "salary".into(),
                    ScalarExpr::Agg(AggKind::Sum, Box::new(subplan)),
                ),
            ]));
        let result = eval(&plan);
        let row = result.iter().next().unwrap().as_struct().unwrap();
        assert_eq!(row.field("salary").unwrap(), &Value::Int(230));
    }

    #[test]
    fn union_flatten_distinct_aggregate() {
        let plan = LogicalExpr::Aggregate {
            func: AggKind::Count,
            input: Box::new(LogicalExpr::Distinct(Box::new(LogicalExpr::Union(vec![
                data_of([1i64, 2i64, 2i64]),
                data_of([3i64, 3i64]),
            ])))),
        };
        let result = eval(&plan);
        assert_eq!(result, [Value::Int(3)].into_iter().collect());
        let flat = LogicalExpr::Flatten(Box::new(data_of([Value::Bag(
            [Value::Int(1), Value::Int(2)].into_iter().collect(),
        )])));
        assert_eq!(eval(&flat).len(), 2);
    }

    #[test]
    fn source_join_at_mediator_merges_tuples() {
        let employees = LogicalExpr::Data(
            [Value::Struct(
                StructValue::new(vec![("name", Value::from("Mary")), ("dept", Value::Int(1))])
                    .unwrap(),
            )]
            .into_iter()
            .collect(),
        );
        let managers = LogicalExpr::Data(
            [Value::Struct(
                StructValue::new(vec![("mgr", Value::from("Sam")), ("dept", Value::Int(1))])
                    .unwrap(),
            )]
            .into_iter()
            .collect(),
        );
        let join = LogicalExpr::SourceJoin {
            left: Box::new(employees),
            right: Box::new(managers),
            on: vec![("dept".into(), "dept".into())],
        };
        let result = eval(&join);
        assert_eq!(result.len(), 1);
        let row = result.iter().next().unwrap().as_struct().unwrap();
        assert_eq!(row.field("mgr").unwrap(), &Value::from("Sam"));
    }

    #[test]
    fn unresolved_exec_is_an_error() {
        let plan = LogicalExpr::get("person0").submit("r0", "w0", "person0");
        let err = evaluate_logical(&plan, &empty_resolved(), &Env::root()).unwrap_err();
        assert!(matches!(err, RuntimeError::Unsupported(_)));
    }

    #[test]
    fn projection_of_scalar_rows_fails_cleanly() {
        let plan = data_of([1i64, 2i64]).project(["name"]);
        let err = evaluate_logical(&plan, &empty_resolved(), &Env::root()).unwrap_err();
        assert!(matches!(err, RuntimeError::Algebra(_)));
    }
}
