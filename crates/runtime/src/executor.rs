//! The run-time system: orchestrates parallel wrapper calls, full
//! evaluation, and partial evaluation under a deadline (§3, §4, Fig. 2).

use std::sync::Arc;
use std::time::Instant;

use disco_algebra::PhysicalExpr;
use disco_catalog::Catalog;
use disco_optimizer::CalibrationStore;
use disco_wrapper::WrapperRegistry;

use crate::eval::evaluate_physical_with;
use crate::exec::{
    resolve_execs, resolve_execs_streamed, ExecutionConfig, ResolutionMode, ResolvedExecs,
};
use crate::partial::{partial_evaluate_opts, substitute_resolved, Answer, ExecutionStats};
use crate::pipeline::{AdaptiveMode, MemBudget, PipelineMetrics, PipelineOptions};
use crate::{Result, RuntimeError};

/// Executes physical plans against the registered wrappers.
///
/// # Examples
///
/// See the crate-level documentation and the `disco-core` mediator, which
/// wraps the executor together with the catalog and optimizer.
#[derive(Clone)]
pub struct Executor {
    registry: WrapperRegistry,
    config: ExecutionConfig,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("deadline", &self.config.deadline)
            .field("wrappers", &self.registry.names())
            .finish()
    }
}

impl Executor {
    /// Creates an executor over a wrapper registry with the default
    /// configuration (500 ms deadline, no calibration recording).
    #[must_use]
    pub fn new(registry: WrapperRegistry) -> Self {
        Executor {
            registry,
            config: ExecutionConfig::default(),
        }
    }

    /// Sets the deadline after which unanswered sources are classified
    /// unavailable.  `None` waits for every source.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Option<std::time::Duration>) -> Self {
        self.config.deadline = deadline;
        self
    }

    /// Records every finished `exec` call into `store` (feeding the
    /// self-calibrating cost model).
    #[must_use]
    pub fn with_calibration(mut self, store: Arc<CalibrationStore>) -> Self {
        self.config.calibration = Some(store);
        self
    }

    /// Sets the worker-thread count of the mediator-side combine step
    /// (the morsel-driven parallel engine).  `1` is the serial path; `0`
    /// (the default) defers to the `DISCO_THREADS` environment variable.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Chooses how wrapper answers meet the combine step:
    /// [`ResolutionMode::Streamed`] (the default) feeds row chunks into
    /// the pipeline as they arrive; [`ResolutionMode::Blocking`] waits
    /// for every call first (the pre-streaming behaviour, kept for
    /// differential testing and A/B measurement).
    #[must_use]
    pub fn with_resolution(mut self, resolution: ResolutionMode) -> Self {
        self.config.resolution = resolution;
        self
    }

    /// Sets the memory budget of the execution.  A bounded budget makes
    /// the pipeline breakers (hash join, distinct) spill to disk instead
    /// of buffering past it, and bounds the pending-source spools with a
    /// hybrid memory/disk window.  [`MemBudget::Auto`] (the default)
    /// defers to the `DISCO_MEM_BUDGET` environment variable;
    /// [`MemBudget::Unbounded`] pins the in-memory path regardless of
    /// the environment.
    #[must_use]
    pub fn with_mem_budget(mut self, budget: MemBudget) -> Self {
        self.config.mem_budget = budget;
        self
    }

    /// Shares a wrapper-connection pool with this executor: wrapper
    /// calls queue behind the pool's per-repository concurrency caps,
    /// and time spent queued is metered into
    /// [`ExecutionStats::source_wait`].  A serving layer passes one pool
    /// to every session's executor so the caps hold across concurrent
    /// queries.
    #[must_use]
    pub fn with_source_pool(mut self, pool: Arc<crate::pool::SourcePool>) -> Self {
        self.config.source_pool = Some(pool);
        self
    }

    /// Sets the heterogeneity-aware scheduling mode: [`AdaptiveMode::On`]
    /// engages speed-proportional morsel claiming and adaptive hash-join
    /// build-side selection, [`AdaptiveMode::Off`] pins the deterministic
    /// schedule, and [`AdaptiveMode::Auto`] (the default) defers to the
    /// `DISCO_ADAPTIVE` environment variable.
    #[must_use]
    pub fn with_adaptive(mut self, adaptive: AdaptiveMode) -> Self {
        self.config.adaptive = adaptive;
        self
    }

    /// Caps the total rows this query may transfer from its sources.
    /// Exhausting the budget cancels the still-streaming calls through
    /// the deadline path: the query completes as a partial answer whose
    /// residual re-fetches the cancelled sources.  `None` (the default)
    /// is unlimited.
    #[must_use]
    pub fn with_row_budget(mut self, budget: Option<usize>) -> Self {
        self.config.row_budget = budget;
        self
    }

    /// The wrapper registry.
    #[must_use]
    pub fn registry(&self) -> &WrapperRegistry {
        &self.registry
    }

    /// The execution configuration.
    #[must_use]
    pub fn config(&self) -> &ExecutionConfig {
        &self.config
    }

    /// Executes a physical plan.
    ///
    /// All `exec` calls are issued in parallel.  If every source answers,
    /// the plan is evaluated and a complete [`Answer`] is returned.  If
    /// some sources are unavailable at the deadline, the plan is partially
    /// evaluated and the answer contains both the data obtained and the
    /// residual query (§4).
    ///
    /// # Errors
    ///
    /// Hard errors only: capability violations, type conflicts, unknown
    /// wrappers/tables, evaluation errors.  Unavailability is not an error.
    pub fn execute(&self, plan: &PhysicalExpr, catalog: &Catalog) -> Result<Answer> {
        let answer = match self.config.resolution {
            ResolutionMode::Streamed => self.execute_streamed(plan, catalog),
            ResolutionMode::Blocking => self.execute_blocking(plan, catalog),
        }?;
        self.note_source_health(answer.stats());
        Ok(answer)
    }

    /// Feeds the execution's observed per-source behaviour back into the
    /// calibration store: each answered call's latency and row count
    /// update the repository's degradation tracker, so repeated queries
    /// re-plan around chronically slow sources (and stop penalizing them
    /// once they recover).
    fn note_source_health(&self, stats: &ExecutionStats) {
        let Some(store) = &self.config.calibration else {
            return;
        };
        for call in &stats.source_calls {
            if call.available {
                let latency_ms = call.latency.as_secs_f64() * 1000.0;
                store.note_source_wait(&call.repository, latency_ms, call.rows_returned);
            }
        }
    }

    /// The pre-streaming execution path: wait for every wrapper call
    /// (bounded by the deadline), then combine.
    fn execute_blocking(&self, plan: &PhysicalExpr, catalog: &Catalog) -> Result<Answer> {
        let started = Instant::now();
        let resolved = resolve_execs(plan, &self.registry, catalog, &self.config)?;
        let options = PipelineOptions {
            threads: self.config.threads,
            mem_budget: self.config.mem_budget,
            adaptive: self.config.adaptive,
            ..PipelineOptions::default()
        };
        if resolved.all_available() {
            // The answer bag is drawn from the streaming pipeline's final
            // sink; the metrics record what the pipeline actually
            // buffered — per-worker counters merged exactly, so the
            // number is the same at every thread count.
            let metrics = PipelineMetrics::new();
            let data = evaluate_physical_with(plan, &resolved, &metrics, options)?;
            let stats = ExecutionStats {
                exec_calls: resolved.call_count(),
                rows_transferred: resolved.rows_transferred(),
                rows_materialized: metrics.rows_materialized(),
                unavailable: resolved.unavailable_repositories(),
                elapsed: started.elapsed(),
                source_calls: resolved.stats().to_vec(),
                time_to_first_row: metrics.time_to_first_row_since(started),
                source_wait: metrics.source_wait() + resolved.source_queue_wait(),
                rows_kernel: metrics.rows_kernel(),
                rows_fallback: metrics.rows_fallback(),
                bytes_spilled: metrics.bytes_spilled() + resolved.spool_bytes_spilled(),
                spill_partitions: metrics.spill_partitions(),
                peak_tracked_bytes: metrics.peak_tracked_bytes(),
            };
            Ok(Answer::complete(data, stats))
        } else {
            self.partial_answer(plan, &resolved, options, started, None)
        }
    }

    /// The streamed execution path: spawn every wrapper call, evaluate
    /// optimistically while chunks arrive, and fall back to partial
    /// evaluation when a source turns out (or is deadline-classified)
    /// unavailable.
    fn execute_streamed(&self, plan: &PhysicalExpr, catalog: &Catalog) -> Result<Answer> {
        let started = Instant::now();
        let mut resolved = resolve_execs_streamed(plan, &self.registry, catalog, &self.config)?;
        let options = PipelineOptions {
            threads: self.config.threads,
            mem_budget: self.config.mem_budget,
            adaptive: self.config.adaptive,
            ..PipelineOptions::default()
        };
        let metrics = PipelineMetrics::new();
        match evaluate_physical_with(plan, &resolved, &metrics, options) {
            Ok(data) => {
                // Drained every source the plan touches.  Wait for the
                // (rare) spools evaluation never pulled — e.g. a nested
                // sub-plan guarded by an empty outer — so classification
                // matches the blocking path's exactly.
                resolved.finalize_streamed()?;
                if resolved.all_available() {
                    let stats = ExecutionStats {
                        exec_calls: resolved.call_count(),
                        rows_transferred: resolved.rows_transferred(),
                        rows_materialized: metrics.rows_materialized(),
                        unavailable: Vec::new(),
                        elapsed: started.elapsed(),
                        source_calls: resolved.stats().to_vec(),
                        time_to_first_row: metrics.time_to_first_row_since(started),
                        source_wait: metrics.source_wait() + resolved.source_queue_wait(),
                        rows_kernel: metrics.rows_kernel(),
                        rows_fallback: metrics.rows_fallback(),
                        bytes_spilled: metrics.bytes_spilled() + resolved.spool_bytes_spilled(),
                        spill_partitions: metrics.spill_partitions(),
                        peak_tracked_bytes: metrics.peak_tracked_bytes(),
                    };
                    Ok(Answer::complete(data, stats))
                } else {
                    // An undrained source missed the deadline: produce the
                    // same partial answer the blocking path would.
                    self.partial_answer(plan, &resolved, options, started, Some(&metrics))
                }
            }
            Err(RuntimeError::PendingUnavailable(_)) => {
                resolved.finalize_streamed()?;
                self.partial_answer(plan, &resolved, options, started, Some(&metrics))
            }
            Err(other) => {
                // Hard error: disconnect the remaining wrapper calls so
                // they wind down instead of running detached.
                resolved.cancel_pending();
                Err(other)
            }
        }
    }

    /// Partial evaluation over finalized outcomes: data from the sources
    /// that answered plus the residual plan over the ones that did not.
    /// `streamed` carries the optimistic attempt's metrics, whose
    /// first-row timestamp is genuine — the row reached the sink while
    /// sources were still answering.
    fn partial_answer(
        &self,
        plan: &PhysicalExpr,
        resolved: &ResolvedExecs,
        options: PipelineOptions,
        started: Instant,
        streamed: Option<&PipelineMetrics>,
    ) -> Result<Answer> {
        let logical = plan.to_logical();
        let substituted = substitute_resolved(&logical, resolved);
        let (data, residual) = partial_evaluate_opts(&substituted, resolved, options)?;
        let stats = ExecutionStats {
            exec_calls: resolved.call_count(),
            rows_transferred: resolved.rows_transferred(),
            rows_materialized: 0,
            unavailable: resolved.unavailable_repositories(),
            elapsed: started.elapsed(),
            source_calls: resolved.stats().to_vec(),
            time_to_first_row: streamed.and_then(|m| m.time_to_first_row_since(started)),
            source_wait: streamed
                .map(PipelineMetrics::source_wait)
                .unwrap_or_default()
                + resolved.source_queue_wait(),
            rows_kernel: streamed.map(PipelineMetrics::rows_kernel).unwrap_or(0),
            rows_fallback: streamed.map(PipelineMetrics::rows_fallback).unwrap_or(0),
            bytes_spilled: streamed.map(PipelineMetrics::bytes_spilled).unwrap_or(0)
                + resolved.spool_bytes_spilled(),
            spill_partitions: streamed.map(PipelineMetrics::spill_partitions).unwrap_or(0),
            peak_tracked_bytes: streamed
                .map(PipelineMetrics::peak_tracked_bytes)
                .unwrap_or(0),
        };
        Ok(match residual {
            Some(residual) => Answer::partial(data, residual, stats),
            None => Answer::complete(data, stats),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_algebra::{lower, LogicalExpr, ScalarExpr, ScalarOp};
    use disco_catalog::{Attribute, InterfaceDef, MetaExtent, Repository, TypeRef, WrapperDef};
    use disco_source::{Availability, NetworkProfile, RelationalStore, SimulatedLink, Table};
    use disco_value::Value;
    use disco_wrapper::RelationalWrapper;

    /// Builds the paper's introductory scenario: r0 holds Mary (salary 200),
    /// r1 holds Sam (salary 50); separate stores and links per repository.
    fn paper_setup() -> (
        Catalog,
        WrapperRegistry,
        Arc<SimulatedLink>,
        Arc<SimulatedLink>,
    ) {
        let mut catalog = Catalog::new();
        catalog
            .define_interface(
                InterfaceDef::new("Person")
                    .with_extent_name("person")
                    .with_attribute(Attribute::new("name", TypeRef::String))
                    .with_attribute(Attribute::new("salary", TypeRef::Int)),
            )
            .unwrap();
        catalog
            .add_wrapper(WrapperDef::new("w_r0", "relational"))
            .unwrap();
        catalog
            .add_wrapper(WrapperDef::new("w_r1", "relational"))
            .unwrap();
        catalog
            .add_repository(Repository::new("r0").with_host("rodin"))
            .unwrap();
        catalog.add_repository(Repository::new("r1")).unwrap();
        catalog
            .add_extent(MetaExtent::new("person0", "Person", "w_r0", "r0"))
            .unwrap();
        catalog
            .add_extent(MetaExtent::new("person1", "Person", "w_r1", "r1"))
            .unwrap();

        let registry = WrapperRegistry::new();
        let mut t0 = Table::new("person0", ["name", "salary"]);
        t0.insert_values([("name", Value::from("Mary")), ("salary", Value::Int(200))])
            .unwrap();
        let store0 = Arc::new(RelationalStore::new());
        store0.put_table(t0);
        let link0 = Arc::new(SimulatedLink::new("r0", NetworkProfile::fast(), 1));
        registry.register(Arc::new(RelationalWrapper::new(
            "w_r0",
            store0,
            Arc::clone(&link0),
        )));

        let mut t1 = Table::new("person1", ["name", "salary"]);
        t1.insert_values([("name", Value::from("Sam")), ("salary", Value::Int(50))])
            .unwrap();
        let store1 = Arc::new(RelationalStore::new());
        store1.put_table(t1);
        let link1 = Arc::new(SimulatedLink::new("r1", NetworkProfile::fast(), 2));
        registry.register(Arc::new(RelationalWrapper::new(
            "w_r1",
            store1,
            Arc::clone(&link1),
        )));
        (catalog, registry, link0, link1)
    }

    /// The canonical plan of the paper's introductory query.
    fn intro_plan() -> disco_algebra::PhysicalExpr {
        let branch = |extent: &str, repo: &str, wrapper: &str| {
            LogicalExpr::get(extent)
                .submit(repo, wrapper, extent)
                .filter(ScalarExpr::binary(
                    ScalarOp::Gt,
                    ScalarExpr::attr("salary"),
                    ScalarExpr::constant(10i64),
                ))
                .bind("x")
                .map_project(ScalarExpr::var_field("x", "name"))
        };
        lower(&LogicalExpr::Union(vec![
            branch("person0", "r0", "w_r0"),
            branch("person1", "r1", "w_r1"),
        ]))
        .unwrap()
    }

    #[test]
    fn complete_answer_when_all_sources_available() {
        let (catalog, registry, _l0, _l1) = paper_setup();
        let executor = Executor::new(registry);
        let answer = executor.execute(&intro_plan(), &catalog).unwrap();
        assert!(answer.is_complete());
        assert_eq!(
            *answer.data(),
            [Value::from("Mary"), Value::from("Sam")]
                .into_iter()
                .collect()
        );
        assert_eq!(answer.stats().exec_calls, 2);
        assert!(answer.unavailable_sources().is_empty());
    }

    #[test]
    fn partial_answer_when_r0_is_unavailable() {
        let (catalog, registry, link0, _l1) = paper_setup();
        link0.set_availability(Availability::Unavailable);
        let executor = Executor::new(registry);
        let answer = executor.execute(&intro_plan(), &catalog).unwrap();
        assert!(!answer.is_complete());
        assert_eq!(*answer.data(), [Value::from("Sam")].into_iter().collect());
        assert_eq!(answer.unavailable_sources(), &["r0".to_owned()]);
        let text = answer.as_query_text();
        assert_eq!(
            text,
            "union(select x.name from x in person0 where x.salary > 10, bag(\"Sam\"))"
        );
    }

    #[test]
    fn recovery_then_resubmission_yields_the_full_answer() {
        let (catalog, registry, link0, _l1) = paper_setup();
        link0.set_availability(Availability::Unavailable);
        let executor = Executor::new(registry);
        let partial = executor.execute(&intro_plan(), &catalog).unwrap();
        assert!(!partial.is_complete());
        // The source recovers; re-executing the *residual* plan plus the
        // data already obtained gives the original complete answer.
        link0.set_availability(Availability::Available);
        let residual_plan = lower(&disco_algebra::LogicalExpr::Union(vec![
            partial.residual().unwrap().clone(),
            disco_algebra::LogicalExpr::Data(partial.data().clone()),
        ]))
        .unwrap();
        let complete = executor.execute(&residual_plan, &catalog).unwrap();
        assert!(complete.is_complete());
        assert_eq!(
            *complete.data(),
            [Value::from("Mary"), Value::from("Sam")]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn deadline_classifies_slow_sources_as_unavailable() {
        let (catalog, registry, link0, _l1) = paper_setup();
        // r0 answers, but only after 200 ms of real sleep; the deadline is
        // 30 ms, so it must be classified unavailable.
        link0.set_profile(
            NetworkProfile::fast()
                .with_availability(Availability::Slow { extra_ms: 200 })
                .with_real_sleep(true),
        );
        let executor =
            Executor::new(registry).with_deadline(Some(std::time::Duration::from_millis(30)));
        let answer = executor.execute(&intro_plan(), &catalog).unwrap();
        assert!(!answer.is_complete());
        assert_eq!(answer.unavailable_sources(), &["r0".to_owned()]);
        assert_eq!(*answer.data(), [Value::from("Sam")].into_iter().collect());
    }

    #[test]
    fn calibration_is_fed_by_executions() {
        let (catalog, registry, _l0, _l1) = paper_setup();
        let store = Arc::new(CalibrationStore::new());
        let executor = Executor::new(registry).with_calibration(Arc::clone(&store));
        executor.execute(&intro_plan(), &catalog).unwrap();
        assert_eq!(store.exact_shapes(), 2);
        let est = store.estimate("r0", &LogicalExpr::get("person0"));
        assert_eq!(est.source, disco_optimizer::MatchKind::Exact);
        assert!((est.rows - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn all_sources_unavailable_returns_pure_residual() {
        let (catalog, registry, link0, link1) = paper_setup();
        link0.set_availability(Availability::Unavailable);
        link1.set_availability(Availability::Unavailable);
        let executor = Executor::new(registry);
        let answer = executor.execute(&intro_plan(), &catalog).unwrap();
        assert!(!answer.is_complete());
        assert!(answer.data().is_empty());
        assert_eq!(answer.unavailable_sources().len(), 2);
        // The residual is the whole original query (modulo location
        // transparency).
        let residual = answer.residual_oql().unwrap();
        assert!(residual.contains("person0"));
        assert!(residual.contains("person1"));
    }
}
