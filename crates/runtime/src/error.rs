use std::fmt;

/// Errors produced by the run-time system.
///
/// Note that an *unavailable data source* is deliberately **not** an error:
/// it produces a partial answer (§4).  Errors here are hard failures —
/// capability violations, type conflicts, malformed plans.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A wrapper reported a hard error (capability violation, type
    /// conflict, unknown table, …).
    Wrapper(disco_wrapper::WrapperError),
    /// An evaluation error at the mediator.
    Algebra(disco_algebra::AlgebraError),
    /// A catalog lookup failed while executing (missing extent, wrapper or
    /// repository binding).
    Catalog(disco_catalog::CatalogError),
    /// The plan references a wrapper name with no registered implementation.
    UnknownWrapper(String),
    /// The plan has a shape the executor cannot evaluate.
    Unsupported(String),
    /// A worker of the parallel engine panicked while executing its share
    /// of a pipeline.  The panic is contained (`catch_unwind` plus an
    /// abort flag that stops the rest of the pool), converted to this
    /// error, and surfaced from `evaluate_physical` like any evaluation
    /// failure — never a hang, never a process abort.  A wrapper call
    /// that panics during streamed resolution is contained the same way.
    WorkerPanic(String),
    /// A *pending* (still-streaming) source was classified unavailable —
    /// either its wrapper reported unavailability mid-stream or the
    /// execution deadline expired while it was still answering.  This is
    /// the streamed-resolution analogue of `resolve_execs` returning an
    /// unavailable outcome: the executor catches it, finalizes the
    /// resolution and falls back to partial evaluation; it is **not** a
    /// hard error for callers of [`crate::Executor::execute`].
    PendingUnavailable(String),
    /// A spill file of a memory-budgeted pipeline breaker could not be
    /// written or read back (disk full, spill directory missing, corrupt
    /// run).  Only produced when a memory budget is configured
    /// (`PipelineOptions::mem_budget` / `DISCO_MEM_BUDGET`); the default
    /// unbounded configuration never touches disk.
    Spill(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Wrapper(err) => write!(f, "wrapper error: {err}"),
            RuntimeError::Algebra(err) => write!(f, "evaluation error: {err}"),
            RuntimeError::Catalog(err) => write!(f, "catalog error: {err}"),
            RuntimeError::UnknownWrapper(name) => write!(f, "no wrapper registered under: {name}"),
            RuntimeError::Unsupported(msg) => write!(f, "unsupported plan shape: {msg}"),
            RuntimeError::WorkerPanic(msg) => {
                write!(f, "parallel worker panicked during evaluation: {msg}")
            }
            RuntimeError::PendingUnavailable(repository) => {
                write!(
                    f,
                    "source {repository} became unavailable during streamed resolution \
                     (partial evaluation required)"
                )
            }
            RuntimeError::Spill(msg) => write!(f, "spill i/o error: {msg}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Wrapper(err) => Some(err),
            RuntimeError::Algebra(err) => Some(err),
            RuntimeError::Catalog(err) => Some(err),
            _ => None,
        }
    }
}

impl From<disco_wrapper::WrapperError> for RuntimeError {
    fn from(err: disco_wrapper::WrapperError) -> Self {
        RuntimeError::Wrapper(err)
    }
}

impl From<disco_algebra::AlgebraError> for RuntimeError {
    fn from(err: disco_algebra::AlgebraError) -> Self {
        RuntimeError::Algebra(err)
    }
}

impl From<disco_catalog::CatalogError> for RuntimeError {
    fn from(err: disco_catalog::CatalogError) -> Self {
        RuntimeError::Catalog(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: RuntimeError = disco_algebra::AlgebraError::DivisionByZero.into();
        assert_eq!(e.to_string(), "evaluation error: division by zero");
        let e: RuntimeError = disco_catalog::CatalogError::UnknownExtent("x".into()).into();
        assert!(matches!(e, RuntimeError::Catalog(_)));
        assert_eq!(
            RuntimeError::UnknownWrapper("w9".into()).to_string(),
            "no wrapper registered under: w9"
        );
    }
}
