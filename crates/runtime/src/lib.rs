//! # disco-runtime
//!
//! The DISCO run-time system (§3.3, §4, Fig. 2): it executes physical
//! plans by issuing every `exec` (wrapper) call **in parallel**, applies
//! local transformation maps and the run-time type check at the wrapper
//! boundary, evaluates the mediator-side operators, records finished calls
//! into the self-calibrating cost store, and — when sources do not answer
//! by the deadline — performs **partial evaluation**: the answer to the
//! query is another query, `union(<residual query over the unavailable
//! sources>, <data from the available sources>)`.
//!
//! The central types are [`Executor`] and [`Answer`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod eval;
mod exec;
mod executor;
mod partial;

pub use error::RuntimeError;
pub use eval::{evaluate_logical, evaluate_physical, evaluate_with_outer};
pub use exec::{
    collect_exec_calls, resolve_execs, ExecKey, ExecOutcome, ExecutionConfig, ResolvedExecs,
    SourceCallStats,
};
pub use executor::Executor;
pub use partial::{
    is_fully_resolved, partial_evaluate, substitute_resolved, Answer, ExecutionStats,
};

/// Convenience result alias for runtime operations.
pub type Result<T> = std::result::Result<T, RuntimeError>;
