//! # disco-runtime
//!
//! The DISCO run-time system (§3.3, §4, Fig. 2): it executes physical
//! plans by issuing every `exec` (wrapper) call **in parallel**, applies
//! local transformation maps and the run-time type check at the wrapper
//! boundary, evaluates the mediator-side operators, records finished calls
//! into the self-calibrating cost store, and — when sources do not answer
//! by the deadline — performs **partial evaluation**: the answer to the
//! query is another query, `union(<residual query over the unavailable
//! sources>, <data from the available sources>)`.
//!
//! The central types are [`Executor`] and [`Answer`].
//!
//! # The streaming cursor engine
//!
//! Mediator-side operators execute through a **pull-based cursor
//! pipeline** ([`pipeline`]): a physical plan is opened into a tree of
//! [`pipeline::RowStream`] cursors and rows are pulled through it one at
//! a time.  Operators come in two kinds:
//!
//! * **Streaming** — scan, filter, project, map, bind, union, flatten.
//!   These forward each row as soon as it is produced and hold no per-row
//!   state, so a `filter → join → project` chain moves rows end to end
//!   without any intermediate bag.
//! * **Pipeline breakers** — the hash-join *build side* (the smaller
//!   input, picked from resolved `exec` cardinalities and literal bag
//!   lengths), the re-scanned inner of a nested-loop or merge-tuples
//!   join, the `distinct` seen-set, and aggregates (which fold their
//!   input with O(1) state).  Only these ever buffer rows; the final
//!   answer bag is produced by the pipeline's collect sink.
//!
//! The classification is part of the physical algebra
//! (`disco_algebra::PhysicalExpr::pipeline_behavior`), and
//! [`pipeline::PipelineMetrics`] counts what each execution actually
//! buffered, so the claim is enforced by tests rather than asserted in
//! prose.
//!
//! Join output is **lazy**: a join match yields the (left, right) row
//! frames, not a merged struct.  Downstream scalar evaluation layers the
//! frames onto the [`disco_algebra::Env`] scope chain — a struct row
//! binds its fields, join frames stack left-to-right so right fields
//! shadow left ones, and correlated sub-queries see the enclosing scopes.
//! A merged output struct is only built if an unmerged join row reaches a
//! consumer that needs one value (distinct, a column projection, the
//! final sink).
//!
//! Partial evaluation is unchanged by the streaming engine: fully
//! resolved subtrees are streamed to data, and plans that still touch
//! unavailable sources stay residual, exactly as in §4.  The seed
//! bag-at-a-time evaluator is preserved as [`reference`](mod@reference) and used by the
//! differential tests to pin the streaming engine's semantics.
//!
//! [`evaluate_physical`] remains the convenience entry point: it opens a
//! pipeline, drains it, and returns the bag.
//!
//! # Morsel-driven parallel execution
//!
//! The combine step can run on a fixed pool of worker threads
//! ([`pipeline::parallel`]): set `DISCO_THREADS`, [`PipelineOptions`]'
//! `threads` field, or [`Executor::with_threads`].  The scheduler splits
//! the streaming pipeline into claimable morsels (leaf-scan sub-ranges,
//! union branches — including the per-source resolved scans of a
//! federated query), stages hash-join builds as hash-sharded scatter
//! phases probed through a shared read-only table, dedups distinct
//! shard-wise, and folds aggregates per morsel with an ordered merge.
//! `threads = 1` (the default) is the unchanged serial path; at any
//! thread count the answer multiset, residual plans, and
//! [`PipelineMetrics`] are identical — per-worker counters merge exactly
//! at the barrier ([`PipelineMetrics::merge`]) — and a panicking cursor
//! on a worker surfaces as [`RuntimeError::WorkerPanic`] rather than a
//! hang or abort.  Plans the scheduler cannot decompose (nested-loop
//! spines, unresolved sources) fall back to the serial engine unchanged.
//!
//! # Memory budgets and spilling
//!
//! Pipeline-breaker state can be bounded ([`pipeline::spill`]): set
//! `DISCO_MEM_BUDGET` (a positive byte count), [`PipelineOptions`]'
//! `mem_budget` field, or [`Executor::with_mem_budget`].  When the
//! tracked bytes of a hash-join build table or a distinct seen-set reach
//! the budget, the breaker hash-partitions its state into disk runs and
//! recurses per partition (Grace style); the spools of still-answering
//! wrapper calls keep a bounded in-memory hot window, overflow older
//! chunks to disk, and backpressure the wrapper thread when the disk
//! tier also fills.  Aggregates keep O(1) state and never spill.  Spill
//! files are written to `DISCO_SPILL_DIR` (the system temp directory by
//! default) and deleted eagerly — on success *and* on error paths.  The
//! answer multiset, errors, and `rows_materialized` are identical to the
//! unbounded path; [`ExecutionStats`] reports `bytes_spilled`,
//! `spill_partitions`, and `peak_tracked_bytes`.  The default (no
//! environment variable, `MemBudget::Auto`) is unbounded — the
//! pre-budget behavior, byte for byte.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod eval;
mod exec;
mod executor;
mod partial;
pub mod pipeline;
mod pool;
pub mod reference;

pub use error::RuntimeError;
pub use eval::{
    evaluate_logical, evaluate_physical, evaluate_physical_with, evaluate_physical_with_metrics,
    evaluate_physical_with_options, evaluate_with_outer,
};
pub use exec::{
    collect_exec_calls, resolve_execs, resolve_execs_streamed, ExecKey, ExecOutcome,
    ExecutionConfig, PendingSource, ResolutionMode, ResolvedExecs, SourceCallStats,
};
pub use executor::Executor;
pub use partial::{
    is_fully_resolved, partial_evaluate, partial_evaluate_opts, partial_evaluate_reference,
    substitute_resolved, Answer, ExecutionStats,
};
pub use pipeline::{
    AdaptiveMode, BuildSide, ColumnarMode, MemBudget, PipelineMetrics, PipelineOptions,
};
pub use pool::SourcePool;

/// Convenience result alias for runtime operations.
pub type Result<T> = std::result::Result<T, RuntimeError>;
