//! # disco-runtime
//!
//! The DISCO run-time system (§3.3, §4, Fig. 2): it executes physical
//! plans by issuing every `exec` (wrapper) call **in parallel**, applies
//! local transformation maps and the run-time type check at the wrapper
//! boundary, evaluates the mediator-side operators, records finished calls
//! into the self-calibrating cost store, and — when sources do not answer
//! by the deadline — performs **partial evaluation**: the answer to the
//! query is another query, `union(<residual query over the unavailable
//! sources>, <data from the available sources>)`.
//!
//! The central types are [`Executor`] and [`Answer`].
//!
//! # Row environments and the zero-clone evaluator
//!
//! The evaluator never deep-copies rows: values are `Arc`-backed
//! (`disco_value`), so moving a row from one operator to the next is a
//! reference-count bump.  Scalar expressions (filter predicates, join
//! keys, projections) are evaluated against a layered
//! [`disco_algebra::Env`] instead of a merged row struct:
//!
//! * the **outer scope** carries the enclosing query's bindings (used by
//!   correlated aggregate sub-queries),
//! * the **row scope** exposes the current row — a struct row binds its
//!   fields, a non-struct row is bound as `it`,
//! * joins stack the left row, then the right row; lookup walks
//!   innermost-out, so inner scopes shadow outer ones exactly as the old
//!   merged-struct environments did.
//!
//! Stacking a scope is allocation-free (an `Env` is a scope plus a parent
//! pointer), so per-row evaluation does no environment work at all.  The
//! hash join builds a real `HashMap` keyed by the canonical `Value` hash
//! over *borrowed* build-side rows and materialises a joined output row
//! only for probe pairs that survive the residual predicate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod eval;
mod exec;
mod executor;
mod partial;

pub use error::RuntimeError;
pub use eval::{evaluate_logical, evaluate_physical, evaluate_with_outer};
pub use exec::{
    collect_exec_calls, resolve_execs, ExecKey, ExecOutcome, ExecutionConfig, ResolvedExecs,
    SourceCallStats,
};
pub use executor::Executor;
pub use partial::{
    is_fully_resolved, partial_evaluate, substitute_resolved, Answer, ExecutionStats,
};

/// Convenience result alias for runtime operations.
pub type Result<T> = std::result::Result<T, RuntimeError>;
