//! Join cursors.
//!
//! The hash join buffers exactly one input (the *build side* — by default
//! the smaller one by estimated cardinality) into a hash table keyed by
//! the canonical `Value` hash, then streams the other input through it.
//! Output rows are **lazy**: a match yields a [`Row`] carrying the frames
//! of both sides, and the merged struct is only constructed if a
//! downstream consumer needs one value.  The nested-loop and merge-tuples
//! joins buffer their right input (it is re-scanned once per left row)
//! and stream the left.
//!
//! # Spilling (bounded memory budgets)
//!
//! Under a bounded [`MemoryBudget`](super::spill::MemoryBudget) the hash
//! join charges every build row; when the budget trips it goes *Grace*:
//! the resident table and the rest of the build input are hash-routed
//! into 8 disk runs, the whole probe input is routed by the same hash
//! (probe *keys* are still evaluated in arrival order, so key-evaluation
//! errors surface exactly where the in-memory path reports them), and
//! each (build, probe) partition pair is then loaded and probed in turn —
//! re-splitting into 8 children at the next hash level if a partition
//! alone still exceeds the budget.  The output multiset, error identity
//! and `rows_materialized` (one bump per build row, at original
//! consumption only) are identical to the in-memory path; only the
//! emission *order* differs (partition-major), which the answer bag —
//! a multiset — does not observe.
//!
//! The nested-loop and merge-tuples inner buffers are bounded too
//! ([`InnerBuffer`]): rows past the budget trip go to a single disk run
//! that is rewound and re-read once per outer row, at row-granularity
//! trip detection (peak overshoot ≤ one row).  Emission order is
//! unchanged — the tail pass replays rows in their original order.

use std::collections::hash_map::RandomState;
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasher, BuildHasherDefault};
use std::rc::Rc;

use disco_algebra::{truthy, AlgebraError, ScalarExpr};
use disco_value::{approx_value_bytes, Value};

use super::sink::IdentityHasher;
use super::spill::{
    approx_row_bytes, record_row, row_record, spill_partition, RewindableRun, RunFile,
    RunFileReader, RunPass, MAX_SPILL_LEVEL, SPILL_FANOUT,
};
use super::{
    eval_in_pair, eval_in_row, BoxedRowStream, Frame, PipelineCtx, Result, Row, RowStream,
};

/// Cost threshold for the adaptive build-side choice
/// ([`super::decide_build_side`]): a first-answered side larger than this
/// many rows is not adopted as the build side — buffering it would likely
/// cost more than waiting out the still-streaming side.
pub(crate) const ADAPTIVE_BUILD_MAX_ROWS: usize = 1 << 20;

/// Which hash-join input to buffer as the build side.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BuildSide {
    /// Pick the smaller input by estimated cardinality (resolved `exec`
    /// row counts and literal bag lengths); unknowns fall back to `Right`.
    #[default]
    Auto,
    /// Always buffer the left input and probe with the right.
    Left,
    /// Always buffer the right input and probe with the left.
    Right,
}

/// Validates that every frame a join consumes is a struct row, mirroring
/// the materializing evaluator's `as_struct` checks at join boundaries.
pub(crate) fn check_struct_frames(row: &Row<'_>) -> Result<()> {
    for frame in row.frames() {
        frame.value().as_struct().map_err(AlgebraError::from)?;
    }
    Ok(())
}

/// The vectorized hash join's build table.
///
/// Unlike [`HashJoinCursor`]'s `HashMap<Value, …>`, the table is bucketed
/// by *precomputed* canonical hash (identity-hashed buckets, no re-hash on
/// insert or probe), so the columnar spine can hash a whole key column in
/// one [`disco_value::KeyHasher`] pass and per-row fallback inserts stay
/// consistent by hashing the same key values through the same
/// [`RandomState`].  Groups keep build rows in insertion order and carry
/// the row's *table index*, which doubles as the row's slot in the
/// build-side payload chunk used by fused pair projections.
pub(crate) struct ColumnarJoinTable<'a> {
    state: RandomState,
    buckets: HashMap<u64, Vec<ColumnarKeyGroup>, BuildHasherDefault<IdentityHasher>>,
    rows: Vec<Row<'a>>,
}

/// Build rows sharing one key value (hash collisions keep separate
/// groups; equality is the canonical `Value` equality).
struct ColumnarKeyGroup {
    key: Value,
    indices: Vec<u32>,
}

impl<'a> ColumnarJoinTable<'a> {
    pub(crate) fn new() -> Self {
        ColumnarJoinTable {
            state: RandomState::new(),
            buckets: HashMap::default(),
            rows: Vec::new(),
        }
    }

    /// A clone of the table's hash state — the key spines hash through
    /// this so batch-computed hashes agree with [`Self::hash_value`].
    pub(crate) fn state(&self) -> RandomState {
        self.state.clone()
    }

    /// The canonical hash of a key under the table's state (the per-row
    /// fallback path's hash).
    pub(crate) fn hash_value(&self, key: &Value) -> u64 {
        self.state.hash_one(key)
    }

    /// Inserts one build row under its precomputed key hash.
    ///
    /// # Panics
    ///
    /// Panics if the table exceeds `u32::MAX` rows (build sides are far
    /// smaller; the index doubles as a payload-chunk slot).
    pub(crate) fn insert(&mut self, hash: u64, key: Value, row: Row<'a>) {
        let index = u32::try_from(self.rows.len()).expect("build side fits u32 indexes");
        self.rows.push(row);
        let groups = self.buckets.entry(hash).or_default();
        match groups.iter_mut().find(|g| g.key == key) {
            Some(group) => group.indices.push(index),
            None => groups.push(ColumnarKeyGroup {
                key,
                indices: vec![index],
            }),
        }
    }

    /// The table indices of the build rows matching `key` (empty when
    /// none), in insertion order.
    pub(crate) fn lookup(&self, hash: u64, key: &Value) -> &[u32] {
        self.buckets
            .get(&hash)
            .and_then(|groups| groups.iter().find(|g| g.key == *key))
            .map_or(&[], |g| g.indices.as_slice())
    }

    /// The build row at table index `index`.
    pub(crate) fn row(&self, index: u32) -> &Row<'a> {
        &self.rows[index as usize]
    }
}

/// Hash join with lazy output rows.
pub(crate) struct HashJoinCursor<'a> {
    build_input: Option<BoxedRowStream<'a>>,
    probe_input: BoxedRowStream<'a>,
    build_key: &'a ScalarExpr,
    probe_key: &'a ScalarExpr,
    residual: Option<&'a ScalarExpr>,
    /// `true` when the build side is the plan's *left* input; output
    /// frames are always ordered left-then-right regardless.
    build_on_left: bool,
    ctx: PipelineCtx<'a>,
    table: Option<HashMap<Value, Rc<Vec<Row<'a>>>>>,
    /// Grace-partitioned disk state; `Some` once the build tripped the
    /// memory budget (the in-memory `table` then stays `None`).
    spill: Option<JoinSpill<'a>>,
    /// Probe rows pulled in batches into a reused buffer and handed out
    /// one at a time from `probe_pos`.
    probe_buf: Vec<Row<'a>>,
    probe_pos: usize,
    probe_exhausted: bool,
    /// The probe row currently being expanded, its matches, and the next
    /// match index.
    current: Option<Expansion<'a>>,
}

/// A probe row being expanded: the row, its build-side matches, and the
/// index of the next match to emit.
type Expansion<'a> = (Row<'a>, Rc<Vec<Row<'a>>>, usize);

/// The disk state of a spilled hash join: pending (build-run, probe-run)
/// partition pairs and the partition currently loaded for probing.
struct JoinSpill<'a> {
    /// The partition router.  Independent of the table's key equality:
    /// it only decides which run a key lands in, at every level.
    route: RandomState,
    queue: VecDeque<JoinPartition>,
    current: Option<PartitionProbe<'a>>,
}

/// One pending Grace partition: its build and probe runs and the hash
/// level its rows were routed at.
struct JoinPartition {
    build: RunFileReader,
    probe: RunFileReader,
    level: u32,
}

/// A loaded partition being probed: its in-memory table (charged against
/// the budget until the partition drains) and the rest of its probe run.
struct PartitionProbe<'a> {
    table: HashMap<Value, Rc<Vec<Row<'a>>>>,
    probe: RunFileReader,
    charged: usize,
}

/// Result of loading one partition's build run against the budget.
enum LoadOutcome<'a> {
    Loaded(PartitionProbe<'a>),
    Split(Vec<JoinPartition>),
}

impl<'a> HashJoinCursor<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        left: BoxedRowStream<'a>,
        right: BoxedRowStream<'a>,
        left_key: &'a ScalarExpr,
        right_key: &'a ScalarExpr,
        residual: Option<&'a ScalarExpr>,
        build_on_left: bool,
        ctx: PipelineCtx<'a>,
    ) -> Self {
        let (build_input, probe_input, build_key, probe_key) = if build_on_left {
            (left, right, left_key, right_key)
        } else {
            (right, left, right_key, left_key)
        };
        HashJoinCursor {
            build_input: Some(build_input),
            probe_input,
            build_key,
            probe_key,
            residual,
            build_on_left,
            ctx,
            table: None,
            spill: None,
            probe_buf: Vec::new(),
            probe_pos: 0,
            probe_exhausted: false,
            current: None,
        }
    }

    /// Drains the build input into the hash table (the one materialization
    /// this operator performs).  Under a bounded budget every row is
    /// charged; if the budget trips, the build goes Grace instead
    /// ([`Self::spill_build`]) — the trip is detected per batch, so the
    /// resident overshoot is at most one batch of rows.
    fn build_table(&mut self) -> Result<()> {
        let mut input = self
            .build_input
            .take()
            .expect("build side is consumed exactly once");
        let budget = self.ctx.budget;
        let mut table: HashMap<Value, Vec<Row<'a>>> = HashMap::new();
        let mut charged = 0usize;
        let mut tripped = false;
        let mut buf = Vec::with_capacity(super::BATCH_ROWS);
        let more = loop {
            let more = input.next_batch(&mut buf, super::BATCH_ROWS)?;
            for row in buf.drain(..) {
                check_struct_frames(&row)?;
                let key = eval_in_row(self.build_key, &row, self.ctx)?;
                self.ctx.metrics.bump_materialized();
                let cost = approx_row_bytes(&row) + approx_value_bytes(&key);
                charged += cost;
                if !budget.charge(cost) {
                    tripped = true;
                }
                table.entry(key).or_default().push(row);
            }
            if !more || tripped {
                break more;
            }
        };
        if !tripped {
            self.table = Some(
                table
                    .into_iter()
                    .map(|(key, rows)| (key, Rc::new(rows)))
                    .collect(),
            );
            return Ok(());
        }
        self.spill = Some(self.spill_build(table, charged, input, more)?);
        Ok(())
    }

    /// Grace spill: flush the resident table plus the rest of the build
    /// input into 8 hash-routed disk runs, then route the *entire* probe
    /// input by the same hash.  Probe keys are evaluated here, in arrival
    /// order, so key-evaluation errors are reported exactly where the
    /// in-memory probe loop would report them.
    fn spill_build(
        &mut self,
        table: HashMap<Value, Vec<Row<'a>>>,
        charged: usize,
        mut input: BoxedRowStream<'a>,
        mut more: bool,
    ) -> Result<JoinSpill<'a>> {
        let budget = self.ctx.budget;
        let route = RandomState::new();
        let mut build_runs = new_runs()?;
        for (key, rows) in table {
            let p = spill_partition(route.hash_one(&key), 0);
            for row in rows {
                build_runs[p].push(&row_record(&key, row))?;
            }
        }
        budget.uncharge(charged);
        // The rest of the build input goes straight to disk; this is the
        // row's original consumption, so it still bumps
        // `rows_materialized` — reloads from disk never bump again.
        let mut buf = Vec::with_capacity(super::BATCH_ROWS);
        while more {
            more = input.next_batch(&mut buf, super::BATCH_ROWS)?;
            for row in buf.drain(..) {
                check_struct_frames(&row)?;
                let key = eval_in_row(self.build_key, &row, self.ctx)?;
                self.ctx.metrics.bump_materialized();
                let p = spill_partition(route.hash_one(&key), 0);
                build_runs[p].push(&row_record(&key, row))?;
            }
        }
        let build_counts: Vec<u64> = build_runs.iter().map(RunFile::rows).collect();
        // Route the probe side.  Rows landing in a partition whose build
        // run is empty can never match and are dropped here (their key
        // was already evaluated above, so no error is lost).
        let mut probe_runs = new_runs()?;
        while let Some(probe) = self.pull_probe()? {
            check_struct_frames(&probe)?;
            let key = eval_in_row(self.probe_key, &probe, self.ctx)?;
            let p = spill_partition(route.hash_one(&key), 0);
            if build_counts[p] == 0 {
                continue;
            }
            probe_runs[p].push(&row_record(&key, probe))?;
        }
        let bytes: u64 = build_runs.iter().map(RunFile::bytes).sum::<u64>()
            + probe_runs.iter().map(RunFile::bytes).sum::<u64>();
        self.ctx.metrics.add_bytes_spilled(bytes);
        self.ctx.metrics.add_spill_partitions(SPILL_FANOUT);
        let mut queue = VecDeque::new();
        for (build, probe) in build_runs.into_iter().zip(probe_runs) {
            if build.rows() == 0 {
                continue;
            }
            queue.push_back(JoinPartition {
                build: build.into_reader()?,
                probe: probe.into_reader()?,
                level: 0,
            });
        }
        Ok(JoinSpill {
            route,
            queue,
            current: None,
        })
    }

    /// Next (probe row, matches) pair from the spilled partitions; `None`
    /// once every partition has drained.
    fn next_spilled(&mut self) -> Result<Option<Expansion<'a>>> {
        let ctx = self.ctx;
        let spill = self.spill.as_mut().expect("spilled mode");
        loop {
            if spill.current.is_none() {
                loop {
                    let Some(part) = spill.queue.pop_front() else {
                        return Ok(None);
                    };
                    match load_or_split(ctx, &spill.route, part)? {
                        LoadOutcome::Loaded(p) => {
                            spill.current = Some(p);
                            break;
                        }
                        LoadOutcome::Split(children) => {
                            // Children go to the front: depth-first keeps
                            // the open-file count proportional to the
                            // recursion depth, not the partition count.
                            for child in children.into_iter().rev() {
                                spill.queue.push_front(child);
                            }
                        }
                    }
                }
            }
            let part = spill.current.as_mut().expect("loaded above");
            match part.probe.next_record()? {
                Some(mut rec) => {
                    let key = rec.remove(0);
                    let row = record_row(rec);
                    if let Some(matches) = part.table.get(&key) {
                        return Ok(Some((row, Rc::clone(matches), 0)));
                    }
                }
                None => {
                    ctx.budget.uncharge(part.charged);
                    spill.current = None;
                }
            }
        }
    }

    /// The next probe row, refilling the (reused) probe buffer as needed.
    fn pull_probe(&mut self) -> Result<Option<Row<'a>>> {
        loop {
            if self.probe_pos < self.probe_buf.len() {
                // Move the row out, leaving a free placeholder behind; the
                // buffer is cleared wholesale on the next refill.
                let row =
                    std::mem::replace(&mut self.probe_buf[self.probe_pos], Row::owned(Value::Null));
                self.probe_pos += 1;
                return Ok(Some(row));
            }
            if self.probe_exhausted {
                return Ok(None);
            }
            self.probe_buf.clear();
            self.probe_pos = 0;
            let more = self
                .probe_input
                .next_batch(&mut self.probe_buf, super::BATCH_ROWS)?;
            if !more {
                self.probe_exhausted = true;
            }
        }
    }

    /// Produces the next joined row, or `None` when the probe side is
    /// exhausted.  Shared by the row-at-a-time and batched pulls.
    fn produce(&mut self) -> Result<Option<Row<'a>>> {
        loop {
            // Expand the current probe row's remaining matches.
            if let Some((probe, matches, index)) = &mut self.current {
                while *index < matches.len() {
                    let candidate = &matches[*index];
                    *index += 1;
                    let (lrow, rrow) = if self.build_on_left {
                        (candidate, &*probe)
                    } else {
                        (&*probe, candidate)
                    };
                    let keep = match self.residual {
                        Some(p) => truthy(&eval_in_pair(p, lrow, rrow, self.ctx)?),
                        None => true,
                    };
                    if keep {
                        // Only surviving pairs construct an output row.
                        return Ok(Some(Row::joined(lrow.clone(), rrow.clone())));
                    }
                }
                self.current = None;
            }
            // Pull the next probe row that has matches.
            if self.spill.is_some() {
                match self.next_spilled()? {
                    Some(next) => self.current = Some(next),
                    None => return Ok(None),
                }
                continue;
            }
            let Some(probe) = self.pull_probe()? else {
                return Ok(None);
            };
            check_struct_frames(&probe)?;
            let key = eval_in_row(self.probe_key, &probe, self.ctx)?;
            let table = self.table.as_ref().expect("table built before probing");
            if let Some(matches) = table.get(&key) {
                self.current = Some((probe, Rc::clone(matches), 0));
            }
        }
    }
}

impl<'a> RowStream<'a> for HashJoinCursor<'a> {
    fn next_row(&mut self) -> Option<Result<Row<'a>>> {
        if self.build_input.is_some() {
            if let Err(err) = self.build_table() {
                return Some(Err(err));
            }
        }
        self.produce().transpose()
    }

    fn next_batch(&mut self, out: &mut Vec<Row<'a>>, max: usize) -> Result<bool> {
        if self.build_input.is_some() {
            self.build_table()?;
        }
        for _ in 0..max {
            match self.produce()? {
                Some(row) => out.push(row),
                None => return Ok(false),
            }
        }
        Ok(true)
    }
}

/// One fan-out's worth of fresh spill runs.
fn new_runs() -> Result<Vec<RunFile>> {
    (0..SPILL_FANOUT).map(|_| RunFile::create()).collect()
}

/// Loads one partition's build run into an in-memory table, charging the
/// budget per row.  A partition that alone exceeds the budget is
/// re-split into 8 children at the next hash level — unless it is
/// already at the deepest level (necessarily duplicate-key-dominated, a
/// split could not separate it), in which case it loads whole and the
/// budget overcommits for its duration.
fn load_or_split<'a>(
    ctx: PipelineCtx<'a>,
    route: &RandomState,
    part: JoinPartition,
) -> Result<LoadOutcome<'a>> {
    let budget = ctx.budget;
    let JoinPartition {
        mut build,
        probe,
        level,
    } = part;
    let mut table: HashMap<Value, Vec<Row<'a>>> = HashMap::new();
    let mut charged = 0usize;
    while let Some(mut rec) = build.next_record()? {
        let key = rec.remove(0);
        let row = record_row(rec);
        let cost = approx_row_bytes(&row) + approx_value_bytes(&key);
        charged += cost;
        let within = budget.charge(cost);
        table.entry(key).or_default().push(row);
        if !within && level < MAX_SPILL_LEVEL {
            return split_partition(ctx, route, table, charged, build, probe, level);
        }
    }
    Ok(LoadOutcome::Loaded(PartitionProbe {
        table: table
            .into_iter()
            .map(|(key, rows)| (key, Rc::new(rows)))
            .collect(),
        probe,
        charged,
    }))
}

/// Re-splits an over-budget partition: the partially loaded table and the
/// unread rest of its build run are routed into 8 child build runs at the
/// next hash level, the probe run likewise, and the children replace the
/// parent in the queue.  Reloaded rows were counted at their original
/// consumption, so nothing here touches `rows_materialized`.
#[allow(clippy::too_many_arguments)]
fn split_partition<'a>(
    ctx: PipelineCtx<'a>,
    route: &RandomState,
    table: HashMap<Value, Vec<Row<'a>>>,
    charged: usize,
    mut build_rest: RunFileReader,
    mut probe: RunFileReader,
    level: u32,
) -> Result<LoadOutcome<'a>> {
    let next = level + 1;
    let mut build_runs = new_runs()?;
    for (key, rows) in table {
        let p = spill_partition(route.hash_one(&key), next);
        for row in rows {
            build_runs[p].push(&row_record(&key, row))?;
        }
    }
    ctx.budget.uncharge(charged);
    while let Some(rec) = build_rest.next_record()? {
        let p = spill_partition(route.hash_one(&rec[0]), next);
        build_runs[p].push(&rec)?;
    }
    let build_counts: Vec<u64> = build_runs.iter().map(RunFile::rows).collect();
    let mut probe_runs = new_runs()?;
    while let Some(rec) = probe.next_record()? {
        let p = spill_partition(route.hash_one(&rec[0]), next);
        if build_counts[p] == 0 {
            continue;
        }
        probe_runs[p].push(&rec)?;
    }
    let bytes: u64 = build_runs.iter().map(RunFile::bytes).sum::<u64>()
        + probe_runs.iter().map(RunFile::bytes).sum::<u64>();
    ctx.metrics.add_bytes_spilled(bytes);
    ctx.metrics.add_spill_partitions(SPILL_FANOUT);
    let mut children = Vec::new();
    for (build, probe) in build_runs.into_iter().zip(probe_runs) {
        if build.rows() == 0 {
            continue;
        }
        children.push(JoinPartition {
            build: build.into_reader()?,
            probe: probe.into_reader()?,
            level: next,
        });
    }
    Ok(LoadOutcome::Split(children))
}

/// The budget-bounded inner buffer of the nested-loop and merge-tuples
/// joins: a resident prefix (charged against the budget) plus an optional
/// disk tail for everything past the trip point.  The tail is re-read
/// once per outer row through [`RewindableRun::pass`].
///
/// The trip is at **row granularity** — the first row whose charge fails
/// goes to disk immediately (and is uncharged), so the tracked peak
/// overshoots the limit by at most that one row.  Every row is counted in
/// `rows_materialized` at original consumption, spilled or not, so the
/// counter is budget-invariant; the run's bytes land in `bytes_spilled`.
struct InnerBuffer<T> {
    resident: Vec<T>,
    tail: Option<Tail>,
    charged: usize,
}

impl<T> Default for InnerBuffer<T> {
    fn default() -> Self {
        InnerBuffer {
            resident: Vec::new(),
            tail: None,
            charged: 0,
        }
    }
}

impl<T> InnerBuffer<T> {
    /// Admit one item: resident while the budget holds, spilled to the
    /// tail run from the first failed charge on.  `cost` is the item's
    /// resident size, `record` its spill serialization.
    fn admit(
        &mut self,
        item: T,
        cost: usize,
        record: impl FnOnce(T) -> Vec<Value>,
        ctx: PipelineCtx<'_>,
    ) -> Result<()> {
        if self.tail.is_none() {
            if ctx.budget.charge(cost) {
                self.charged += cost;
                self.resident.push(item);
                return Ok(());
            }
            ctx.budget.uncharge(cost);
            self.tail = Some(Tail::Writing(RunFile::create()?));
        }
        match self.tail.as_mut().expect("created above") {
            Tail::Writing(run) => run.push(&record(item)),
            Tail::Sealed(_) => unreachable!("admit after seal"),
        }
    }
}

/// A tail run is written once during buffering, then sealed into its
/// rewindable form for the per-outer-row passes.
enum Tail {
    Writing(RunFile),
    Sealed(RewindableRun),
}

/// Seal a fully written buffer: flush the tail run (if any) and count its
/// bytes as spilled.
fn seal_tail(tail: &mut Option<Tail>, ctx: PipelineCtx<'_>) -> Result<()> {
    if let Some(Tail::Writing(run)) = tail.take() {
        ctx.metrics.add_bytes_spilled(run.bytes());
        *tail = Some(Tail::Sealed(RewindableRun::from_run(run)?));
    }
    Ok(())
}

/// Start a pass over a sealed tail, or `None` when nothing spilled.
fn tail_pass(tail: &mut Option<Tail>) -> Result<Option<RunPass>> {
    match tail {
        None => Ok(None),
        Some(Tail::Sealed(run)) => Ok(Some(run.pass()?)),
        Some(Tail::Writing(_)) => unreachable!("pass before seal"),
    }
}

/// Serialize a row's frames as a spill record ([`record_row`] reverses
/// it; inner-buffer records carry no join key).
fn frames_record(row: Row<'_>) -> Vec<Value> {
    row.into_frame_vec()
        .into_iter()
        .map(Frame::into_value)
        .collect()
}

/// Materializes a cursor into the budget-bounded inner buffer, validating
/// struct frames and counting the buffered rows.
fn buffer_rows<'a>(
    mut input: BoxedRowStream<'a>,
    ctx: PipelineCtx<'a>,
) -> Result<InnerBuffer<Row<'a>>> {
    let mut buffer = InnerBuffer::default();
    let mut buf = Vec::with_capacity(super::BATCH_ROWS);
    loop {
        let more = input.next_batch(&mut buf, super::BATCH_ROWS)?;
        for row in buf.drain(..) {
            check_struct_frames(&row)?;
            ctx.metrics.bump_materialized();
            let cost = approx_row_bytes(&row);
            buffer.admit(row, cost, frames_record, ctx)?;
        }
        if !more {
            break;
        }
    }
    seal_tail(&mut buffer.tail, ctx)?;
    Ok(buffer)
}

/// Nested-loop join: streams the left input, buffering the right (which is
/// re-scanned once per left row — from memory, plus a rewound disk pass
/// for any spilled tail).
pub(crate) struct NestedLoopCursor<'a> {
    left: BoxedRowStream<'a>,
    right_input: Option<BoxedRowStream<'a>>,
    right: InnerBuffer<Row<'a>>,
    predicate: Option<&'a ScalarExpr>,
    ctx: PipelineCtx<'a>,
    current_left: Option<Row<'a>>,
    right_index: usize,
    /// The current left row's pass over the spilled tail; `None` until
    /// the resident prefix is exhausted (or when nothing spilled).
    tail_pass: Option<RunPass>,
}

impl<'a> NestedLoopCursor<'a> {
    pub(crate) fn new(
        left: BoxedRowStream<'a>,
        right: BoxedRowStream<'a>,
        predicate: Option<&'a ScalarExpr>,
        ctx: PipelineCtx<'a>,
    ) -> Self {
        NestedLoopCursor {
            left,
            right_input: Some(right),
            right: InnerBuffer::default(),
            predicate,
            ctx,
            current_left: None,
            right_index: 0,
            tail_pass: None,
        }
    }

    /// The next right-side row for the current left row: the resident
    /// prefix first, then a sequential pass over the spilled tail.
    fn next_right(&mut self) -> Result<Option<Row<'a>>> {
        if self.right_index < self.right.resident.len() {
            let row = self.right.resident[self.right_index].clone();
            self.right_index += 1;
            return Ok(Some(row));
        }
        if self.tail_pass.is_none() {
            self.tail_pass = tail_pass(&mut self.right.tail)?;
        }
        let Some(pass) = self.tail_pass.as_mut() else {
            return Ok(None);
        };
        Ok(pass.next_record()?.map(record_row))
    }
}

impl Drop for NestedLoopCursor<'_> {
    fn drop(&mut self) {
        self.ctx.budget.uncharge(self.right.charged);
        self.right.charged = 0;
    }
}

impl<'a> RowStream<'a> for NestedLoopCursor<'a> {
    fn next_row(&mut self) -> Option<Result<Row<'a>>> {
        if let Some(right) = self.right_input.take() {
            match buffer_rows(right, self.ctx) {
                Ok(rows) => self.right = rows,
                Err(err) => return Some(Err(err)),
            }
        }
        loop {
            if self.current_left.is_none() {
                let left = match self.left.next_row()? {
                    Ok(row) => row,
                    Err(err) => return Some(Err(err)),
                };
                if let Err(err) = check_struct_frames(&left) {
                    return Some(Err(err));
                }
                self.current_left = Some(left);
                self.right_index = 0;
                self.tail_pass = None;
            }
            loop {
                let right = match self.next_right() {
                    Ok(Some(row)) => row,
                    Ok(None) => break,
                    Err(err) => return Some(Err(err)),
                };
                let left = self.current_left.as_ref().expect("set above");
                let keep = match self.predicate {
                    Some(p) => match eval_in_pair(p, left, &right, self.ctx) {
                        Ok(v) => truthy(&v),
                        Err(err) => return Some(Err(err)),
                    },
                    None => true,
                };
                if keep {
                    // Only surviving pairs construct an output row.
                    return Some(Ok(Row::joined(left.clone(), right)));
                }
            }
            self.current_left = None;
        }
    }
}

/// Source-style equi-join executed at the mediator: merges the raw source
/// tuples with a disambiguating prefix (the `MergeTuplesJoin` semantics),
/// so its output rows are materialized structs by construction.
pub(crate) struct MergeTuplesCursor<'a> {
    left: BoxedRowStream<'a>,
    right_input: Option<BoxedRowStream<'a>>,
    right: InnerBuffer<Value>,
    on: &'a [(String, String)],
    ctx: PipelineCtx<'a>,
    current_left: Option<Value>,
    right_index: usize,
    /// The current left value's pass over the spilled tail.
    tail_pass: Option<RunPass>,
}

impl<'a> MergeTuplesCursor<'a> {
    pub(crate) fn new(
        left: BoxedRowStream<'a>,
        right: BoxedRowStream<'a>,
        on: &'a [(String, String)],
        ctx: PipelineCtx<'a>,
    ) -> Self {
        MergeTuplesCursor {
            left,
            right_input: Some(right),
            right: InnerBuffer::default(),
            on,
            ctx,
            current_left: None,
            right_index: 0,
            tail_pass: None,
        }
    }

    /// Materializes the right input into the budget-bounded inner buffer.
    fn buffer_right(&mut self, mut input: BoxedRowStream<'a>) -> Result<()> {
        while let Some(row) = input.next_row() {
            let value = row.and_then(|r| r.materialize(self.ctx.metrics))?;
            self.ctx.metrics.bump_materialized();
            let cost = disco_value::approx_value_bytes(&value);
            self.right.admit(value, cost, |v| vec![v], self.ctx)?;
        }
        seal_tail(&mut self.right.tail, self.ctx)
    }

    /// The next right-side value for the current left value: resident
    /// prefix first, then a sequential pass over the spilled tail.
    fn next_right(&mut self) -> Result<Option<Value>> {
        if self.right_index < self.right.resident.len() {
            let value = self.right.resident[self.right_index].clone();
            self.right_index += 1;
            return Ok(Some(value));
        }
        if self.tail_pass.is_none() {
            self.tail_pass = tail_pass(&mut self.right.tail)?;
        }
        let Some(pass) = self.tail_pass.as_mut() else {
            return Ok(None);
        };
        Ok(pass
            .next_record()?
            .map(|mut rec| rec.pop().unwrap_or(Value::Null)))
    }

    fn merge(&self, left: &Value, right: &Value) -> Result<Option<Row<'a>>> {
        let ls = left.as_struct().map_err(AlgebraError::from)?;
        let rs = right.as_struct().map_err(AlgebraError::from)?;
        for (lattr, rattr) in self.on {
            let lv = ls.field(lattr).map_err(AlgebraError::from)?;
            let rv = rs.field(rattr).map_err(AlgebraError::from)?;
            if lv != rv {
                return Ok(None);
            }
        }
        let merged = ls
            .merge_with_prefix(rs, "right")
            .map_err(AlgebraError::from)?;
        Ok(Some(Row::owned(Value::Struct(merged))))
    }
}

impl Drop for MergeTuplesCursor<'_> {
    fn drop(&mut self) {
        self.ctx.budget.uncharge(self.right.charged);
        self.right.charged = 0;
    }
}

impl<'a> RowStream<'a> for MergeTuplesCursor<'a> {
    fn next_row(&mut self) -> Option<Result<Row<'a>>> {
        if let Some(right) = self.right_input.take() {
            if let Err(err) = self.buffer_right(right) {
                return Some(Err(err));
            }
        }
        loop {
            if self.current_left.is_none() {
                let left = match self.left.next_row()? {
                    Ok(row) => row,
                    Err(err) => return Some(Err(err)),
                };
                let left = match left.materialize(self.ctx.metrics) {
                    Ok(value) => value,
                    Err(err) => return Some(Err(err)),
                };
                self.current_left = Some(left);
                self.right_index = 0;
                self.tail_pass = None;
            }
            loop {
                let right = match self.next_right() {
                    Ok(Some(value)) => value,
                    Ok(None) => break,
                    Err(err) => return Some(Err(err)),
                };
                let left = self.current_left.as_ref().expect("set above");
                match self.merge(left, &right) {
                    Ok(Some(row)) => return Some(Ok(row)),
                    Ok(None) => {}
                    Err(err) => return Some(Err(err)),
                }
            }
            self.current_left = None;
        }
    }
}
