//! Morsel-driven parallel execution of streaming pipelines.
//!
//! The serial engine pulls rows through one cursor tree; this module
//! executes the same plans on a fixed pool of `std` worker threads.  A
//! plan is decomposed (`compile`) along the physical algebra's
//! [`ExchangeBehavior`] classification:
//!
//! * the chain of `Morsel` operators from the root down to a leaf scan is
//!   the *partitioned pipeline* — each worker runs its own cursor tree
//!   over a claimed sub-range (morsel) of the leaf bag,
//! * a `Branches` operator (union — including the per-source resolved
//!   scans of a federated query) turns each branch into an independent
//!   task,
//! * each `Partitioned` breaker becomes a *phase*: hash-join build sides
//!   are scattered by key hash into per-worker shard vectors and
//!   assembled into a shared read-only `JoinTable` at the barrier,
//!   distinct dedups shard-wise after a scatter phase, and aggregates
//!   fold per-morsel partial states merged in morsel order,
//! * `Pinned` operators (nested-loop / merge-tuples joins) and any other
//!   shape the decomposition does not recognise fall back to the serial
//!   engine unchanged.
//!
//! # Determinism
//!
//! Workers claim morsels dynamically (an atomic counter), but nothing
//! observable depends on the claim order: morsel boundaries are a pure
//! function of input length and thread count, every per-task output is
//! indexed by task id and merged in task order at the barrier, and shard
//! routing hashes values, not workers.  The same plan at the same thread
//! count therefore yields the same answer multiset *and* the same
//! [`PipelineMetrics`] on every run — and the metrics equal the serial
//! engine's at every thread count, because breakers buffer exactly the
//! same rows, just split across workers ([`PipelineMetrics::merge`] sums
//! the per-worker counts exactly).
//!
//! With adaptivity engaged ([`PipelineOptions::adaptive_enabled`]) one
//! determinism guarantee is deliberately traded for heterogeneity
//! tolerance: morsel *sizes* follow each worker's observed throughput
//! (a `RateTracker` EWMA), so the boundaries are no longer a pure
//! function of `(len, threads)` and can differ run over run.  Answers
//! still cannot drift — adaptive slice claims hand out contiguous
//! ascending ranges with ids in claim order, so the task-order merge
//! reassembles the input order exactly, and every row is still
//! processed exactly once.  What may legitimately vary is scheduling
//! detail (how many claims a slow worker made) and, through the
//! adaptive build-side choice, `rows_materialized` — which is why the
//! differential suites compare adaptive runs against the pinned
//! engine's *answers*, not its metrics.
//!
//! # Poison safety
//!
//! A worker that panics mid-batch must not hang the pool or abort the
//! process: each task runs under `catch_unwind`, a panic is converted to
//! [`RuntimeError::WorkerPanic`], and an abort flag stops the remaining
//! workers at their next claim.  `std::thread::scope` guarantees every
//! worker has exited before the phase returns.
//!
//! [`ExchangeBehavior`]: disco_algebra::ExchangeBehavior

use std::hash::{BuildHasher, RandomState};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use std::sync::Arc;

use disco_algebra::{AggKind, Env, PhysicalExpr, ScalarExpr};
use disco_value::{Bag, Value};
use parking_lot::Mutex;

use crate::exec::{ExecKey, ExecOutcome, PendingSource, Progress, ResolvedExecs};
use crate::{Result, RuntimeError};

use super::columnar::{self, KeyedBatch};
use super::exchange::{
    empty_shards, morsel_ranges, morsel_size, shard_count, shard_of, JoinTable, KeyedRow,
    MorselQueue, RateTracker, Scattered, SharedProbeCursor, MORSEL_ROWS,
};
use super::join::check_struct_frames;
use super::sink::{AggState, SeenSet};
use super::spill::MemoryBudget;
use super::{
    build, decide_build_side, BoxedRowStream, PipelineCtx, PipelineMetrics, PipelineOptions,
    BATCH_ROWS,
};

/// Hard ceiling on the worker pool size.
pub const MAX_THREADS: usize = 64;

/// The `DISCO_THREADS` default, validated at parse time (cached at first
/// use).  Unset or empty means `1` (the serial path); unparsable or zero
/// values are rejected with a warning and fall back to `1`; values above
/// [`MAX_THREADS`] are clamped with a warning — the same validation the
/// `DISCO_BATCH_ROWS` path applies.
fn env_threads() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        let Ok(raw) = std::env::var("DISCO_THREADS") else {
            return 1;
        };
        if raw.trim().is_empty() {
            return 1;
        }
        match raw.trim().parse::<usize>() {
            Ok(0) | Err(_) => {
                eprintln!(
                    "disco: invalid DISCO_THREADS {raw:?} (want an integer in 1..={MAX_THREADS}); using 1"
                );
                1
            }
            Ok(n) if n > MAX_THREADS => {
                eprintln!("disco: DISCO_THREADS {n} exceeds the maximum; clamping to {MAX_THREADS}");
                MAX_THREADS
            }
            Ok(n) => n,
        }
    })
}

/// The worker count an execution with `options` will actually use:
/// `options.threads` when set, otherwise the `DISCO_THREADS` environment
/// variable, otherwise `1`.  Explicit values above [`MAX_THREADS`] are
/// clamped (warning once per process).
#[must_use]
pub fn effective_threads(options: PipelineOptions) -> usize {
    match options.threads {
        0 => env_threads(),
        n if n > MAX_THREADS => {
            static WARNED: OnceLock<()> = OnceLock::new();
            WARNED.get_or_init(|| {
                eprintln!(
                    "disco: PipelineOptions::threads {n} exceeds the maximum; clamping to {MAX_THREADS}"
                );
            });
            MAX_THREADS
        }
        n => n,
    }
}

/// What consumes the partitioned pipeline's output.
#[derive(Clone, Copy)]
enum Terminal {
    /// The final collect sink: per-task value vectors concatenated in
    /// task order.
    Collect,
    /// Hash-partitioned distinct: scatter by value hash, dedup shard-wise.
    Distinct,
    /// Per-morsel partial folds merged in morsel order.
    Aggregate(AggKind),
}

/// Where the pipeline splits into parallel parts.
enum PartSource<'a> {
    /// A leaf scan split into morsel-sized sub-ranges.
    Slice {
        node: &'a PhysicalExpr,
        rows: &'a [Value],
    },
    /// A union whose branches are independent tasks.
    Branches {
        node: &'a PhysicalExpr,
        branches: &'a [PhysicalExpr],
    },
    /// A still-resolving `exec` leaf: a morsel source that *grows* as the
    /// wrapper pushes chunks.  Workers claim chunks of arrived rows from
    /// the spool, so the combine step overlaps source latency at every
    /// thread count.
    Stream {
        node: &'a PhysicalExpr,
        source: &'a Arc<PendingSource>,
    },
}

/// One hash join on the probe path, executed as a build phase plus a
/// shared-table probe inside the partitioned pipeline.
struct JoinStage<'a> {
    node: &'a PhysicalExpr,
    build: &'a PhysicalExpr,
    probe: &'a PhysicalExpr,
    build_key: &'a ScalarExpr,
    probe_key: &'a ScalarExpr,
    residual: Option<&'a ScalarExpr>,
    build_on_left: bool,
}

/// A compiled parallel execution: terminal, probe-path join stages
/// (outermost first) and the partition source at the bottom.
struct ParPlan<'a> {
    terminal: Terminal,
    body: &'a PhysicalExpr,
    stages: Vec<JoinStage<'a>>,
    source: PartSource<'a>,
}

/// One claimable unit of pipeline work, tagged with its merge id so
/// per-task outputs can be re-ordered deterministically at the barrier.
#[derive(Clone)]
enum Task {
    /// The whole (un-partitioned) pipeline as a single task.
    Whole,
    /// A sub-range of the partition leaf's rows.
    Range {
        id: usize,
        range: std::ops::Range<usize>,
    },
    /// One union branch.
    Branch { id: usize, index: usize },
    /// One chunk of rows claimed from a growing (pending) source; `id` is
    /// the claim sequence number, which equals the chunk's position in
    /// the spool's arrival order.
    Chunk { id: usize, rows: Arc<Vec<Value>> },
}

impl Task {
    fn id(&self) -> usize {
        match self {
            Task::Whole => 0,
            Task::Range { id, .. } | Task::Branch { id, .. } | Task::Chunk { id, .. } => *id,
        }
    }
}

/// Claim state of a [`TaskQueue::Stream`].
struct StreamClaim {
    /// Spool rows already handed out as chunks.
    offset: usize,
    /// Next chunk id.
    seq: usize,
}

/// Claim state of a [`TaskQueue::Adaptive`]: the next unclaimed row and
/// the next task id.  Ranges are handed out contiguously in ascending
/// order, so ids in claim order reassemble the input order at the merge.
struct AdaptiveClaim {
    next: usize,
    seq: usize,
}

/// Hands out tasks to workers: a fixed, precomputed list (leaf ranges,
/// union branches), an adaptive slice claimer that sizes each range to
/// the claiming worker's observed throughput, or a stream of chunks
/// claimed from a pending source as its rows arrive.
enum TaskQueue<'q> {
    Fixed {
        queue: MorselQueue,
        tasks: Vec<Task>,
    },
    /// Speed-proportional slice claiming: each worker claims the next
    /// contiguous range, sized by its [`RateTracker::claim_factor`] so a
    /// degraded worker never holds an oversized morsel at the barrier.
    Adaptive {
        len: usize,
        /// Full-speed claim size — the pinned path's morsel size for the
        /// same `(len, threads)`.
        base: usize,
        claim: Mutex<AdaptiveClaim>,
        rates: RateTracker,
    },
    Stream {
        source: &'q Arc<PendingSource>,
        claim: Mutex<StreamClaim>,
        /// Where blocked claim time is charged (`PipelineMetrics::
        /// source_wait`).  One shared instance is enough: waits are
        /// summed at the merge barrier, not attributed per worker.
        wait_metrics: &'q PipelineMetrics,
        /// When adaptivity is engaged, slow workers ask the spool for
        /// proportionally fewer rows per claim, so a fast worker is not
        /// starved while a slow one chews an oversized chunk.
        rates: Option<RateTracker>,
    },
}

impl<'q> TaskQueue<'q> {
    fn fixed(tasks: Vec<Task>) -> Self {
        TaskQueue::Fixed {
            queue: MorselQueue::new(tasks.len()),
            tasks,
        }
    }

    fn for_source<'a>(
        source: &'q PartSource<'a>,
        threads: usize,
        wait_metrics: &'q PipelineMetrics,
        options: PipelineOptions,
    ) -> Self {
        let adaptive = options.adaptive_enabled() && threads > 1;
        match source {
            PartSource::Slice { rows, .. } if adaptive => TaskQueue::Adaptive {
                len: rows.len(),
                base: morsel_size(rows.len(), threads),
                claim: Mutex::new(AdaptiveClaim { next: 0, seq: 0 }),
                rates: RateTracker::new(threads),
            },
            PartSource::Slice { rows, .. } => TaskQueue::fixed(
                morsel_ranges(rows.len(), threads)
                    .into_iter()
                    .enumerate()
                    .map(|(id, range)| Task::Range { id, range })
                    .collect(),
            ),
            PartSource::Branches { branches, .. } => TaskQueue::fixed(
                (0..branches.len())
                    .map(|index| Task::Branch { id: index, index })
                    .collect(),
            ),
            PartSource::Stream { source, .. } => TaskQueue::Stream {
                source,
                claim: Mutex::new(StreamClaim { offset: 0, seq: 0 }),
                wait_metrics,
                rates: adaptive.then(|| RateTracker::new(threads)),
            },
        }
    }

    /// Wakes workers blocked in [`TaskQueue::claim`] when the phase
    /// aborts: the pending source is classified unavailable and its
    /// wrapper call cancelled, so a blocked claimer returns promptly
    /// instead of waiting out the stream (or the deadline).  The abort's
    /// own error has a real task id and outranks the claimer's, so the
    /// surfaced failure is unchanged.  No-op for fixed queues, whose
    /// claims never block.
    fn interrupt(&self) {
        if let TaskQueue::Stream { source, .. } = self {
            source.interrupt();
        }
    }

    /// An upper bound on useful workers; `None` when unknown (stream).
    fn task_hint(&self) -> Option<usize> {
        match self {
            TaskQueue::Fixed { tasks, .. } => Some(tasks.len()),
            // Sizes shrink below `base` for slow workers (making *more*
            // claims, never fewer), so full-speed claim count bounds the
            // useful pool.
            TaskQueue::Adaptive { len, base, .. } => Some(len.div_ceil(*base)),
            TaskQueue::Stream { .. } => None,
        }
    }

    /// Claims the next task for `worker`; blocks on a stream source until
    /// rows arrive.
    ///
    /// # Errors
    ///
    /// Stream sources propagate unavailability (deadline / reported),
    /// hard wrapper failures and contained wrapper panics.
    fn claim(&self, worker: usize) -> Result<Option<Task>> {
        match self {
            TaskQueue::Fixed { queue, tasks } => Ok(queue.claim().map(|i| tasks[i].clone())),
            TaskQueue::Adaptive {
                len,
                base,
                claim,
                rates,
            } => {
                let size = rates.scaled_claim(worker, *base);
                let mut claim = claim.lock();
                if claim.next >= *len {
                    return Ok(None);
                }
                let start = claim.next;
                let end = (start + size).min(*len);
                claim.next = end;
                let id = claim.seq;
                claim.seq += 1;
                Ok(Some(Task::Range {
                    id,
                    range: start..end,
                }))
            }
            TaskQueue::Stream {
                source,
                claim,
                wait_metrics,
                rates,
            } => {
                let max = rates
                    .as_ref()
                    .map_or(MORSEL_ROWS, |r| r.scaled_claim(worker, MORSEL_ROWS));
                let mut claim = claim.lock();
                let (progress, blocked) = source.wait_rows(claim.offset, max);
                if !blocked.is_zero() {
                    wait_metrics.add_source_wait(blocked);
                }
                match progress {
                    Progress::Rows(rows) => {
                        claim.offset += rows.len();
                        let id = claim.seq;
                        claim.seq += 1;
                        Ok(Some(Task::Chunk {
                            id,
                            rows: Arc::new(rows),
                        }))
                    }
                    Progress::Done => Ok(None),
                    Progress::Unavailable => Err(RuntimeError::PendingUnavailable(
                        source.repository().to_owned(),
                    )),
                    Progress::Failed(err) => Err(RuntimeError::Wrapper(err)),
                    Progress::Panicked(msg) => Err(RuntimeError::WorkerPanic(msg)),
                    Progress::SpillError(msg) => Err(RuntimeError::Spill(msg)),
                }
            }
        }
    }

    /// Feeds one completed task back into the queue's rate tracker (a
    /// no-op for non-adaptive queues and row-less task kinds).
    fn note(&self, worker: usize, task: &Task, elapsed: std::time::Duration) {
        let rates = match self {
            TaskQueue::Adaptive { rates, .. } => rates,
            TaskQueue::Stream {
                rates: Some(rates), ..
            } => rates,
            _ => return,
        };
        let rows = match task {
            Task::Range { range, .. } => range.len(),
            Task::Chunk { rows, .. } => rows.len(),
            Task::Whole | Task::Branch { .. } => return,
        };
        rates.note(worker, rows, elapsed);
    }
}

/// Attempts to evaluate `plan` on the parallel engine; `None` when the
/// plan has no decomposition (the caller then uses the serial path).
pub(crate) fn try_evaluate(
    plan: &PhysicalExpr,
    resolved: &ResolvedExecs,
    outer: &Env<'_>,
    metrics: &PipelineMetrics,
    options: PipelineOptions,
    budget: &MemoryBudget,
) -> Option<Result<Bag>> {
    let threads = effective_threads(options);
    let par = compile(plan, resolved, options)?;
    // Under a bounded memory budget, plans with buffering breakers run on
    // the serial engine: its Grace cursors spill, while the staged shared
    // tables and sharded seen-sets here do not — and routing both thread
    // counts through the same spill path keeps answers, errors and
    // `rows_materialized` identical at 1 and N threads.  Breaker-free
    // pipelines (scans, unions, aggregate folds) still parallelize.
    if budget.is_bounded() && (!par.stages.is_empty() || matches!(par.terminal, Terminal::Distinct))
    {
        return None;
    }
    Some(run(
        &par, resolved, outer, metrics, options, threads, budget,
    ))
}

/// Decomposes a plan for parallel execution; `None` when no decomposition
/// applies (pinned joins on the spine, unresolved sources, nested
/// breakers the scheduler does not stage).
fn compile<'a>(
    plan: &'a PhysicalExpr,
    resolved: &'a ResolvedExecs,
    options: PipelineOptions,
) -> Option<ParPlan<'a>> {
    let (terminal, body) = match plan {
        PhysicalExpr::MkDistinct(inner) => (Terminal::Distinct, inner.as_ref()),
        PhysicalExpr::MkAggregate { func, input } => (Terminal::Aggregate(*func), input.as_ref()),
        other => (Terminal::Collect, other),
    };
    let mut stages = Vec::new();
    let source = descend(body, resolved, options, Some(&mut stages))?;
    Some(ParPlan {
        terminal,
        body,
        stages,
        source,
    })
}

/// Walks the spine of `Morsel` operators down to a partition source,
/// staging hash joins along the way when `stages` allows it.
///
/// Dispatches on the algebra's [`ExchangeBehavior`] classification, so a
/// new operator gets scheduled according to how it is classified (and a
/// `Morsel`/`Branches` claim an operator cannot actually honour shows up
/// here as an `unreachable!`, not as silent serialization).
///
/// [`ExchangeBehavior`]: disco_algebra::ExchangeBehavior
fn descend<'a>(
    node: &'a PhysicalExpr,
    resolved: &'a ResolvedExecs,
    options: PipelineOptions,
    stages: Option<&mut Vec<JoinStage<'a>>>,
) -> Option<PartSource<'a>> {
    use disco_algebra::ExchangeBehavior;
    match node.exchange_behavior() {
        // Stateless per-row operators: leaves partition into slices,
        // unary transformers ride the spine down to their input's
        // partition point.
        ExchangeBehavior::Morsel => match node {
            PhysicalExpr::MemScan(bag) => Some(PartSource::Slice {
                node,
                rows: bag.as_slice(),
            }),
            PhysicalExpr::Exec {
                repository,
                extent,
                logical,
                ..
            } => {
                let key = ExecKey::new(repository, extent, logical);
                match resolved.outcome(&key) {
                    Some(ExecOutcome::Rows(rows)) => Some(PartSource::Slice {
                        node,
                        rows: rows.as_slice(),
                    }),
                    // A still-streaming call is a *growing* morsel source:
                    // workers claim chunks as the wrapper pushes them.
                    Some(ExecOutcome::Pending(source)) => Some(PartSource::Stream { node, source }),
                    // Unresolved / unavailable: leave it to the serial
                    // path, which reports the precise error for this node.
                    _ => None,
                }
            }
            PhysicalExpr::FilterOp { input, .. }
            | PhysicalExpr::ProjectOp { input, .. }
            | PhysicalExpr::MapOp { input, .. }
            | PhysicalExpr::BindOp { input, .. } => descend(input, resolved, options, stages),
            PhysicalExpr::MkFlatten(inner) => descend(inner, resolved, options, stages),
            other => unreachable!("operator classified Morsel but not schedulable: {other}"),
        },
        // Independent subtrees: one task per union branch.
        ExchangeBehavior::Branches => match node {
            PhysicalExpr::MkUnion(items) => Some(PartSource::Branches {
                node,
                branches: items.as_slice(),
            }),
            other => unreachable!("operator classified Branches but not a union: {other}"),
        },
        // Hash-partitioned breakers: a hash join becomes a staged
        // build-then-probe when staging is allowed; distinct and
        // aggregates partition only at the pipeline root (the terminal),
        // so meeting one mid-spine ends the decomposition.
        ExchangeBehavior::Partitioned => match node {
            PhysicalExpr::HashJoin {
                left,
                right,
                left_key,
                right_key,
                residual,
            } => {
                let stages = stages?;
                // The shared decision (serial cursor builder uses the
                // same function), so `rows_materialized` is identical at
                // every thread count for any fixed adaptivity setting.
                let build_on_left = decide_build_side(left, right, options, resolved);
                let (build, probe, build_key, probe_key) = if build_on_left {
                    (left.as_ref(), right.as_ref(), left_key, right_key)
                } else {
                    (right.as_ref(), left.as_ref(), right_key, left_key)
                };
                stages.push(JoinStage {
                    node,
                    build,
                    probe,
                    build_key,
                    probe_key,
                    residual: residual.as_ref(),
                    build_on_left,
                });
                descend(probe, resolved, options, Some(stages))
            }
            _ => None,
        },
        // Single-worker operators stop the decomposition outright.
        ExchangeBehavior::Pinned => None,
    }
}

/// Executes a compiled plan, merging the per-worker metrics into the
/// caller's exactly once at the end.
#[allow(clippy::too_many_arguments)]
fn run(
    par: &ParPlan<'_>,
    resolved: &ResolvedExecs,
    outer: &Env<'_>,
    metrics: &PipelineMetrics,
    options: PipelineOptions,
    threads: usize,
    budget: &MemoryBudget,
) -> Result<Bag> {
    let worker_metrics: Vec<PipelineMetrics> =
        (0..threads).map(|_| PipelineMetrics::new()).collect();
    // Workers run serial cursor trees internally: nested evaluations
    // (correlated sub-queries, union-branch subtrees) must never re-enter
    // the scheduler from inside the pool.
    let result = run_phases(
        par,
        resolved,
        outer,
        &worker_metrics,
        options.serial(),
        threads,
        budget,
    );
    for m in &worker_metrics {
        metrics.merge(m);
    }
    result
}

/// The phase driver: build every join-stage table, then run the terminal
/// phase over the partitioned pipeline.
#[allow(clippy::too_many_arguments)]
fn run_phases<'a>(
    par: &ParPlan<'a>,
    resolved: &'a ResolvedExecs,
    outer: &'a Env<'a>,
    worker_metrics: &'a [PipelineMetrics],
    options: PipelineOptions,
    threads: usize,
    budget: &'a MemoryBudget,
) -> Result<Bag> {
    let shards = shard_count(threads);
    let ctxs: Vec<PipelineCtx<'a>> = worker_metrics
        .iter()
        .map(|m| PipelineCtx {
            resolved,
            outer,
            metrics: m,
            options,
            budget,
        })
        .collect();

    // Build phases: one shared hash table per staged join, innermost
    // tables built later but never probed before the terminal phase.
    let mut tables: Vec<JoinTable<'a>> = Vec::with_capacity(par.stages.len());
    for stage in &par.stages {
        tables.push(build_stage_table(
            stage, resolved, options, &ctxs, threads, shards,
        )?);
    }

    // Terminal phase over the partitioned pipeline.
    let tasks = TaskQueue::for_source(&par.source, threads, &worker_metrics[0], options);
    let pipeline = PartPipeline {
        body: par.body,
        stages: &par.stages,
        tables: &tables,
        source: Some(&par.source),
    };
    match par.terminal {
        Terminal::Collect => {
            let acc: Mutex<Vec<(usize, Vec<Value>)>> = Mutex::new(Vec::new());
            for_each_task(threads, &tasks, |worker, task| {
                let ctx = ctxs[worker];
                let mut cursor = pipeline.open(task, ctx)?;
                let mut out = Vec::new();
                let mut buf = Vec::with_capacity(BATCH_ROWS);
                loop {
                    let more = cursor.next_batch(&mut buf, BATCH_ROWS)?;
                    ctx.metrics.add_emitted(buf.len());
                    for row in buf.drain(..) {
                        let value = row.materialize(ctx.metrics)?;
                        out.push(value);
                    }
                    if !more {
                        break;
                    }
                }
                acc.lock().push((task.id(), out));
                Ok(())
            })?;
            Ok(concat_in_order(acc.into_inner()))
        }
        Terminal::Distinct => {
            // The seen-set partitions by value hash into shard-local sets
            // behind per-shard locks; every worker routes each candidate
            // by the shared hash (computed once, reused for in-shard
            // bucketing) and checks/inserts under the shard lock only.
            // The surviving multiset is the set of distinct values — the
            // same no matter which worker wins which shard — so results
            // and `rows_materialized` (one bump per insert) are
            // deterministic and thread-count-invariant.
            let route = RandomState::new();
            let seen_shards: Vec<Mutex<SeenSet>> = (0..shards)
                .map(|_| Mutex::new(SeenSet::with_hasher(route.clone())))
                .collect();
            let acc: Mutex<Vec<(usize, Vec<Value>)>> = Mutex::new(Vec::new());
            for_each_task(threads, &tasks, |worker, task| {
                let ctx = ctxs[worker];
                let mut cursor = pipeline.open(task, ctx)?;
                let mut out = Vec::new();
                let mut buf = Vec::with_capacity(BATCH_ROWS);
                loop {
                    let more = cursor.next_batch(&mut buf, BATCH_ROWS)?;
                    for row in buf.drain(..) {
                        // Mirrors the serial DistinctCursor: single-frame
                        // rows are hashed and checked borrowed (no clone
                        // for duplicates), join rows are merged first
                        // (counted in rows_merged).
                        let admitted = match row.single_value() {
                            Some(value) => {
                                let hash = route.hash_one(value);
                                let mut seen = seen_shards[shard_of(hash, shards)].lock();
                                if seen.check_hashed(hash, value) {
                                    let value = row.materialize(ctx.metrics)?;
                                    seen.insert_hashed(hash, value.clone());
                                    Some(value)
                                } else {
                                    None
                                }
                            }
                            None => {
                                let value = row.materialize(ctx.metrics)?;
                                let hash = route.hash_one(&value);
                                let mut seen = seen_shards[shard_of(hash, shards)].lock();
                                if seen.check_hashed(hash, &value) {
                                    seen.insert_hashed(hash, value.clone());
                                    Some(value)
                                } else {
                                    None
                                }
                            }
                        };
                        if let Some(value) = admitted {
                            ctx.metrics.bump_materialized();
                            ctx.metrics.bump_emitted();
                            out.push(value);
                        }
                    }
                    if !more {
                        break;
                    }
                }
                acc.lock().push((task.id(), out));
                Ok(())
            })?;
            Ok(concat_in_order(acc.into_inner()))
        }
        Terminal::Aggregate(func) => {
            let acc: Mutex<Vec<(usize, AggState)>> = Mutex::new(Vec::new());
            for_each_task(threads, &tasks, |worker, task| {
                let ctx = ctxs[worker];
                let mut cursor = pipeline.open(task, ctx)?;
                let mut state = AggState::new(func);
                let mut buf = Vec::with_capacity(BATCH_ROWS);
                loop {
                    let more = cursor.next_batch(&mut buf, BATCH_ROWS)?;
                    for row in buf.drain(..) {
                        let merged;
                        let value: &Value = match row.single_value() {
                            Some(value) => value,
                            None => {
                                merged = row.materialize(ctx.metrics)?;
                                &merged
                            }
                        };
                        state.update(value)?;
                    }
                    if !more {
                        break;
                    }
                }
                acc.lock().push((task.id(), state));
                Ok(())
            })?;
            let mut states = acc.into_inner();
            states.sort_unstable_by_key(|(task, _)| *task);
            let mut state = AggState::new(func);
            for (_, partial) in states {
                state.merge(partial);
            }
            // The single aggregate row reaching the sink.
            worker_metrics[0].bump_emitted();
            Ok([state.finish()].into_iter().collect())
        }
    }
}

/// Builds one staged join's shared table: the build subtree runs
/// partitioned when it is itself a simple streaming pipeline, as a single
/// task otherwise; every task scatters `(hash, key, row)` into per-shard
/// vectors and the table is assembled in task order at the barrier.
fn build_stage_table<'a>(
    stage: &JoinStage<'a>,
    resolved: &'a ResolvedExecs,
    options: PipelineOptions,
    ctxs: &[PipelineCtx<'a>],
    threads: usize,
    shards: usize,
) -> Result<JoinTable<'a>> {
    // `stages: None` keeps nested breakers inside one task, so their
    // buffering happens exactly once, as in the serial engine.
    let source = descend(stage.build, resolved, options, None);
    let tasks = match &source {
        Some(source) => TaskQueue::for_source(source, threads, ctxs[0].metrics, options),
        None => TaskQueue::fixed(vec![Task::Whole]),
    };
    let pipeline = PartPipeline {
        body: stage.build,
        stages: &[],
        tables: &[],
        source: source.as_ref(),
    };
    let hasher = RandomState::new();
    let acc: Mutex<Scattered<KeyedRow<'a>>> = Mutex::new(Vec::new());
    for_each_task(threads, &tasks, |worker, task| {
        let ctx = ctxs[worker];
        let mut grid = empty_shards(shards);
        // Vectorized scatter: when the build side of this task is a
        // fusible stretch over a slice morsel, hash the key column in one
        // pass and scatter by the batch-computed hashes.  The spine's
        // hasher is a clone of the table hasher, so kernel-computed
        // hashes agree with the row path's `hasher.hash_one`.
        if ctx.options.columnar_enabled() {
            if let (Some(PartSource::Slice { node, rows }), Task::Range { range, .. }) =
                (&source, task)
            {
                if let Some(mut spine) = columnar::keyed_partition(
                    stage.build,
                    node,
                    &rows[range.clone()],
                    stage.build_key,
                    hasher.clone(),
                    ctx,
                ) {
                    let batch_rows = ctx.options.effective_batch_rows();
                    while let Some(batch) = spine.next_keyed(batch_rows) {
                        match batch {
                            KeyedBatch::Kernel {
                                slice,
                                sel,
                                keys,
                                hashes,
                                ..
                            } => {
                                // Decoded rows are structs by construction,
                                // so the row path's struct-frame check is a
                                // no-op here.
                                for (j, &i) in sel.iter().enumerate() {
                                    let row = spine.make_row(slice, i);
                                    ctx.metrics.bump_materialized();
                                    let hash = hashes[j];
                                    grid[shard_of(hash, shards)].push((
                                        hash,
                                        keys.value_at(j),
                                        row,
                                    ));
                                }
                            }
                            KeyedBatch::Fallback { slice } => {
                                for (_, row) in spine.fallback_rows(slice)? {
                                    check_struct_frames(&row)?;
                                    let key = super::eval_in_row(stage.build_key, &row, ctx)?;
                                    ctx.metrics.bump_materialized();
                                    let hash = hasher.hash_one(&key);
                                    grid[shard_of(hash, shards)].push((hash, key, row));
                                }
                            }
                        }
                    }
                    acc.lock().push((task.id(), grid));
                    return Ok(());
                }
            }
        }
        let mut cursor = pipeline.open(task, ctx)?;
        let mut buf = Vec::with_capacity(BATCH_ROWS);
        loop {
            let more = cursor.next_batch(&mut buf, BATCH_ROWS)?;
            for row in buf.drain(..) {
                for frame in row.frames() {
                    frame
                        .value()
                        .as_struct()
                        .map_err(disco_algebra::AlgebraError::from)?;
                }
                let key = super::eval_in_row(stage.build_key, &row, ctx)?;
                ctx.metrics.bump_materialized();
                let hash = hasher.hash_one(&key);
                grid[shard_of(hash, shards)].push((hash, key, row));
            }
            if !more {
                break;
            }
        }
        acc.lock().push((task.id(), grid));
        Ok(())
    })?;
    let mut outputs = acc.into_inner();
    outputs.sort_unstable_by_key(|(task, _)| *task);
    Ok(JoinTable::assemble(hasher, shards, &mut outputs))
}

/// Concatenates per-task output vectors in task order into the answer
/// bag.  The single-task case adopts the vector outright (no copy).
fn concat_in_order(mut outs: Vec<(usize, Vec<Value>)>) -> Bag {
    outs.sort_unstable_by_key(|(task, _)| *task);
    let total: usize = outs.iter().map(|(_, values)| values.len()).sum();
    let mut iter = outs.into_iter().map(|(_, values)| values);
    let mut all = iter.next().unwrap_or_default();
    all.reserve(total - all.len());
    for values in iter {
        all.extend(values);
    }
    Bag::from(all)
}

/// A partitioned pipeline: opens one cursor tree per task, substituting
/// the partition source and staged joins along the spine.
struct PartPipeline<'p, 'a> {
    body: &'a PhysicalExpr,
    stages: &'p [JoinStage<'a>],
    tables: &'a [JoinTable<'a>],
    source: Option<&'p PartSource<'a>>,
}

impl<'p, 'a> PartPipeline<'p, 'a> {
    fn open(&self, task: &Task, ctx: PipelineCtx<'a>) -> Result<BoxedRowStream<'a>> {
        match (self.source, task) {
            (None, _) | (_, Task::Whole) => build(self.body, ctx),
            _ => self.open_node(self.body, task, ctx),
        }
    }

    fn open_node(
        &self,
        node: &'a PhysicalExpr,
        task: &Task,
        ctx: PipelineCtx<'a>,
    ) -> Result<BoxedRowStream<'a>> {
        // Columnar morsel spine: when the stretch from here down to the
        // partition leaf is a fusible map/filter/bind chain, run the
        // columnar spine over this task's slice instead of stacking row
        // cursors.  Bails (returns None) for staged joins, off-spine
        // nodes, and bare slices, which fall through to the row path.
        if ctx.options.columnar_enabled() {
            if let (Some(PartSource::Slice { node: leaf, rows }), Task::Range { range, .. }) =
                (self.source, task)
            {
                if let Some(cursor) =
                    columnar::try_build_partition(node, leaf, &rows[range.clone()], ctx)
                {
                    return Ok(cursor);
                }
            }
        }
        // The partition point: this task's slice of the leaf, or its
        // union branch.
        match (self.source, task) {
            (Some(PartSource::Slice { node: n, rows }), Task::Range { range, .. })
                if std::ptr::eq::<PhysicalExpr>(*n, node) =>
            {
                return Ok(Box::new(super::scan::ScanCursor::over(
                    &rows[range.clone()],
                )));
            }
            (Some(PartSource::Branches { node: n, branches }), Task::Branch { index, .. })
                if std::ptr::eq::<PhysicalExpr>(*n, node) =>
            {
                return build(&branches[*index], ctx);
            }
            (Some(PartSource::Stream { node: n, .. }), Task::Chunk { rows, .. })
                if std::ptr::eq::<PhysicalExpr>(*n, node) =>
            {
                return Ok(Box::new(super::scan::ChunkScanCursor::new(Arc::clone(
                    rows,
                ))));
            }
            _ => {}
        }
        // A staged join: probe this worker's share against the shared
        // table built at the phase barrier.
        if let Some(index) = self
            .stages
            .iter()
            .position(|stage| std::ptr::eq::<PhysicalExpr>(stage.node, node))
        {
            let stage = &self.stages[index];
            let probe = self.open_node(stage.probe, task, ctx)?;
            return Ok(Box::new(SharedProbeCursor::new(
                probe,
                &self.tables[index],
                stage.probe_key,
                stage.residual,
                stage.build_on_left,
                ctx,
            )));
        }
        // Spine operators wrap the partitioned child; anything else is an
        // off-spine subtree and builds serially.
        match node {
            PhysicalExpr::FilterOp { input, predicate } => Ok(Box::new(
                super::filter::FilterCursor::new(self.open_node(input, task, ctx)?, predicate, ctx),
            )),
            PhysicalExpr::ProjectOp { input, columns } => Ok(Box::new(
                super::filter::ProjectCursor::new(self.open_node(input, task, ctx)?, columns, ctx),
            )),
            PhysicalExpr::MapOp { input, projection } => Ok(Box::new(
                super::filter::MapCursor::new(self.open_node(input, task, ctx)?, projection, ctx),
            )),
            PhysicalExpr::BindOp { var, input } => Ok(Box::new(super::filter::BindCursor::new(
                self.open_node(input, task, ctx)?,
                var,
                ctx,
            ))),
            PhysicalExpr::MkFlatten(inner) => Ok(Box::new(super::union::FlattenCursor::new(
                self.open_node(inner, task, ctx)?,
                ctx,
            ))),
            other => build(other, ctx),
        }
    }
}

/// Runs `work(worker, task)` for every task of `queue` on a pool of
/// `threads` scoped workers.  Panics become
/// [`RuntimeError::WorkerPanic`]; the first failure (by task id) wins and
/// flips an abort flag that stops the other workers at their next claim.
/// Stream queues block claims until chunks arrive, so workers drain a
/// growing source until its spool reports a terminal status.
fn for_each_task<F>(threads: usize, queue: &TaskQueue<'_>, work: F) -> Result<()>
where
    F: Fn(usize, &Task) -> Result<()> + Sync,
{
    if queue.task_hint() == Some(0) {
        return Ok(());
    }
    let workers = match queue.task_hint() {
        Some(total) => threads.min(total),
        None => threads,
    };
    let abort = AtomicBool::new(false);
    let failure: Mutex<Option<(usize, RuntimeError)>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let abort = &abort;
            let failure = &failure;
            let work = &work;
            scope.spawn(move || loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let (id, error) = match queue.claim(worker) {
                    Ok(Some(task)) => {
                        let id = task.id();
                        let started = std::time::Instant::now();
                        match catch_unwind(AssertUnwindSafe(|| work(worker, &task))) {
                            Ok(Ok(())) => {
                                queue.note(worker, &task, started.elapsed());
                                continue;
                            }
                            Ok(Err(error)) => (id, error),
                            Err(payload) => {
                                (id, RuntimeError::WorkerPanic(panic_message(&*payload)))
                            }
                        }
                    }
                    Ok(None) => break,
                    // A claim error (unavailable / failed / panicked
                    // source) outranks nothing: any work error with a
                    // task id wins the deterministic-first slot.
                    Err(error) => (usize::MAX, error),
                };
                let mut slot = failure.lock();
                if slot.as_ref().is_none_or(|(first, _)| id < *first) {
                    *slot = Some((id, error));
                }
                abort.store(true, Ordering::Relaxed);
                queue.interrupt();
            });
        }
    });
    match failure.into_inner() {
        Some((_, error)) => Err(error),
        None => Ok(()),
    }
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
