//! Memory-budgeted spilling for pipeline breakers.
//!
//! The streaming engine has exactly three places that buffer an unbounded
//! number of rows: the hash-join *build* table, the `distinct` seen-set,
//! and the pending-source spools of streamed resolution (aggregates fold
//! with O(1) state and never buffer).  This module gives those breakers a
//! shared, byte-accounting [`MemoryBudget`] plus the disk-run plumbing
//! they partition their state into when the budget trips:
//!
//! * [`MemoryBudget`] — a racy-but-monotone byte counter shared by every
//!   cursor of one pipeline evaluation (serial or all parallel workers).
//!   `charge` adds bytes and reports whether the total is still inside
//!   the limit; the *caller* reacts to an overrun by spilling and
//!   uncharging.  The default is unbounded, in which case `charge` is a
//!   no-op returning `true` and nothing in this module ever runs.
//! * `RunFile` / `RunFileReader` — a delete-on-drop temp file holding
//!   one *run* of length-prefixed [`Value`] records in the `disco-value`
//!   spill format ([`disco_value::spill`]).  Runs are written once,
//!   sequentially, then rewound and read back once.
//! * `spill_partition` — the Grace-style hash router: 8 partitions per
//!   level, consuming 3 fresh bits of the key hash per recursion level,
//!   so a partition that still overflows the budget on read-back is
//!   re-split into 8 children rather than loaded whole.
//!
//! Spill files live in `DISCO_SPILL_DIR` (read per file creation so tests
//! can redirect it) or `std::env::temp_dir()`, are named
//! `disco-spill-<pid>-<seq>.run`, and are removed on drop — on success
//! *and* on error/unwind paths, since cleanup rides on `Drop`.
//!
//! The budget itself comes from
//! [`PipelineOptions::mem_budget`](super::PipelineOptions::mem_budget)
//! ([`MemBudget`]) or, when that is `Auto`, the `DISCO_MEM_BUDGET`
//! environment variable (a byte count; unset means unbounded).

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use disco_value::{RunReader, RunWriter, Value};

use crate::{Result, RuntimeError};

/// How much memory the pipeline breakers of one evaluation may hold
/// before spilling to disk.
///
/// This is the type of the `mem_budget` field of
/// [`PipelineOptions`](super::PipelineOptions); the default `Auto` defers
/// to the `DISCO_MEM_BUDGET` environment variable so existing callers and
/// deployments are unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MemBudget {
    /// Use `DISCO_MEM_BUDGET` if set (a positive byte count), otherwise
    /// run unbounded.  This is the default.
    #[default]
    Auto,
    /// Never spill, regardless of the environment.  Used by differential
    /// tests to pin the in-memory baseline while `DISCO_MEM_BUDGET` is
    /// exported process-wide.
    Unbounded,
    /// Spill once the breakers of one evaluation track more than this
    /// many bytes.
    Bytes(usize),
}

impl MemBudget {
    /// Resolve to a concrete byte limit (`None` = unbounded).
    pub fn resolve(self) -> Option<usize> {
        match self {
            MemBudget::Auto => env_mem_budget(),
            MemBudget::Unbounded => None,
            MemBudget::Bytes(n) => Some(n.max(1)),
        }
    }
}

/// Parse `DISCO_MEM_BUDGET` once.  Unset (or empty) means unbounded;
/// `0` or garbage is rejected with a warning, mirroring the
/// `DISCO_BATCH_ROWS` validation.
pub(crate) fn env_mem_budget() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        let raw = std::env::var("DISCO_MEM_BUDGET").ok()?;
        if raw.trim().is_empty() {
            return None;
        }
        match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => {
                eprintln!(
                    "disco: invalid DISCO_MEM_BUDGET {raw:?} (want a positive byte count); \
                     running unbounded"
                );
                None
            }
        }
    })
}

/// Shared byte accounting for the pipeline breakers of one evaluation.
///
/// Counters are relaxed atomics: the budget is a *trigger*, not a hard
/// allocator, and a few racy bytes of overshoot around the trip point are
/// acceptable (each breaker spills as soon as it observes a failed
/// charge, so the peak stays within one row of the limit per breaker).
#[derive(Debug)]
pub struct MemoryBudget {
    limit: Option<usize>,
    used: AtomicUsize,
    peak: AtomicUsize,
}

impl MemoryBudget {
    /// A budget that never trips and never counts (the default path).
    pub const fn unbounded() -> Self {
        MemoryBudget {
            limit: None,
            used: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// A budget tripping above `limit` bytes.
    pub fn bounded(limit: usize) -> Self {
        MemoryBudget {
            limit: Some(limit.max(1)),
            used: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// Build from resolved pipeline options.
    pub fn from_limit(limit: Option<usize>) -> Self {
        match limit {
            Some(n) => MemoryBudget::bounded(n),
            None => MemoryBudget::unbounded(),
        }
    }

    /// Whether a limit is configured at all.  When `false`, `charge` is a
    /// no-op and no breaker ever spills.
    pub fn is_bounded(&self) -> bool {
        self.limit.is_some()
    }

    /// The configured limit, if any.
    pub fn limit(&self) -> Option<usize> {
        self.limit
    }

    /// Account `bytes` of newly buffered breaker state.  Returns `true`
    /// while the total stays within the limit; a `false` return means the
    /// caller should spill (and [`uncharge`](Self::uncharge) what it
    /// releases).  The bytes are counted even on a `false` return — the
    /// caller keeps them resident until it actually spills.
    pub fn charge(&self, bytes: usize) -> bool {
        let Some(limit) = self.limit else { return true };
        let now = self.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
        now <= limit
    }

    /// Release bytes previously [`charge`](Self::charge)d.
    pub fn uncharge(&self, bytes: usize) {
        if self.limit.is_some() {
            self.used.fetch_sub(bytes, Ordering::Relaxed);
        }
    }

    /// Currently tracked bytes.
    pub fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// High-water mark of tracked bytes over the evaluation.
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }
}

/// The process-wide unbounded budget handed to pipelines opened through
/// the public [`super::open`]/[`super::open_with`] entry points (which
/// predate budgets and cannot thread a stack-local one).
pub(crate) fn unbounded_static() -> &'static MemoryBudget {
    static UNBOUNDED: MemoryBudget = MemoryBudget::unbounded();
    &UNBOUNDED
}

/// Grace-style partition fan-out: every spill splits state 8 ways.
pub(crate) const SPILL_FANOUT: usize = 8;

/// Bits of the key hash consumed per recursion level.
const SPILL_LEVEL_BITS: u32 = 3;

/// Deepest re-split level.  `64 / 3` levels exhaust the hash; past this a
/// partition (necessarily dominated by duplicate keys) is loaded whole,
/// overcommitting the budget rather than looping forever.
pub(crate) const MAX_SPILL_LEVEL: u32 = 20;

/// Which of the 8 partitions a key hash routes to at `level`.
pub(crate) fn spill_partition(hash: u64, level: u32) -> usize {
    let shift = SPILL_LEVEL_BITS * level.min(MAX_SPILL_LEVEL);
    ((hash >> shift) & (SPILL_FANOUT as u64 - 1)) as usize
}

/// The directory spill files are created in: `DISCO_SPILL_DIR` when set
/// and non-empty (read per call, *not* cached, so tests can redirect per
/// test case), otherwise the system temp directory.
pub(crate) fn spill_dir() -> PathBuf {
    match std::env::var_os("DISCO_SPILL_DIR") {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => std::env::temp_dir(),
    }
}

/// Map a spill I/O failure onto the runtime error space.
pub(crate) fn spill_err(context: &str, err: std::io::Error) -> RuntimeError {
    RuntimeError::Spill(format!("{context}: {err}"))
}

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// A delete-on-drop temporary file.  Dropping the handle removes the
/// file, which is what guarantees cleanup on error and panic paths.
#[derive(Debug)]
pub(crate) struct SpillFile {
    path: PathBuf,
}

impl SpillFile {
    /// Create a fresh, empty spill file and return its handle plus the
    /// open [`File`].
    pub(crate) fn create() -> Result<(SpillFile, File)> {
        let dir = spill_dir();
        std::fs::create_dir_all(&dir).map_err(|e| spill_err("creating spill directory", e))?;
        let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("disco-spill-{}-{}.run", std::process::id(), seq));
        let file = File::options()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| spill_err("creating spill file", e))?;
        Ok((SpillFile { path }, file))
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// One spill *run* being written: records of `Value`s appended
/// sequentially through a buffered writer.  Finish with
/// [`into_reader`](Self::into_reader) (rewinds the same file — no
/// reopen) or just drop it to discard the run.
pub(crate) struct RunFile {
    file: SpillFile,
    writer: RunWriter<BufWriter<File>>,
}

impl RunFile {
    /// Create an empty run in the spill directory.
    pub(crate) fn create() -> Result<RunFile> {
        let (file, handle) = SpillFile::create()?;
        Ok(RunFile {
            file,
            writer: RunWriter::new(BufWriter::new(handle)),
        })
    }

    /// Append one record (a row: key + frames, or a single value).
    pub(crate) fn push(&mut self, record: &[Value]) -> Result<()> {
        self.writer
            .push(record)
            .map_err(|e| spill_err("writing spill run", e))
    }

    /// Records written so far.
    pub(crate) fn rows(&self) -> u64 {
        self.writer.rows()
    }

    /// Serialized bytes written so far.
    pub(crate) fn bytes(&self) -> u64 {
        self.writer.bytes()
    }

    /// Flush, rewind and turn the run into a reader over the same file.
    pub(crate) fn into_reader(self) -> Result<RunFileReader> {
        let buf = self
            .writer
            .finish()
            .map_err(|e| spill_err("flushing spill run", e))?;
        let mut handle = buf
            .into_inner()
            .map_err(|e| spill_err("flushing spill run", e.into_error()))?;
        handle
            .seek(SeekFrom::Start(0))
            .map_err(|e| spill_err("rewinding spill run", e))?;
        Ok(RunFileReader {
            _file: self.file,
            reader: RunReader::new(BufReader::new(handle)),
        })
    }
}

/// A finished spill run supporting repeated sequential passes — the
/// nested-loop / merge-tuples inner buffer re-scans its spilled tail once
/// per outer row.  Unlike [`RunFileReader`], which is forward-only and
/// read once, every [`pass`](Self::pass) rewinds the same delete-on-drop
/// file and reads it from the start.
pub(crate) struct RewindableRun {
    _file: SpillFile,
    handle: File,
}

impl RewindableRun {
    /// Flush a written run into its rewindable form.
    pub(crate) fn from_run(run: RunFile) -> Result<RewindableRun> {
        let buf = run
            .writer
            .finish()
            .map_err(|e| spill_err("flushing spill run", e))?;
        let handle = buf
            .into_inner()
            .map_err(|e| spill_err("flushing spill run", e.into_error()))?;
        Ok(RewindableRun {
            _file: run.file,
            handle,
        })
    }

    /// Start a fresh sequential pass over the whole run.  Only one pass
    /// should be active at a time — passes share the underlying file
    /// cursor.
    pub(crate) fn pass(&mut self) -> Result<RunPass> {
        self.handle
            .seek(SeekFrom::Start(0))
            .map_err(|e| spill_err("rewinding spill run", e))?;
        let clone = self
            .handle
            .try_clone()
            .map_err(|e| spill_err("reopening spill run", e))?;
        Ok(RunPass {
            reader: RunReader::new(BufReader::new(clone)),
        })
    }
}

/// One sequential pass over a [`RewindableRun`].
pub(crate) struct RunPass {
    reader: RunReader<BufReader<File>>,
}

impl RunPass {
    /// Next record, or `None` at the end of the run.
    pub(crate) fn next_record(&mut self) -> Result<Option<Vec<Value>>> {
        self.reader
            .next_record()
            .map_err(|e| spill_err("reading spill run", e))
    }
}

/// A finished spill run being read back.  Holds the delete-on-drop file
/// handle, so the run disappears from disk as soon as the reader does.
pub(crate) struct RunFileReader {
    _file: SpillFile,
    reader: RunReader<BufReader<File>>,
}

impl RunFileReader {
    /// Next record, or `None` at the end of the run.
    pub(crate) fn next_record(&mut self) -> Result<Option<Vec<Value>>> {
        self.reader
            .next_record()
            .map_err(|e| spill_err("reading spill run", e))
    }
}

/// Rough resident size of a pipeline row buffered by a breaker: the row
/// header plus the deep (heap) size of each frame value.  Borrowed frames
/// are costed like owned ones — a spilled-and-reloaded row comes back
/// owned, so the conservative (over)estimate keeps the peak honest.
pub(crate) fn approx_row_bytes(row: &super::Row<'_>) -> usize {
    std::mem::size_of::<super::Row<'static>>()
        + row
            .frames()
            .iter()
            .map(|f| disco_value::approx_value_bytes(f.value()))
            .sum::<usize>()
}

/// Serialize a build/probe row as a spill record: the join key first,
/// then the row's frame values in order (the frame count is implicit in
/// the record length).
pub(crate) fn row_record(key: &Value, row: super::Row<'_>) -> Vec<Value> {
    let mut rec = Vec::with_capacity(1 + row.frames().len());
    rec.push(key.clone());
    rec.extend(
        row.into_frame_vec()
            .into_iter()
            .map(super::Frame::into_value),
    );
    rec
}

/// Rebuild a row from the frame values of a spill record (minus the key).
/// Everything read back from disk is owned.
pub(crate) fn record_row<'a>(mut values: Vec<Value>) -> super::Row<'a> {
    use super::{Frame, Row};
    match values.len() {
        0 | 1 => Row::One(Frame::Owned(values.pop().unwrap_or(Value::Null))),
        2 => {
            let b = values.pop().expect("len 2");
            let a = values.pop().expect("len 2");
            Row::Two([Frame::Owned(a), Frame::Owned(b)])
        }
        _ => Row::Many(values.into_iter().map(Frame::Owned).collect()),
    }
}

/// Serialize values into an in-memory byte buffer (one chunk of a
/// pending-source spool's disk tier).
pub(crate) fn encode_rows(rows: &[Value]) -> Vec<u8> {
    let mut buf = Vec::new();
    for row in rows {
        // Writing to a Vec cannot fail.
        disco_value::write_value(&mut buf, row).expect("vec write");
    }
    buf
}

/// Decode `count` values from a byte buffer produced by [`encode_rows`].
pub(crate) fn decode_rows(mut buf: &[u8], count: usize) -> std::io::Result<Vec<Value>> {
    let mut rows = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        rows.push(disco_value::read_value(&mut buf)?);
    }
    Ok(rows)
}

/// Append a pre-encoded chunk to a spool's disk tier, returning the file
/// offset it starts at.
pub(crate) fn append_chunk<W: Write + Seek>(file: &mut W, bytes: &[u8]) -> std::io::Result<u64> {
    let offset = file.seek(SeekFrom::End(0))?;
    file.write_all(bytes)?;
    Ok(offset)
}

/// Read back `len` bytes at `offset` from a spool's disk tier.
pub(crate) fn read_chunk<R: Read + Seek>(
    file: &mut R,
    offset: u64,
    len: usize,
) -> std::io::Result<Vec<u8>> {
    file.seek(SeekFrom::Start(offset))?;
    let mut buf = vec![0u8; len];
    file.read_exact(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_budget_is_a_no_op() {
        let b = MemoryBudget::unbounded();
        assert!(!b.is_bounded());
        assert!(b.charge(usize::MAX / 2));
        assert!(b.charge(usize::MAX / 2));
        assert_eq!(b.used(), 0);
        assert_eq!(b.peak(), 0);
    }

    #[test]
    fn bounded_budget_trips_and_tracks_peak() {
        let b = MemoryBudget::bounded(100);
        assert!(b.charge(60));
        assert!(!b.charge(60));
        assert_eq!(b.used(), 120);
        assert_eq!(b.peak(), 120);
        b.uncharge(120);
        assert_eq!(b.used(), 0);
        assert_eq!(b.peak(), 120);
        assert!(b.charge(40));
    }

    #[test]
    fn mem_budget_resolution() {
        assert_eq!(MemBudget::Unbounded.resolve(), None);
        assert_eq!(MemBudget::Bytes(0).resolve(), Some(1));
        assert_eq!(MemBudget::Bytes(4096).resolve(), Some(4096));
    }

    #[test]
    fn partition_router_uses_fresh_bits_per_level() {
        let h = 0b101_110_011u64;
        assert_eq!(spill_partition(h, 0), 0b011);
        assert_eq!(spill_partition(h, 1), 0b110);
        assert_eq!(spill_partition(h, 2), 0b101);
        // Past the deepest level the router stops shifting (stable).
        assert_eq!(
            spill_partition(u64::MAX, MAX_SPILL_LEVEL + 5),
            spill_partition(u64::MAX, MAX_SPILL_LEVEL)
        );
    }

    #[test]
    fn run_round_trip_and_cleanup() {
        let mut run = RunFile::create().expect("create run");
        let path = run.file.path.clone();
        run.push(&[Value::from(1i64), Value::from("a")]).unwrap();
        run.push(&[Value::Null]).unwrap();
        assert_eq!(run.rows(), 2);
        assert!(run.bytes() > 0);
        let mut reader = run.into_reader().expect("reader");
        assert!(path.exists());
        let rec = reader.next_record().unwrap().unwrap();
        assert_eq!(rec, vec![Value::from(1i64), Value::from("a")]);
        let rec = reader.next_record().unwrap().unwrap();
        assert_eq!(rec, vec![Value::Null]);
        assert!(reader.next_record().unwrap().is_none());
        drop(reader);
        assert!(!path.exists(), "spill file must be removed on drop");
    }

    #[test]
    fn rewindable_run_supports_multiple_passes_and_cleanup() {
        let mut run = RunFile::create().expect("create run");
        let path = run.file.path.clone();
        run.push(&[Value::from(1i64)]).unwrap();
        run.push(&[Value::from(2i64)]).unwrap();
        let mut rewind = RewindableRun::from_run(run).expect("rewindable");
        for pass_no in 0..3 {
            let mut pass = rewind.pass().expect("pass");
            assert_eq!(
                pass.next_record().unwrap().unwrap(),
                vec![Value::from(1i64)],
                "pass {pass_no}"
            );
            assert_eq!(
                pass.next_record().unwrap().unwrap(),
                vec![Value::from(2i64)],
                "pass {pass_no}"
            );
            assert!(pass.next_record().unwrap().is_none(), "pass {pass_no}");
        }
        drop(rewind);
        assert!(!path.exists(), "spill file must be removed on drop");
    }

    #[test]
    fn discarded_run_is_cleaned_up() {
        let mut run = RunFile::create().expect("create run");
        run.push(&[Value::from(7i64)]).unwrap();
        let path = run.file.path.clone();
        drop(run);
        assert!(!path.exists());
    }

    #[test]
    fn chunk_encode_decode_round_trip() {
        let rows = vec![Value::from(1i64), Value::from("xyz"), Value::Null];
        let bytes = encode_rows(&rows);
        let back = decode_rows(&bytes, rows.len()).unwrap();
        assert_eq!(back, rows);
    }
}
