//! Exchange-style data movement for the parallel engine: morsel queues,
//! hash-partitioned scatter grids, and the shared-table probe cursor.
//!
//! The parallel scheduler ([`super::parallel`]) splits pipeline work into
//! *morsels* (sub-ranges of a leaf scan, or whole union branches) that
//! workers claim from a [`MorselQueue`].  Pipeline-breaker state moves
//! between phases through *scatter grids*: each task writes its rows into
//! per-shard vectors selected by key hash, and the next phase assembles
//! shard `s` by concatenating every task's shard-`s` vector **in task
//! order** — so the assembled state is identical no matter which worker
//! ran which task, which is what makes the engine's results and metrics
//! reproducible run over run.
//!
//! Shard routing and in-shard bucketing share one hash computation: the
//! scatter side stores the canonical 64-bit value hash next to each row,
//! and the assembly side buckets by that stored hash through the
//! identity hasher (exactly the [`super::sink::SeenSet`] trick).

use std::collections::HashMap;
use std::hash::BuildHasherDefault;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use disco_algebra::ScalarExpr;
use disco_value::Value;

use super::sink::IdentityHasher;
use super::{eval_in_pair, eval_in_row, BoxedRowStream, PipelineCtx, Result, Row, RowStream};

/// Preferred rows per morsel.  Small enough that a 100k-row scan yields
/// ~25 units of claimable work for a 4-thread pool, large enough that the
/// per-morsel cursor construction and queue claim are noise.
pub(crate) const MORSEL_ROWS: usize = 4096;

/// Smallest useful morsel: below this, claim overhead dominates the work.
pub(crate) const MIN_MORSEL_ROWS: usize = 16;

/// The per-claim morsel size for `len` rows on `threads` workers — the
/// formula shared by the pinned range list ([`morsel_ranges`]) and the
/// adaptive claimer's *base* size (which scales it down per worker).
pub(crate) fn morsel_size(len: usize, threads: usize) -> usize {
    len.div_ceil(threads.max(1) * 4)
        .clamp(MIN_MORSEL_ROWS, MORSEL_ROWS)
}

/// Splits `len` rows into morsel ranges for a pool of `threads` workers.
///
/// Purely a function of `(len, threads)` — never of scheduling — so the
/// morsel boundaries, and with them every per-morsel partial result, are
/// the same on every run at a fixed thread count.  Small inputs shrink
/// the morsel so each worker still gets a few claims (keeping the
/// differential tests genuinely concurrent); large inputs cap at
/// [`MORSEL_ROWS`].
pub(crate) fn morsel_ranges(len: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let size = morsel_size(len, threads);
    (0..len.div_ceil(size))
        .map(|i| i * size..((i + 1) * size).min(len))
        .collect()
}

/// Per-worker observed throughput for the heterogeneity-aware scheduler:
/// an exponential moving average of rows/sec per completed claim.  Slow
/// workers (a degraded core, a worker stuck behind a trickling source)
/// report low rates and are handed proportionally smaller morsels, so the
/// barrier never waits on one oversized claim held by the slowest worker.
///
/// Rates are relaxed atomics (f64 bits): the tracker steers claim sizes,
/// it never affects answers, so racy reads are harmless.
pub(crate) struct RateTracker {
    rates: Vec<AtomicU64>,
}

/// EWMA smoothing factor for per-worker rate observations.
const RATE_ALPHA: f64 = 0.5;

/// Slowest-to-fastest claim-size ratio the adaptive claimer will apply: a
/// worker is never handed less than 1/8 of the base morsel, so even a
/// badly degraded worker keeps contributing.
const MIN_CLAIM_FACTOR: f64 = 0.125;

impl RateTracker {
    pub(crate) fn new(workers: usize) -> Self {
        RateTracker {
            rates: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Fold in one completed claim: `rows` processed in `elapsed`.
    pub(crate) fn note(&self, worker: usize, rows: usize, elapsed: std::time::Duration) {
        let Some(slot) = self.rates.get(worker) else {
            return;
        };
        if rows == 0 {
            return;
        }
        #[allow(clippy::cast_precision_loss)]
        let rate = rows as f64 / elapsed.as_secs_f64().max(1e-9);
        let prev = f64::from_bits(slot.load(Ordering::Relaxed));
        let next = if prev > 0.0 {
            RATE_ALPHA * rate + (1.0 - RATE_ALPHA) * prev
        } else {
            rate
        };
        slot.store(next.to_bits(), Ordering::Relaxed);
    }

    /// How much of the base morsel `worker` should claim next: its
    /// observed rate relative to the pool's fastest, clamped to
    /// `[1/8, 1]`.  Workers with no observation yet claim a full morsel.
    pub(crate) fn claim_factor(&self, worker: usize) -> f64 {
        let Some(slot) = self.rates.get(worker) else {
            return 1.0;
        };
        let mine = f64::from_bits(slot.load(Ordering::Relaxed));
        if mine <= 0.0 {
            return 1.0;
        }
        let fastest = self
            .rates
            .iter()
            .map(|r| f64::from_bits(r.load(Ordering::Relaxed)))
            .fold(0.0_f64, f64::max);
        if fastest <= 0.0 {
            return 1.0;
        }
        (mine / fastest).clamp(MIN_CLAIM_FACTOR, 1.0)
    }

    /// Scale `base` rows by the worker's claim factor, keeping at least
    /// [`MIN_MORSEL_ROWS`] (or `base` itself when smaller).
    pub(crate) fn scaled_claim(&self, worker: usize, base: usize) -> usize {
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let scaled = (base as f64 * self.claim_factor(worker)) as usize;
        scaled.clamp(MIN_MORSEL_ROWS.min(base), base)
    }
}

/// A claim-by-counter work list: task indexes `0..total` are handed out
/// exactly once, in order, to whichever worker asks next.
pub(crate) struct MorselQueue {
    next: AtomicUsize,
    total: usize,
}

impl MorselQueue {
    pub(crate) fn new(total: usize) -> Self {
        MorselQueue {
            next: AtomicUsize::new(0),
            total,
        }
    }

    /// Claims the next task index; `None` when the list is drained.
    pub(crate) fn claim(&self) -> Option<usize> {
        let index = self.next.fetch_add(1, Ordering::Relaxed);
        (index < self.total).then_some(index)
    }
}

/// Shards per partitioned pipeline breaker.  More shards than workers so
/// the assembly phase load-balances even when the key distribution is
/// skewed across shards.
pub(crate) fn shard_count(threads: usize) -> usize {
    (threads * 4).next_power_of_two()
}

/// Routes a canonical value hash to a shard.  Uses the *high* bits: the
/// in-shard hash maps consume the low bits, and using disjoint bits keeps
/// shard routing and bucket placement uncorrelated.
pub(crate) fn shard_of(hash: u64, shards: usize) -> usize {
    ((hash >> 48) as usize) & (shards - 1)
}

/// One scatter grid row: what a single task emitted for each shard.
pub(crate) type ShardVecs<T> = Vec<Vec<T>>;

/// Per-task scatter outputs, tagged with the task index so the barrier
/// can restore task order before assembly.
pub(crate) type Scattered<T> = Vec<(usize, ShardVecs<T>)>;

/// A build-side row ready for table assembly: its key's canonical hash,
/// the key, and the row itself.
pub(crate) type KeyedRow<'a> = (u64, Value, Row<'a>);

/// Allocates a task's empty per-shard scatter vectors.
pub(crate) fn empty_shards<T>(shards: usize) -> ShardVecs<T> {
    (0..shards).map(|_| Vec::new()).collect()
}

/// All rows of one join key within a shard of a [`JoinTable`] (bucketed by
/// full 64-bit hash, so a bucket nearly always holds exactly one group).
pub(crate) struct KeyGroup<'a> {
    pub(crate) key: Value,
    pub(crate) rows: Vec<Row<'a>>,
}

type Shard<'a> = HashMap<u64, Vec<KeyGroup<'a>>, BuildHasherDefault<IdentityHasher>>;

/// A hash-join build table partitioned into shards by key hash.
///
/// Built once at the build barrier from the scatter grids of the build
/// phase; read-only (lock-free) while every worker probes it during the
/// probe phase.
pub(crate) struct JoinTable<'a> {
    hasher: std::hash::RandomState,
    shards: Vec<Shard<'a>>,
}

impl<'a> JoinTable<'a> {
    /// Assembles the table from per-task scatter outputs (sorted by task
    /// index).  Insertion visits rows in task order, so the per-key match
    /// lists equal a serial build over the same input partitioning.
    pub(crate) fn assemble(
        hasher: std::hash::RandomState,
        shards: usize,
        outputs: &mut Scattered<KeyedRow<'a>>,
    ) -> Self {
        let mut table = JoinTable {
            hasher,
            shards: (0..shards).map(|_| Shard::default()).collect(),
        };
        for s in 0..shards {
            let shard = &mut table.shards[s];
            for (_, grid) in outputs.iter_mut() {
                for (hash, key, row) in std::mem::take(&mut grid[s]) {
                    let groups = shard.entry(hash).or_default();
                    match groups.iter_mut().find(|g| g.key == key) {
                        Some(group) => group.rows.push(row),
                        None => groups.push(KeyGroup {
                            key,
                            rows: vec![row],
                        }),
                    }
                }
            }
        }
        table
    }

    /// The canonical hash probe keys must be routed by.
    pub(crate) fn hash_of(&self, key: &Value) -> u64 {
        use std::hash::BuildHasher;
        self.hasher.hash_one(key)
    }

    /// The matching rows for `key`, if any.
    pub(crate) fn lookup(&self, key: &Value) -> Option<&[Row<'a>]> {
        let hash = self.hash_of(key);
        let shard = &self.shards[shard_of(hash, self.shards.len())];
        shard
            .get(&hash)?
            .iter()
            .find(|g| g.key == *key)
            .map(|g| g.rows.as_slice())
    }
}

/// The probe half of a hash join whose build table was constructed at a
/// previous phase barrier and is shared (read-only) by every worker.
///
/// Mirrors [`super::join::HashJoinCursor`]'s probe loop exactly — lazy
/// (left, right) output rows, residual predicate after the key match —
/// minus the build step.
pub(crate) struct SharedProbeCursor<'a> {
    probe: BoxedRowStream<'a>,
    table: &'a JoinTable<'a>,
    probe_key: &'a ScalarExpr,
    residual: Option<&'a ScalarExpr>,
    /// `true` when the table buffers the plan's *left* input; output
    /// frames are always ordered left-then-right regardless.
    build_on_left: bool,
    ctx: PipelineCtx<'a>,
    /// The probe row currently being expanded, its matches, and the next
    /// match index.
    current: Option<(Row<'a>, &'a [Row<'a>], usize)>,
}

impl<'a> SharedProbeCursor<'a> {
    pub(crate) fn new(
        probe: BoxedRowStream<'a>,
        table: &'a JoinTable<'a>,
        probe_key: &'a ScalarExpr,
        residual: Option<&'a ScalarExpr>,
        build_on_left: bool,
        ctx: PipelineCtx<'a>,
    ) -> Self {
        SharedProbeCursor {
            probe,
            table,
            probe_key,
            residual,
            build_on_left,
            ctx,
            current: None,
        }
    }

    fn produce(&mut self) -> Result<Option<Row<'a>>> {
        use disco_algebra::{truthy, AlgebraError};
        loop {
            if let Some((probe, matches, index)) = &mut self.current {
                while *index < matches.len() {
                    let candidate = &matches[*index];
                    *index += 1;
                    let (lrow, rrow) = if self.build_on_left {
                        (candidate, &*probe)
                    } else {
                        (&*probe, candidate)
                    };
                    let keep = match self.residual {
                        Some(p) => truthy(&eval_in_pair(p, lrow, rrow, self.ctx)?),
                        None => true,
                    };
                    if keep {
                        return Ok(Some(Row::joined(lrow.clone(), rrow.clone())));
                    }
                }
                self.current = None;
            }
            let Some(probe) = self.probe.next_row().transpose()? else {
                return Ok(None);
            };
            for frame in probe.frames() {
                frame.value().as_struct().map_err(AlgebraError::from)?;
            }
            let key = eval_in_row(self.probe_key, &probe, self.ctx)?;
            if let Some(matches) = self.table.lookup(&key) {
                self.current = Some((probe, matches, 0));
            }
        }
    }
}

impl<'a> RowStream<'a> for SharedProbeCursor<'a> {
    fn next_row(&mut self) -> Option<Result<Row<'a>>> {
        self.produce().transpose()
    }

    fn next_batch(&mut self, out: &mut Vec<Row<'a>>, max: usize) -> Result<bool> {
        for _ in 0..max {
            match self.produce()? {
                Some(row) => out.push(row),
                None => return Ok(false),
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsel_ranges_cover_exactly_and_deterministically() {
        for &(len, threads) in &[(0usize, 4usize), (1, 4), (100, 1), (4096, 2), (100_000, 4)] {
            let ranges = morsel_ranges(len, threads);
            assert_eq!(ranges, morsel_ranges(len, threads), "deterministic");
            let mut covered = 0usize;
            for (i, r) in ranges.iter().enumerate() {
                assert_eq!(r.start, covered, "range {i} contiguous");
                assert!(r.end > r.start);
                covered = r.end;
            }
            assert_eq!(covered, len, "ranges cover len={len}");
        }
    }

    #[test]
    fn morsel_queue_hands_out_each_task_once() {
        let queue = MorselQueue::new(5);
        let mut seen = Vec::new();
        while let Some(t) = queue.claim() {
            seen.push(t);
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(queue.claim(), None);
    }

    #[test]
    fn rate_tracker_shrinks_slow_worker_claims() {
        use std::time::Duration;
        let rates = RateTracker::new(2);
        // No observations yet: everyone claims a full morsel.
        assert_eq!(rates.scaled_claim(0, 4096), 4096);
        assert_eq!(rates.scaled_claim(1, 4096), 4096);
        // Worker 0 processes 4x faster than worker 1.
        rates.note(0, 4096, Duration::from_millis(10));
        rates.note(1, 4096, Duration::from_millis(40));
        assert!((rates.claim_factor(0) - 1.0).abs() < 1e-9);
        let slow = rates.claim_factor(1);
        assert!((slow - 0.25).abs() < 1e-9, "factor {slow}");
        assert_eq!(rates.scaled_claim(1, 4096), 1024);
        // The factor floor keeps a badly degraded worker contributing.
        rates.note(1, 16, Duration::from_secs(10));
        rates.note(1, 16, Duration::from_secs(10));
        assert!((rates.claim_factor(1) - 0.125).abs() < 1e-9);
        // And the row floor keeps claims useful.
        assert_eq!(rates.scaled_claim(1, 64), 16);
        assert_eq!(rates.scaled_claim(1, 8), 8);
    }

    #[test]
    fn rate_tracker_ewma_smooths_observations() {
        use std::time::Duration;
        let rates = RateTracker::new(1);
        rates.note(0, 1000, Duration::from_secs(1));
        rates.note(0, 3000, Duration::from_secs(1));
        // EWMA with alpha 0.5: 0.5*3000 + 0.5*1000 = 2000 rows/sec; a
        // single worker always claims the full base regardless.
        assert_eq!(rates.scaled_claim(0, 4096), 4096);
        // Out-of-range worker ids and zero-row claims are ignored.
        rates.note(7, 100, Duration::from_secs(1));
        rates.note(0, 0, Duration::from_secs(1));
        assert!((rates.claim_factor(7) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shard_routing_is_in_range() {
        let shards = shard_count(4);
        assert!(shards.is_power_of_two());
        for h in [0u64, 1, u64::MAX, 0xdead_beef_cafe_f00d] {
            assert!(shard_of(h, shards) < shards);
        }
    }
}
