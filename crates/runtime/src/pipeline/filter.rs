//! Streaming row transformers: filter, column projection, generalized
//! projection (map) and bind.  None of these buffer anything — each row is
//! transformed or dropped as it is pulled.  All of them override
//! [`RowStream::next_batch`] to process input in vectorized batches: the
//! scratch buffer is fully drained within each call, so batch state never
//! leaks between pulls and row-at-a-time access stays consistent.

use std::sync::Arc;

use disco_algebra::{truthy, AlgebraError, ScalarExpr};
use disco_value::{StructValue, Value};

use super::{eval_in_row, BoxedRowStream, PipelineCtx, Result, Row, RowStream};

/// Forwards rows whose predicate evaluates truthy.
pub(crate) struct FilterCursor<'a> {
    input: BoxedRowStream<'a>,
    predicate: &'a ScalarExpr,
    ctx: PipelineCtx<'a>,
    scratch: Vec<Row<'a>>,
}

impl<'a> FilterCursor<'a> {
    pub(crate) fn new(
        input: BoxedRowStream<'a>,
        predicate: &'a ScalarExpr,
        ctx: PipelineCtx<'a>,
    ) -> Self {
        FilterCursor {
            input,
            predicate,
            ctx,
            scratch: Vec::new(),
        }
    }

    fn keep(&self, row: &Row<'_>) -> Result<bool> {
        Ok(truthy(&eval_in_row(self.predicate, row, self.ctx)?))
    }
}

impl<'a> RowStream<'a> for FilterCursor<'a> {
    fn next_row(&mut self) -> Option<Result<Row<'a>>> {
        loop {
            let row = match self.input.next_row()? {
                Ok(row) => row,
                Err(err) => return Some(Err(err)),
            };
            match self.keep(&row) {
                Ok(true) => return Some(Ok(row)),
                Ok(false) => {}
                Err(err) => return Some(Err(err)),
            }
        }
    }

    fn next_batch(&mut self, out: &mut Vec<Row<'a>>, max: usize) -> Result<bool> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let more = self.input.next_batch(&mut scratch, max)?;
        for row in scratch.drain(..) {
            if self.keep(&row)? {
                out.push(row);
            }
        }
        self.scratch = scratch;
        Ok(more)
    }

    fn ready(&self) -> bool {
        self.input.ready()
    }
}

/// Projects struct rows onto named columns (`mkproj`).
pub(crate) struct ProjectCursor<'a> {
    input: BoxedRowStream<'a>,
    columns: &'a [String],
    ctx: PipelineCtx<'a>,
    scratch: Vec<Row<'a>>,
}

impl<'a> ProjectCursor<'a> {
    pub(crate) fn new(
        input: BoxedRowStream<'a>,
        columns: &'a [String],
        ctx: PipelineCtx<'a>,
    ) -> Self {
        ProjectCursor {
            input,
            columns,
            ctx,
            scratch: Vec::new(),
        }
    }

    fn project<'r>(&self, row: Row<'r>) -> Result<Row<'r>> {
        // Single rows are projected straight off the (possibly borrowed)
        // struct; join rows are merged first, since a column projection
        // keeps declared names and needs one struct to project from.
        let projected = if let Some(value) = row.single_value() {
            value
                .as_struct()
                .map_err(AlgebraError::from)?
                .project(self.columns.iter().map(String::as_str))
                .map_err(AlgebraError::from)?
        } else {
            let merged = row.materialize(self.ctx.metrics)?;
            merged
                .as_struct()
                .map_err(AlgebraError::from)?
                .project(self.columns.iter().map(String::as_str))
                .map_err(AlgebraError::from)?
        };
        Ok(Row::owned(Value::Struct(projected)))
    }
}

impl<'a> RowStream<'a> for ProjectCursor<'a> {
    fn next_row(&mut self) -> Option<Result<Row<'a>>> {
        let row = match self.input.next_row()? {
            Ok(row) => row,
            Err(err) => return Some(Err(err)),
        };
        Some(self.project(row))
    }

    fn next_batch(&mut self, out: &mut Vec<Row<'a>>, max: usize) -> Result<bool> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let more = self.input.next_batch(&mut scratch, max)?;
        for row in scratch.drain(..) {
            let projected = self.project(row)?;
            out.push(projected);
        }
        self.scratch = scratch;
        Ok(more)
    }

    fn ready(&self) -> bool {
        self.input.ready()
    }
}

/// Evaluates a scalar projection per row (`mkmap`).  Join rows are
/// consumed frame-wise: the projection reads `x.name` straight out of the
/// layered environment, so no merged struct is ever built here.
pub(crate) struct MapCursor<'a> {
    input: BoxedRowStream<'a>,
    projection: &'a ScalarExpr,
    ctx: PipelineCtx<'a>,
    scratch: Vec<Row<'a>>,
}

impl<'a> MapCursor<'a> {
    pub(crate) fn new(
        input: BoxedRowStream<'a>,
        projection: &'a ScalarExpr,
        ctx: PipelineCtx<'a>,
    ) -> Self {
        MapCursor {
            input,
            projection,
            ctx,
            scratch: Vec::new(),
        }
    }
}

impl<'a> RowStream<'a> for MapCursor<'a> {
    fn next_row(&mut self) -> Option<Result<Row<'a>>> {
        let row = match self.input.next_row()? {
            Ok(row) => row,
            Err(err) => return Some(Err(err)),
        };
        Some(eval_in_row(self.projection, &row, self.ctx).map(Row::owned))
    }

    fn next_batch(&mut self, out: &mut Vec<Row<'a>>, max: usize) -> Result<bool> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let more = self.input.next_batch(&mut scratch, max)?;
        for row in scratch.drain(..) {
            let value = eval_in_row(self.projection, &row, self.ctx)?;
            out.push(Row::owned(value));
        }
        self.scratch = scratch;
        Ok(more)
    }

    fn ready(&self) -> bool {
        self.input.ready()
    }
}

/// Wraps each source row into an environment row `{var: row}` (`mkbind`).
pub(crate) struct BindCursor<'a> {
    input: BoxedRowStream<'a>,
    name: Arc<str>,
    ctx: PipelineCtx<'a>,
    scratch: Vec<Row<'a>>,
}

impl<'a> BindCursor<'a> {
    pub(crate) fn new(input: BoxedRowStream<'a>, var: &str, ctx: PipelineCtx<'a>) -> Self {
        BindCursor {
            input,
            name: Arc::from(var),
            ctx,
            scratch: Vec::new(),
        }
    }

    fn bind<'r>(&self, row: Row<'r>) -> Result<Row<'r>> {
        let value = row.materialize(self.ctx.metrics)?;
        let env_row =
            StructValue::new(vec![(Arc::clone(&self.name), value)]).map_err(AlgebraError::from)?;
        Ok(Row::owned(Value::Struct(env_row)))
    }
}

impl<'a> RowStream<'a> for BindCursor<'a> {
    fn next_row(&mut self) -> Option<Result<Row<'a>>> {
        let row = match self.input.next_row()? {
            Ok(row) => row,
            Err(err) => return Some(Err(err)),
        };
        Some(self.bind(row))
    }

    fn next_batch(&mut self, out: &mut Vec<Row<'a>>, max: usize) -> Result<bool> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let more = self.input.next_batch(&mut scratch, max)?;
        for row in scratch.drain(..) {
            let bound = self.bind(row)?;
            out.push(bound);
        }
        self.scratch = scratch;
        Ok(more)
    }

    fn ready(&self) -> bool {
        self.input.ready()
    }
}
