//! Streaming union and flatten.

use disco_value::{Bag, BagCursor, Value};

use super::{BoxedRowStream, PipelineCtx, Result, Row, RowStream};

/// Streams each branch in turn (`mkunion`) — no branch result is ever
/// collected into an intermediate bag.
pub(crate) struct UnionCursor<'a> {
    items: Vec<BoxedRowStream<'a>>,
    index: usize,
}

impl<'a> UnionCursor<'a> {
    pub(crate) fn new(items: Vec<BoxedRowStream<'a>>) -> Self {
        UnionCursor { items, index: 0 }
    }
}

impl<'a> RowStream<'a> for UnionCursor<'a> {
    fn next_row(&mut self) -> Option<Result<Row<'a>>> {
        while let Some(current) = self.items.get_mut(self.index) {
            match current.next_row() {
                Some(row) => return Some(row),
                None => self.index += 1,
            }
        }
        None
    }

    fn next_batch(&mut self, out: &mut Vec<Row<'a>>, max: usize) -> Result<bool> {
        match self.items.get_mut(self.index) {
            None => Ok(false),
            Some(current) => {
                let more = current.next_batch(out, max)?;
                if !more {
                    self.index += 1;
                }
                Ok(more || self.index < self.items.len())
            }
        }
    }
}

/// Unnests one level of bags (`mkflatten`): bag- and list-valued rows are
/// expanded element by element through a shared-storage cursor, everything
/// else passes through — matching `Bag::flatten`'s permissive behaviour.
pub(crate) struct FlattenCursor<'a> {
    input: BoxedRowStream<'a>,
    ctx: PipelineCtx<'a>,
    inner: Option<BagCursor>,
}

impl<'a> FlattenCursor<'a> {
    pub(crate) fn new(input: BoxedRowStream<'a>, ctx: PipelineCtx<'a>) -> Self {
        FlattenCursor {
            input,
            ctx,
            inner: None,
        }
    }
}

impl<'a> RowStream<'a> for FlattenCursor<'a> {
    fn next_row(&mut self) -> Option<Result<Row<'a>>> {
        loop {
            if let Some(inner) = &mut self.inner {
                match inner.next() {
                    Some(value) => return Some(Ok(Row::owned(value))),
                    None => self.inner = None,
                }
            }
            let row = match self.input.next_row()? {
                Ok(row) => row,
                Err(err) => return Some(Err(err)),
            };
            let value = match row.materialize(self.ctx.metrics) {
                Ok(value) => value,
                Err(err) => return Some(Err(err)),
            };
            match value {
                Value::Bag(inner) => self.inner = Some(inner.into_cursor()),
                Value::List(items) => self.inner = Some(Bag::from_shared(items).into_cursor()),
                other => return Some(Ok(Row::owned(other))),
            }
        }
    }
}
