//! Streaming union and flatten.

use std::sync::Arc;

use disco_value::{Bag, BagCursor, Value};

use crate::exec::ResolutionEvents;

use super::{BoxedRowStream, PipelineCtx, Result, Row, RowStream};

/// Streams union branches (`mkunion`) — no branch result is ever
/// collected into an intermediate bag.
///
/// With materialized inputs every branch is always [`RowStream::ready`],
/// so branches drain in order, exactly the pre-streaming behaviour.  With
/// *pending* (still-resolving) sources among the branches, the cursor
/// polls readiness and pulls from whichever branch has data: the
/// per-source scans of a federated extent emit rows as each wrapper
/// answers, instead of the slowest branch gating all the ones behind it.
/// When no branch is ready it parks on the resolution's shared event
/// channel until any source makes progress (bounded by the deadline).
/// Union output is a bag, so the arrival-dependent order never changes
/// the answer multiset or any metric.
pub(crate) struct UnionCursor<'a> {
    items: Vec<BoxedRowStream<'a>>,
    /// Indexes into `items` that are not yet exhausted.
    active: Vec<usize>,
    events: Option<Arc<ResolutionEvents>>,
}

impl<'a> UnionCursor<'a> {
    pub(crate) fn new(items: Vec<BoxedRowStream<'a>>, ctx: PipelineCtx<'a>) -> Self {
        let active = (0..items.len()).collect();
        UnionCursor {
            items,
            active,
            events: ctx.resolved.events().cloned(),
        }
    }

    /// The next branch to pull from: the first active branch that is
    /// ready, blocking on the event channel while none is.  `None` when
    /// every branch is exhausted.
    fn pick(&mut self) -> Option<usize> {
        loop {
            if self.active.is_empty() {
                return None;
            }
            // Read the generation before polling readiness so a chunk
            // landing between the poll and the wait cannot be missed.
            let seen = self.events.as_ref().map(|e| e.generation());
            if let Some(pos) = self
                .active
                .iter()
                .position(|&index| self.items[index].ready())
            {
                return Some(pos);
            }
            match (&self.events, seen) {
                (Some(events), Some(seen)) => {
                    if events.deadline_passed() || !events.wait_after(seen) {
                        // Deadline: pull from the first active branch; its
                        // own wait classifies the source and surfaces the
                        // pending-unavailable error.
                        return Some(0);
                    }
                }
                // No streamed resolution: every cursor defaults to ready,
                // so this is unreachable; pull in order as a safe fallback.
                _ => return Some(0),
            }
        }
    }
}

impl<'a> RowStream<'a> for UnionCursor<'a> {
    fn next_row(&mut self) -> Option<Result<Row<'a>>> {
        loop {
            let pos = self.pick()?;
            let index = self.active[pos];
            match self.items[index].next_row() {
                Some(row) => return Some(row),
                None => {
                    self.active.remove(pos);
                }
            }
        }
    }

    fn next_batch(&mut self, out: &mut Vec<Row<'a>>, max: usize) -> Result<bool> {
        let Some(pos) = self.pick() else {
            return Ok(false);
        };
        let index = self.active[pos];
        let more = self.items[index].next_batch(out, max)?;
        if !more {
            self.active.remove(pos);
        }
        Ok(more || !self.active.is_empty())
    }

    fn ready(&self) -> bool {
        self.active.is_empty() || self.active.iter().any(|&index| self.items[index].ready())
    }
}

/// Unnests one level of bags (`mkflatten`): bag- and list-valued rows are
/// expanded element by element through a shared-storage cursor, everything
/// else passes through — matching `Bag::flatten`'s permissive behaviour.
pub(crate) struct FlattenCursor<'a> {
    input: BoxedRowStream<'a>,
    ctx: PipelineCtx<'a>,
    inner: Option<BagCursor>,
}

impl<'a> FlattenCursor<'a> {
    pub(crate) fn new(input: BoxedRowStream<'a>, ctx: PipelineCtx<'a>) -> Self {
        FlattenCursor {
            input,
            ctx,
            inner: None,
        }
    }
}

impl<'a> RowStream<'a> for FlattenCursor<'a> {
    fn next_row(&mut self) -> Option<Result<Row<'a>>> {
        loop {
            if let Some(inner) = &mut self.inner {
                match inner.next() {
                    Some(value) => return Some(Ok(Row::owned(value))),
                    None => self.inner = None,
                }
            }
            let row = match self.input.next_row()? {
                Ok(row) => row,
                Err(err) => return Some(Err(err)),
            };
            let value = match row.materialize(self.ctx.metrics) {
                Ok(value) => value,
                Err(err) => return Some(Err(err)),
            };
            match value {
                Value::Bag(inner) => self.inner = Some(inner.into_cursor()),
                Value::List(items) => self.inner = Some(Bag::from_shared(items).into_cursor()),
                other => return Some(Ok(Row::owned(other))),
            }
        }
    }

    fn ready(&self) -> bool {
        self.inner.is_some() || self.input.ready()
    }
}
