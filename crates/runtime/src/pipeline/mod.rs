//! The streaming operator engine: a pull-based cursor pipeline.
//!
//! The seed evaluator materialized a full [`Bag`] at **every** operator
//! boundary — a deep pipeline paid one intermediate bag per operator, and
//! a hash join constructed every merged output row up front.  This module
//! replaces that with operator-at-a-time execution: a physical plan is
//! opened into a tree of cursors ([`RowStream`]s), and rows are *pulled*
//! through the tree one at a time.  Only pipeline breakers ever buffer
//! rows:
//!
//! * the **hash-join build side** (the smaller input, chosen from resolved
//!   cardinalities) and the re-scanned inner of a nested-loop or
//!   merge-tuples join,
//! * **distinct**, which keeps the set of values already emitted,
//! * **aggregates**, which fold their input into one value (O(1) state —
//!   no input bag is ever built),
//! * the **final sink** that turns the root cursor into the answer bag.
//!
//! Everything else — scan, filter, project, map, bind, union, flatten —
//! forwards rows as soon as they are produced, so intermediate state stays
//! bounded no matter how deep the pipeline is.
//!
//! # Lazy join rows
//!
//! A join does not merge its matching rows into an output struct.  It
//! yields a [`Row`] carrying the *frames* of both sides; scalar expressions
//! downstream (a projection, a residual predicate, another join key) are
//! evaluated against a layered [`Env`] built from the frames, so the merged
//! struct is only constructed if an unmerged join row reaches a consumer
//! that genuinely needs a single value (distinct, the final sink).  A
//! `join → project` pipeline therefore never calls `StructValue::merged`
//! at all — the projection reads `x.name` straight out of the frames.
//!
//! [`PipelineMetrics`] counts what actually got buffered
//! ([`PipelineMetrics::rows_materialized`]) and how many join rows had to
//! be merged ([`PipelineMetrics::rows_merged`]), making the streaming
//! claim testable.

mod columnar;
mod exchange;
mod filter;
mod join;
pub mod parallel;
mod scan;
mod sink;
pub mod spill;
mod union;

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use disco_algebra::{
    eval_scalar_with, lower, AlgebraError, Env, LogicalExpr, PhysicalExpr, ScalarExpr,
};
use disco_value::{Bag, StructValue, Value};

use crate::exec::{ExecKey, ExecOutcome, ResolvedExecs};
use crate::{Result, RuntimeError};

pub use join::BuildSide;
pub use spill::{MemBudget, MemoryBudget};

/// One environment frame of a [`Row`]: a value that is either owned by
/// the pipeline (computed by an operator) or borrowed straight out of the
/// plan's literal data / a resolved source answer.
///
/// The borrowed form is what makes scans free: a scan over a bag yields
/// one pointer per row, and the value is cloned (an `Arc` bump) only if
/// the row survives to a consumer that needs ownership — a join build
/// table, the distinct seen-set, the final sink.  Rows that a filter
/// drops cost nothing at all.
#[derive(Debug, Clone)]
pub enum Frame<'a> {
    /// A value owned by the pipeline.
    Owned(Value),
    /// A value borrowed from plan or resolved-source storage.
    Borrowed(&'a Value),
}

impl<'a> Frame<'a> {
    /// The value behind the frame.
    #[must_use]
    pub fn value(&self) -> &Value {
        match self {
            Frame::Owned(v) => v,
            Frame::Borrowed(v) => v,
        }
    }

    /// Takes ownership: a move for owned frames, an `Arc`-bump clone for
    /// borrowed ones.
    #[must_use]
    pub fn into_value(self) -> Value {
        match self {
            Frame::Owned(v) => v,
            Frame::Borrowed(v) => v.clone(),
        }
    }
}

/// One row flowing through the pipeline.
///
/// Scans produce single (borrowed) values; joins produce *frame
/// sequences* — the environment rows of both sides, stacked left to
/// right, with later frames shadowing earlier ones (exactly the
/// layered-[`Env`] shadowing the evaluator uses).  A frame sequence is
/// merged into one struct only on demand ([`Row::materialize`]); until
/// then, passing a join row to the next operator moves a couple of
/// pointers.
#[derive(Debug, Clone)]
pub enum Row<'a> {
    /// A single value.
    One(Frame<'a>),
    /// A join row of two frames (the overwhelmingly common join shape).
    Two([Frame<'a>; 2]),
    /// A join row of three or more frames (joins over joins).
    Many(Vec<Frame<'a>>),
}

impl<'a> Row<'a> {
    /// A row owning `value`.
    #[must_use]
    pub fn owned(value: Value) -> Row<'a> {
        Row::One(Frame::Owned(value))
    }

    /// A row borrowing `value` from plan or source storage.
    #[must_use]
    pub fn borrowed(value: &'a Value) -> Row<'a> {
        Row::One(Frame::Borrowed(value))
    }

    /// The environment frames of the row, outermost first.
    #[must_use]
    pub fn frames(&self) -> &[Frame<'a>] {
        match self {
            Row::One(f) => std::slice::from_ref(f),
            Row::Two(pair) => pair,
            Row::Many(frames) => frames,
        }
    }

    /// The row's value, when it is a single frame (not a join row).
    /// Borrow-only: no clone happens.
    #[must_use]
    pub fn single_value(&self) -> Option<&Value> {
        match self {
            Row::One(f) => Some(f.value()),
            _ => None,
        }
    }

    /// Consumes the row into its frames.
    fn into_frame_vec(self) -> Vec<Frame<'a>> {
        match self {
            Row::One(f) => vec![f],
            Row::Two([l, r]) => vec![l, r],
            Row::Many(frames) => frames,
        }
    }

    /// Joins two rows into one by concatenating their frames (left frames
    /// first, so right fields shadow left fields downstream).
    #[must_use]
    pub fn joined(left: Row<'a>, right: Row<'a>) -> Row<'a> {
        match (left, right) {
            (Row::One(l), Row::One(r)) => Row::Two([l, r]),
            (l, r) => {
                let mut frames = l.into_frame_vec();
                frames.extend(r.into_frame_vec());
                Row::Many(frames)
            }
        }
    }

    /// Collapses the row into one owned value.
    ///
    /// Single-frame rows are returned as-is (borrowed frames cost one
    /// `Arc` bump); join rows merge their frames left to right (later
    /// frames win on name clashes, mirroring [`StructValue::merged`] and
    /// the environment shadowing).  Each merge is counted in
    /// [`PipelineMetrics::rows_merged`].
    ///
    /// # Errors
    ///
    /// Returns a type error if a join frame is not a struct.
    pub fn materialize(self, metrics: &PipelineMetrics) -> Result<Value> {
        match self {
            Row::One(f) => Ok(f.into_value()),
            row => {
                let frames = row.into_frame_vec();
                let mut iter = frames.iter();
                let first = iter
                    .next()
                    .expect("join rows have at least two frames")
                    .value()
                    .as_struct()
                    .map_err(AlgebraError::from)?;
                let mut acc: StructValue = first.clone();
                for frame in iter {
                    acc = acc.merged(frame.value().as_struct().map_err(AlgebraError::from)?);
                }
                metrics.rows_merged.fetch_add(1, Ordering::Relaxed);
                Ok(Value::Struct(acc))
            }
        }
    }
}

// Compile-time audit for the parallel engine: a borrowed `Row` must be
// shareable across the worker pool (join-build shards hold rows scattered
// by one worker and probed by another), and per-worker metrics are read
// at the merge barrier through shared references.  `disco-value` pins the
// equivalent guarantee for the value plane itself.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Frame<'static>>();
    assert_send_sync::<Row<'static>>();
    assert_send_sync::<PipelineMetrics>();
};

/// Rows pulled per [`RowStream::next_batch`] call: large enough to
/// amortize the per-batch virtual dispatch, small enough that a batch of
/// `Row`s stays cache-resident.
pub const BATCH_ROWS: usize = 256;

/// A pull-based cursor over [`Row`]s — the operator interface of the
/// streaming engine.  The lifetime is the plan/resolved-sources borrow
/// rows may point into.
///
/// Operators are driven either row-at-a-time ([`RowStream::next_row`]) or
/// in vectorized batches ([`RowStream::next_batch`]); both may be mixed
/// freely on one stream.  The batched form exists purely for throughput —
/// it amortizes the per-operator virtual call and row move over
/// [`BATCH_ROWS`] rows — and must be observably identical to repeated
/// `next_row` calls.
pub trait RowStream<'a> {
    /// Pulls the next row; `None` when the stream is exhausted.  After an
    /// `Err` the stream state is unspecified and it should be dropped.
    fn next_row(&mut self) -> Option<Result<Row<'a>>>;

    /// Whether a pull would make progress *without blocking on a
    /// still-streaming source*.  Cursors over materialized inputs are
    /// always ready; a pending scan reports its spool state, and
    /// streaming transformers (filter, map, bind, project, flatten)
    /// delegate to their input.  Unions use this to pull from whichever
    /// branch has data while slower sources are still answering.
    ///
    /// `true` is always a *safe* answer (the pull may still block); it
    /// only costs overlap, never correctness.
    fn ready(&self) -> bool {
        true
    }

    /// Appends up to `max` rows to `out`.
    ///
    /// Returns `Ok(false)` once the stream is exhausted (no future call
    /// will produce rows).  A `true` return with fewer than `max` rows
    /// appended — even zero, e.g. a filter batch in which nothing matched
    /// — just means "call again".
    ///
    /// # Errors
    ///
    /// Propagates the first row error; the stream should then be dropped.
    fn next_batch(&mut self, out: &mut Vec<Row<'a>>, max: usize) -> Result<bool> {
        for _ in 0..max {
            match self.next_row() {
                Some(Ok(row)) => out.push(row),
                Some(Err(err)) => return Err(err),
                None => return Ok(false),
            }
        }
        Ok(true)
    }
}

/// A boxed cursor borrowing the plan it executes.
pub type BoxedRowStream<'a> = Box<dyn RowStream<'a> + 'a>;

/// Counters recording where a pipeline execution actually buffered or
/// merged rows.
///
/// Atomic (relaxed) so the counters are `Sync`: the parallel engine gives
/// every worker of the pool its **own** instance — bumps are uncontended —
/// and merges them exactly at the end with [`PipelineMetrics::merge`], so
/// per-worker counts sum to the same totals at every thread count.  One
/// `PipelineMetrics` instance tracks one plan execution (or one worker's
/// share of it), including any correlated sub-queries it evaluates.
#[derive(Debug)]
pub struct PipelineMetrics {
    rows_materialized: AtomicUsize,
    rows_merged: AtomicUsize,
    rows_emitted: AtomicUsize,
    rows_kernel: AtomicUsize,
    rows_fallback: AtomicUsize,
    /// Nanoseconds since [`metrics_epoch`] at which the first row reached
    /// a sink through this instance; `u64::MAX` = no row yet.
    first_row_ns: AtomicU64,
    /// Nanoseconds a consumer of this instance spent blocked waiting for
    /// a still-streaming source (pending-scan waits).  The complement of
    /// overlap: execution-window time not spent here was useful combine
    /// work (or idle workers).
    source_wait_ns: AtomicU64,
    /// Bytes written to spill runs by memory-budgeted pipeline breakers
    /// (hash-join builds, distinct seen-sets).  Zero under the default
    /// unbounded budget.
    bytes_spilled: AtomicU64,
    /// Grace partitions created by spilling breakers (8 per spill or
    /// re-split).  Zero under the default unbounded budget.
    spill_partitions: AtomicUsize,
    /// High-water mark of budget-tracked breaker bytes, merged across
    /// workers by maximum (it approximates one process-wide peak).
    peak_tracked_bytes: AtomicUsize,
}

impl Default for PipelineMetrics {
    fn default() -> Self {
        PipelineMetrics {
            rows_materialized: AtomicUsize::new(0),
            rows_merged: AtomicUsize::new(0),
            rows_emitted: AtomicUsize::new(0),
            rows_kernel: AtomicUsize::new(0),
            rows_fallback: AtomicUsize::new(0),
            first_row_ns: AtomicU64::new(u64::MAX),
            source_wait_ns: AtomicU64::new(0),
            bytes_spilled: AtomicU64::new(0),
            spill_partitions: AtomicUsize::new(0),
            peak_tracked_bytes: AtomicUsize::new(0),
        }
    }
}

/// The process-wide epoch first-row timestamps are measured against
/// (fixed at first use, so offsets from different metrics instances are
/// comparable and `merge` can take a plain minimum).
fn metrics_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

#[allow(clippy::cast_possible_truncation)]
fn since_epoch_ns() -> u64 {
    metrics_epoch().elapsed().as_nanos() as u64
}

impl PipelineMetrics {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        PipelineMetrics::default()
    }

    /// Adds another instance's counts into `self` — the barrier-side half
    /// of per-worker metrics: each worker counts into a private instance
    /// and the scheduler folds them all into the caller's, so
    /// `rows_materialized` & co. are exact sums, never racy snapshots.
    /// First-row timestamps merge by minimum; source-wait times sum (they
    /// are per-consumer blocked time, not wall-clock).
    pub fn merge(&self, other: &PipelineMetrics) {
        self.rows_materialized
            .fetch_add(other.rows_materialized(), Ordering::Relaxed);
        self.rows_merged
            .fetch_add(other.rows_merged(), Ordering::Relaxed);
        self.rows_emitted
            .fetch_add(other.rows_emitted(), Ordering::Relaxed);
        self.rows_kernel
            .fetch_add(other.rows_kernel(), Ordering::Relaxed);
        self.rows_fallback
            .fetch_add(other.rows_fallback(), Ordering::Relaxed);
        self.first_row_ns.fetch_min(
            other.first_row_ns.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        self.source_wait_ns.fetch_add(
            other.source_wait_ns.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        self.bytes_spilled
            .fetch_add(other.bytes_spilled(), Ordering::Relaxed);
        self.spill_partitions
            .fetch_add(other.spill_partitions(), Ordering::Relaxed);
        self.peak_tracked_bytes
            .fetch_max(other.peak_tracked_bytes(), Ordering::Relaxed);
    }

    /// Rows buffered by pipeline breakers: the hash-join build side, the
    /// inner side of a nested-loop or merge-tuples join, and the distinct
    /// seen-set.  Streaming operators never contribute here — that is the
    /// invariant the streaming engine exists for.
    #[must_use]
    pub fn rows_materialized(&self) -> usize {
        self.rows_materialized.load(Ordering::Relaxed)
    }

    /// Join rows whose frames had to be merged into a single struct
    /// (because they reached distinct, a column projection, or the final
    /// sink unprojected).  A `join → map-project` pipeline keeps this at
    /// zero.
    #[must_use]
    pub fn rows_merged(&self) -> usize {
        self.rows_merged.load(Ordering::Relaxed)
    }

    /// Rows delivered to the final collect sink (the answer size).
    #[must_use]
    pub fn rows_emitted(&self) -> usize {
        self.rows_emitted.load(Ordering::Relaxed)
    }

    /// Rows whose scalar work (filter predicates, map projections) ran
    /// through vectorized columnar kernels.  Together with
    /// [`PipelineMetrics::rows_fallback`] this makes kernel *coverage*
    /// observable: a pipeline the kernel set fully covers reports zero
    /// fallback rows.
    #[must_use]
    pub fn rows_kernel(&self) -> usize {
        self.rows_kernel.load(Ordering::Relaxed)
    }

    /// Rows a columnar stretch had to evaluate through the per-row
    /// [`Env`] path instead — an irregular batch (non-struct rows, missing
    /// fields, mixed types hitting a typed fast path) or a would-be
    /// evaluation error that the row evaluator must report.  Rows outside
    /// any columnar stretch count in neither bucket.
    #[must_use]
    pub fn rows_fallback(&self) -> usize {
        self.rows_fallback.load(Ordering::Relaxed)
    }

    /// When the first row reached a sink, as an elapsed time since
    /// `started` — the *time-to-first-row* of the execution.  `None` when
    /// no row was emitted (empty answers) or `started` is after the first
    /// row.
    #[must_use]
    pub fn time_to_first_row_since(&self, started: Instant) -> Option<Duration> {
        let ns = self.first_row_ns.load(Ordering::Relaxed);
        if ns == u64::MAX {
            return None;
        }
        let at = metrics_epoch() + Duration::from_nanos(ns);
        Some(at.saturating_duration_since(started))
    }

    /// Total time consumers spent blocked waiting on still-streaming
    /// sources (summed across workers).
    #[must_use]
    pub fn source_wait(&self) -> Duration {
        Duration::from_nanos(self.source_wait_ns.load(Ordering::Relaxed))
    }

    /// Bytes written to disk spill runs by memory-budgeted pipeline
    /// breakers.  Always zero under the default unbounded budget.
    #[must_use]
    pub fn bytes_spilled(&self) -> u64 {
        self.bytes_spilled.load(Ordering::Relaxed)
    }

    /// Grace partitions created by spilling breakers (8 per initial spill
    /// and 8 more per recursive re-split).
    #[must_use]
    pub fn spill_partitions(&self) -> usize {
        self.spill_partitions.load(Ordering::Relaxed)
    }

    /// High-water mark of budget-tracked breaker bytes over the
    /// execution.  Zero when the budget is unbounded (nothing is
    /// tracked then).
    #[must_use]
    pub fn peak_tracked_bytes(&self) -> usize {
        self.peak_tracked_bytes.load(Ordering::Relaxed)
    }

    fn note_first_row(&self) {
        // Unconditional `fetch_min`, like `merge`: a load-then-store pair
        // here would let two racing workers both pass the `u64::MAX`
        // check and the *later* timestamp overwrite the earlier one.
        self.first_row_ns
            .fetch_min(since_epoch_ns(), Ordering::Relaxed);
    }

    pub(crate) fn add_source_wait(&self, blocked: Duration) {
        #[allow(clippy::cast_possible_truncation)]
        self.source_wait_ns
            .fetch_add(blocked.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn bump_materialized(&self) {
        self.rows_materialized.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_emitted(&self) {
        self.rows_emitted.fetch_add(1, Ordering::Relaxed);
        self.note_first_row();
    }

    pub(crate) fn add_emitted(&self, n: usize) {
        if n == 0 {
            return;
        }
        self.rows_emitted.fetch_add(n, Ordering::Relaxed);
        self.note_first_row();
    }

    pub(crate) fn add_kernel(&self, n: usize) {
        if n != 0 {
            self.rows_kernel.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub(crate) fn add_fallback(&self, n: usize) {
        if n != 0 {
            self.rows_fallback.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub(crate) fn add_bytes_spilled(&self, n: u64) {
        if n != 0 {
            self.bytes_spilled.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub(crate) fn add_spill_partitions(&self, n: usize) {
        if n != 0 {
            self.spill_partitions.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub(crate) fn note_peak_tracked(&self, bytes: usize) {
        self.peak_tracked_bytes.fetch_max(bytes, Ordering::Relaxed);
    }
}

/// `&a + &b` builds a fresh instance holding the exact sums — the
/// operator form of [`PipelineMetrics::merge`].
impl std::ops::Add for &PipelineMetrics {
    type Output = PipelineMetrics;

    fn add(self, rhs: &PipelineMetrics) -> PipelineMetrics {
        let out = PipelineMetrics::new();
        out.merge(self);
        out.merge(rhs);
        out
    }
}

/// Whether fused pipeline stretches execute through the columnar
/// (batch-at-a-time, vectorized-kernel) engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ColumnarMode {
    /// Defer to the `DISCO_COLUMNAR` environment variable (`0`/`false`/
    /// `off` disable; anything else — including unset — enables).
    #[default]
    Auto,
    /// Force the columnar engine on, regardless of the environment.
    On,
    /// Force every operator through the row-at-a-time path.
    Off,
}

/// Whether the heterogeneity-aware adaptive scheduler is active:
/// speed-proportional morsel claiming (slow workers claim smaller
/// morsels) and overlap-first hash-join build-side selection (build on
/// whichever side's pending sources have already answered instead of
/// blocking on cardinalities).
///
/// Answers stay multiset-identical with adaptivity on or off at every
/// thread count, but two differential pins are traded for overlap while
/// it is engaged: morsel boundaries are no longer a pure function of
/// input length and thread count, and `rows_materialized` can differ
/// from the pinned build side's when a hash join builds the
/// first-answered (possibly larger) input.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AdaptiveMode {
    /// Defer to the `DISCO_ADAPTIVE` environment variable (`1`/`true`/
    /// `on` enable; anything else — including unset — keeps the pinned
    /// scheduler).
    #[default]
    Auto,
    /// Force adaptive scheduling on, regardless of the environment.
    On,
    /// Force the pinned (deterministic-boundary) scheduler.
    Off,
}

/// Options steering cursor construction and scheduling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineOptions {
    /// Which hash-join input to buffer as the build side.  `Auto` (the
    /// default) picks the smaller input by estimated cardinality.
    pub build_side: BuildSide,
    /// Worker threads for the morsel-driven parallel engine.  `0` (the
    /// default) defers to the `DISCO_THREADS` environment variable, which
    /// itself defaults to `1`; `1` is today's serial path, byte-identical
    /// to the PR 2 engine.  Values above [`parallel::MAX_THREADS`] are
    /// clamped.
    pub threads: usize,
    /// Rows per pipeline batch (and per columnar chunk).  `0` (the
    /// default) defers to the `DISCO_BATCH_ROWS` environment variable,
    /// which itself defaults to [`BATCH_ROWS`].  Clamped to
    /// `1..=1_048_576`.
    pub batch_rows: usize,
    /// Columnar-engine switch; see [`ColumnarMode`].
    pub columnar: ColumnarMode,
    /// Memory budget for pipeline breakers; see [`MemBudget`].  The
    /// default (`Auto`) defers to `DISCO_MEM_BUDGET`, which itself
    /// defaults to unbounded — the pre-spill behavior.
    pub mem_budget: MemBudget,
    /// Heterogeneity-aware scheduling switch; see [`AdaptiveMode`].  The
    /// default (`Auto`) defers to `DISCO_ADAPTIVE`, which itself
    /// defaults to off — the pinned scheduler.
    pub adaptive: AdaptiveMode,
}

impl PipelineOptions {
    /// The same options pinned to the serial path — handed to every
    /// cursor built *inside* a parallel worker so that nested evaluations
    /// (correlated sub-queries, union-branch subtrees) never try to
    /// re-enter the scheduler from a worker thread.
    #[must_use]
    pub(crate) fn serial(self) -> PipelineOptions {
        PipelineOptions { threads: 1, ..self }
    }

    /// The batch/chunk size this execution actually uses, with the `0 →
    /// environment → default` resolution applied.  Explicit values above
    /// [`MAX_BATCH_ROWS`] are clamped (warning once per process).
    #[must_use]
    pub fn effective_batch_rows(self) -> usize {
        if self.batch_rows == 0 {
            return env_batch_rows();
        }
        if self.batch_rows > MAX_BATCH_ROWS {
            static WARNED: OnceLock<()> = OnceLock::new();
            WARNED.get_or_init(|| {
                eprintln!(
                    "disco: PipelineOptions::batch_rows {} exceeds the maximum; clamping to {}",
                    self.batch_rows, MAX_BATCH_ROWS
                );
            });
        }
        self.batch_rows.clamp(1, MAX_BATCH_ROWS)
    }

    /// Whether the columnar engine is active under these options.
    #[must_use]
    pub fn columnar_enabled(self) -> bool {
        match self.columnar {
            ColumnarMode::On => true,
            ColumnarMode::Off => false,
            ColumnarMode::Auto => env_columnar_default(),
        }
    }

    /// The breaker memory budget this execution actually uses, with the
    /// `Auto → environment → unbounded` resolution applied.  `None` means
    /// unbounded (never spill).
    #[must_use]
    pub fn effective_mem_budget(self) -> Option<usize> {
        self.mem_budget.resolve()
    }

    /// Whether heterogeneity-aware adaptive scheduling is active under
    /// these options.
    #[must_use]
    pub fn adaptive_enabled(self) -> bool {
        match self.adaptive {
            AdaptiveMode::On => true,
            AdaptiveMode::Off => false,
            AdaptiveMode::Auto => env_adaptive_default(),
        }
    }
}

/// Upper bound on the rows-per-batch knob: chunk row indices are `u32`
/// and anything larger defeats cache-friendly batching anyway.
pub const MAX_BATCH_ROWS: usize = 1 << 20;

/// `DISCO_BATCH_ROWS`, validated at parse time (cached at first use).
/// Unset uses [`BATCH_ROWS`]; unparseable or zero values are rejected
/// with a warning and fall back to the default; values above
/// [`MAX_BATCH_ROWS`] are clamped with a warning.
fn env_batch_rows() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        let Ok(raw) = std::env::var("DISCO_BATCH_ROWS") else {
            return BATCH_ROWS;
        };
        match raw.trim().parse::<usize>() {
            Ok(0) | Err(_) => {
                eprintln!(
                    "disco: invalid DISCO_BATCH_ROWS {raw:?} (want an integer in 1..={MAX_BATCH_ROWS}); using {BATCH_ROWS}"
                );
                BATCH_ROWS
            }
            Ok(n) if n > MAX_BATCH_ROWS => {
                eprintln!(
                    "disco: DISCO_BATCH_ROWS {n} exceeds the maximum; clamping to {MAX_BATCH_ROWS}"
                );
                MAX_BATCH_ROWS
            }
            Ok(n) => n,
        }
    })
}

/// `DISCO_ADAPTIVE` (cached at first use; adaptive scheduling defaults
/// to **off** and is enabled by `1`, `true` or `on`; anything else warns
/// and keeps the pinned scheduler).
fn env_adaptive_default() -> bool {
    static CACHE: OnceLock<bool> = OnceLock::new();
    *CACHE.get_or_init(|| {
        let Ok(raw) = std::env::var("DISCO_ADAPTIVE") else {
            return false;
        };
        match raw.trim().to_ascii_lowercase().as_str() {
            "1" | "true" | "on" => true,
            "0" | "false" | "off" | "" => false,
            _ => {
                eprintln!(
                    "disco: invalid DISCO_ADAPTIVE {raw:?} (want 1/true/on or 0/false/off); \
                     keeping the pinned scheduler"
                );
                false
            }
        }
    })
}

/// `DISCO_COLUMNAR` (cached at first use; the columnar engine defaults to
/// **on** and is disabled by `0`, `false` or `off`).
fn env_columnar_default() -> bool {
    static CACHE: OnceLock<bool> = OnceLock::new();
    *CACHE.get_or_init(|| match std::env::var("DISCO_COLUMNAR") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "0" | "false" | "off"
        ),
        Err(_) => true,
    })
}

/// Shared, `Copy` context threaded through every cursor of one execution.
#[derive(Clone, Copy)]
pub(crate) struct PipelineCtx<'a> {
    pub resolved: &'a ResolvedExecs,
    pub outer: &'a Env<'a>,
    pub metrics: &'a PipelineMetrics,
    pub options: PipelineOptions,
    /// The breaker memory budget of this evaluation, shared by every
    /// cursor (serial) or worker (parallel).  The `evaluate_*` entry
    /// points allocate one per evaluation from
    /// [`PipelineOptions::effective_mem_budget`]; the raw
    /// [`open`]/[`open_with`] cursor API always gets the static unbounded
    /// instance (it cannot outlive a stack-local budget).
    pub budget: &'a MemoryBudget,
}

/// Opens a physical plan into a cursor tree with default options.
///
/// # Errors
///
/// Returns an error if the plan references an unresolved or unavailable
/// `exec` call; evaluation errors surface lazily from
/// [`RowStream::next_row`].
pub fn open<'a>(
    plan: &'a PhysicalExpr,
    resolved: &'a ResolvedExecs,
    outer: &'a Env<'a>,
    metrics: &'a PipelineMetrics,
) -> Result<BoxedRowStream<'a>> {
    open_with(plan, resolved, outer, metrics, PipelineOptions::default())
}

/// Opens a physical plan into a cursor tree.
///
/// # Errors
///
/// See [`open`].
pub fn open_with<'a>(
    plan: &'a PhysicalExpr,
    resolved: &'a ResolvedExecs,
    outer: &'a Env<'a>,
    metrics: &'a PipelineMetrics,
    options: PipelineOptions,
) -> Result<BoxedRowStream<'a>> {
    build(
        plan,
        PipelineCtx {
            resolved,
            outer,
            metrics,
            options,
            budget: spill::unbounded_static(),
        },
    )
}

/// Drains a cursor into a bag — the final sink of every pipeline.
///
/// Join rows reaching the sink unmerged are materialized here (counted in
/// [`PipelineMetrics::rows_merged`]).
///
/// # Errors
///
/// Propagates the first row error.
pub fn collect(cursor: BoxedRowStream<'_>, metrics: &PipelineMetrics) -> Result<Bag> {
    collect_with(cursor, metrics, BATCH_ROWS)
}

/// [`collect`] with an explicit batch size (the engine threads
/// [`PipelineOptions::effective_batch_rows`] through here).
pub(crate) fn collect_with(
    mut cursor: BoxedRowStream<'_>,
    metrics: &PipelineMetrics,
    batch_rows: usize,
) -> Result<Bag> {
    let mut out = Bag::new();
    let mut buf = Vec::with_capacity(batch_rows);
    loop {
        let more = cursor.next_batch(&mut buf, batch_rows)?;
        metrics.add_emitted(buf.len());
        for row in buf.drain(..) {
            let value = row.materialize(metrics)?;
            out.insert(value);
        }
        if !more {
            return Ok(out);
        }
    }
}

/// Recursively builds the cursor for one plan node.
pub(crate) fn build<'a>(
    plan: &'a PhysicalExpr,
    ctx: PipelineCtx<'a>,
) -> Result<BoxedRowStream<'a>> {
    // Columnar interception: when a stretch of this subtree fuses into a
    // vectorized kernel pipeline, run it batch-at-a-time.  `None` simply
    // means "not fusable here" — recursion below still intercepts fusable
    // *inner* subtrees (partial fusion).
    if ctx.options.columnar_enabled() {
        if let Some(cursor) = columnar::try_build(plan, ctx) {
            return Ok(cursor);
        }
    }
    match plan {
        PhysicalExpr::Exec {
            repository,
            extent,
            logical,
            ..
        } => {
            let key = ExecKey::new(repository, extent, logical);
            match ctx.resolved.outcome(&key) {
                Some(ExecOutcome::Rows(rows)) => Ok(Box::new(scan::ScanCursor::new(rows))),
                Some(ExecOutcome::Pending(source)) => Ok(Box::new(scan::PendingScanCursor::new(
                    std::sync::Arc::clone(source),
                    ctx.metrics,
                ))),
                Some(ExecOutcome::Unavailable) => Err(RuntimeError::Unsupported(format!(
                    "exec call to unavailable source {repository} reached the evaluator"
                ))),
                None => Err(RuntimeError::Unsupported(format!(
                    "unresolved exec call to {repository} ({extent})"
                ))),
            }
        }
        PhysicalExpr::MemScan(bag) => Ok(Box::new(scan::ScanCursor::new(bag))),
        PhysicalExpr::FilterOp { input, predicate } => Ok(Box::new(filter::FilterCursor::new(
            build(input, ctx)?,
            predicate,
            ctx,
        ))),
        PhysicalExpr::ProjectOp { input, columns } => Ok(Box::new(filter::ProjectCursor::new(
            build(input, ctx)?,
            columns,
            ctx,
        ))),
        PhysicalExpr::MapOp { input, projection } => Ok(Box::new(filter::MapCursor::new(
            build(input, ctx)?,
            projection,
            ctx,
        ))),
        PhysicalExpr::BindOp { var, input } => Ok(Box::new(filter::BindCursor::new(
            build(input, ctx)?,
            var,
            ctx,
        ))),
        PhysicalExpr::NestedLoopJoin {
            left,
            right,
            predicate,
        } => Ok(Box::new(join::NestedLoopCursor::new(
            build(left, ctx)?,
            build(right, ctx)?,
            predicate.as_ref(),
            ctx,
        ))),
        PhysicalExpr::HashJoin {
            left,
            right,
            left_key,
            right_key,
            residual,
        } => {
            let build_on_left = decide_build_side(left, right, ctx.options, ctx.resolved);
            Ok(Box::new(join::HashJoinCursor::new(
                build(left, ctx)?,
                build(right, ctx)?,
                left_key,
                right_key,
                residual.as_ref(),
                build_on_left,
                ctx,
            )))
        }
        PhysicalExpr::MergeTuplesJoin { left, right, on } => Ok(Box::new(
            join::MergeTuplesCursor::new(build(left, ctx)?, build(right, ctx)?, on, ctx),
        )),
        PhysicalExpr::MkUnion(items) => {
            let cursors = items
                .iter()
                .map(|item| build(item, ctx))
                .collect::<Result<Vec<_>>>()?;
            Ok(Box::new(union::UnionCursor::new(cursors, ctx)))
        }
        PhysicalExpr::MkFlatten(inner) => {
            Ok(Box::new(union::FlattenCursor::new(build(inner, ctx)?, ctx)))
        }
        PhysicalExpr::MkDistinct(inner) => {
            Ok(Box::new(sink::DistinctCursor::new(build(inner, ctx)?, ctx)))
        }
        PhysicalExpr::MkAggregate { func, input } => Ok(Box::new(sink::AggregateCursor::new(
            build(input, ctx)?,
            *func,
            ctx,
        ))),
    }
}

/// Picks the hash-join build side for one `HashJoin` node — shared by
/// the serial cursor builder and the parallel scheduler so both make the
/// same choice and `rows_materialized` agrees at every thread count.
///
/// Under `BuildSide::Auto` the pinned path buffers the smaller input by
/// blocking cardinality estimate ([`estimated_rows`] awaits pending
/// sources).  With adaptivity engaged the decision trades that pin for
/// overlap: only *already-answered* pending sources contribute a
/// cardinality ([`estimated_rows_ready`]), so the build starts on
/// whichever side answered first — behind a cost threshold
/// ([`join::ADAPTIVE_BUILD_MAX_ROWS`]) that refuses to buffer an
/// obviously oversized first-answered side — and never stalls waiting
/// for a trickling source.
pub(crate) fn decide_build_side(
    left: &PhysicalExpr,
    right: &PhysicalExpr,
    options: PipelineOptions,
    resolved: &ResolvedExecs,
) -> bool {
    match options.build_side {
        BuildSide::Left => true,
        BuildSide::Right => false,
        BuildSide::Auto if options.adaptive_enabled() => {
            match (
                estimated_rows_ready(left, resolved),
                estimated_rows_ready(right, resolved),
            ) {
                (Some(l), Some(r)) => l < r,
                // Exactly one side fully answered: build it, unless it is
                // so large that buffering it is likely worse than waiting
                // out the streaming side.
                (Some(l), None) => l <= join::ADAPTIVE_BUILD_MAX_ROWS,
                // Neither answered: keep the conventional right-side
                // build and start consuming it immediately — the build
                // overlaps the stream instead of blocking on `await_len`.
                (None, Some(_)) | (None, None) => false,
            }
        }
        BuildSide::Auto => {
            // Buffer the smaller input; ties and unknowns keep the
            // conventional right-side build.
            match (
                estimated_rows(left, resolved),
                estimated_rows(right, resolved),
            ) {
                (Some(l), Some(r)) => l < r,
                _ => false,
            }
        }
    }
}

/// Static cardinality estimate of a physical plan, from resolved `exec`
/// outcomes and literal bag lengths.
///
/// Filters, projections and distinct report their input size (an upper
/// bound); joins multiply; an unavailable or unresolved source is
/// unknown.  Used to pick the hash-join build side.
#[must_use]
pub fn estimated_rows(plan: &PhysicalExpr, resolved: &ResolvedExecs) -> Option<usize> {
    match plan {
        PhysicalExpr::MemScan(bag) => Some(bag.len()),
        PhysicalExpr::Exec {
            repository,
            extent,
            logical,
            ..
        } => {
            let key = ExecKey::new(repository, extent, logical);
            match resolved.outcome(&key) {
                Some(ExecOutcome::Rows(rows)) => Some(rows.len()),
                // A pending source blocks until its call completes (bounded
                // by the deadline): hash-join build-side choices — and with
                // them `rows_materialized` — stay identical to the blocking
                // path's.  Union/branch shapes never ask, so the federated
                // overlap path is unaffected.
                Some(ExecOutcome::Pending(source)) => source.await_len(),
                _ => None,
            }
        }
        PhysicalExpr::FilterOp { input, .. }
        | PhysicalExpr::ProjectOp { input, .. }
        | PhysicalExpr::MapOp { input, .. }
        | PhysicalExpr::BindOp { input, .. } => estimated_rows(input, resolved),
        PhysicalExpr::MkFlatten(inner) | PhysicalExpr::MkDistinct(inner) => {
            estimated_rows(inner, resolved)
        }
        PhysicalExpr::MkUnion(items) => items
            .iter()
            .map(|item| estimated_rows(item, resolved))
            .try_fold(0usize, |acc, n| n.map(|n| acc + n)),
        PhysicalExpr::NestedLoopJoin { left, right, .. }
        | PhysicalExpr::HashJoin { left, right, .. }
        | PhysicalExpr::MergeTuplesJoin { left, right, .. } => {
            let l = estimated_rows(left, resolved)?;
            let r = estimated_rows(right, resolved)?;
            l.checked_mul(r)
        }
        PhysicalExpr::MkAggregate { .. } => Some(1),
    }
}

/// Non-blocking variant of [`estimated_rows`] for the adaptive build-side
/// decision: a pending source contributes a cardinality only when its
/// spool has already completed ([`crate::exec::PendingSource::finished_len`]) —
/// a still-streaming source is `None` instead of a blocked wait.
#[must_use]
pub fn estimated_rows_ready(plan: &PhysicalExpr, resolved: &ResolvedExecs) -> Option<usize> {
    match plan {
        PhysicalExpr::MemScan(bag) => Some(bag.len()),
        PhysicalExpr::Exec {
            repository,
            extent,
            logical,
            ..
        } => {
            let key = ExecKey::new(repository, extent, logical);
            match resolved.outcome(&key) {
                Some(ExecOutcome::Rows(rows)) => Some(rows.len()),
                Some(ExecOutcome::Pending(source)) => source.finished_len(),
                _ => None,
            }
        }
        PhysicalExpr::FilterOp { input, .. }
        | PhysicalExpr::ProjectOp { input, .. }
        | PhysicalExpr::MapOp { input, .. }
        | PhysicalExpr::BindOp { input, .. } => estimated_rows_ready(input, resolved),
        PhysicalExpr::MkFlatten(inner) | PhysicalExpr::MkDistinct(inner) => {
            estimated_rows_ready(inner, resolved)
        }
        PhysicalExpr::MkUnion(items) => items
            .iter()
            .map(|item| estimated_rows_ready(item, resolved))
            .try_fold(0usize, |acc, n| n.map(|n| acc + n)),
        PhysicalExpr::NestedLoopJoin { left, right, .. }
        | PhysicalExpr::HashJoin { left, right, .. }
        | PhysicalExpr::MergeTuplesJoin { left, right, .. } => {
            let l = estimated_rows_ready(left, resolved)?;
            let r = estimated_rows_ready(right, resolved)?;
            l.checked_mul(r)
        }
        PhysicalExpr::MkAggregate { .. } => Some(1),
    }
}

/// Evaluates a logical plan through the streaming engine, sharing the
/// caller's metrics (used for correlated aggregate sub-queries).
pub(crate) fn evaluate_logical_streamed(
    plan: &LogicalExpr,
    resolved: &ResolvedExecs,
    outer: &Env<'_>,
    metrics: &PipelineMetrics,
    options: PipelineOptions,
) -> Result<Bag> {
    let physical = lower(plan).map_err(RuntimeError::Algebra)?;
    evaluate_physical_streamed(&physical, resolved, outer, metrics, options)
}

/// [`evaluate_logical_streamed`] charging an existing budget instead of
/// allocating a fresh one — the correlated-sub-query path, where the
/// nested evaluation must count against the *parent* execution's
/// `DISCO_MEM_BUDGET` ceiling rather than getting its own.
pub(crate) fn evaluate_logical_streamed_with_budget(
    plan: &LogicalExpr,
    resolved: &ResolvedExecs,
    outer: &Env<'_>,
    metrics: &PipelineMetrics,
    options: PipelineOptions,
    budget: &MemoryBudget,
) -> Result<Bag> {
    let physical = lower(plan).map_err(RuntimeError::Algebra)?;
    evaluate_physical_streamed_with_budget(&physical, resolved, outer, metrics, options, budget)
}

/// Evaluates a physical plan through the streaming engine into a bag.
pub(crate) fn evaluate_physical_streamed(
    plan: &PhysicalExpr,
    resolved: &ResolvedExecs,
    outer: &Env<'_>,
    metrics: &PipelineMetrics,
    options: PipelineOptions,
) -> Result<Bag> {
    // One breaker memory budget per top-level evaluation, shared with
    // every nested (correlated sub-query) evaluation below it so that
    // `DISCO_MEM_BUDGET` is a true per-query ceiling.  The default
    // resolves to unbounded, where `charge` is a no-op and nothing below
    // ever spills.
    let budget = spill::MemoryBudget::from_limit(options.effective_mem_budget());
    let result =
        evaluate_physical_streamed_with_budget(plan, resolved, outer, metrics, options, &budget);
    metrics.note_peak_tracked(budget.peak());
    result
}

/// [`evaluate_physical_streamed`] against a caller-owned budget.  Peak
/// tracking is the allocating caller's job — this function only charges.
pub(crate) fn evaluate_physical_streamed_with_budget(
    plan: &PhysicalExpr,
    resolved: &ResolvedExecs,
    outer: &Env<'_>,
    metrics: &PipelineMetrics,
    options: PipelineOptions,
    budget: &MemoryBudget,
) -> Result<Bag> {
    // Pass-through roots keep the O(1) bag-adoption fast path the
    // materializing evaluator had: the answer *is* the (shared) bag, so
    // cloning it is one Arc bump instead of an element-by-element copy
    // through the sink.  Partial evaluation leans on this when collapsing
    // fully-resolved `Data` subtrees.
    match plan {
        PhysicalExpr::MemScan(bag) => {
            metrics.add_emitted(bag.len());
            return Ok(bag.clone());
        }
        PhysicalExpr::Exec {
            repository,
            extent,
            logical,
            ..
        } => {
            let key = ExecKey::new(repository, extent, logical);
            if let Some(ExecOutcome::Rows(rows)) = resolved.outcome(&key) {
                metrics.add_emitted(rows.len());
                return Ok(rows.clone());
            }
            // Fall through to `open_with`, which reports the precise
            // unavailable/unresolved error for this node.
        }
        _ => {}
    }
    if parallel::effective_threads(options) > 1 {
        if let Some(result) =
            parallel::try_evaluate(plan, resolved, outer, metrics, options, budget)
        {
            return result;
        }
    }
    // Serial path.  Threads are pinned to 1 so correlated sub-queries
    // evaluated per row never re-enter the parallel scheduler.
    let options = options.serial();
    let ctx = PipelineCtx {
        resolved,
        outer,
        metrics,
        options,
        budget,
    };
    let cursor = build(plan, ctx)?;
    collect_with(cursor, metrics, options.effective_batch_rows())
}

/// Builds the layered environment of a row's frames on top of `outer` and
/// hands it to `f`.
///
/// Continuation-passing because an [`Env`] chains borrowed scopes: each
/// frame's scope lives on this call stack, so the environment can only be
/// used inside the callback.  The one- and two-frame cases (every row
/// except joins-over-joins) are statically dispatched; deeper frame
/// stacks fall back to a dynamic recursion so the compiler does not
/// instantiate a closure type per depth.
pub(crate) fn with_row_env<R>(
    frames: &[Frame<'_>],
    outer: &Env<'_>,
    f: impl FnOnce(&Env<'_>) -> R,
) -> R {
    match frames {
        [] => f(outer),
        [a] => f(&outer.with_value(a.value())),
        [a, b] => {
            let inner = outer.with_value(a.value());
            f(&inner.with_value(b.value()))
        }
        [first, rest @ ..] => {
            let env = outer.with_value(first.value());
            let mut f = Some(f);
            let mut result = None;
            with_row_env_dyn(rest, &env, &mut |env| {
                result = Some(f.take().expect("called once")(env));
            });
            result.expect("callback ran")
        }
    }
}

/// Dynamic-dispatch tail of [`with_row_env`] for 3+ frame rows.
fn with_row_env_dyn(frames: &[Frame<'_>], outer: &Env<'_>, f: &mut dyn FnMut(&Env<'_>)) {
    match frames.split_first() {
        None => f(outer),
        Some((first, rest)) => {
            let env = outer.with_value(first.value());
            with_row_env_dyn(rest, &env, f);
        }
    }
}

/// Evaluates a scalar expression against an environment, resolving
/// aggregate sub-queries through a nested streaming pipeline that shares
/// this execution's metrics.
pub(crate) fn eval_row_scalar(
    expr: &ScalarExpr,
    env: &Env<'_>,
    ctx: PipelineCtx<'_>,
) -> Result<Value> {
    let callback = |plan: &LogicalExpr, outer: &Env<'_>| {
        // Correlated sub-queries charge the parent execution's shared
        // budget (`ctx.budget`), not a fresh one per evaluation — k
        // nested evaluations under one query share one ceiling.
        evaluate_logical_streamed_with_budget(
            plan,
            ctx.resolved,
            outer,
            ctx.metrics,
            ctx.options,
            ctx.budget,
        )
        .map_err(|e| AlgebraError::Unsupported(e.to_string()))
    };
    eval_scalar_with(expr, env, &callback).map_err(RuntimeError::Algebra)
}

/// Evaluates a scalar expression in the environment of a row's frames.
pub(crate) fn eval_in_row(expr: &ScalarExpr, row: &Row<'_>, ctx: PipelineCtx<'_>) -> Result<Value> {
    with_row_env(row.frames(), ctx.outer, |env| {
        eval_row_scalar(expr, env, ctx)
    })
}

/// Evaluates a scalar expression in the environment of a candidate join
/// pair — left frames stacked first, right frames shadowing — **without**
/// constructing the joined row.  Joins use this for predicates and
/// residuals so that only surviving pairs pay for a [`Row::joined`].
pub(crate) fn eval_in_pair(
    expr: &ScalarExpr,
    left: &Row<'_>,
    right: &Row<'_>,
    ctx: PipelineCtx<'_>,
) -> Result<Value> {
    with_row_env(left.frames(), ctx.outer, |lenv| {
        with_row_env(right.frames(), lenv, |env| eval_row_scalar(expr, env, ctx))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression test: `note_first_row` used to be a load-then-store
    /// pair (`if first_row_ns == MAX { store(now) }`), so two racing
    /// workers could both pass the check and the *later* timestamp would
    /// overwrite the earlier one.  The fix is an unconditional
    /// `fetch_min`; pin that a second, later observation never moves the
    /// timestamp.
    #[test]
    fn note_first_row_keeps_the_earliest_timestamp() {
        let metrics = PipelineMetrics::new();
        assert_eq!(metrics.first_row_ns.load(Ordering::Relaxed), u64::MAX);
        metrics.note_first_row();
        let first = metrics.first_row_ns.load(Ordering::Relaxed);
        assert_ne!(first, u64::MAX);
        std::thread::sleep(Duration::from_millis(2));
        metrics.note_first_row();
        assert_eq!(
            metrics.first_row_ns.load(Ordering::Relaxed),
            first,
            "a later first-row observation must not overwrite the earlier one"
        );
    }

    /// The same property through `merge`: folding in a worker whose
    /// first row landed later must not move an earlier timestamp (and
    /// folding in an earlier one must).
    #[test]
    fn merge_takes_the_minimum_first_row_timestamp() {
        let early = PipelineMetrics::new();
        early.note_first_row();
        let early_ns = early.first_row_ns.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(2));
        let late = PipelineMetrics::new();
        late.note_first_row();

        let merged = PipelineMetrics::new();
        merged.merge(&late);
        merged.merge(&early);
        assert_eq!(merged.first_row_ns.load(Ordering::Relaxed), early_ns);

        // A never-fired instance (`u64::MAX`) must not clobber anything
        // either direction.
        let idle = PipelineMetrics::new();
        merged.merge(&idle);
        assert_eq!(merged.first_row_ns.load(Ordering::Relaxed), early_ns);
    }
}
