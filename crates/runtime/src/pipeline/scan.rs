//! Leaf cursors: scans over in-memory bags.

use disco_value::Bag;

use super::{Result, Row, RowStream};

/// Streams the elements of a bag **by reference**: the bag lives in the
/// plan (`memscan` literal data) or in the resolved `exec` outcomes, both
/// of which outlive the pipeline, so the scan yields one borrowed frame
/// per row — no clone, no collect, not even a reference-count bump.  A
/// value is cloned only if its row survives to a consumer that needs
/// ownership (join build table, distinct seen-set, the final sink).
pub(crate) struct ScanCursor<'a> {
    items: &'a [disco_value::Value],
    index: usize,
}

impl<'a> ScanCursor<'a> {
    pub(crate) fn new(bag: &'a Bag) -> Self {
        ScanCursor::over(bag.as_slice())
    }

    /// A scan over an arbitrary value slice — the parallel engine hands
    /// each worker one morsel-sized sub-slice of a leaf bag through this.
    pub(crate) fn over(items: &'a [disco_value::Value]) -> Self {
        ScanCursor { items, index: 0 }
    }
}

impl<'a> RowStream<'a> for ScanCursor<'a> {
    fn next_row(&mut self) -> Option<Result<Row<'a>>> {
        let item = self.items.get(self.index)?;
        self.index += 1;
        Some(Ok(Row::borrowed(item)))
    }

    fn next_batch(&mut self, out: &mut Vec<Row<'a>>, max: usize) -> Result<bool> {
        let end = (self.index + max).min(self.items.len());
        out.extend(self.items[self.index..end].iter().map(Row::borrowed));
        self.index = end;
        Ok(self.index < self.items.len())
    }
}
