//! Leaf cursors: scans over in-memory bags and over still-streaming
//! pending sources.

use std::collections::VecDeque;
use std::sync::Arc;

use disco_value::{Bag, Value};

use crate::exec::{PendingSource, Progress};
use crate::RuntimeError;

use super::{PipelineMetrics, Result, Row, RowStream, BATCH_ROWS};

/// Streams the elements of a bag **by reference**: the bag lives in the
/// plan (`memscan` literal data) or in the resolved `exec` outcomes, both
/// of which outlive the pipeline, so the scan yields one borrowed frame
/// per row — no clone, no collect, not even a reference-count bump.  A
/// value is cloned only if its row survives to a consumer that needs
/// ownership (join build table, distinct seen-set, the final sink).
pub(crate) struct ScanCursor<'a> {
    items: &'a [disco_value::Value],
    index: usize,
}

impl<'a> ScanCursor<'a> {
    pub(crate) fn new(bag: &'a Bag) -> Self {
        ScanCursor::over(bag.as_slice())
    }

    /// A scan over an arbitrary value slice — the parallel engine hands
    /// each worker one morsel-sized sub-slice of a leaf bag through this.
    pub(crate) fn over(items: &'a [disco_value::Value]) -> Self {
        ScanCursor { items, index: 0 }
    }
}

impl<'a> RowStream<'a> for ScanCursor<'a> {
    fn next_row(&mut self) -> Option<Result<Row<'a>>> {
        let item = self.items.get(self.index)?;
        self.index += 1;
        Some(Ok(Row::borrowed(item)))
    }

    fn next_batch(&mut self, out: &mut Vec<Row<'a>>, max: usize) -> Result<bool> {
        let end = (self.index + max).min(self.items.len());
        out.extend(self.items[self.index..end].iter().map(Row::borrowed));
        self.index = end;
        Ok(self.index < self.items.len())
    }
}

/// Streams a still-resolving `exec` call: rows are pulled out of the
/// [`PendingSource`] spool as the wrapper thread pushes chunks, so the
/// pipeline above combines data while slower sources are still answering.
/// The cursor blocks only when *its own* source is behind; the blocked
/// time is charged to [`PipelineMetrics::source_wait`].
///
/// Rows are cloned out of the spool (`Arc` bumps), so the cursor owns its
/// rows and several scans of the same deduplicated call can read one
/// spool independently, each with its own index.
///
/// At the execution deadline a blocked wait flips the spool to
/// unavailable; the cursor then surfaces
/// [`RuntimeError::PendingUnavailable`], which the executor catches to
/// fall back to partial evaluation.
pub(crate) struct PendingScanCursor<'a> {
    source: Arc<PendingSource>,
    metrics: &'a PipelineMetrics,
    /// Read index into the spool (rows consumed into `buf`).
    index: usize,
    /// Rows fetched but not yet handed out (feeds `next_row`).
    buf: VecDeque<Value>,
    exhausted: bool,
}

impl<'a> PendingScanCursor<'a> {
    pub(crate) fn new(source: Arc<PendingSource>, metrics: &'a PipelineMetrics) -> Self {
        PendingScanCursor {
            source,
            metrics,
            index: 0,
            buf: VecDeque::new(),
            exhausted: false,
        }
    }

    /// Waits for up to `max` more rows; `None` when the stream completed.
    fn fetch(&mut self, max: usize) -> Result<Option<Vec<Value>>> {
        if self.exhausted {
            return Ok(None);
        }
        let (progress, blocked) = self.source.wait_rows(self.index, max);
        if !blocked.is_zero() {
            self.metrics.add_source_wait(blocked);
        }
        match progress {
            Progress::Rows(rows) => {
                self.index += rows.len();
                Ok(Some(rows))
            }
            Progress::Done => {
                self.exhausted = true;
                Ok(None)
            }
            Progress::Unavailable => Err(RuntimeError::PendingUnavailable(
                self.source.repository().to_owned(),
            )),
            Progress::Failed(err) => Err(RuntimeError::Wrapper(err)),
            Progress::Panicked(msg) => Err(RuntimeError::WorkerPanic(msg)),
            Progress::SpillError(msg) => Err(RuntimeError::Spill(msg)),
        }
    }
}

impl<'a> RowStream<'a> for PendingScanCursor<'a> {
    fn next_row(&mut self) -> Option<Result<Row<'a>>> {
        if let Some(value) = self.buf.pop_front() {
            return Some(Ok(Row::owned(value)));
        }
        match self.fetch(BATCH_ROWS) {
            Ok(Some(rows)) => {
                self.buf.extend(rows);
                self.buf.pop_front().map(|value| Ok(Row::owned(value)))
            }
            Ok(None) => None,
            Err(err) => Some(Err(err)),
        }
    }

    fn next_batch(&mut self, out: &mut Vec<Row<'a>>, max: usize) -> Result<bool> {
        if !self.buf.is_empty() {
            let take = self.buf.len().min(max);
            out.extend(self.buf.drain(..take).map(Row::owned));
            return Ok(true);
        }
        match self.fetch(max)? {
            Some(rows) => {
                out.extend(rows.into_iter().map(Row::owned));
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn ready(&self) -> bool {
        !self.buf.is_empty() || self.exhausted || self.source.ready(self.index)
    }
}

/// A scan over an owned chunk of rows — the parallel engine's morsel unit
/// for *growing* (pending) sources: workers claim chunks as they land in
/// the spool and run their cursor tree over each.
pub(crate) struct ChunkScanCursor {
    rows: Arc<Vec<Value>>,
    index: usize,
}

impl ChunkScanCursor {
    pub(crate) fn new(rows: Arc<Vec<Value>>) -> Self {
        ChunkScanCursor { rows, index: 0 }
    }
}

impl<'a> RowStream<'a> for ChunkScanCursor {
    fn next_row(&mut self) -> Option<Result<Row<'a>>> {
        let value = self.rows.get(self.index)?.clone();
        self.index += 1;
        Some(Ok(Row::owned(value)))
    }

    fn next_batch(&mut self, out: &mut Vec<Row<'a>>, max: usize) -> Result<bool> {
        let end = (self.index + max).min(self.rows.len());
        out.extend(self.rows[self.index..end].iter().cloned().map(Row::owned));
        self.index = end;
        Ok(self.index < self.rows.len())
    }
}
