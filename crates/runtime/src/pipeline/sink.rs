//! Pipeline-breaking sinks: distinct and aggregates.
//!
//! Distinct streams its *output* — a row is emitted the moment it turns
//! out to be new — but buffers the set of values already seen, which is
//! what makes it a (partial) pipeline breaker.  Duplicate rows are
//! rejected on a borrowed hash lookup without ever cloning the value.
//! Aggregates fold their whole input into one value with O(1) state; no
//! input bag is ever collected, so the only "materialized" row is the
//! single result.
//!
//! # Spilling (bounded memory budgets)
//!
//! Under a bounded [`MemoryBudget`](super::spill::MemoryBudget) the
//! distinct seen-set charges every value it retains.  When the budget
//! trips, the operator goes Grace: the resident seen-set is dumped to 8
//! hash-routed disk runs (these values were already emitted — on disk
//! they only serve to suppress later duplicates), the rest of the input
//! is routed to 8 matching candidate runs without any emission, and each
//! partition is then drained independently — reload its seen run, stream
//! its candidate run, emit values that are new.  A partition whose
//! reloaded (or growing) seen-set trips the budget again is re-split
//! with 3 fresh hash bits per level, so repeated duplicates of a heavy
//! value never force the whole set resident.  The emitted multiset, the
//! input error positions, and `rows_materialized` (one bump per distinct
//! value) are identical to the in-memory path; only the emission *order*
//! after the trip differs, which `distinct` — a bag operator — does not
//! promise.  Aggregates never spill: their state is O(1) regardless of
//! budget.

use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasher, BuildHasherDefault, Hasher, RandomState};

use disco_algebra::{AggKind, AlgebraError};
use disco_value::{approx_value_bytes, Value};

use super::spill::{spill_partition, RunFile, RunFileReader, MAX_SPILL_LEVEL, SPILL_FANOUT};
use super::{BoxedRowStream, PipelineCtx, Result, Row, RowStream};

/// Pass-through hasher for keys that already *are* hashes.
#[derive(Default)]
pub(crate) struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("identity hasher is only fed u64 keys");
    }

    fn write_u64(&mut self, hash: u64) {
        self.0 = hash;
    }
}

/// One seen-set bucket: values sharing a 64-bit hash (almost always one).
enum Bucket {
    One(Value),
    Many(Vec<Value>),
}

impl Bucket {
    fn contains(&self, value: &Value) -> bool {
        match self {
            Bucket::One(v) => v == value,
            Bucket::Many(vs) => vs.iter().any(|v| v == value),
        }
    }

    fn push(&mut self, value: Value) {
        match self {
            Bucket::One(first) => {
                *self = Bucket::Many(vec![std::mem::take(first), value]);
            }
            Bucket::Many(vs) => vs.push(value),
        }
    }
}

/// A set of values that computes each value's canonical hash — which
/// walks strings and structs, so it is the expensive part — exactly once
/// per probed row.  Buckets are keyed by the 64-bit hash through an
/// identity hasher; equality is only checked within a bucket.  A plain
/// `HashSet<Value>` hashes every *new* value twice (miss, then insert),
/// which dominates distinct-over-structs pipelines whose rows are mostly
/// unique.
#[derive(Default)]
pub(crate) struct SeenSet {
    hasher: RandomState,
    buckets: HashMap<u64, Bucket, BuildHasherDefault<IdentityHasher>>,
}

impl SeenSet {
    /// A seen-set that buckets with a caller-supplied hasher — used by the
    /// parallel distinct shards, which route rows to shards and bucket
    /// them inside the shard off one and the same hash computation.
    pub(crate) fn with_hasher(hasher: RandomState) -> Self {
        SeenSet {
            hasher,
            buckets: HashMap::default(),
        }
    }

    /// The canonical hash this set buckets `value` under.
    pub(crate) fn hash_of(&self, value: &Value) -> u64 {
        self.hasher.hash_one(value)
    }

    /// Returns the value's hash when it has not been seen, `None` when it
    /// is a duplicate.  Borrow-only — no clone either way.
    pub(crate) fn check(&self, value: &Value) -> Option<u64> {
        let hash = self.hash_of(value);
        if self.check_hashed(hash, value) {
            Some(hash)
        } else {
            None
        }
    }

    /// Like [`SeenSet::check`] with the hash precomputed (`true` = new).
    /// The hash must come from this set's hasher ([`SeenSet::hash_of`] or
    /// a clone of the [`RandomState`] it was built with).
    pub(crate) fn check_hashed(&self, hash: u64, value: &Value) -> bool {
        match self.buckets.get(&hash) {
            Some(bucket) => !bucket.contains(value),
            None => true,
        }
    }

    /// Records a value under the hash [`SeenSet::check`] returned for it.
    pub(crate) fn insert_hashed(&mut self, hash: u64, value: Value) {
        match self.buckets.entry(hash) {
            std::collections::hash_map::Entry::Occupied(mut entry) => entry.get_mut().push(value),
            std::collections::hash_map::Entry::Vacant(entry) => {
                entry.insert(Bucket::One(value));
            }
        }
    }

    /// Moves every stored value out of the set, leaving it empty.  The
    /// spill path uses this to dump the resident set into hash-routed
    /// disk runs when the memory budget trips.
    fn drain_values(&mut self) -> Vec<Value> {
        let mut out = Vec::new();
        for (_, bucket) in self.buckets.drain() {
            match bucket {
                Bucket::One(v) => out.push(v),
                Bucket::Many(vs) => out.extend(vs),
            }
        }
        out
    }
}

/// Approximate resident bytes of one seen-set entry: the stored value's
/// payload plus the bucket-map slot holding it.
fn entry_cost(value: &Value) -> usize {
    std::mem::size_of::<(u64, Bucket)>() + approx_value_bytes(value)
}

/// Emits each distinct value once, preserving first-occurrence order
/// while in memory; after a budget trip, partition-major order.
pub(crate) struct DistinctCursor<'a> {
    input: BoxedRowStream<'a>,
    seen: SeenSet,
    ctx: PipelineCtx<'a>,
    scratch: Vec<Row<'a>>,
    /// Bytes charged against the budget for the resident seen-set.
    charged: usize,
    /// Set when a charge fails; the next pull enters the spill path.
    /// Trips are acted on per admitted value — a batch stops admitting
    /// mid-way — so the resident overshoot is at most one entry.
    tripped: bool,
    /// Rows pulled from the input but not yet admitted when a trip cut a
    /// batch short; the spill transition routes them as candidates ahead
    /// of the rest of the input.
    pending: Vec<Row<'a>>,
    spill: Option<DistinctSpill>,
}

/// Grace state of a spilled distinct: hash-partitioned seen/candidate
/// run pairs plus the partition currently being drained.
struct DistinctSpill {
    /// Partition router, independent of every seen-set's bucket hasher.
    route: RandomState,
    queue: VecDeque<DistinctPartition>,
    current: Option<PartitionDrain>,
}

/// One on-disk partition: the values already emitted for it (if any) and
/// the candidate values still to be deduplicated.
struct DistinctPartition {
    seen: Option<RunFileReader>,
    input: RunFileReader,
    level: u32,
}

/// A partition being drained: its reloaded (and growing) seen-set and
/// the candidate run it is streaming.
struct PartitionDrain {
    seen: SeenSet,
    input: RunFileReader,
    charged: usize,
    level: u32,
    /// Set when the growing seen-set trips the budget mid-stream; the
    /// next pull re-splits this partition instead of continuing.
    resplit: bool,
}

/// Either a partition small enough to drain, or its re-split children.
enum LoadedDistinct {
    Drain(PartitionDrain),
    Split(Vec<DistinctPartition>),
}

impl<'a> DistinctCursor<'a> {
    pub(crate) fn new(input: BoxedRowStream<'a>, ctx: PipelineCtx<'a>) -> Self {
        DistinctCursor {
            input,
            seen: SeenSet::default(),
            ctx,
            scratch: Vec::new(),
            charged: 0,
            tripped: false,
            pending: Vec::new(),
            spill: None,
        }
    }

    /// Admits a row if its value has not been seen: every row pays one
    /// hash computation; duplicates are rejected on a borrowed lookup
    /// without any clone; new values are copied once into the seen-set
    /// (an `Arc` bump).
    fn admit(&mut self, row: Row<'a>) -> Result<Option<Row<'a>>> {
        let (hash, value) = if let Some(value) = row.single_value() {
            let Some(hash) = self.seen.check(value) else {
                return Ok(None);
            };
            (hash, row.materialize(self.ctx.metrics)?)
        } else {
            // Join rows must be merged before they can be compared.
            let value = row.materialize(self.ctx.metrics)?;
            let Some(hash) = self.seen.check(&value) else {
                return Ok(None);
            };
            (hash, value)
        };
        // The seen-set keeps one copy per distinct value — the operator's
        // entire buffered state.
        self.seen.insert_hashed(hash, value.clone());
        if self.ctx.budget.is_bounded() {
            let cost = entry_cost(&value);
            self.charged += cost;
            if !self.ctx.budget.charge(cost) {
                self.tripped = true;
            }
        }
        self.ctx.metrics.bump_materialized();
        Ok(Some(Row::owned(value)))
    }

    /// Transitions to the Grace path: dumps the resident seen-set into 8
    /// hash-routed runs (no re-emission — these values already went
    /// downstream), then routes the *entire* rest of the input into 8
    /// matching candidate runs.  Join rows are merged here exactly where
    /// the in-memory loop would merge them, so `rows_merged` and the
    /// positions of input errors are unchanged.
    fn enter_spill(&mut self) -> Result<()> {
        let route = RandomState::new();
        let mut seen_runs = new_runs()?;
        for value in self.seen.drain_values() {
            let p = spill_partition(route.hash_one(&value), 0);
            seen_runs[p].push(std::slice::from_ref(&value))?;
        }
        self.ctx.budget.uncharge(self.charged);
        self.charged = 0;
        let mut input_runs = new_runs()?;
        // Rows a trip cut out of their batch come first: they were read
        // from the input before anything still buffered there.
        for row in std::mem::take(&mut self.pending) {
            let value = row.materialize(self.ctx.metrics)?;
            let p = spill_partition(route.hash_one(&value), 0);
            input_runs[p].push(std::slice::from_ref(&value))?;
        }
        let mut buf = std::mem::take(&mut self.scratch);
        loop {
            buf.clear();
            let more = self.input.next_batch(&mut buf, super::BATCH_ROWS)?;
            for row in buf.drain(..) {
                let value = row.materialize(self.ctx.metrics)?;
                let p = spill_partition(route.hash_one(&value), 0);
                input_runs[p].push(std::slice::from_ref(&value))?;
            }
            if !more {
                break;
            }
        }
        self.scratch = buf;
        let bytes: u64 = seen_runs.iter().map(RunFile::bytes).sum::<u64>()
            + input_runs.iter().map(RunFile::bytes).sum::<u64>();
        self.ctx.metrics.add_bytes_spilled(bytes);
        self.ctx.metrics.add_spill_partitions(SPILL_FANOUT);
        let mut queue = VecDeque::new();
        for (seen, input) in seen_runs.into_iter().zip(input_runs) {
            // A partition with no candidates has nothing left to emit —
            // its seen values already went downstream.
            if input.rows() == 0 {
                continue;
            }
            queue.push_back(DistinctPartition {
                seen: (seen.rows() > 0).then(|| seen.into_reader()).transpose()?,
                input: input.into_reader()?,
                level: 0,
            });
        }
        self.spill = Some(DistinctSpill {
            route,
            queue,
            current: None,
        });
        Ok(())
    }

    /// Produces the next new value from the spilled partitions,
    /// re-splitting any partition whose seen-set cannot fit the budget.
    fn next_spilled(&mut self) -> Result<Option<Row<'a>>> {
        if self.spill.is_none() {
            self.enter_spill()?;
        }
        let ctx = self.ctx;
        let spill = self.spill.as_mut().expect("entered above");
        loop {
            if let Some(part) = spill.current.as_mut() {
                if part.resplit {
                    let part = spill.current.take().expect("checked above");
                    let children = split_distinct(
                        ctx,
                        &spill.route,
                        part.seen,
                        part.charged,
                        None,
                        part.input,
                        part.level,
                    )?;
                    // Depth-first: finish this partition's children before
                    // the siblings, keeping few run files live at once.
                    for child in children.into_iter().rev() {
                        spill.queue.push_front(child);
                    }
                    continue;
                }
                let Some(mut rec) = part.input.next_record()? else {
                    let part = spill.current.take().expect("checked above");
                    ctx.budget.uncharge(part.charged);
                    continue;
                };
                let value = rec.pop().unwrap_or(Value::Null);
                let Some(hash) = part.seen.check(&value) else {
                    continue;
                };
                let cost = entry_cost(&value);
                let within = ctx.budget.charge(cost);
                part.charged += cost;
                part.seen.insert_hashed(hash, value.clone());
                // A candidate surviving the seen run is a value the
                // in-memory path would have admitted: bump exactly once.
                ctx.metrics.bump_materialized();
                if !within && part.level < MAX_SPILL_LEVEL {
                    part.resplit = true;
                }
                return Ok(Some(Row::owned(value)));
            }
            let Some(part) = spill.queue.pop_front() else {
                return Ok(None);
            };
            match load_distinct(ctx, &spill.route, part)? {
                LoadedDistinct::Drain(drain) => spill.current = Some(drain),
                LoadedDistinct::Split(children) => {
                    for child in children.into_iter().rev() {
                        spill.queue.push_front(child);
                    }
                }
            }
        }
    }
}

impl<'a> RowStream<'a> for DistinctCursor<'a> {
    fn next_row(&mut self) -> Option<Result<Row<'a>>> {
        loop {
            if self.spill.is_some() || self.tripped {
                return self.next_spilled().transpose();
            }
            let row = match self.input.next_row()? {
                Ok(row) => row,
                Err(err) => return Some(Err(err)),
            };
            match self.admit(row) {
                Ok(Some(row)) => return Some(Ok(row)),
                Ok(None) => {}
                Err(err) => return Some(Err(err)),
            }
        }
    }

    fn next_batch(&mut self, out: &mut Vec<Row<'a>>, max: usize) -> Result<bool> {
        if self.spill.is_some() || self.tripped {
            while out.len() < max {
                match self.next_spilled()? {
                    Some(row) => out.push(row),
                    None => return Ok(false),
                }
            }
            return Ok(true);
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let more = self.input.next_batch(&mut scratch, max)?;
        let mut rows = scratch.drain(..);
        for row in rows.by_ref() {
            if let Some(row) = self.admit(row)? {
                out.push(row);
            }
            // Act on a trip immediately: the rest of the batch is routed
            // through the spill path, keeping the resident overshoot to
            // at most one entry.
            if self.tripped {
                break;
            }
        }
        self.pending.extend(rows);
        self.scratch = scratch;
        // A trip with the input fully admitted needs no spill: every
        // distinct value is already out the door.
        if !more && self.pending.is_empty() {
            self.tripped = false;
        }
        Ok(more || !self.pending.is_empty())
    }
}

/// Eight fresh spill runs, one per fan-out slot.
fn new_runs() -> Result<Vec<RunFile>> {
    (0..SPILL_FANOUT).map(|_| RunFile::create()).collect()
}

/// Reloads a partition's seen run into a fresh in-memory set, charging
/// per value (no `rows_materialized` bumps — these were counted when
/// first admitted).  If the reload itself trips the budget the partition
/// is re-split with fresh hash bits instead; past the deepest level it
/// loads whole, overcommitting the budget rather than looping.
fn load_distinct(
    ctx: PipelineCtx<'_>,
    route: &RandomState,
    part: DistinctPartition,
) -> Result<LoadedDistinct> {
    let DistinctPartition {
        seen: seen_run,
        input,
        level,
    } = part;
    let mut seen = SeenSet::default();
    let mut charged = 0usize;
    if let Some(mut run) = seen_run {
        while let Some(mut rec) = run.next_record()? {
            let value = rec.pop().unwrap_or(Value::Null);
            let cost = entry_cost(&value);
            let within = ctx.budget.charge(cost);
            charged += cost;
            // Seen runs hold values dumped from a set, so they are
            // already unique: insert without probing.
            let hash = seen.hash_of(&value);
            seen.insert_hashed(hash, value);
            if !within && level < MAX_SPILL_LEVEL {
                return split_distinct(ctx, route, seen, charged, Some(run), input, level)
                    .map(LoadedDistinct::Split);
            }
        }
    }
    Ok(LoadedDistinct::Drain(PartitionDrain {
        seen,
        input,
        charged,
        level,
        resplit: false,
    }))
}

/// Re-splits one partition a level deeper: the in-memory seen values,
/// the unread rest of the seen run (when the trip hit during reload),
/// and the candidate run are all re-routed on 3 fresh hash bits.
fn split_distinct(
    ctx: PipelineCtx<'_>,
    route: &RandomState,
    mut seen: SeenSet,
    charged: usize,
    seen_rest: Option<RunFileReader>,
    mut input: RunFileReader,
    level: u32,
) -> Result<Vec<DistinctPartition>> {
    let next = level + 1;
    let mut seen_runs = new_runs()?;
    for value in seen.drain_values() {
        let p = spill_partition(route.hash_one(&value), next);
        seen_runs[p].push(std::slice::from_ref(&value))?;
    }
    if let Some(mut rest) = seen_rest {
        while let Some(rec) = rest.next_record()? {
            let p = spill_partition(route.hash_one(&rec[0]), next);
            seen_runs[p].push(&rec)?;
        }
    }
    ctx.budget.uncharge(charged);
    let mut input_runs = new_runs()?;
    while let Some(rec) = input.next_record()? {
        let p = spill_partition(route.hash_one(&rec[0]), next);
        input_runs[p].push(&rec)?;
    }
    let bytes: u64 = seen_runs.iter().map(RunFile::bytes).sum::<u64>()
        + input_runs.iter().map(RunFile::bytes).sum::<u64>();
    ctx.metrics.add_bytes_spilled(bytes);
    ctx.metrics.add_spill_partitions(SPILL_FANOUT);
    let mut children = Vec::new();
    for (seen, input) in seen_runs.into_iter().zip(input_runs) {
        if input.rows() == 0 {
            continue;
        }
        children.push(DistinctPartition {
            seen: (seen.rows() > 0).then(|| seen.into_reader()).transpose()?,
            input: input.into_reader()?,
            level: next,
        });
    }
    Ok(children)
}

/// Folds the whole input into one aggregate value (`mkagg`).
pub(crate) struct AggregateCursor<'a> {
    input: Option<BoxedRowStream<'a>>,
    func: AggKind,
    ctx: PipelineCtx<'a>,
}

impl<'a> AggregateCursor<'a> {
    pub(crate) fn new(input: BoxedRowStream<'a>, func: AggKind, ctx: PipelineCtx<'a>) -> Self {
        AggregateCursor {
            input: Some(input),
            func,
            ctx,
        }
    }
}

impl<'a> RowStream<'a> for AggregateCursor<'a> {
    fn next_row(&mut self) -> Option<Result<Row<'a>>> {
        let input = self.input.take()?;
        Some(fold_aggregate(self.func, input, self.ctx).map(Row::owned))
    }
}

/// Mergeable aggregate accumulator, mirroring `AggKind::apply`'s
/// semantics (numeric promotion, empty-input results, first-minimum /
/// last-maximum tie-breaking) with O(1) state.
///
/// The serial [`AggregateCursor`] folds its whole input into one state;
/// the parallel engine folds one state **per morsel** and merges them in
/// morsel order at the barrier, which keeps the result independent of
/// which worker processed which morsel: counts and integer sums are
/// associative, and the ordered merge preserves the first-minimum /
/// last-maximum tie-breaking of the serial fold.  (Float sums merge
/// partial sums, so they can differ from the serial fold in the last
/// bits — but deterministically so at a fixed thread count.)
pub(crate) struct AggState {
    func: AggKind,
    count: usize,
    acc: f64,
    all_int: bool,
    best: Option<Value>,
}

impl AggState {
    pub(crate) fn new(func: AggKind) -> Self {
        AggState {
            func,
            count: 0,
            acc: 0.0,
            all_int: true,
            best: None,
        }
    }

    /// Folds one value into the state.
    pub(crate) fn update(&mut self, value: &Value) -> Result<()> {
        self.count += 1;
        match self.func {
            AggKind::Count => {}
            AggKind::Sum => {
                if matches!(value, Value::Float(_)) {
                    self.all_int = false;
                }
                self.acc += value.as_float().map_err(|_| {
                    AlgebraError::Type(format!("sum over non-numeric value {value}"))
                })?;
            }
            AggKind::Avg => {
                self.acc += value.as_float().map_err(|_| {
                    AlgebraError::Type(format!("avg over non-numeric value {value}"))
                })?;
            }
            AggKind::Min => match &self.best {
                Some(b) if value.total_cmp(b) != std::cmp::Ordering::Less => {}
                _ => self.best = Some(value.clone()),
            },
            AggKind::Max => match &self.best {
                Some(b) if value.total_cmp(b) == std::cmp::Ordering::Less => {}
                _ => self.best = Some(value.clone()),
            },
        }
        Ok(())
    }

    /// Merges a state folded over a **later** stretch of the input into
    /// `self`.  Merging per-morsel states in morsel order reproduces the
    /// serial fold's tie-breaking: an equal minimum in a later morsel
    /// loses, an equal maximum wins.
    pub(crate) fn merge(&mut self, later: AggState) {
        self.count += later.count;
        self.acc += later.acc;
        self.all_int &= later.all_int;
        if let Some(candidate) = later.best {
            match (&self.best, self.func) {
                (None, _) => self.best = Some(candidate),
                (Some(b), AggKind::Min) if candidate.total_cmp(b) == std::cmp::Ordering::Less => {
                    self.best = Some(candidate);
                }
                (Some(b), AggKind::Max) if candidate.total_cmp(b) != std::cmp::Ordering::Less => {
                    self.best = Some(candidate);
                }
                _ => {}
            }
        }
    }

    /// The aggregate's final value.
    pub(crate) fn finish(self) -> Value {
        match self.func {
            AggKind::Count => Value::Int(i64::try_from(self.count).unwrap_or(i64::MAX)),
            #[allow(clippy::cast_possible_truncation)]
            AggKind::Sum => {
                if self.all_int {
                    Value::Int(self.acc as i64)
                } else {
                    Value::Float(self.acc)
                }
            }
            AggKind::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    #[allow(clippy::cast_precision_loss)]
                    Value::Float(self.acc / self.count as f64)
                }
            }
            AggKind::Min | AggKind::Max => self.best.unwrap_or(Value::Null),
        }
    }
}

/// Incrementally computes an aggregate over a stream without building the
/// input bag.  Rows are consumed by reference; only a min/max champion is
/// ever cloned.
fn fold_aggregate(
    func: AggKind,
    mut input: BoxedRowStream<'_>,
    ctx: PipelineCtx<'_>,
) -> Result<Value> {
    let mut state = AggState::new(func);
    let mut buf = Vec::with_capacity(super::BATCH_ROWS);
    loop {
        let more = input.next_batch(&mut buf, super::BATCH_ROWS)?;
        for row in buf.drain(..) {
            let merged;
            let value: &Value = match row.single_value() {
                Some(value) => value,
                None => {
                    merged = row.materialize(ctx.metrics)?;
                    &merged
                }
            };
            state.update(value)?;
        }
        if !more {
            break;
        }
    }
    Ok(state.finish())
}
