//! Pipeline-breaking sinks: distinct and aggregates.
//!
//! Distinct streams its *output* — a row is emitted the moment it turns
//! out to be new — but buffers the set of values already seen, which is
//! what makes it a (partial) pipeline breaker.  Duplicate rows are
//! rejected on a borrowed hash lookup without ever cloning the value.
//! Aggregates fold their whole input into one value with O(1) state; no
//! input bag is ever collected, so the only "materialized" row is the
//! single result.

use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, Hasher, RandomState};

use disco_algebra::{AggKind, AlgebraError};
use disco_value::Value;

use super::{BoxedRowStream, PipelineCtx, Result, Row, RowStream};

/// Pass-through hasher for keys that already *are* hashes.
#[derive(Default)]
struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("identity hasher is only fed u64 keys");
    }

    fn write_u64(&mut self, hash: u64) {
        self.0 = hash;
    }
}

/// One seen-set bucket: values sharing a 64-bit hash (almost always one).
enum Bucket {
    One(Value),
    Many(Vec<Value>),
}

impl Bucket {
    fn contains(&self, value: &Value) -> bool {
        match self {
            Bucket::One(v) => v == value,
            Bucket::Many(vs) => vs.iter().any(|v| v == value),
        }
    }

    fn push(&mut self, value: Value) {
        match self {
            Bucket::One(first) => {
                *self = Bucket::Many(vec![std::mem::take(first), value]);
            }
            Bucket::Many(vs) => vs.push(value),
        }
    }
}

/// A set of values that computes each value's canonical hash — which
/// walks strings and structs, so it is the expensive part — exactly once
/// per probed row.  Buckets are keyed by the 64-bit hash through an
/// identity hasher; equality is only checked within a bucket.  A plain
/// `HashSet<Value>` hashes every *new* value twice (miss, then insert),
/// which dominates distinct-over-structs pipelines whose rows are mostly
/// unique.
#[derive(Default)]
struct SeenSet {
    hasher: RandomState,
    buckets: HashMap<u64, Bucket, BuildHasherDefault<IdentityHasher>>,
}

impl SeenSet {
    /// Returns the value's hash when it has not been seen, `None` when it
    /// is a duplicate.  Borrow-only — no clone either way.
    fn check(&self, value: &Value) -> Option<u64> {
        let hash = self.hasher.hash_one(value);
        match self.buckets.get(&hash) {
            Some(bucket) if bucket.contains(value) => None,
            _ => Some(hash),
        }
    }

    /// Records a value under the hash [`SeenSet::check`] returned for it.
    fn insert_hashed(&mut self, hash: u64, value: Value) {
        match self.buckets.entry(hash) {
            std::collections::hash_map::Entry::Occupied(mut entry) => entry.get_mut().push(value),
            std::collections::hash_map::Entry::Vacant(entry) => {
                entry.insert(Bucket::One(value));
            }
        }
    }
}

/// Emits each distinct value once, preserving first-occurrence order.
pub(crate) struct DistinctCursor<'a> {
    input: BoxedRowStream<'a>,
    seen: SeenSet,
    ctx: PipelineCtx<'a>,
    scratch: Vec<Row<'a>>,
}

impl<'a> DistinctCursor<'a> {
    pub(crate) fn new(input: BoxedRowStream<'a>, ctx: PipelineCtx<'a>) -> Self {
        DistinctCursor {
            input,
            seen: SeenSet::default(),
            ctx,
            scratch: Vec::new(),
        }
    }

    /// Admits a row if its value has not been seen: every row pays one
    /// hash computation; duplicates are rejected on a borrowed lookup
    /// without any clone; new values are copied once into the seen-set
    /// (an `Arc` bump).
    fn admit(&mut self, row: Row<'a>) -> Result<Option<Row<'a>>> {
        let (hash, value) = if let Some(value) = row.single_value() {
            let Some(hash) = self.seen.check(value) else {
                return Ok(None);
            };
            (hash, row.materialize(self.ctx.metrics)?)
        } else {
            // Join rows must be merged before they can be compared.
            let value = row.materialize(self.ctx.metrics)?;
            let Some(hash) = self.seen.check(&value) else {
                return Ok(None);
            };
            (hash, value)
        };
        // The seen-set keeps one copy per distinct value — the operator's
        // entire buffered state.
        self.seen.insert_hashed(hash, value.clone());
        self.ctx.metrics.bump_materialized();
        Ok(Some(Row::owned(value)))
    }
}

impl<'a> RowStream<'a> for DistinctCursor<'a> {
    fn next_row(&mut self) -> Option<Result<Row<'a>>> {
        loop {
            let row = match self.input.next_row()? {
                Ok(row) => row,
                Err(err) => return Some(Err(err)),
            };
            match self.admit(row) {
                Ok(Some(row)) => return Some(Ok(row)),
                Ok(None) => {}
                Err(err) => return Some(Err(err)),
            }
        }
    }

    fn next_batch(&mut self, out: &mut Vec<Row<'a>>, max: usize) -> Result<bool> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let more = self.input.next_batch(&mut scratch, max)?;
        for row in scratch.drain(..) {
            if let Some(row) = self.admit(row)? {
                out.push(row);
            }
        }
        self.scratch = scratch;
        Ok(more)
    }
}

/// Folds the whole input into one aggregate value (`mkagg`).
pub(crate) struct AggregateCursor<'a> {
    input: Option<BoxedRowStream<'a>>,
    func: AggKind,
    ctx: PipelineCtx<'a>,
}

impl<'a> AggregateCursor<'a> {
    pub(crate) fn new(input: BoxedRowStream<'a>, func: AggKind, ctx: PipelineCtx<'a>) -> Self {
        AggregateCursor {
            input: Some(input),
            func,
            ctx,
        }
    }
}

impl<'a> RowStream<'a> for AggregateCursor<'a> {
    fn next_row(&mut self) -> Option<Result<Row<'a>>> {
        let input = self.input.take()?;
        Some(fold_aggregate(self.func, input, self.ctx).map(Row::owned))
    }
}

/// Incrementally computes an aggregate over a stream, mirroring
/// `AggKind::apply`'s semantics (numeric promotion, empty-input results,
/// first-minimum / last-maximum tie-breaking) without building the input
/// bag.  Rows are consumed by reference; only a min/max champion is ever
/// cloned.
fn fold_aggregate(
    func: AggKind,
    mut input: BoxedRowStream<'_>,
    ctx: PipelineCtx<'_>,
) -> Result<Value> {
    let mut count = 0usize;
    let mut acc = 0.0f64;
    let mut all_int = true;
    let mut best: Option<Value> = None;
    let mut buf = Vec::with_capacity(super::BATCH_ROWS);
    loop {
        let more = input.next_batch(&mut buf, super::BATCH_ROWS)?;
        for row in buf.drain(..) {
            let merged;
            let value: &Value = match row.single_value() {
                Some(value) => value,
                None => {
                    merged = row.materialize(ctx.metrics)?;
                    &merged
                }
            };
            count += 1;
            match func {
                AggKind::Count => {}
                AggKind::Sum => {
                    if matches!(value, Value::Float(_)) {
                        all_int = false;
                    }
                    acc += value.as_float().map_err(|_| {
                        AlgebraError::Type(format!("sum over non-numeric value {value}"))
                    })?;
                }
                AggKind::Avg => {
                    acc += value.as_float().map_err(|_| {
                        AlgebraError::Type(format!("avg over non-numeric value {value}"))
                    })?;
                }
                AggKind::Min => match &best {
                    Some(b) if value.total_cmp(b) != std::cmp::Ordering::Less => {}
                    _ => best = Some(value.clone()),
                },
                AggKind::Max => match &best {
                    Some(b) if value.total_cmp(b) == std::cmp::Ordering::Less => {}
                    _ => best = Some(value.clone()),
                },
            }
        }
        if !more {
            break;
        }
    }
    match func {
        AggKind::Count => Ok(Value::Int(i64::try_from(count).unwrap_or(i64::MAX))),
        #[allow(clippy::cast_possible_truncation)]
        AggKind::Sum => Ok(if all_int {
            Value::Int(acc as i64)
        } else {
            Value::Float(acc)
        }),
        AggKind::Avg => {
            if count == 0 {
                Ok(Value::Null)
            } else {
                #[allow(clippy::cast_precision_loss)]
                Ok(Value::Float(acc / count as f64))
            }
        }
        AggKind::Min | AggKind::Max => Ok(best.unwrap_or(Value::Null)),
    }
}
