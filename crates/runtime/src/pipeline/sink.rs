//! Pipeline-breaking sinks: distinct and aggregates.
//!
//! Distinct streams its *output* — a row is emitted the moment it turns
//! out to be new — but buffers the set of values already seen, which is
//! what makes it a (partial) pipeline breaker.  Duplicate rows are
//! rejected on a borrowed hash lookup without ever cloning the value.
//! Aggregates fold their whole input into one value with O(1) state; no
//! input bag is ever collected, so the only "materialized" row is the
//! single result.

use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, Hasher, RandomState};

use disco_algebra::{AggKind, AlgebraError};
use disco_value::Value;

use super::{BoxedRowStream, PipelineCtx, Result, Row, RowStream};

/// Pass-through hasher for keys that already *are* hashes.
#[derive(Default)]
pub(crate) struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("identity hasher is only fed u64 keys");
    }

    fn write_u64(&mut self, hash: u64) {
        self.0 = hash;
    }
}

/// One seen-set bucket: values sharing a 64-bit hash (almost always one).
enum Bucket {
    One(Value),
    Many(Vec<Value>),
}

impl Bucket {
    fn contains(&self, value: &Value) -> bool {
        match self {
            Bucket::One(v) => v == value,
            Bucket::Many(vs) => vs.iter().any(|v| v == value),
        }
    }

    fn push(&mut self, value: Value) {
        match self {
            Bucket::One(first) => {
                *self = Bucket::Many(vec![std::mem::take(first), value]);
            }
            Bucket::Many(vs) => vs.push(value),
        }
    }
}

/// A set of values that computes each value's canonical hash — which
/// walks strings and structs, so it is the expensive part — exactly once
/// per probed row.  Buckets are keyed by the 64-bit hash through an
/// identity hasher; equality is only checked within a bucket.  A plain
/// `HashSet<Value>` hashes every *new* value twice (miss, then insert),
/// which dominates distinct-over-structs pipelines whose rows are mostly
/// unique.
#[derive(Default)]
pub(crate) struct SeenSet {
    hasher: RandomState,
    buckets: HashMap<u64, Bucket, BuildHasherDefault<IdentityHasher>>,
}

impl SeenSet {
    /// A seen-set that buckets with a caller-supplied hasher — used by the
    /// parallel distinct shards, which route rows to shards and bucket
    /// them inside the shard off one and the same hash computation.
    pub(crate) fn with_hasher(hasher: RandomState) -> Self {
        SeenSet {
            hasher,
            buckets: HashMap::default(),
        }
    }

    /// The canonical hash this set buckets `value` under.
    pub(crate) fn hash_of(&self, value: &Value) -> u64 {
        self.hasher.hash_one(value)
    }

    /// Returns the value's hash when it has not been seen, `None` when it
    /// is a duplicate.  Borrow-only — no clone either way.
    pub(crate) fn check(&self, value: &Value) -> Option<u64> {
        let hash = self.hash_of(value);
        if self.check_hashed(hash, value) {
            Some(hash)
        } else {
            None
        }
    }

    /// Like [`SeenSet::check`] with the hash precomputed (`true` = new).
    /// The hash must come from this set's hasher ([`SeenSet::hash_of`] or
    /// a clone of the [`RandomState`] it was built with).
    pub(crate) fn check_hashed(&self, hash: u64, value: &Value) -> bool {
        match self.buckets.get(&hash) {
            Some(bucket) => !bucket.contains(value),
            None => true,
        }
    }

    /// Records a value under the hash [`SeenSet::check`] returned for it.
    pub(crate) fn insert_hashed(&mut self, hash: u64, value: Value) {
        match self.buckets.entry(hash) {
            std::collections::hash_map::Entry::Occupied(mut entry) => entry.get_mut().push(value),
            std::collections::hash_map::Entry::Vacant(entry) => {
                entry.insert(Bucket::One(value));
            }
        }
    }
}

/// Emits each distinct value once, preserving first-occurrence order.
pub(crate) struct DistinctCursor<'a> {
    input: BoxedRowStream<'a>,
    seen: SeenSet,
    ctx: PipelineCtx<'a>,
    scratch: Vec<Row<'a>>,
}

impl<'a> DistinctCursor<'a> {
    pub(crate) fn new(input: BoxedRowStream<'a>, ctx: PipelineCtx<'a>) -> Self {
        DistinctCursor {
            input,
            seen: SeenSet::default(),
            ctx,
            scratch: Vec::new(),
        }
    }

    /// Admits a row if its value has not been seen: every row pays one
    /// hash computation; duplicates are rejected on a borrowed lookup
    /// without any clone; new values are copied once into the seen-set
    /// (an `Arc` bump).
    fn admit(&mut self, row: Row<'a>) -> Result<Option<Row<'a>>> {
        let (hash, value) = if let Some(value) = row.single_value() {
            let Some(hash) = self.seen.check(value) else {
                return Ok(None);
            };
            (hash, row.materialize(self.ctx.metrics)?)
        } else {
            // Join rows must be merged before they can be compared.
            let value = row.materialize(self.ctx.metrics)?;
            let Some(hash) = self.seen.check(&value) else {
                return Ok(None);
            };
            (hash, value)
        };
        // The seen-set keeps one copy per distinct value — the operator's
        // entire buffered state.
        self.seen.insert_hashed(hash, value.clone());
        self.ctx.metrics.bump_materialized();
        Ok(Some(Row::owned(value)))
    }
}

impl<'a> RowStream<'a> for DistinctCursor<'a> {
    fn next_row(&mut self) -> Option<Result<Row<'a>>> {
        loop {
            let row = match self.input.next_row()? {
                Ok(row) => row,
                Err(err) => return Some(Err(err)),
            };
            match self.admit(row) {
                Ok(Some(row)) => return Some(Ok(row)),
                Ok(None) => {}
                Err(err) => return Some(Err(err)),
            }
        }
    }

    fn next_batch(&mut self, out: &mut Vec<Row<'a>>, max: usize) -> Result<bool> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let more = self.input.next_batch(&mut scratch, max)?;
        for row in scratch.drain(..) {
            if let Some(row) = self.admit(row)? {
                out.push(row);
            }
        }
        self.scratch = scratch;
        Ok(more)
    }
}

/// Folds the whole input into one aggregate value (`mkagg`).
pub(crate) struct AggregateCursor<'a> {
    input: Option<BoxedRowStream<'a>>,
    func: AggKind,
    ctx: PipelineCtx<'a>,
}

impl<'a> AggregateCursor<'a> {
    pub(crate) fn new(input: BoxedRowStream<'a>, func: AggKind, ctx: PipelineCtx<'a>) -> Self {
        AggregateCursor {
            input: Some(input),
            func,
            ctx,
        }
    }
}

impl<'a> RowStream<'a> for AggregateCursor<'a> {
    fn next_row(&mut self) -> Option<Result<Row<'a>>> {
        let input = self.input.take()?;
        Some(fold_aggregate(self.func, input, self.ctx).map(Row::owned))
    }
}

/// Mergeable aggregate accumulator, mirroring `AggKind::apply`'s
/// semantics (numeric promotion, empty-input results, first-minimum /
/// last-maximum tie-breaking) with O(1) state.
///
/// The serial [`AggregateCursor`] folds its whole input into one state;
/// the parallel engine folds one state **per morsel** and merges them in
/// morsel order at the barrier, which keeps the result independent of
/// which worker processed which morsel: counts and integer sums are
/// associative, and the ordered merge preserves the first-minimum /
/// last-maximum tie-breaking of the serial fold.  (Float sums merge
/// partial sums, so they can differ from the serial fold in the last
/// bits — but deterministically so at a fixed thread count.)
pub(crate) struct AggState {
    func: AggKind,
    count: usize,
    acc: f64,
    all_int: bool,
    best: Option<Value>,
}

impl AggState {
    pub(crate) fn new(func: AggKind) -> Self {
        AggState {
            func,
            count: 0,
            acc: 0.0,
            all_int: true,
            best: None,
        }
    }

    /// Folds one value into the state.
    pub(crate) fn update(&mut self, value: &Value) -> Result<()> {
        self.count += 1;
        match self.func {
            AggKind::Count => {}
            AggKind::Sum => {
                if matches!(value, Value::Float(_)) {
                    self.all_int = false;
                }
                self.acc += value.as_float().map_err(|_| {
                    AlgebraError::Type(format!("sum over non-numeric value {value}"))
                })?;
            }
            AggKind::Avg => {
                self.acc += value.as_float().map_err(|_| {
                    AlgebraError::Type(format!("avg over non-numeric value {value}"))
                })?;
            }
            AggKind::Min => match &self.best {
                Some(b) if value.total_cmp(b) != std::cmp::Ordering::Less => {}
                _ => self.best = Some(value.clone()),
            },
            AggKind::Max => match &self.best {
                Some(b) if value.total_cmp(b) == std::cmp::Ordering::Less => {}
                _ => self.best = Some(value.clone()),
            },
        }
        Ok(())
    }

    /// Merges a state folded over a **later** stretch of the input into
    /// `self`.  Merging per-morsel states in morsel order reproduces the
    /// serial fold's tie-breaking: an equal minimum in a later morsel
    /// loses, an equal maximum wins.
    pub(crate) fn merge(&mut self, later: AggState) {
        self.count += later.count;
        self.acc += later.acc;
        self.all_int &= later.all_int;
        if let Some(candidate) = later.best {
            match (&self.best, self.func) {
                (None, _) => self.best = Some(candidate),
                (Some(b), AggKind::Min) if candidate.total_cmp(b) == std::cmp::Ordering::Less => {
                    self.best = Some(candidate);
                }
                (Some(b), AggKind::Max) if candidate.total_cmp(b) != std::cmp::Ordering::Less => {
                    self.best = Some(candidate);
                }
                _ => {}
            }
        }
    }

    /// The aggregate's final value.
    pub(crate) fn finish(self) -> Value {
        match self.func {
            AggKind::Count => Value::Int(i64::try_from(self.count).unwrap_or(i64::MAX)),
            #[allow(clippy::cast_possible_truncation)]
            AggKind::Sum => {
                if self.all_int {
                    Value::Int(self.acc as i64)
                } else {
                    Value::Float(self.acc)
                }
            }
            AggKind::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    #[allow(clippy::cast_precision_loss)]
                    Value::Float(self.acc / self.count as f64)
                }
            }
            AggKind::Min | AggKind::Max => self.best.unwrap_or(Value::Null),
        }
    }
}

/// Incrementally computes an aggregate over a stream without building the
/// input bag.  Rows are consumed by reference; only a min/max champion is
/// ever cloned.
fn fold_aggregate(
    func: AggKind,
    mut input: BoxedRowStream<'_>,
    ctx: PipelineCtx<'_>,
) -> Result<Value> {
    let mut state = AggState::new(func);
    let mut buf = Vec::with_capacity(super::BATCH_ROWS);
    loop {
        let more = input.next_batch(&mut buf, super::BATCH_ROWS)?;
        for row in buf.drain(..) {
            let merged;
            let value: &Value = match row.single_value() {
                Some(value) => value,
                None => {
                    merged = row.materialize(ctx.metrics)?;
                    &merged
                }
            };
            state.update(value)?;
        }
        if !more {
            break;
        }
    }
    Ok(state.finish())
}
