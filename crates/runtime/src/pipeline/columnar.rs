//! Columnar execution of fused pipeline stretches.
//!
//! The row cursors move one `Row` at a time; this module intercepts the
//! shapes the mediator's combine step actually spends its time on — a
//! *spine* of `map? → filter* → bind? → scan` over a fully-materialized
//! input — and runs them batch-at-a-time: the scan decodes one
//! [`ChunkBuilder`] chunk per batch, compiled [`Kernel`]s evaluate the
//! filter predicates and the map projection over whole columns, and a
//! selection vector marks surviving rows instead of copying them.
//! Distinct and aggregate breakers consume the fused spine's batches
//! directly (distinct gets a dictionary-code fast path for string keys).
//!
//! # Fallback rule
//!
//! Columnar execution must be *observably identical* to the row cursors.
//! Three levels guarantee that:
//!
//! * **Fusion** is all-or-nothing per stretch: every filter predicate
//!   (and the map projection, when present) must compile to a kernel,
//!   and the source must be a resolved scan.  Anything else builds row
//!   cursors as before — with fusable *inner* stretches still
//!   intercepted, so partial coverage composes.
//! * **Decoding** is strict: a batch containing a non-struct row or a
//!   row lacking a referenced field refuses to decode, and that batch
//!   runs through the per-row [`Env`](disco_algebra::Env) path (counted
//!   in [`PipelineMetrics::rows_fallback`](super::PipelineMetrics)).
//!   Strictness is what makes kernel column reads equal to environment
//!   lookups: a decoded field is present in every row, so the innermost
//!   scope always wins the lookup.
//! * **Evaluation** never reports an error from a kernel: a would-be
//!   error (division by zero, a type mismatch) bails the batch to the
//!   same per-row path, which reproduces the row engine's exact error at
//!   the exact row.  The per-row fallback applies each operator across
//!   the whole batch before the next operator — the same order the
//!   batched row cursors stack — so even error *ordering* within a batch
//!   matches.
//!
//! Metric invariants: spine operators bump neither `rows_materialized`
//! nor `rows_merged` (just like the row cursors they replace — bind's
//! single-frame materialize is uncounted, and spine rows are never join
//! rows), and the columnar distinct bumps `rows_materialized` exactly
//! once per admitted row.  `rows_kernel`/`rows_fallback` count each
//! scanned row into exactly one bucket.

use std::collections::hash_map::RandomState;
use std::collections::VecDeque;
use std::sync::Arc;

use disco_algebra::{
    kernel::{EvalVec, Kernel, KernelBuilder, PairKernel, PairKernelBuilder},
    truthy, AggKind, AlgebraError, PhysicalExpr, ScalarExpr,
};
use disco_value::{ChunkBuilder, Column, ColumnarChunk, KeyHasher, StrDict, StructValue, Value};

use crate::exec::{ExecKey, ExecOutcome};

use super::join::{check_struct_frames, BuildSide, ColumnarJoinTable};
use super::sink::{AggState, SeenSet};
use super::{estimated_rows, eval_in_row, BoxedRowStream, PipelineCtx, Result, Row, RowStream};

/// Attempts to intercept `plan` with a columnar cursor; `None` means "not
/// fusable here" and the caller builds row cursors (recursing into this
/// function for inner subtrees).
pub(crate) fn try_build<'a>(
    plan: &'a PhysicalExpr,
    ctx: PipelineCtx<'a>,
) -> Option<BoxedRowStream<'a>> {
    match plan {
        // Breakers consume the fused source's batches directly; distinct
        // interns bare-column string keys in its own dictionary so equal
        // keys can be skipped on a dense code bitmap.  Under a bounded
        // memory budget, buffering breakers must go through the row
        // engine's spilling cursors, so the columnar distinct (and the
        // fused join below, via `fuse_source`) decline.
        PhysicalExpr::MkDistinct(inner) => {
            if ctx.budget.is_bounded() {
                return None;
            }
            let source = fuse_source(inner, ctx)?;
            Some(Box::new(ColumnarDistinctCursor::new(source)))
        }
        PhysicalExpr::MkAggregate { func, input } => {
            let source = fuse_source(input, ctx)?;
            Some(Box::new(ColumnarAggregateCursor::new(source, *func)))
        }
        _ => {
            let source = fuse_source(plan, ctx)?;
            Some(Box::new(SpineCursor::new(source)))
        }
    }
}

/// Fuses `plan` into a columnar batch source: a vectorized hash join when
/// the plan is a (possibly mapped) equi-join over fusable sides, else a
/// plain fused spine.
fn fuse_source<'a>(plan: &'a PhysicalExpr, ctx: PipelineCtx<'a>) -> Option<ColumnarSource<'a>> {
    // The fused join buffers its whole build side without budget
    // accounting; a bounded budget routes joins to the row engine's
    // spilling hash-join cursor instead.  Plain spines buffer nothing.
    if !ctx.budget.is_bounded() {
        if let Some(join) = FusedJoin::fuse(plan, ctx) {
            return Some(ColumnarSource::Join(Box::new(join)));
        }
    }
    FusedSpine::fuse(plan, ctx)
        .map(Box::new)
        .map(ColumnarSource::Spine)
}

/// A columnar batch producer: either a fused scan spine or a fused join.
/// Both variants are boxed — the source lives behind a cursor for a whole
/// execution, and the spine alone is a couple hundred bytes.
pub(crate) enum ColumnarSource<'a> {
    Spine(Box<FusedSpine<'a>>),
    Join(Box<FusedJoin<'a>>),
}

impl<'a> ColumnarSource<'a> {
    fn next_chunk(&mut self, hint: usize) -> Result<Option<SpineBatch<'a>>> {
        match self {
            ColumnarSource::Spine(spine) => spine.next_chunk(hint),
            ColumnarSource::Join(join) => join.next_out(hint),
        }
    }

    fn batch_rows(&self) -> usize {
        match self {
            ColumnarSource::Spine(spine) => spine.batch_rows,
            ColumnarSource::Join(join) => join.batch_rows,
        }
    }

    fn ctx(&self) -> PipelineCtx<'a> {
        match self {
            ColumnarSource::Spine(spine) => spine.ctx,
            ColumnarSource::Join(join) => join.ctx,
        }
    }
}

/// The fusable plan shape: `map? → filter* → bind? → (resolved scan)`.
struct SpineShape<'a> {
    map: Option<&'a ScalarExpr>,
    /// Filter predicates in execution (innermost-first) order.
    filters: Vec<&'a ScalarExpr>,
    binding: Option<&'a str>,
    rows: &'a [Value],
}

/// Peels `map? → filter* → bind?` off `plan`, leaving the source node.
fn peel_ops(
    plan: &PhysicalExpr,
) -> (
    Option<&ScalarExpr>,
    Vec<&ScalarExpr>,
    Option<&str>,
    &PhysicalExpr,
) {
    let mut node = plan;
    let mut map = None;
    if let PhysicalExpr::MapOp { input, projection } = node {
        map = Some(projection);
        node = input;
    }
    let mut filters = Vec::new();
    while let PhysicalExpr::FilterOp { input, predicate } = node {
        filters.push(predicate);
        node = input;
    }
    filters.reverse();
    let mut binding = None;
    if let PhysicalExpr::BindOp { var, input } = node {
        binding = Some(var.as_str());
        node = input;
    }
    (map, filters, binding, node)
}

/// `allow_bare = false` refuses map-less filter-less stretches (bare
/// scans and bind-only stretches have no scalar work to vectorize, and
/// the row path is already optimal for them).  Join sides pass `true`:
/// the join key itself is the scalar work.
fn spine_shape<'a>(
    plan: &'a PhysicalExpr,
    ctx: &PipelineCtx<'a>,
    allow_bare: bool,
) -> Option<SpineShape<'a>> {
    let (map, filters, binding, node) = peel_ops(plan);
    let rows: &'a [Value] = match node {
        PhysicalExpr::MemScan(bag) => bag.as_slice(),
        PhysicalExpr::Exec {
            repository,
            extent,
            logical,
            ..
        } => {
            let key = ExecKey::new(repository, extent, logical);
            match ctx.resolved.outcome(&key) {
                Some(ExecOutcome::Rows(rows)) => rows.as_slice(),
                // Pending spools and unresolved/unavailable sources keep
                // the row path (which reports the precise error).
                _ => return None,
            }
        }
        _ => return None,
    };
    if !allow_bare && map.is_none() && filters.is_empty() {
        return None;
    }
    Some(SpineShape {
        map,
        filters,
        binding,
        rows,
    })
}

/// [`spine_shape`] for a parallel morsel: the stretch must bottom out at
/// the scheduler's partition node (`leaf`, matched by pointer identity,
/// exactly like `PartPipeline::open_node` does), and the rows are the
/// worker's claimed slice instead of the leaf's full extent.
fn partition_shape<'a>(
    plan: &'a PhysicalExpr,
    leaf: &'a PhysicalExpr,
    rows: &'a [Value],
    allow_bare: bool,
) -> Option<SpineShape<'a>> {
    let (map, filters, binding, node) = peel_ops(plan);
    if !std::ptr::eq(node, leaf) {
        return None;
    }
    if !allow_bare && map.is_none() && filters.is_empty() {
        return None;
    }
    Some(SpineShape {
        map,
        filters,
        binding,
        rows,
    })
}

/// Columnar interception for one parallel morsel: fuses the spine stretch
/// from `plan` down to the scheduler's partition `leaf` over the morsel's
/// row slice.  `None` keeps the worker on the row path for this stretch.
pub(crate) fn try_build_partition<'a>(
    plan: &'a PhysicalExpr,
    leaf: &'a PhysicalExpr,
    rows: &'a [Value],
    ctx: PipelineCtx<'a>,
) -> Option<BoxedRowStream<'a>> {
    let shape = partition_shape(plan, leaf, rows, false)?;
    let spine = FusedSpine::from_shape(shape, ctx)?;
    Some(Box::new(SpineCursor::new(ColumnarSource::Spine(Box::new(
        spine,
    )))))
}

/// Columnar interception for a parallel join-build morsel: fuses
/// `filter* → bind? → leaf` over the morsel's slice together with the
/// stage's build key, hashing through a clone of the stage table's
/// `RandomState` so batch-computed hashes agree with the row path's
/// `hash_one` inserts.  `None` keeps the worker's scatter on the row path.
pub(crate) fn keyed_partition<'a>(
    plan: &'a PhysicalExpr,
    leaf: &'a PhysicalExpr,
    rows: &'a [Value],
    key: &'a ScalarExpr,
    state: RandomState,
    ctx: PipelineCtx<'a>,
) -> Option<KeyedSpine<'a>> {
    let shape = partition_shape(plan, leaf, rows, true)?;
    let draft = KeyedSpineDraft::compile(shape, key)?;
    let fields = draft.fields().to_vec();
    Some(draft.finalize(&fields, state, ctx))
}

/// A bare-column map projection, gathered lazily: the projected value is
/// borrowed straight from the surviving source rows, so neither a column
/// decode nor an [`EvalVec`] gather (both of which clone) ever runs.
struct GatherPlan {
    name: Arc<str>,
    /// Positional guess, updated on the fly (rows from one source share
    /// their layout, so after the first row every lookup is one indexed
    /// access plus a name check).
    guess: usize,
}

/// Field lookup with the positional fast path.
fn gather_lookup<'v>(row: &'v StructValue, plan: &mut GatherPlan) -> Option<&'v Value> {
    if let Some((name, value)) = row.field_at(plan.guess) {
        if name == plan.name.as_ref() {
            return Some(value);
        }
    }
    let (index, value) = row.position(plan.name.as_ref())?;
    plan.guess = index;
    Some(value)
}

/// A fused spine: compiled kernels, the chunk decoder, and the original
/// expressions for the per-batch fallback.
pub(crate) struct FusedSpine<'a> {
    rows: &'a [Value],
    pos: usize,
    builder: ChunkBuilder,
    filter_kernels: Vec<Kernel>,
    /// Compound map projections evaluate through this kernel; bare column
    /// reads use `gather` instead (and leave this `None`).
    map_kernel: Option<Kernel>,
    gather: Option<GatherPlan>,
    filter_exprs: Vec<&'a ScalarExpr>,
    map_expr: Option<&'a ScalarExpr>,
    bind_name: Option<Arc<str>>,
    /// Default chunk size for row-at-a-time pulls.
    batch_rows: usize,
    ctx: PipelineCtx<'a>,
}

/// One batch of spine output.
enum SpineBatch<'a> {
    /// Kernel-evaluated map results for `n` surviving rows.
    Mapped(EvalVec, usize),
    /// Bare-column map results borrowed from the surviving source rows.
    Proj(Vec<&'a Value>),
    /// Surviving rows (no map stage, or the per-row fallback ran).
    Rows(Vec<Row<'a>>),
}

impl<'a> FusedSpine<'a> {
    /// Fuses `plan` when its shape matches and every scalar stage
    /// compiles to a kernel.
    fn fuse(plan: &'a PhysicalExpr, ctx: PipelineCtx<'a>) -> Option<FusedSpine<'a>> {
        let shape = spine_shape(plan, &ctx, false)?;
        FusedSpine::from_shape(shape, ctx)
    }

    /// Compiles an already-matched shape into a fused spine.
    fn from_shape(shape: SpineShape<'a>, ctx: PipelineCtx<'a>) -> Option<FusedSpine<'a>> {
        let mut kb = KernelBuilder::new(shape.binding);
        let mut filter_kernels = Vec::with_capacity(shape.filters.len());
        for predicate in &shape.filters {
            filter_kernels.push(kb.compile(predicate)?);
        }
        // Slots allocated so far are referenced by filter kernels and
        // must decode; a slot the map alone reads is gathered lazily and
        // needs no column at all.
        let filter_slots = kb.fields().len();
        let mut map_kernel = None;
        let mut gather = None;
        if let Some(projection) = shape.map {
            let kernel = kb.compile(projection)?;
            match kernel.as_col() {
                Some(slot) => {
                    gather = Some(GatherPlan {
                        name: Arc::clone(&kb.fields()[slot]),
                        guess: 0,
                    });
                }
                None => map_kernel = Some(kernel),
            }
        }
        let decoded_slots = if map_kernel.is_none() {
            filter_slots
        } else {
            kb.fields().len()
        };
        let mut builder = ChunkBuilder::new();
        for field in &kb.fields()[..decoded_slots] {
            builder.add_field(Arc::clone(field));
        }
        Some(FusedSpine {
            rows: shape.rows,
            pos: 0,
            builder,
            filter_kernels,
            map_kernel,
            gather,
            filter_exprs: shape.filters,
            map_expr: shape.map,
            bind_name: shape.binding.map(Arc::from),
            batch_rows: ctx.options.effective_batch_rows(),
            ctx,
        })
    }

    fn done(&self) -> bool {
        self.pos >= self.rows.len()
    }

    /// Produces the next batch of at most `hint` source rows; `None` when
    /// the scan is exhausted.
    fn next_chunk(&mut self, hint: usize) -> Result<Option<SpineBatch<'a>>> {
        if self.done() {
            return Ok(None);
        }
        let rows = self.rows;
        let take = hint
            .clamp(1, super::MAX_BATCH_ROWS)
            .min(rows.len() - self.pos);
        let slice = &rows[self.pos..self.pos + take];
        self.pos += take;
        match self.kernel_chunk(slice)? {
            Some(batch) => Ok(Some(batch)),
            None => {
                self.ctx.metrics.add_fallback(slice.len());
                Ok(Some(SpineBatch::Rows(self.fallback_chunk(slice)?)))
            }
        }
    }

    /// The vectorized path; `Ok(None)` bails the batch to the fallback
    /// (undecodable chunk, or a kernel hit an unsupported combination /
    /// would-be error).
    fn kernel_chunk(&mut self, slice: &'a [Value]) -> Result<Option<SpineBatch<'a>>> {
        let Some(chunk) = self.builder.build(slice) else {
            return Ok(None);
        };
        let len = u32::try_from(slice.len()).expect("chunk size is clamped below u32::MAX");
        let mut sel: Vec<u32> = (0..len).collect();
        for kernel in &self.filter_kernels {
            if sel.is_empty() {
                break;
            }
            let Some(result) = kernel.eval(&chunk, &sel) else {
                return Ok(None);
            };
            let mask = result.truthy_mask(sel.len());
            let mut kept = Vec::with_capacity(sel.len());
            for (i, keep) in mask.into_iter().enumerate() {
                if keep {
                    kept.push(sel[i]);
                }
            }
            sel = kept;
        }
        if let Some(plan) = &mut self.gather {
            // Bare-column map: borrow the field from each surviving row.
            // A survivor that is not a struct or lacks the field bails the
            // whole batch (nothing was emitted or counted yet), and the
            // per-row path reproduces the exact row-engine behaviour.
            let mut out = Vec::with_capacity(sel.len());
            for &i in &sel {
                let Value::Struct(row) = &slice[i as usize] else {
                    return Ok(None);
                };
                let Some(value) = gather_lookup(row, plan) else {
                    return Ok(None);
                };
                out.push(value);
            }
            self.ctx.metrics.add_kernel(slice.len());
            return Ok(Some(SpineBatch::Proj(out)));
        }
        let batch = match &self.map_kernel {
            Some(kernel) => {
                let Some(result) = kernel.eval(&chunk, &sel) else {
                    return Ok(None);
                };
                SpineBatch::Mapped(result, sel.len())
            }
            None => {
                let mut out = Vec::with_capacity(sel.len());
                match &self.bind_name {
                    // Survivors of a bound spine come out as the same
                    // `{var: row}` structs `BindCursor` builds — but only
                    // for survivors, after the filters ran on raw columns.
                    Some(name) => {
                        for &i in &sel {
                            let env_row = StructValue::new(vec![(
                                Arc::clone(name),
                                slice[i as usize].clone(),
                            )])
                            .map_err(AlgebraError::from)?;
                            out.push(Row::owned(Value::Struct(env_row)));
                        }
                    }
                    None => {
                        for &i in &sel {
                            out.push(Row::borrowed(&slice[i as usize]));
                        }
                    }
                }
                SpineBatch::Rows(out)
            }
        };
        self.ctx.metrics.add_kernel(slice.len());
        Ok(Some(batch))
    }

    /// The per-row path for one batch, stacked operator-by-operator
    /// across the whole batch — exactly how the row cursors' `next_batch`
    /// implementations compose, so results, errors and error order match.
    fn fallback_chunk(&self, slice: &'a [Value]) -> Result<Vec<Row<'a>>> {
        let mut rows: Vec<Row<'a>> = slice.iter().map(Row::borrowed).collect();
        if let Some(name) = &self.bind_name {
            let mut bound = Vec::with_capacity(rows.len());
            for row in rows {
                let value = row.materialize(self.ctx.metrics)?;
                let env_row = StructValue::new(vec![(Arc::clone(name), value)])
                    .map_err(AlgebraError::from)?;
                bound.push(Row::owned(Value::Struct(env_row)));
            }
            rows = bound;
        }
        for predicate in &self.filter_exprs {
            let mut kept = Vec::with_capacity(rows.len());
            for row in rows {
                if truthy(&eval_in_row(predicate, &row, self.ctx)?) {
                    kept.push(row);
                }
            }
            rows = kept;
        }
        if let Some(projection) = self.map_expr {
            let mut mapped = Vec::with_capacity(rows.len());
            for row in rows {
                mapped.push(Row::owned(eval_in_row(projection, &row, self.ctx)?));
            }
            rows = mapped;
        }
        Ok(rows)
    }
}

/// A compiled-but-not-finalized keyed spine: filter and key kernels exist
/// and the referenced fields are known, but the chunk layout is still
/// open so a pair-projection kernel can claim extra columns (the probe
/// chunk then serves the filters, the key *and* the output projection
/// from one decode).
pub(crate) struct KeyedSpineDraft<'a> {
    rows: &'a [Value],
    filter_kernels: Vec<Kernel>,
    key_kernel: Kernel,
    key_slot: Option<usize>,
    fields: Vec<Arc<str>>,
    filter_exprs: Vec<&'a ScalarExpr>,
    key_expr: &'a ScalarExpr,
    binding: Option<&'a str>,
}

impl<'a> KeyedSpineDraft<'a> {
    /// Compiles a join side's `filter* → bind? → scan` stretch together
    /// with its key expression.  `None` (a map-bearing side, or any stage
    /// outside the kernel subset) keeps the whole join on the row path.
    fn compile(shape: SpineShape<'a>, key: &'a ScalarExpr) -> Option<Self> {
        if shape.map.is_some() {
            return None;
        }
        let mut kb = KernelBuilder::new(shape.binding);
        let mut filter_kernels = Vec::with_capacity(shape.filters.len());
        for predicate in &shape.filters {
            filter_kernels.push(kb.compile(predicate)?);
        }
        let key_kernel = kb.compile(key)?;
        let key_slot = key_kernel.as_col();
        Some(KeyedSpineDraft {
            rows: shape.rows,
            filter_kernels,
            key_kernel,
            key_slot,
            fields: kb.fields().to_vec(),
            filter_exprs: shape.filters,
            key_expr: key,
            binding: shape.binding,
        })
    }

    fn binding(&self) -> Option<&'a str> {
        self.binding
    }

    /// The fields the filters and key reference, in column-slot order.
    fn fields(&self) -> &[Arc<str>] {
        &self.fields
    }

    /// Freezes the chunk layout (`fields` must extend [`Self::fields`] in
    /// order) and attaches the hash state the key hashes must agree with.
    /// The key's own column decodes dictionary-encoded so repeated string
    /// keys hash once per distinct code.
    fn finalize(
        self,
        fields: &[Arc<str>],
        state: RandomState,
        ctx: PipelineCtx<'a>,
    ) -> KeyedSpine<'a> {
        debug_assert!(fields[..self.fields.len()]
            .iter()
            .zip(&self.fields)
            .all(|(a, b)| a == b));
        let mut builder = ChunkBuilder::new();
        for (i, field) in fields.iter().enumerate() {
            if Some(i) == self.key_slot {
                builder.add_dict_field(Arc::clone(field));
            } else {
                builder.add_field(Arc::clone(field));
            }
        }
        KeyedSpine {
            rows: self.rows,
            pos: 0,
            builder,
            filter_kernels: self.filter_kernels,
            key_kernel: self.key_kernel,
            key_slot: self.key_slot,
            filter_exprs: self.filter_exprs,
            key_expr: self.key_expr,
            bind_name: self.binding.map(Arc::from),
            hasher: KeyHasher::with_state(state),
            ctx,
        }
    }
}

/// A join side fused with its key: `filter* → bind? → scan` plus a
/// vectorized key evaluation whose hashes are bit-identical to
/// `RandomState::hash_one` over the row path's key values.
pub(crate) struct KeyedSpine<'a> {
    rows: &'a [Value],
    pos: usize,
    builder: ChunkBuilder,
    filter_kernels: Vec<Kernel>,
    key_kernel: Kernel,
    /// The key's chunk slot when it is a bare column read — hashed
    /// straight off the (dictionary-coded) column.
    key_slot: Option<usize>,
    filter_exprs: Vec<&'a ScalarExpr>,
    pub(crate) key_expr: &'a ScalarExpr,
    bind_name: Option<Arc<str>>,
    hasher: KeyHasher,
    ctx: PipelineCtx<'a>,
}

/// One batch of keyed spine output.
pub(crate) enum KeyedBatch<'a> {
    /// Vectorized: survivors of the filters with their key values and key
    /// hashes (`keys`/`hashes[j]` belong to chunk row `sel[j]`).
    Kernel {
        slice: &'a [Value],
        chunk: ColumnarChunk,
        sel: Vec<u32>,
        keys: EvalVec,
        hashes: Vec<u64>,
    },
    /// The batch must run per-row (decode failure, mixed-type key column,
    /// or a would-be evaluation error): see [`KeyedSpine::fallback_rows`].
    Fallback { slice: &'a [Value] },
}

impl<'a> KeyedSpine<'a> {
    /// Produces the next batch of at most `hint` source rows (`None` when
    /// exhausted), counting every scanned row into exactly one of
    /// `rows_kernel`/`rows_fallback`.
    pub(crate) fn next_keyed(&mut self, hint: usize) -> Option<KeyedBatch<'a>> {
        if self.pos >= self.rows.len() {
            return None;
        }
        let take = hint
            .clamp(1, super::MAX_BATCH_ROWS)
            .min(self.rows.len() - self.pos);
        let slice = &self.rows[self.pos..self.pos + take];
        self.pos += take;
        match self.kernel_batch(slice) {
            Some(batch) => {
                self.ctx.metrics.add_kernel(slice.len());
                Some(batch)
            }
            None => {
                self.ctx.metrics.add_fallback(slice.len());
                Some(KeyedBatch::Fallback { slice })
            }
        }
    }

    fn kernel_batch(&mut self, slice: &'a [Value]) -> Option<KeyedBatch<'a>> {
        let chunk = self.builder.build(slice)?;
        let len = u32::try_from(slice.len()).expect("chunk size is clamped below u32::MAX");
        let mut sel: Vec<u32> = (0..len).collect();
        for kernel in &self.filter_kernels {
            if sel.is_empty() {
                break;
            }
            let result = kernel.eval(&chunk, &sel)?;
            let mask = result.truthy_mask(sel.len());
            let mut kept = Vec::with_capacity(sel.len());
            for (i, keep) in mask.into_iter().enumerate() {
                if keep {
                    kept.push(sel[i]);
                }
            }
            sel = kept;
        }
        // A mixed-type (or all-null) key column decodes to boxed values;
        // those batches take the exact row path.
        if let Some(slot) = self.key_slot {
            if matches!(chunk.column(slot), Column::Values(_)) {
                return None;
            }
        }
        let keys = self.key_kernel.eval(&chunk, &sel)?;
        let mut hashes = Vec::with_capacity(sel.len());
        match self.key_slot {
            // Bare key column: hash in one pass, reusing one hash per
            // distinct dictionary code for string keys.
            Some(slot) => self
                .hasher
                .hash_column(chunk.column(slot), &sel, &mut hashes),
            None => hash_eval_vec(&self.hasher, &keys, sel.len(), &mut hashes),
        }
        Some(KeyedBatch::Kernel {
            slice,
            chunk,
            sel,
            keys,
            hashes,
        })
    }

    /// The spine's output row for chunk row `i` — exactly what the row
    /// path's cursor chain would hand the join for that source row.
    pub(crate) fn make_row(&self, slice: &'a [Value], i: u32) -> Row<'a> {
        match &self.bind_name {
            Some(name) => Row::owned(Value::Struct(StructValue::from_distinct_fields(vec![(
                Arc::clone(name),
                slice[i as usize].clone(),
            )]))),
            None => Row::borrowed(&slice[i as usize]),
        }
    }

    /// The per-row path for one batch, stacked operator-by-operator like
    /// the row cursors' `next_batch` chain (bind across the batch, then
    /// each filter across the batch), so results, errors and error order
    /// match.  Each row keeps its source index into `slice` so callers can
    /// recover the raw (pre-bind) value.
    pub(crate) fn fallback_rows(&self, slice: &'a [Value]) -> Result<Vec<(u32, Row<'a>)>> {
        let mut rows: Vec<(u32, Row<'a>)> = slice
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let i = u32::try_from(i).expect("chunk size is clamped below u32::MAX");
                (i, Row::borrowed(v))
            })
            .collect();
        if let Some(name) = &self.bind_name {
            let mut bound = Vec::with_capacity(rows.len());
            for (i, row) in rows {
                let value = row.materialize(self.ctx.metrics)?;
                let env_row = StructValue::new(vec![(Arc::clone(name), value)])
                    .map_err(AlgebraError::from)?;
                bound.push((i, Row::owned(Value::Struct(env_row))));
            }
            rows = bound;
        }
        for predicate in &self.filter_exprs {
            let mut kept = Vec::with_capacity(rows.len());
            for (i, row) in rows {
                if truthy(&eval_in_row(predicate, &row, self.ctx)?) {
                    kept.push((i, row));
                }
            }
            rows = kept;
        }
        Ok(rows)
    }
}

/// Hashes a computed key vector; hashes funnel through the same canonical
/// `hash_one` as the row path (a broadcast constant hashes once).
fn hash_eval_vec(hasher: &KeyHasher, keys: &EvalVec, n: usize, out: &mut Vec<u64>) {
    if let EvalVec::Const(v) = keys {
        out.resize(n, hasher.hash_value(v));
        return;
    }
    for i in 0..n {
        out.push(hasher.hash_value(&keys.value_at(i)));
    }
}

/// A vectorized hash join: both sides flow through [`KeyedSpine`]s into /
/// against a [`ColumnarJoinTable`] keyed by batch-computed hashes, and the
/// (optional) fused output projection evaluates per *batch of matched
/// pairs* through a [`PairKernel`] over the probe chunk and a build-side
/// payload chunk — no joined row is ever constructed on the fast path.
///
/// Every bail (undecodable batch, mixed-type keys, would-be errors, a
/// pair projection outside the kernel subset) lands on the exact row
/// path: per-row key evaluation hashed through the same [`RandomState`],
/// per-pair map evaluation over the layered environment — reproducing the
/// row engine's answers, errors and error order.
pub(crate) struct FusedJoin<'a> {
    build: KeyedSpine<'a>,
    probe: KeyedSpine<'a>,
    map_expr: Option<&'a ScalarExpr>,
    /// The fused output projection; disabled (per-pair fallback) when the
    /// payload chunk cannot decode.
    pair_kernel: Option<PairKernel>,
    payload_builder: ChunkBuilder,
    /// Raw build-side source values in table-index order, drained into the
    /// payload chunk once the build completes.
    payload_rows: Vec<Value>,
    payload: Option<ColumnarChunk>,
    /// `true` when the build side is the plan's *left* input; output pairs
    /// are always ordered left-then-right regardless.
    build_on_left: bool,
    table: ColumnarJoinTable<'a>,
    built: bool,
    batch_rows: usize,
    ctx: PipelineCtx<'a>,
}

impl<'a> FusedJoin<'a> {
    /// Fuses a `map?(hash_join(spine, spine))` plan.  The build side is
    /// chosen exactly as the row engine's `build` does, so
    /// `rows_materialized` (one bump per build row) stays bit-identical.
    fn fuse(plan: &'a PhysicalExpr, ctx: PipelineCtx<'a>) -> Option<FusedJoin<'a>> {
        let (map_expr, join_node) = match plan {
            PhysicalExpr::MapOp { input, projection } => match input.as_ref() {
                join @ PhysicalExpr::HashJoin { .. } => (Some(projection), join),
                _ => return None,
            },
            join @ PhysicalExpr::HashJoin { .. } => (None, join),
            _ => return None,
        };
        let PhysicalExpr::HashJoin {
            left,
            right,
            left_key,
            right_key,
            residual,
        } = join_node
        else {
            return None;
        };
        if residual.is_some() {
            return None;
        }
        let left_shape = spine_shape(left, &ctx, true)?;
        let right_shape = spine_shape(right, &ctx, true)?;
        let build_on_left = match ctx.options.build_side {
            BuildSide::Left => true,
            BuildSide::Right => false,
            BuildSide::Auto => {
                match (
                    estimated_rows(left, ctx.resolved),
                    estimated_rows(right, ctx.resolved),
                ) {
                    (Some(l), Some(r)) => l < r,
                    _ => false,
                }
            }
        };
        let (build_shape, probe_shape, build_key, probe_key) = if build_on_left {
            (left_shape, right_shape, left_key, right_key)
        } else {
            (right_shape, left_shape, right_key, left_key)
        };
        let build_draft = KeyedSpineDraft::compile(build_shape, build_key)?;
        let probe_draft = KeyedSpineDraft::compile(probe_shape, probe_key)?;
        // Fuse the map over matched pairs when both sides are bound with
        // distinct names and the projection compiles.  The probe side of
        // the pair kernel is seeded with the probe spine's filter/key
        // columns so both kernels share the probe chunk layout; the build
        // side starts empty and claims only the payload columns the
        // projection reads.
        let mut pair_kernel = None;
        let mut payload_builder = ChunkBuilder::new();
        let mut probe_fields = probe_draft.fields().to_vec();
        if let Some(projection) = map_expr {
            let bindings = if build_on_left {
                build_draft.binding().zip(probe_draft.binding())
            } else {
                probe_draft.binding().zip(build_draft.binding())
            };
            if let Some(mut pb) = bindings.and_then(|(l, r)| PairKernelBuilder::new(l, r)) {
                if build_on_left {
                    pb.seed_right(&probe_fields);
                } else {
                    pb.seed_left(&probe_fields);
                }
                if let Some(kernel) = pb.compile(projection) {
                    let (payload_fields, probe_side) = if build_on_left {
                        (pb.left_fields(), pb.right_fields())
                    } else {
                        (pb.right_fields(), pb.left_fields())
                    };
                    for field in payload_fields {
                        payload_builder.add_field(Arc::clone(field));
                    }
                    probe_fields = probe_side.to_vec();
                    pair_kernel = Some(kernel);
                }
            }
        }
        let table = ColumnarJoinTable::new();
        let build_fields = build_draft.fields().to_vec();
        let build = build_draft.finalize(&build_fields, table.state(), ctx);
        let probe = probe_draft.finalize(&probe_fields, table.state(), ctx);
        Some(FusedJoin {
            build,
            probe,
            map_expr,
            pair_kernel,
            payload_builder,
            payload_rows: Vec::new(),
            payload: None,
            build_on_left,
            table,
            built: false,
            batch_rows: ctx.options.effective_batch_rows(),
            ctx,
        })
    }

    /// Drains the build spine into the hash table (one `rows_materialized`
    /// bump per build row, like the row engine's `build_table`), then
    /// freezes the payload chunk.
    fn ensure_built(&mut self) -> Result<()> {
        while let Some(batch) = self.build.next_keyed(self.batch_rows) {
            match batch {
                // Decoded batches are structs by construction, so the row
                // path's per-row struct-frame check is a proven no-op here.
                KeyedBatch::Kernel {
                    slice,
                    sel,
                    keys,
                    hashes,
                    ..
                } => {
                    for (j, &i) in sel.iter().enumerate() {
                        let row = self.build.make_row(slice, i);
                        self.ctx.metrics.bump_materialized();
                        if self.pair_kernel.is_some() {
                            self.payload_rows.push(slice[i as usize].clone());
                        }
                        self.table.insert(hashes[j], keys.value_at(j), row);
                    }
                }
                KeyedBatch::Fallback { slice } => {
                    for (i, row) in self.build.fallback_rows(slice)? {
                        check_struct_frames(&row)?;
                        let key = eval_in_row(self.build.key_expr, &row, self.ctx)?;
                        let hash = self.table.hash_value(&key);
                        self.ctx.metrics.bump_materialized();
                        if self.pair_kernel.is_some() {
                            self.payload_rows.push(slice[i as usize].clone());
                        }
                        self.table.insert(hash, key, row);
                    }
                }
            }
        }
        if self.pair_kernel.is_some() {
            // An undecodable payload (a build row missing a projected
            // column) permanently drops to per-pair map evaluation, which
            // reports the row engine's exact error for the missing field.
            match self.payload_builder.build(&self.payload_rows) {
                Some(chunk) => self.payload = Some(chunk),
                None => self.pair_kernel = None,
            }
            self.payload_rows = Vec::new();
        }
        Ok(())
    }

    /// The next batch of join output (matched pairs of one probe batch),
    /// probe-major with build-insertion order within a key group — the row
    /// engine's output order.
    fn next_out(&mut self, hint: usize) -> Result<Option<SpineBatch<'a>>> {
        if !self.built {
            self.ensure_built()?;
            self.built = true;
        }
        loop {
            let Some(batch) = self.probe.next_keyed(hint) else {
                return Ok(None);
            };
            match batch {
                KeyedBatch::Kernel {
                    slice,
                    chunk,
                    sel,
                    keys,
                    hashes,
                } => {
                    // Parallel pair-index vectors: pair `p` joins probe
                    // chunk row `probe_sel[p]` with build table row
                    // `build_sel[p]`.
                    let mut probe_sel: Vec<u32> = Vec::new();
                    let mut build_sel: Vec<u32> = Vec::new();
                    for (j, &i) in sel.iter().enumerate() {
                        let key = keys.value_at(j);
                        for &b in self.table.lookup(hashes[j], &key) {
                            probe_sel.push(i);
                            build_sel.push(b);
                        }
                    }
                    if probe_sel.is_empty() {
                        continue;
                    }
                    if let (Some(kernel), Some(payload)) = (&self.pair_kernel, &self.payload) {
                        let result = if self.build_on_left {
                            kernel.eval(payload, &build_sel, &chunk, &probe_sel)
                        } else {
                            kernel.eval(&chunk, &probe_sel, payload, &build_sel)
                        };
                        if let Some(result) = result {
                            return Ok(Some(SpineBatch::Mapped(result, probe_sel.len())));
                        }
                    }
                    // Pair fallback: construct the joined rows (cloning
                    // each probe row once per run of matches) and map them
                    // per pair, reproducing row-engine errors in order.
                    let mut out = Vec::with_capacity(probe_sel.len());
                    let mut current: Option<(u32, Row<'a>)> = None;
                    for (&p, &b) in probe_sel.iter().zip(&build_sel) {
                        let prow = match &current {
                            Some((i, row)) if *i == p => row.clone(),
                            _ => {
                                let row = self.probe.make_row(slice, p);
                                current = Some((p, row.clone()));
                                row
                            }
                        };
                        let brow = self.table.row(b).clone();
                        let joined = if self.build_on_left {
                            Row::joined(brow, prow)
                        } else {
                            Row::joined(prow, brow)
                        };
                        out.push(match self.map_expr {
                            Some(map) => Row::owned(eval_in_row(map, &joined, self.ctx)?),
                            None => joined,
                        });
                    }
                    return Ok(Some(SpineBatch::Rows(out)));
                }
                KeyedBatch::Fallback { slice } => {
                    let mut out = Vec::new();
                    for (_, row) in self.probe.fallback_rows(slice)? {
                        check_struct_frames(&row)?;
                        let key = eval_in_row(self.probe.key_expr, &row, self.ctx)?;
                        for &b in self.table.lookup(self.table.hash_value(&key), &key) {
                            let brow = self.table.row(b).clone();
                            let joined = if self.build_on_left {
                                Row::joined(brow, row.clone())
                            } else {
                                Row::joined(row.clone(), brow)
                            };
                            out.push(match self.map_expr {
                                Some(map) => Row::owned(eval_in_row(map, &joined, self.ctx)?),
                                None => joined,
                            });
                        }
                    }
                    if out.is_empty() {
                        continue;
                    }
                    return Ok(Some(SpineBatch::Rows(out)));
                }
            }
        }
    }
}

/// Queues one spine batch's rows for row-at-a-time consumers.
fn enqueue<'a>(pending: &mut VecDeque<Row<'a>>, batch: SpineBatch<'a>) {
    match batch {
        SpineBatch::Mapped(result, n) => {
            for i in 0..n {
                pending.push_back(Row::owned(result.value_at(i)));
            }
        }
        SpineBatch::Proj(values) => pending.extend(values.into_iter().map(Row::borrowed)),
        SpineBatch::Rows(rows) => pending.extend(rows),
    }
}

/// A fused spine exposed as an ordinary [`RowStream`] — what the rest of
/// the engine (joins, unions, the collect sink) consumes.
pub(crate) struct SpineCursor<'a> {
    source: ColumnarSource<'a>,
    pending: VecDeque<Row<'a>>,
    /// A kernel-mapped batch larger than the consumer's `max` (a join
    /// batch fanning out), served incrementally: `(results, next, len)`.
    /// Rows come straight out of the [`EvalVec`] — no queue round-trip.
    mapped: Option<(EvalVec, usize, usize)>,
}

impl<'a> SpineCursor<'a> {
    fn new(source: ColumnarSource<'a>) -> Self {
        SpineCursor {
            source,
            pending: VecDeque::new(),
            mapped: None,
        }
    }

    /// Serves up to `max` rows from the partially-consumed mapped batch.
    fn drain_mapped(&mut self, out: &mut Vec<Row<'a>>, max: usize) -> bool {
        let Some((result, next, n)) = &mut self.mapped else {
            return false;
        };
        let take = (*n - *next).min(max);
        for i in *next..*next + take {
            out.push(Row::owned(result.value_at(i)));
        }
        *next += take;
        if next >= n {
            self.mapped = None;
        }
        take > 0
    }
}

impl<'a> RowStream<'a> for SpineCursor<'a> {
    fn next_row(&mut self) -> Option<Result<Row<'a>>> {
        loop {
            if let Some((result, next, n)) = &mut self.mapped {
                let row = Row::owned(result.value_at(*next));
                *next += 1;
                if next >= n {
                    self.mapped = None;
                }
                return Some(Ok(row));
            }
            if let Some(row) = self.pending.pop_front() {
                return Some(Ok(row));
            }
            match self.source.next_chunk(self.source.batch_rows()) {
                Ok(Some(SpineBatch::Mapped(result, n))) => self.mapped = Some((result, 0, n)),
                Ok(Some(batch)) => enqueue(&mut self.pending, batch),
                Ok(None) => return None,
                Err(err) => return Some(Err(err)),
            }
        }
    }

    fn next_batch(&mut self, out: &mut Vec<Row<'a>>, max: usize) -> Result<bool> {
        loop {
            if self.drain_mapped(out, max) {
                return Ok(true);
            }
            if !self.pending.is_empty() {
                let take = self.pending.len().min(max);
                out.extend(self.pending.drain(..take));
                return Ok(true);
            }
            // A join batch can hold more than `max` rows (one probe batch
            // fans out to all its matches); the overflow stays in `mapped`
            // / `pending` for the next pull.
            match self.source.next_chunk(max)? {
                Some(SpineBatch::Mapped(result, n)) => {
                    self.mapped = Some((result, 0, n));
                }
                Some(SpineBatch::Proj(values)) => {
                    out.extend(values.into_iter().map(Row::borrowed));
                    return Ok(true);
                }
                Some(SpineBatch::Rows(mut rows)) => {
                    if rows.len() > max {
                        self.pending.extend(rows.drain(max..));
                    }
                    out.extend(rows);
                    return Ok(true);
                }
                None => return Ok(false),
            }
        }
    }
}

/// Distinct over a fused spine.
///
/// Mirrors `DistinctCursor` (one canonical hash per probed row, borrowed
/// duplicate rejection, one `rows_materialized` bump per admitted row)
/// and adds a fast path for bare-column string keys: the cursor interns
/// each key in its own [`StrDict`] (FNV, cheap on the short strings that
/// make up attribute values) and skips repeated codes on a dense
/// `code → seen` bitmap without ever paying the seen-set's canonical
/// `Value` hash.  The bitmap is only ever a shortcut — admission always
/// goes through the shared [`SeenSet`], so gathered, kernel-mapped and
/// fallback batches stay mutually consistent.
pub(crate) struct ColumnarDistinctCursor<'a> {
    source: ColumnarSource<'a>,
    seen: SeenSet,
    dict: StrDict,
    code_seen: Vec<bool>,
    pending: VecDeque<Row<'a>>,
}

impl<'a> ColumnarDistinctCursor<'a> {
    fn new(source: ColumnarSource<'a>) -> Self {
        ColumnarDistinctCursor {
            source,
            seen: SeenSet::default(),
            dict: StrDict::new(),
            code_seen: Vec::new(),
            pending: VecDeque::new(),
        }
    }

    /// Admits an owned candidate value: `None` for duplicates, the output
    /// row (plus the seen-set copy and metrics bump) for new values.
    fn admit_owned(&mut self, value: Value) -> Option<Row<'a>> {
        let hash = self.seen.check(&value)?;
        self.seen.insert_hashed(hash, value.clone());
        self.source.ctx().metrics.bump_materialized();
        Some(Row::owned(value))
    }

    /// Like [`ColumnarDistinctCursor::admit_owned`], but rejects
    /// duplicates on the borrowed value without cloning it.
    fn admit_borrowed(&mut self, value: &Value) -> Option<Row<'a>> {
        let hash = self.seen.check(value)?;
        let value = value.clone();
        self.seen.insert_hashed(hash, value.clone());
        self.source.ctx().metrics.bump_materialized();
        Some(Row::owned(value))
    }

    fn process(&mut self, batch: SpineBatch<'a>) -> Result<()> {
        match batch {
            SpineBatch::Proj(values) => {
                for value in values {
                    if let Value::Str(s) = value {
                        if let Some(code) = self.dict.code(s) {
                            let slot = code as usize;
                            if self.code_seen.get(slot).copied().unwrap_or(false) {
                                continue;
                            }
                            if self.code_seen.len() <= slot {
                                self.code_seen.resize(slot + 1, false);
                            }
                            self.code_seen[slot] = true;
                        }
                        // A full dictionary (or a fresh code) falls
                        // through to the seen-set, which stays the one
                        // source of truth.
                    }
                    if let Some(row) = self.admit_borrowed(value) {
                        self.pending.push_back(row);
                    }
                }
            }
            SpineBatch::Mapped(result, n) => {
                for i in 0..n {
                    if let Some(row) = self.admit_owned(result.value_at(i)) {
                        self.pending.push_back(row);
                    }
                }
            }
            SpineBatch::Rows(rows) => {
                for row in rows {
                    // The exact `DistinctCursor::admit` dance, including
                    // the borrowed duplicate check for single-frame rows.
                    let (hash, value) = if let Some(value) = row.single_value() {
                        let Some(hash) = self.seen.check(value) else {
                            continue;
                        };
                        (hash, row.materialize(self.source.ctx().metrics)?)
                    } else {
                        let value = row.materialize(self.source.ctx().metrics)?;
                        let Some(hash) = self.seen.check(&value) else {
                            continue;
                        };
                        (hash, value)
                    };
                    self.seen.insert_hashed(hash, value.clone());
                    self.source.ctx().metrics.bump_materialized();
                    self.pending.push_back(Row::owned(value));
                }
            }
        }
        Ok(())
    }
}

impl<'a> RowStream<'a> for ColumnarDistinctCursor<'a> {
    fn next_row(&mut self) -> Option<Result<Row<'a>>> {
        loop {
            if let Some(row) = self.pending.pop_front() {
                return Some(Ok(row));
            }
            match self.source.next_chunk(self.source.batch_rows()) {
                Ok(Some(batch)) => {
                    if let Err(err) = self.process(batch) {
                        return Some(Err(err));
                    }
                }
                Ok(None) => return None,
                Err(err) => return Some(Err(err)),
            }
        }
    }

    fn next_batch(&mut self, out: &mut Vec<Row<'a>>, max: usize) -> Result<bool> {
        loop {
            if !self.pending.is_empty() {
                let take = self.pending.len().min(max);
                out.extend(self.pending.drain(..take));
                return Ok(true);
            }
            match self.source.next_chunk(max)? {
                Some(batch) => self.process(batch)?,
                None => return Ok(false),
            }
        }
    }
}

/// Aggregate over a fused spine: folds batch values straight into an
/// [`AggState`] in row order, mirroring the serial `fold_aggregate`
/// (which bumps no metrics).
pub(crate) struct ColumnarAggregateCursor<'a> {
    source: Option<ColumnarSource<'a>>,
    func: AggKind,
}

impl<'a> ColumnarAggregateCursor<'a> {
    fn new(source: ColumnarSource<'a>, func: AggKind) -> Self {
        ColumnarAggregateCursor {
            source: Some(source),
            func,
        }
    }
}

impl<'a> RowStream<'a> for ColumnarAggregateCursor<'a> {
    fn next_row(&mut self) -> Option<Result<Row<'a>>> {
        let mut source = self.source.take()?;
        let mut state = AggState::new(self.func);
        let batch_rows = source.batch_rows();
        loop {
            match source.next_chunk(batch_rows) {
                Ok(Some(SpineBatch::Mapped(result, n))) => {
                    for i in 0..n {
                        if let Err(err) = state.update(&result.value_at(i)) {
                            return Some(Err(err));
                        }
                    }
                }
                Ok(Some(SpineBatch::Proj(values))) => {
                    for value in values {
                        if let Err(err) = state.update(value) {
                            return Some(Err(err));
                        }
                    }
                }
                Ok(Some(SpineBatch::Rows(rows))) => {
                    for row in rows {
                        let merged;
                        let value: &Value = match row.single_value() {
                            Some(value) => value,
                            None => {
                                merged = match row.materialize(source.ctx().metrics) {
                                    Ok(value) => value,
                                    Err(err) => return Some(Err(err)),
                                };
                                &merged
                            }
                        };
                        if let Err(err) = state.update(value) {
                            return Some(Err(err));
                        }
                    }
                }
                Ok(None) => return Some(Ok(Row::owned(state.finish()))),
                Err(err) => return Some(Err(err)),
            }
        }
    }
}
