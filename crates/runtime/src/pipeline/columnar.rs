//! Columnar execution of fused pipeline stretches.
//!
//! The row cursors move one `Row` at a time; this module intercepts the
//! shapes the mediator's combine step actually spends its time on — a
//! *spine* of `map? → filter* → bind? → scan` over a fully-materialized
//! input — and runs them batch-at-a-time: the scan decodes one
//! [`ChunkBuilder`] chunk per batch, compiled [`Kernel`]s evaluate the
//! filter predicates and the map projection over whole columns, and a
//! selection vector marks surviving rows instead of copying them.
//! Distinct and aggregate breakers consume the fused spine's batches
//! directly (distinct gets a dictionary-code fast path for string keys).
//!
//! # Fallback rule
//!
//! Columnar execution must be *observably identical* to the row cursors.
//! Three levels guarantee that:
//!
//! * **Fusion** is all-or-nothing per stretch: every filter predicate
//!   (and the map projection, when present) must compile to a kernel,
//!   and the source must be a resolved scan.  Anything else builds row
//!   cursors as before — with fusable *inner* stretches still
//!   intercepted, so partial coverage composes.
//! * **Decoding** is strict: a batch containing a non-struct row or a
//!   row lacking a referenced field refuses to decode, and that batch
//!   runs through the per-row [`Env`](disco_algebra::Env) path (counted
//!   in [`PipelineMetrics::rows_fallback`](super::PipelineMetrics)).
//!   Strictness is what makes kernel column reads equal to environment
//!   lookups: a decoded field is present in every row, so the innermost
//!   scope always wins the lookup.
//! * **Evaluation** never reports an error from a kernel: a would-be
//!   error (division by zero, a type mismatch) bails the batch to the
//!   same per-row path, which reproduces the row engine's exact error at
//!   the exact row.  The per-row fallback applies each operator across
//!   the whole batch before the next operator — the same order the
//!   batched row cursors stack — so even error *ordering* within a batch
//!   matches.
//!
//! Metric invariants: spine operators bump neither `rows_materialized`
//! nor `rows_merged` (just like the row cursors they replace — bind's
//! single-frame materialize is uncounted, and spine rows are never join
//! rows), and the columnar distinct bumps `rows_materialized` exactly
//! once per admitted row.  `rows_kernel`/`rows_fallback` count each
//! scanned row into exactly one bucket.

use std::collections::VecDeque;
use std::sync::Arc;

use disco_algebra::{
    kernel::{EvalVec, Kernel, KernelBuilder},
    truthy, AggKind, AlgebraError, PhysicalExpr, ScalarExpr,
};
use disco_value::{ChunkBuilder, StrDict, StructValue, Value};

use crate::exec::{ExecKey, ExecOutcome};

use super::sink::{AggState, SeenSet};
use super::{eval_in_row, BoxedRowStream, PipelineCtx, Result, Row, RowStream};

/// Attempts to intercept `plan` with a columnar cursor; `None` means "not
/// fusable here" and the caller builds row cursors (recursing into this
/// function for inner subtrees).
pub(crate) fn try_build<'a>(
    plan: &'a PhysicalExpr,
    ctx: PipelineCtx<'a>,
) -> Option<BoxedRowStream<'a>> {
    match plan {
        // Breakers consume the fused spine's batches directly; distinct
        // interns bare-column string keys in its own dictionary so equal
        // keys can be skipped on a dense code bitmap.
        PhysicalExpr::MkDistinct(inner) => {
            let spine = FusedSpine::fuse(inner, ctx)?;
            Some(Box::new(ColumnarDistinctCursor::new(spine)))
        }
        PhysicalExpr::MkAggregate { func, input } => {
            let spine = FusedSpine::fuse(input, ctx)?;
            Some(Box::new(ColumnarAggregateCursor::new(spine, *func)))
        }
        _ => {
            let spine = FusedSpine::fuse(plan, ctx)?;
            Some(Box::new(SpineCursor::new(spine)))
        }
    }
}

/// The fusable plan shape: `map? → filter* → bind? → (resolved scan)`.
struct SpineShape<'a> {
    map: Option<&'a ScalarExpr>,
    /// Filter predicates in execution (innermost-first) order.
    filters: Vec<&'a ScalarExpr>,
    binding: Option<&'a str>,
    rows: &'a [Value],
}

fn spine_shape<'a>(plan: &'a PhysicalExpr, ctx: &PipelineCtx<'a>) -> Option<SpineShape<'a>> {
    let mut node = plan;
    let mut map = None;
    if let PhysicalExpr::MapOp { input, projection } = node {
        map = Some(projection);
        node = input;
    }
    let mut filters = Vec::new();
    while let PhysicalExpr::FilterOp { input, predicate } = node {
        filters.push(predicate);
        node = input;
    }
    filters.reverse();
    let mut binding = None;
    if let PhysicalExpr::BindOp { var, input } = node {
        binding = Some(var.as_str());
        node = input;
    }
    let rows: &'a [Value] = match node {
        PhysicalExpr::MemScan(bag) => bag.as_slice(),
        PhysicalExpr::Exec {
            repository,
            extent,
            logical,
            ..
        } => {
            let key = ExecKey::new(repository, extent, logical);
            match ctx.resolved.outcome(&key) {
                Some(ExecOutcome::Rows(rows)) => rows.as_slice(),
                // Pending spools and unresolved/unavailable sources keep
                // the row path (which reports the precise error).
                _ => return None,
            }
        }
        _ => return None,
    };
    if map.is_none() && filters.is_empty() {
        // Bare scans and bind-only stretches have no scalar work to
        // vectorize; the row path is already optimal for them.
        return None;
    }
    Some(SpineShape {
        map,
        filters,
        binding,
        rows,
    })
}

/// A bare-column map projection, gathered lazily: the projected value is
/// borrowed straight from the surviving source rows, so neither a column
/// decode nor an [`EvalVec`] gather (both of which clone) ever runs.
struct GatherPlan {
    name: Arc<str>,
    /// Positional guess, updated on the fly (rows from one source share
    /// their layout, so after the first row every lookup is one indexed
    /// access plus a name check).
    guess: usize,
}

/// Field lookup with the positional fast path.
fn gather_lookup<'v>(row: &'v StructValue, plan: &mut GatherPlan) -> Option<&'v Value> {
    if let Some((name, value)) = row.field_at(plan.guess) {
        if name == plan.name.as_ref() {
            return Some(value);
        }
    }
    let (index, value) = row.position(plan.name.as_ref())?;
    plan.guess = index;
    Some(value)
}

/// A fused spine: compiled kernels, the chunk decoder, and the original
/// expressions for the per-batch fallback.
struct FusedSpine<'a> {
    rows: &'a [Value],
    pos: usize,
    builder: ChunkBuilder,
    filter_kernels: Vec<Kernel>,
    /// Compound map projections evaluate through this kernel; bare column
    /// reads use `gather` instead (and leave this `None`).
    map_kernel: Option<Kernel>,
    gather: Option<GatherPlan>,
    filter_exprs: Vec<&'a ScalarExpr>,
    map_expr: Option<&'a ScalarExpr>,
    bind_name: Option<Arc<str>>,
    /// Default chunk size for row-at-a-time pulls.
    batch_rows: usize,
    ctx: PipelineCtx<'a>,
}

/// One batch of spine output.
enum SpineBatch<'a> {
    /// Kernel-evaluated map results for `n` surviving rows.
    Mapped(EvalVec, usize),
    /// Bare-column map results borrowed from the surviving source rows.
    Proj(Vec<&'a Value>),
    /// Surviving rows (no map stage, or the per-row fallback ran).
    Rows(Vec<Row<'a>>),
}

impl<'a> FusedSpine<'a> {
    /// Fuses `plan` when its shape matches and every scalar stage
    /// compiles to a kernel.
    fn fuse(plan: &'a PhysicalExpr, ctx: PipelineCtx<'a>) -> Option<FusedSpine<'a>> {
        let shape = spine_shape(plan, &ctx)?;
        let mut kb = KernelBuilder::new(shape.binding);
        let mut filter_kernels = Vec::with_capacity(shape.filters.len());
        for predicate in &shape.filters {
            filter_kernels.push(kb.compile(predicate)?);
        }
        // Slots allocated so far are referenced by filter kernels and
        // must decode; a slot the map alone reads is gathered lazily and
        // needs no column at all.
        let filter_slots = kb.fields().len();
        let mut map_kernel = None;
        let mut gather = None;
        if let Some(projection) = shape.map {
            let kernel = kb.compile(projection)?;
            match kernel.as_col() {
                Some(slot) => {
                    gather = Some(GatherPlan {
                        name: Arc::clone(&kb.fields()[slot]),
                        guess: 0,
                    });
                }
                None => map_kernel = Some(kernel),
            }
        }
        let decoded_slots = if map_kernel.is_none() {
            filter_slots
        } else {
            kb.fields().len()
        };
        let mut builder = ChunkBuilder::new();
        for field in &kb.fields()[..decoded_slots] {
            builder.add_field(Arc::clone(field));
        }
        Some(FusedSpine {
            rows: shape.rows,
            pos: 0,
            builder,
            filter_kernels,
            map_kernel,
            gather,
            filter_exprs: shape.filters,
            map_expr: shape.map,
            bind_name: shape.binding.map(Arc::from),
            batch_rows: ctx.options.effective_batch_rows(),
            ctx,
        })
    }

    fn done(&self) -> bool {
        self.pos >= self.rows.len()
    }

    /// Produces the next batch of at most `hint` source rows; `None` when
    /// the scan is exhausted.
    fn next_chunk(&mut self, hint: usize) -> Result<Option<SpineBatch<'a>>> {
        if self.done() {
            return Ok(None);
        }
        let rows = self.rows;
        let take = hint.clamp(1, 1 << 20).min(rows.len() - self.pos);
        let slice = &rows[self.pos..self.pos + take];
        self.pos += take;
        match self.kernel_chunk(slice)? {
            Some(batch) => Ok(Some(batch)),
            None => {
                self.ctx.metrics.add_fallback(slice.len());
                Ok(Some(SpineBatch::Rows(self.fallback_chunk(slice)?)))
            }
        }
    }

    /// The vectorized path; `Ok(None)` bails the batch to the fallback
    /// (undecodable chunk, or a kernel hit an unsupported combination /
    /// would-be error).
    fn kernel_chunk(&mut self, slice: &'a [Value]) -> Result<Option<SpineBatch<'a>>> {
        let Some(chunk) = self.builder.build(slice) else {
            return Ok(None);
        };
        let len = u32::try_from(slice.len()).expect("chunk size is clamped below u32::MAX");
        let mut sel: Vec<u32> = (0..len).collect();
        for kernel in &self.filter_kernels {
            if sel.is_empty() {
                break;
            }
            let Some(result) = kernel.eval(&chunk, &sel) else {
                return Ok(None);
            };
            let mask = result.truthy_mask(sel.len());
            let mut kept = Vec::with_capacity(sel.len());
            for (i, keep) in mask.into_iter().enumerate() {
                if keep {
                    kept.push(sel[i]);
                }
            }
            sel = kept;
        }
        if let Some(plan) = &mut self.gather {
            // Bare-column map: borrow the field from each surviving row.
            // A survivor that is not a struct or lacks the field bails the
            // whole batch (nothing was emitted or counted yet), and the
            // per-row path reproduces the exact row-engine behaviour.
            let mut out = Vec::with_capacity(sel.len());
            for &i in &sel {
                let Value::Struct(row) = &slice[i as usize] else {
                    return Ok(None);
                };
                let Some(value) = gather_lookup(row, plan) else {
                    return Ok(None);
                };
                out.push(value);
            }
            self.ctx.metrics.add_kernel(slice.len());
            return Ok(Some(SpineBatch::Proj(out)));
        }
        let batch = match &self.map_kernel {
            Some(kernel) => {
                let Some(result) = kernel.eval(&chunk, &sel) else {
                    return Ok(None);
                };
                SpineBatch::Mapped(result, sel.len())
            }
            None => {
                let mut out = Vec::with_capacity(sel.len());
                match &self.bind_name {
                    // Survivors of a bound spine come out as the same
                    // `{var: row}` structs `BindCursor` builds — but only
                    // for survivors, after the filters ran on raw columns.
                    Some(name) => {
                        for &i in &sel {
                            let env_row = StructValue::new(vec![(
                                Arc::clone(name),
                                slice[i as usize].clone(),
                            )])
                            .map_err(AlgebraError::from)?;
                            out.push(Row::owned(Value::Struct(env_row)));
                        }
                    }
                    None => {
                        for &i in &sel {
                            out.push(Row::borrowed(&slice[i as usize]));
                        }
                    }
                }
                SpineBatch::Rows(out)
            }
        };
        self.ctx.metrics.add_kernel(slice.len());
        Ok(Some(batch))
    }

    /// The per-row path for one batch, stacked operator-by-operator
    /// across the whole batch — exactly how the row cursors' `next_batch`
    /// implementations compose, so results, errors and error order match.
    fn fallback_chunk(&self, slice: &'a [Value]) -> Result<Vec<Row<'a>>> {
        let mut rows: Vec<Row<'a>> = slice.iter().map(Row::borrowed).collect();
        if let Some(name) = &self.bind_name {
            let mut bound = Vec::with_capacity(rows.len());
            for row in rows {
                let value = row.materialize(self.ctx.metrics)?;
                let env_row = StructValue::new(vec![(Arc::clone(name), value)])
                    .map_err(AlgebraError::from)?;
                bound.push(Row::owned(Value::Struct(env_row)));
            }
            rows = bound;
        }
        for predicate in &self.filter_exprs {
            let mut kept = Vec::with_capacity(rows.len());
            for row in rows {
                if truthy(&eval_in_row(predicate, &row, self.ctx)?) {
                    kept.push(row);
                }
            }
            rows = kept;
        }
        if let Some(projection) = self.map_expr {
            let mut mapped = Vec::with_capacity(rows.len());
            for row in rows {
                mapped.push(Row::owned(eval_in_row(projection, &row, self.ctx)?));
            }
            rows = mapped;
        }
        Ok(rows)
    }
}

/// Queues one spine batch's rows for row-at-a-time consumers.
fn enqueue<'a>(pending: &mut VecDeque<Row<'a>>, batch: SpineBatch<'a>) {
    match batch {
        SpineBatch::Mapped(result, n) => {
            for i in 0..n {
                pending.push_back(Row::owned(result.value_at(i)));
            }
        }
        SpineBatch::Proj(values) => pending.extend(values.into_iter().map(Row::borrowed)),
        SpineBatch::Rows(rows) => pending.extend(rows),
    }
}

/// A fused spine exposed as an ordinary [`RowStream`] — what the rest of
/// the engine (joins, unions, the collect sink) consumes.
pub(crate) struct SpineCursor<'a> {
    spine: FusedSpine<'a>,
    pending: VecDeque<Row<'a>>,
}

impl<'a> SpineCursor<'a> {
    fn new(spine: FusedSpine<'a>) -> Self {
        SpineCursor {
            spine,
            pending: VecDeque::new(),
        }
    }
}

impl<'a> RowStream<'a> for SpineCursor<'a> {
    fn next_row(&mut self) -> Option<Result<Row<'a>>> {
        loop {
            if let Some(row) = self.pending.pop_front() {
                return Some(Ok(row));
            }
            match self.spine.next_chunk(self.spine.batch_rows) {
                Ok(Some(batch)) => enqueue(&mut self.pending, batch),
                Ok(None) => return None,
                Err(err) => return Some(Err(err)),
            }
        }
    }

    fn next_batch(&mut self, out: &mut Vec<Row<'a>>, max: usize) -> Result<bool> {
        if !self.pending.is_empty() {
            let take = self.pending.len().min(max);
            out.extend(self.pending.drain(..take));
            return Ok(true);
        }
        match self.spine.next_chunk(max)? {
            Some(SpineBatch::Mapped(result, n)) => {
                for i in 0..n {
                    out.push(Row::owned(result.value_at(i)));
                }
                Ok(true)
            }
            Some(SpineBatch::Proj(values)) => {
                out.extend(values.into_iter().map(Row::borrowed));
                Ok(true)
            }
            Some(SpineBatch::Rows(rows)) => {
                out.extend(rows);
                Ok(true)
            }
            None => Ok(false),
        }
    }
}

/// Distinct over a fused spine.
///
/// Mirrors `DistinctCursor` (one canonical hash per probed row, borrowed
/// duplicate rejection, one `rows_materialized` bump per admitted row)
/// and adds a fast path for bare-column string keys: the cursor interns
/// each key in its own [`StrDict`] (FNV, cheap on the short strings that
/// make up attribute values) and skips repeated codes on a dense
/// `code → seen` bitmap without ever paying the seen-set's canonical
/// `Value` hash.  The bitmap is only ever a shortcut — admission always
/// goes through the shared [`SeenSet`], so gathered, kernel-mapped and
/// fallback batches stay mutually consistent.
pub(crate) struct ColumnarDistinctCursor<'a> {
    spine: FusedSpine<'a>,
    seen: SeenSet,
    dict: StrDict,
    code_seen: Vec<bool>,
    pending: VecDeque<Row<'a>>,
}

impl<'a> ColumnarDistinctCursor<'a> {
    fn new(spine: FusedSpine<'a>) -> Self {
        ColumnarDistinctCursor {
            spine,
            seen: SeenSet::default(),
            dict: StrDict::new(),
            code_seen: Vec::new(),
            pending: VecDeque::new(),
        }
    }

    /// Admits an owned candidate value: `None` for duplicates, the output
    /// row (plus the seen-set copy and metrics bump) for new values.
    fn admit_owned(&mut self, value: Value) -> Option<Row<'a>> {
        let hash = self.seen.check(&value)?;
        self.seen.insert_hashed(hash, value.clone());
        self.spine.ctx.metrics.bump_materialized();
        Some(Row::owned(value))
    }

    /// Like [`ColumnarDistinctCursor::admit_owned`], but rejects
    /// duplicates on the borrowed value without cloning it.
    fn admit_borrowed(&mut self, value: &Value) -> Option<Row<'a>> {
        let hash = self.seen.check(value)?;
        let value = value.clone();
        self.seen.insert_hashed(hash, value.clone());
        self.spine.ctx.metrics.bump_materialized();
        Some(Row::owned(value))
    }

    fn process(&mut self, batch: SpineBatch<'a>) -> Result<()> {
        match batch {
            SpineBatch::Proj(values) => {
                for value in values {
                    if let Value::Str(s) = value {
                        if let Some(code) = self.dict.code(s) {
                            let slot = code as usize;
                            if self.code_seen.get(slot).copied().unwrap_or(false) {
                                continue;
                            }
                            if self.code_seen.len() <= slot {
                                self.code_seen.resize(slot + 1, false);
                            }
                            self.code_seen[slot] = true;
                        }
                        // A full dictionary (or a fresh code) falls
                        // through to the seen-set, which stays the one
                        // source of truth.
                    }
                    if let Some(row) = self.admit_borrowed(value) {
                        self.pending.push_back(row);
                    }
                }
            }
            SpineBatch::Mapped(result, n) => {
                for i in 0..n {
                    if let Some(row) = self.admit_owned(result.value_at(i)) {
                        self.pending.push_back(row);
                    }
                }
            }
            SpineBatch::Rows(rows) => {
                for row in rows {
                    // The exact `DistinctCursor::admit` dance, including
                    // the borrowed duplicate check for single-frame rows.
                    let (hash, value) = if let Some(value) = row.single_value() {
                        let Some(hash) = self.seen.check(value) else {
                            continue;
                        };
                        (hash, row.materialize(self.spine.ctx.metrics)?)
                    } else {
                        let value = row.materialize(self.spine.ctx.metrics)?;
                        let Some(hash) = self.seen.check(&value) else {
                            continue;
                        };
                        (hash, value)
                    };
                    self.seen.insert_hashed(hash, value.clone());
                    self.spine.ctx.metrics.bump_materialized();
                    self.pending.push_back(Row::owned(value));
                }
            }
        }
        Ok(())
    }
}

impl<'a> RowStream<'a> for ColumnarDistinctCursor<'a> {
    fn next_row(&mut self) -> Option<Result<Row<'a>>> {
        loop {
            if let Some(row) = self.pending.pop_front() {
                return Some(Ok(row));
            }
            match self.spine.next_chunk(self.spine.batch_rows) {
                Ok(Some(batch)) => {
                    if let Err(err) = self.process(batch) {
                        return Some(Err(err));
                    }
                }
                Ok(None) => return None,
                Err(err) => return Some(Err(err)),
            }
        }
    }

    fn next_batch(&mut self, out: &mut Vec<Row<'a>>, max: usize) -> Result<bool> {
        loop {
            if !self.pending.is_empty() {
                let take = self.pending.len().min(max);
                out.extend(self.pending.drain(..take));
                return Ok(true);
            }
            match self.spine.next_chunk(max)? {
                Some(batch) => self.process(batch)?,
                None => return Ok(false),
            }
        }
    }
}

/// Aggregate over a fused spine: folds batch values straight into an
/// [`AggState`] in row order, mirroring the serial `fold_aggregate`
/// (which bumps no metrics).
pub(crate) struct ColumnarAggregateCursor<'a> {
    spine: Option<FusedSpine<'a>>,
    func: AggKind,
}

impl<'a> ColumnarAggregateCursor<'a> {
    fn new(spine: FusedSpine<'a>, func: AggKind) -> Self {
        ColumnarAggregateCursor {
            spine: Some(spine),
            func,
        }
    }
}

impl<'a> RowStream<'a> for ColumnarAggregateCursor<'a> {
    fn next_row(&mut self) -> Option<Result<Row<'a>>> {
        let mut spine = self.spine.take()?;
        let mut state = AggState::new(self.func);
        let batch_rows = spine.batch_rows;
        loop {
            match spine.next_chunk(batch_rows) {
                Ok(Some(SpineBatch::Mapped(result, n))) => {
                    for i in 0..n {
                        if let Err(err) = state.update(&result.value_at(i)) {
                            return Some(Err(err));
                        }
                    }
                }
                Ok(Some(SpineBatch::Proj(values))) => {
                    for value in values {
                        if let Err(err) = state.update(value) {
                            return Some(Err(err));
                        }
                    }
                }
                Ok(Some(SpineBatch::Rows(rows))) => {
                    for row in rows {
                        let merged;
                        let value: &Value = match row.single_value() {
                            Some(value) => value,
                            None => {
                                merged = match row.materialize(spine.ctx.metrics) {
                                    Ok(value) => value,
                                    Err(err) => return Some(Err(err)),
                                };
                                &merged
                            }
                        };
                        if let Err(err) = state.update(value) {
                            return Some(Err(err));
                        }
                    }
                }
                Ok(None) => return Some(Ok(Row::owned(state.finish()))),
                Err(err) => return Some(Err(err)),
            }
        }
    }
}
