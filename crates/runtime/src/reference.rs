//! The bag-at-a-time **reference evaluator**.
//!
//! This is the seed implementation the streaming cursor engine
//! ([`crate::pipeline`]) replaced: a recursive evaluator that materializes
//! a full [`Bag`] at every operator boundary.  It is kept — unchanged in
//! semantics — as the executable specification of the physical algebra:
//! the differential tests (`tests/streaming_equivalence.rs` and the join
//! regression suite) assert that the streaming engine produces multiset-
//! equal answers and identical partial-evaluation residuals on randomized
//! plans.  Production paths never call it.

use std::collections::HashMap;

use disco_algebra::{
    eval_scalar_with, lower, truthy, AlgebraError, Env, LogicalExpr, PhysicalExpr, ScalarExpr,
};
use disco_value::{Bag, StructValue, Value};

use crate::exec::{ExecKey, ExecOutcome, ResolvedExecs};
use crate::{Result, RuntimeError};

/// Evaluates a physical plan against resolved `exec` outcomes,
/// materializing every intermediate result.
///
/// # Errors
///
/// Returns an error if the plan references an unresolved or unavailable
/// `exec` call, or on evaluation errors.
pub fn evaluate_physical(plan: &PhysicalExpr, resolved: &ResolvedExecs) -> Result<Bag> {
    evaluate_with_outer(plan, resolved, &Env::root())
}

/// Evaluates a physical plan with an outer environment (used for
/// correlated sub-queries).
///
/// # Errors
///
/// See [`evaluate_physical`].
pub fn evaluate_with_outer(
    plan: &PhysicalExpr,
    resolved: &ResolvedExecs,
    outer: &Env<'_>,
) -> Result<Bag> {
    match plan {
        PhysicalExpr::Exec {
            repository,
            extent,
            logical,
            ..
        } => {
            let key = ExecKey::new(repository, extent, logical);
            match resolved.outcome(&key) {
                Some(ExecOutcome::Rows(rows)) => Ok(rows.clone()),
                // The reference evaluator predates streamed resolution and
                // only consumes finalized outcomes.
                Some(ExecOutcome::Pending(_)) => Err(RuntimeError::Unsupported(format!(
                    "pending (streaming) exec call to {repository} reached the reference evaluator"
                ))),
                Some(ExecOutcome::Unavailable) => Err(RuntimeError::Unsupported(format!(
                    "exec call to unavailable source {repository} reached the evaluator"
                ))),
                None => Err(RuntimeError::Unsupported(format!(
                    "unresolved exec call to {repository} ({extent})"
                ))),
            }
        }
        PhysicalExpr::MemScan(bag) => Ok(bag.clone()),
        PhysicalExpr::FilterOp { input, predicate } => {
            let rows = evaluate_with_outer(input, resolved, outer)?;
            let mut out = Bag::with_capacity(rows.len());
            for row in &rows {
                let env = outer.with_value(row);
                let keep = eval_row_scalar(predicate, &env, resolved)?;
                if truthy(&keep) {
                    out.insert(row.clone());
                }
            }
            Ok(out)
        }
        PhysicalExpr::ProjectOp { input, columns } => {
            let rows = evaluate_with_outer(input, resolved, outer)?;
            let mut out = Bag::with_capacity(rows.len());
            for row in &rows {
                let s = row.as_struct().map_err(AlgebraError::from)?;
                let projected = s
                    .project(columns.iter().map(String::as_str))
                    .map_err(AlgebraError::from)?;
                out.insert(Value::Struct(projected));
            }
            Ok(out)
        }
        PhysicalExpr::MapOp { input, projection } => {
            let rows = evaluate_with_outer(input, resolved, outer)?;
            let mut out = Bag::with_capacity(rows.len());
            for row in &rows {
                let env = outer.with_value(row);
                out.insert(eval_row_scalar(projection, &env, resolved)?);
            }
            Ok(out)
        }
        PhysicalExpr::BindOp { var, input } => {
            let rows = evaluate_with_outer(input, resolved, outer)?;
            let mut out = Bag::with_capacity(rows.len());
            let name: std::sync::Arc<str> = std::sync::Arc::from(var.as_str());
            for row in &rows {
                let env = StructValue::new(vec![(std::sync::Arc::clone(&name), row.clone())])
                    .map_err(AlgebraError::from)?;
                out.insert(Value::Struct(env));
            }
            Ok(out)
        }
        PhysicalExpr::NestedLoopJoin {
            left,
            right,
            predicate,
        } => {
            let left_rows = evaluate_with_outer(left, resolved, outer)?;
            let right_rows = evaluate_with_outer(right, resolved, outer)?;
            let mut out = Bag::new();
            for l in &left_rows {
                let ls = l.as_struct().map_err(AlgebraError::from)?;
                let lenv = outer.with_row(ls);
                for r in &right_rows {
                    let rs = r.as_struct().map_err(AlgebraError::from)?;
                    let keep = match predicate {
                        Some(p) => {
                            let env = lenv.with_row(rs);
                            truthy(&eval_row_scalar(p, &env, resolved)?)
                        }
                        None => true,
                    };
                    if keep {
                        out.insert(Value::Struct(ls.merged(rs)));
                    }
                }
            }
            Ok(out)
        }
        PhysicalExpr::HashJoin {
            left,
            right,
            left_key,
            right_key,
            residual,
        } => {
            let left_rows = evaluate_with_outer(left, resolved, outer)?;
            let right_rows = evaluate_with_outer(right, resolved, outer)?;
            let mut table: HashMap<Value, Vec<&StructValue>> =
                HashMap::with_capacity(right_rows.len());
            for r in &right_rows {
                let rs = r.as_struct().map_err(AlgebraError::from)?;
                let env = outer.with_row(rs);
                let key = eval_row_scalar(right_key, &env, resolved)?;
                table.entry(key).or_default().push(rs);
            }
            let mut out = Bag::new();
            for l in &left_rows {
                let ls = l.as_struct().map_err(AlgebraError::from)?;
                let lenv = outer.with_row(ls);
                let key = eval_row_scalar(left_key, &lenv, resolved)?;
                if let Some(matches) = table.get(&key) {
                    for rs in matches {
                        let keep = match residual {
                            Some(p) => {
                                let env = lenv.with_row(rs);
                                truthy(&eval_row_scalar(p, &env, resolved)?)
                            }
                            None => true,
                        };
                        if keep {
                            out.insert(Value::Struct(ls.merged(rs)));
                        }
                    }
                }
            }
            Ok(out)
        }
        PhysicalExpr::MergeTuplesJoin { left, right, on } => {
            let left_rows = evaluate_with_outer(left, resolved, outer)?;
            let right_rows = evaluate_with_outer(right, resolved, outer)?;
            let mut out = Bag::new();
            for l in &left_rows {
                let ls = l.as_struct().map_err(AlgebraError::from)?;
                for r in &right_rows {
                    let rs = r.as_struct().map_err(AlgebraError::from)?;
                    let mut matches = true;
                    for (lattr, rattr) in on {
                        let lv = ls.field(lattr).map_err(AlgebraError::from)?;
                        let rv = rs.field(rattr).map_err(AlgebraError::from)?;
                        if lv != rv {
                            matches = false;
                            break;
                        }
                    }
                    if matches {
                        let merged = ls
                            .merge_with_prefix(rs, "right")
                            .map_err(AlgebraError::from)?;
                        out.insert(Value::Struct(merged));
                    }
                }
            }
            Ok(out)
        }
        PhysicalExpr::MkUnion(items) => {
            let mut out = Bag::new();
            for item in items {
                let bag = evaluate_with_outer(item, resolved, outer)?;
                if out.is_empty() {
                    out = bag;
                } else {
                    out.extend(bag);
                }
            }
            Ok(out)
        }
        PhysicalExpr::MkFlatten(inner) => {
            Ok(evaluate_with_outer(inner, resolved, outer)?.flatten())
        }
        PhysicalExpr::MkDistinct(inner) => {
            Ok(evaluate_with_outer(inner, resolved, outer)?.distinct())
        }
        PhysicalExpr::MkAggregate { func, input } => {
            let rows = evaluate_with_outer(input, resolved, outer)?;
            Ok([func.apply(&rows).map_err(RuntimeError::Algebra)?]
                .into_iter()
                .collect())
        }
    }
}

/// Evaluates a logical plan by lowering it and running the reference
/// evaluator.
///
/// # Errors
///
/// See [`evaluate_physical`].
pub fn evaluate_logical(
    plan: &LogicalExpr,
    resolved: &ResolvedExecs,
    outer: &Env<'_>,
) -> Result<Bag> {
    let physical = lower(plan).map_err(RuntimeError::Algebra)?;
    evaluate_with_outer(&physical, resolved, outer)
}

/// Evaluates a scalar expression against a row environment, resolving
/// aggregate sub-queries through the reference evaluator.
fn eval_row_scalar(expr: &ScalarExpr, env: &Env<'_>, resolved: &ResolvedExecs) -> Result<Value> {
    let callback = |plan: &LogicalExpr, outer: &Env<'_>| {
        evaluate_logical(plan, resolved, outer)
            .map_err(|e| AlgebraError::Unsupported(e.to_string()))
    };
    eval_scalar_with(expr, env, &callback).map_err(RuntimeError::Algebra)
}
