//! A shared wrapper-connection pool with per-source concurrency caps.
//!
//! Autonomous sources tolerate only so many simultaneous requests: a
//! mediator serving many concurrent queries must not let N sessions ×
//! M `exec` calls all hit the same repository at once.  A [`SourcePool`]
//! is shared by every executor of a serving layer and caps, per
//! repository, how many wrapper calls run concurrently.  A call beyond
//! the cap *queues*: its wrapper thread blocks before submitting, and
//! the time it spent queued is metered into the query's
//! [`ExecutionStats::source_wait`](crate::ExecutionStats) — making
//! contention for shared sources observable per query.
//!
//! The pool gates the wrapper threads spawned by
//! [`resolve_execs_streamed`](crate::resolve_execs_streamed); the
//! pipeline side is untouched.  A queued call that is cancelled (its
//! query hit the deadline, or aborted on a hard error) leaves the queue
//! promptly without ever invoking the wrapper.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// How long a queued call sleeps between cancellation checks while it
/// waits for a permit.  Condvar wakeups cut the wait short; the slice
/// only bounds how stale a cancellation check can get.
const QUEUE_POLL: Duration = Duration::from_millis(10);

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Per-repository active-call counts.
#[derive(Debug, Default)]
struct PoolState {
    active: BTreeMap<String, usize>,
}

/// A shared pool of wrapper-call slots with per-repository concurrency
/// caps.
///
/// `default_cap` applies to every repository without an explicit
/// [`SourcePool::with_cap`] override; a cap of `0` means unlimited (the
/// pre-pool behaviour: one thread per call, all submitted immediately).
///
/// # Examples
///
/// ```
/// use disco_runtime::SourcePool;
///
/// // At most 2 in-flight calls per source, except `r_legacy` which
/// // tolerates only one.
/// let pool = SourcePool::new(2).with_cap("r_legacy", 1);
/// assert_eq!(pool.cap("r_legacy"), 1);
/// assert_eq!(pool.cap("r0"), 2);
/// ```
#[derive(Debug)]
pub struct SourcePool {
    default_cap: usize,
    caps: BTreeMap<String, usize>,
    state: Mutex<PoolState>,
    freed: Condvar,
    /// Calls that had to queue (saw the cap exhausted at least once).
    queued_calls: AtomicU64,
    /// Total time calls spent queued, in microseconds.
    queued_wait_us: AtomicU64,
}

impl SourcePool {
    /// Creates a pool capping every repository at `default_cap`
    /// concurrent wrapper calls (`0` = unlimited).
    #[must_use]
    pub fn new(default_cap: usize) -> Self {
        SourcePool {
            default_cap,
            caps: BTreeMap::new(),
            state: Mutex::new(PoolState::default()),
            freed: Condvar::new(),
            queued_calls: AtomicU64::new(0),
            queued_wait_us: AtomicU64::new(0),
        }
    }

    /// Overrides the cap for one repository (`0` = unlimited).
    #[must_use]
    pub fn with_cap(mut self, repository: impl Into<String>, cap: usize) -> Self {
        self.caps.insert(repository.into(), cap);
        self
    }

    /// The effective cap for `repository`.
    #[must_use]
    pub fn cap(&self, repository: &str) -> usize {
        self.caps
            .get(repository)
            .copied()
            .unwrap_or(self.default_cap)
    }

    /// `(calls that queued, total queued time)` since the pool was
    /// created — the serving layer's contention gauge.
    #[must_use]
    pub fn queue_stats(&self) -> (u64, Duration) {
        (
            self.queued_calls.load(Ordering::Relaxed),
            Duration::from_micros(self.queued_wait_us.load(Ordering::Relaxed)),
        )
    }

    /// Acquires a call slot for `repository`, blocking while the cap is
    /// exhausted.  Returns the RAII permit and the time spent queued;
    /// `None` when `cancelled()` turned true while waiting (the permit
    /// was never taken).
    pub(crate) fn acquire(
        self: &Arc<Self>,
        repository: &str,
        cancelled: &dyn Fn() -> bool,
    ) -> (Option<PoolPermit>, Duration) {
        let cap = self.cap(repository);
        if cap == 0 {
            return (None, Duration::ZERO);
        }
        let started = Instant::now();
        let mut queued = false;
        let mut state = lock(&self.state);
        loop {
            let active = state.active.entry(repository.to_owned()).or_insert(0);
            if *active < cap {
                *active += 1;
                drop(state);
                let waited = started.elapsed();
                if queued {
                    self.queued_wait_us
                        .fetch_add(waited.as_micros() as u64, Ordering::Relaxed);
                }
                return (
                    Some(PoolPermit {
                        pool: Arc::clone(self),
                        repository: repository.to_owned(),
                    }),
                    waited,
                );
            }
            if !queued {
                queued = true;
                self.queued_calls.fetch_add(1, Ordering::Relaxed);
            }
            if cancelled() {
                self.queued_wait_us
                    .fetch_add(started.elapsed().as_micros() as u64, Ordering::Relaxed);
                return (None, started.elapsed());
            }
            let (guard, _timeout) = self
                .freed
                .wait_timeout(state, QUEUE_POLL)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
        }
    }

    fn release(&self, repository: &str) {
        {
            let mut state = lock(&self.state);
            if let Some(active) = state.active.get_mut(repository) {
                *active = active.saturating_sub(1);
            }
        }
        self.freed.notify_all();
    }
}

/// RAII guard of one acquired wrapper-call slot; dropping it releases
/// the slot and wakes queued calls.
pub(crate) struct PoolPermit {
    pool: Arc<SourcePool>,
    repository: String,
}

impl Drop for PoolPermit {
    fn drop(&mut self) {
        self.pool.release(&self.repository);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn unlimited_pool_never_queues() {
        let pool = Arc::new(SourcePool::new(0));
        let (permit, waited) = pool.acquire("r0", &|| false);
        assert!(permit.is_none());
        assert_eq!(waited, Duration::ZERO);
        assert_eq!(pool.queue_stats().0, 0);
    }

    #[test]
    fn cap_bounds_concurrency_and_meters_waits() {
        let pool = Arc::new(SourcePool::new(1));
        let peak = Arc::new(AtomicUsize::new(0));
        let active = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let peak = Arc::clone(&peak);
                let active = Arc::clone(&active);
                scope.spawn(move || {
                    let (permit, _waited) = pool.acquire("r0", &|| false);
                    assert!(permit.is_some());
                    let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(5));
                    active.fetch_sub(1, Ordering::SeqCst);
                    drop(permit);
                });
            }
        });
        assert_eq!(peak.load(Ordering::SeqCst), 1, "cap of 1 must serialize");
        let (queued, waited) = pool.queue_stats();
        assert!(queued >= 1);
        assert!(waited > Duration::ZERO);
    }

    #[test]
    fn cancelled_waiters_leave_the_queue() {
        let pool = Arc::new(SourcePool::new(1));
        let (held, _) = pool.acquire("r0", &|| false);
        assert!(held.is_some());
        let (permit, _waited) = pool.acquire("r0", &|| true);
        assert!(permit.is_none(), "a cancelled waiter must not take a slot");
        drop(held);
        let (permit, _) = pool.acquire("r0", &|| false);
        assert!(permit.is_some(), "the slot must be free again");
    }

    #[test]
    fn per_repository_overrides_apply() {
        let pool = SourcePool::new(4).with_cap("slow", 1).with_cap("bulk", 0);
        assert_eq!(pool.cap("slow"), 1);
        assert_eq!(pool.cap("bulk"), 0);
        assert_eq!(pool.cap("anything-else"), 4);
    }
}
