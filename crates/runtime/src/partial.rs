//! Partial evaluation: answers that are themselves queries (§1.3, §4).
//!
//! When some data sources have not answered by the deadline, DISCO does not
//! fail and does not silently drop data.  Instead "the query is rewritten
//! into two parts, one which contains a query to the unavailable data, and
//! the other contains the remainder of the query to be processed.  Query
//! processing proceeds until the remainder part consists only of data."
//! The answer is then `union(<residual query>, <data>)` — a legal OQL
//! expression that can be resubmitted verbatim once the sources recover.

use disco_algebra::{logical_to_oql, Env, LogicalExpr, ScalarExpr};
use disco_oql::print_expr;
use disco_value::Bag;

use crate::eval::evaluate_logical;
use crate::exec::{ExecKey, ExecOutcome, ResolvedExecs, SourceCallStats};
use crate::Result;

/// Execution statistics attached to every answer.
///
/// Counters that sum over concurrent actors (workers, wrapper calls) —
/// [`ExecutionStats::source_wait`] in particular — can exceed
/// [`ExecutionStats::elapsed`]; they measure total blocked/processed
/// quantity, not wall-clock.
#[derive(Debug, Clone, Default)]
pub struct ExecutionStats {
    /// Number of `exec` (wrapper) calls issued — one per `submit` node
    /// of the executed plan, including calls that end unavailable.
    pub exec_calls: usize,
    /// Total rows transferred from sources to the mediator: the sum of
    /// every call's delivered row count *after* the local transformation
    /// map, before any mediator-side operator drops them.  This is the
    /// quantity a row budget caps.
    pub rows_transferred: usize,
    /// Rows buffered by pipeline breakers (hash-join build side, the inner
    /// side of nested-loop joins, the distinct seen-set) while streaming
    /// the combine step.  Zero for partial answers, whose resolved
    /// subtrees are reduced piecemeal.
    pub rows_materialized: usize,
    /// Repositories classified unavailable during this execution.
    pub unavailable: Vec<String>,
    /// Wall-clock time of the whole execution.
    pub elapsed: std::time::Duration,
    /// Per-call details.
    pub source_calls: Vec<SourceCallStats>,
    /// How long after the query started the first answer row reached the
    /// final sink.  Under streamed resolution this is typically far below
    /// [`ExecutionStats::elapsed`]: fast sources' rows are combined while
    /// slow sources are still answering.  `None` for empty answers and
    /// for blocking partial evaluation (which only combines at the end).
    pub time_to_first_row: Option<std::time::Duration>,
    /// Total time the execution spent waiting on sources: combine-step
    /// workers blocked on still-streaming spools, plus — when a shared
    /// [`SourcePool`](crate::SourcePool) is configured — time wrapper
    /// calls spent queued behind a per-repository concurrency cap
    /// before being submitted.  Both components sum over their actors
    /// (workers, calls), so the total can exceed
    /// [`ExecutionStats::elapsed`] and the two components can overlap
    /// in wall-clock time.  The complement
    /// of overlap: time inside the execution window *not* spent here was
    /// useful mediator-side work.
    pub source_wait: std::time::Duration,
    /// Rows whose scalar work ran through vectorized columnar kernels
    /// (merged across workers like the other counters).  Together with
    /// [`ExecutionStats::rows_fallback`] this makes kernel coverage
    /// observable per execution.
    pub rows_kernel: usize,
    /// Rows a columnar stretch evaluated through the per-row `Env` path
    /// instead (irregular batches, expressions the kernel set does not
    /// cover at runtime).  Rows outside any columnar stretch count in
    /// neither bucket.
    pub rows_fallback: usize,
    /// Bytes written to disk by memory-budgeted operators: spilling
    /// pipeline breakers (hash join, distinct) plus the bounded pending
    /// spools.  Always 0 under the default unbounded budget.
    pub bytes_spilled: u64,
    /// Grace partition fan-outs performed by spilling breakers (8 per
    /// spill or re-split).  Always 0 under the default unbounded budget.
    pub spill_partitions: usize,
    /// High-water mark of the bytes the pipeline's memory budget had
    /// under charge.  0 when the budget is unbounded (nothing is
    /// tracked).
    pub peak_tracked_bytes: usize,
}

/// The answer to a query: data plus, when sources were unavailable, the
/// residual query over them.
#[derive(Debug, Clone)]
pub struct Answer {
    data: Bag,
    residual: Option<LogicalExpr>,
    stats: ExecutionStats,
}

impl Answer {
    /// Builds a complete answer.
    #[must_use]
    pub fn complete(data: Bag, stats: ExecutionStats) -> Self {
        Answer {
            data,
            residual: None,
            stats,
        }
    }

    /// Builds a partial answer.
    #[must_use]
    pub fn partial(data: Bag, residual: LogicalExpr, stats: ExecutionStats) -> Self {
        Answer {
            data,
            residual: Some(residual),
            stats,
        }
    }

    /// Returns `true` when every source answered and the answer is pure
    /// data.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.residual.is_none()
    }

    /// The data part of the answer.
    #[must_use]
    pub fn data(&self) -> &Bag {
        &self.data
    }

    /// The residual logical plan over the unavailable sources, if any.
    #[must_use]
    pub fn residual(&self) -> Option<&LogicalExpr> {
        self.residual.as_ref()
    }

    /// The residual query as OQL text, if any.
    #[must_use]
    pub fn residual_oql(&self) -> Option<String> {
        self.residual
            .as_ref()
            .map(|r| print_expr(&logical_to_oql(r)))
    }

    /// The whole answer as an OQL expression.
    ///
    /// A complete answer prints as a bag of its data; a partial answer
    /// prints as `union(<residual query>, bag(<data>))` — the §1.3 form,
    /// which can be resubmitted as a new query.
    #[must_use]
    pub fn as_query_text(&self) -> String {
        let data_expr = LogicalExpr::Data(self.data.clone());
        let combined = match &self.residual {
            Some(residual) => LogicalExpr::Union(vec![residual.clone(), data_expr]),
            None => data_expr,
        };
        print_expr(&logical_to_oql(&combined))
    }

    /// The repositories that were unavailable.
    #[must_use]
    pub fn unavailable_sources(&self) -> &[String] {
        &self.stats.unavailable
    }

    /// How long after the query started the first answer row reached the
    /// final sink (the streamed-resolution latency win; `None` when no
    /// row was produced before the combine finished).
    #[must_use]
    pub fn time_to_first_row(&self) -> Option<std::time::Duration> {
        self.stats.time_to_first_row
    }

    /// Execution statistics.
    #[must_use]
    pub fn stats(&self) -> &ExecutionStats {
        &self.stats
    }
}

/// Replaces every `submit` whose call succeeded with its data, both in the
/// plan and inside aggregate sub-plans carried by scalar expressions.
#[must_use]
pub fn substitute_resolved(plan: &LogicalExpr, resolved: &ResolvedExecs) -> LogicalExpr {
    let replaced = match plan {
        LogicalExpr::Submit {
            repository,
            extent,
            expr,
            ..
        } => {
            let key = ExecKey::new(repository, extent, expr);
            match resolved.outcome(&key) {
                Some(ExecOutcome::Rows(rows)) => return LogicalExpr::Data(rows.clone()),
                _ => plan.clone(),
            }
        }
        _ => plan.clone(),
    };
    // Recurse into children and into scalar sub-plans.
    let rebuilt = replaced.map_children(&|child| substitute_resolved(child, resolved));
    match rebuilt {
        LogicalExpr::Filter { input, predicate } => LogicalExpr::Filter {
            input,
            predicate: substitute_in_scalar(&predicate, resolved),
        },
        LogicalExpr::MapProject { input, projection } => LogicalExpr::MapProject {
            input,
            projection: substitute_in_scalar(&projection, resolved),
        },
        LogicalExpr::Join {
            left,
            right,
            predicate,
        } => LogicalExpr::Join {
            left,
            right,
            predicate: predicate.map(|p| substitute_in_scalar(&p, resolved)),
        },
        other => other,
    }
}

fn substitute_in_scalar(expr: &ScalarExpr, resolved: &ResolvedExecs) -> ScalarExpr {
    match expr {
        ScalarExpr::Agg(kind, plan) => {
            ScalarExpr::Agg(*kind, Box::new(substitute_resolved(plan, resolved)))
        }
        ScalarExpr::Binary { op, left, right } => ScalarExpr::Binary {
            op: *op,
            left: Box::new(substitute_in_scalar(left, resolved)),
            right: Box::new(substitute_in_scalar(right, resolved)),
        },
        ScalarExpr::Not(inner) => ScalarExpr::Not(Box::new(substitute_in_scalar(inner, resolved))),
        ScalarExpr::Field(inner, field) => ScalarExpr::Field(
            Box::new(substitute_in_scalar(inner, resolved)),
            field.clone(),
        ),
        ScalarExpr::StructLit(fields) => ScalarExpr::StructLit(
            fields
                .iter()
                .map(|(n, e)| (n.clone(), substitute_in_scalar(e, resolved)))
                .collect(),
        ),
        ScalarExpr::Call(name, args) => ScalarExpr::Call(
            name.clone(),
            args.iter()
                .map(|a| substitute_in_scalar(a, resolved))
                .collect(),
        ),
        ScalarExpr::Const(_) | ScalarExpr::Attr(_) | ScalarExpr::Var(_) => expr.clone(),
    }
}

/// Returns `true` when the plan contains no remaining source access,
/// looking inside aggregate sub-plans as well.
#[must_use]
pub fn is_fully_resolved(plan: &LogicalExpr) -> bool {
    fn scalar_resolved(expr: &ScalarExpr) -> bool {
        match expr {
            ScalarExpr::Agg(_, plan) => is_fully_resolved(plan),
            ScalarExpr::Binary { left, right, .. } => {
                scalar_resolved(left) && scalar_resolved(right)
            }
            ScalarExpr::Not(inner) | ScalarExpr::Field(inner, _) => scalar_resolved(inner),
            ScalarExpr::StructLit(fields) => fields.iter().all(|(_, e)| scalar_resolved(e)),
            ScalarExpr::Call(_, args) => args.iter().all(scalar_resolved),
            ScalarExpr::Const(_) | ScalarExpr::Attr(_) | ScalarExpr::Var(_) => true,
        }
    }
    let structurally = match plan {
        LogicalExpr::Submit { .. } | LogicalExpr::Get { .. } => false,
        LogicalExpr::Filter { predicate, .. } => scalar_resolved(predicate),
        LogicalExpr::MapProject { projection, .. } => scalar_resolved(projection),
        LogicalExpr::Join {
            predicate: Some(p), ..
        } => scalar_resolved(p),
        _ => true,
    };
    structurally && plan.children().iter().all(|c| is_fully_resolved(c))
}

/// The evaluator used to collapse fully resolved subtrees to data: the
/// streaming engine in production, the reference evaluator in the
/// differential tests.
type SubtreeEval = dyn Fn(&LogicalExpr, &ResolvedExecs, &Env<'_>) -> Result<Bag>;

/// Partially evaluates a substituted plan: every fully resolved subtree is
/// **streamed** to data through the cursor pipeline; unions separate into
/// residual branches plus one data branch; anything else keeps its
/// unresolved shape.  Plans that touch unavailable sources are never
/// opened, so partial evaluation reduces *around* unavailable-source
/// streams exactly as the materializing evaluator did.
///
/// Returns the data obtained and the residual plan (if any work remains).
///
/// # Errors
///
/// Returns evaluation errors from the resolved subtrees.
pub fn partial_evaluate(
    plan: &LogicalExpr,
    resolved: &ResolvedExecs,
) -> Result<(Bag, Option<LogicalExpr>)> {
    partial_evaluate_with(plan, resolved, &evaluate_logical)
}

/// [`partial_evaluate`] driven by the bag-at-a-time reference evaluator
/// ([`crate::reference`]) instead of the streaming engine.
///
/// Exists so the differential test-suite can assert that both engines
/// produce identical partial answers (data *and* residual); production
/// code should call [`partial_evaluate`].
///
/// # Errors
///
/// See [`partial_evaluate`].
pub fn partial_evaluate_reference(
    plan: &LogicalExpr,
    resolved: &ResolvedExecs,
) -> Result<(Bag, Option<LogicalExpr>)> {
    partial_evaluate_with(plan, resolved, &crate::reference::evaluate_logical)
}

/// [`partial_evaluate`] with explicit [`crate::PipelineOptions`]: fully
/// resolved subtrees stream through the (possibly parallel) engine with
/// these options, while the residual-plan construction — which never
/// evaluates anything — is untouched, so residual plans are identical at
/// every thread count.
///
/// # Errors
///
/// See [`partial_evaluate`].
pub fn partial_evaluate_opts(
    plan: &LogicalExpr,
    resolved: &ResolvedExecs,
    options: crate::PipelineOptions,
) -> Result<(Bag, Option<LogicalExpr>)> {
    let eval = move |plan: &LogicalExpr, resolved: &ResolvedExecs, outer: &Env<'_>| {
        let metrics = crate::PipelineMetrics::new();
        crate::pipeline::evaluate_logical_streamed(plan, resolved, outer, &metrics, options)
    };
    partial_evaluate_with(plan, resolved, &eval)
}

fn partial_evaluate_with(
    plan: &LogicalExpr,
    resolved: &ResolvedExecs,
    eval: &SubtreeEval,
) -> Result<(Bag, Option<LogicalExpr>)> {
    let reduced = reduce(plan, resolved, eval)?;
    match reduced {
        LogicalExpr::Data(bag) => Ok((bag, None)),
        LogicalExpr::Union(items) => {
            let mut data = Bag::new();
            let mut residual_items = Vec::new();
            for item in items {
                match item {
                    LogicalExpr::Data(bag) => data.extend(bag),
                    other => residual_items.push(other),
                }
            }
            let residual = match residual_items.len() {
                0 => None,
                1 => Some(residual_items.into_iter().next().expect("one item")),
                _ => Some(LogicalExpr::Union(residual_items)),
            };
            Ok((data, residual))
        }
        other => Ok((Bag::new(), Some(other))),
    }
}

/// Bottom-up reduction: fully resolved subtrees collapse to `Data`.
fn reduce(plan: &LogicalExpr, resolved: &ResolvedExecs, eval: &SubtreeEval) -> Result<LogicalExpr> {
    if is_fully_resolved(plan) {
        let bag = eval(plan, resolved, &Env::root())?;
        return Ok(LogicalExpr::Data(bag));
    }
    match plan {
        LogicalExpr::Union(items) => {
            let mut reduced_items = Vec::with_capacity(items.len());
            let mut data = Bag::new();
            for item in items {
                match reduce(item, resolved, eval)? {
                    LogicalExpr::Data(bag) => data.extend(bag),
                    other => reduced_items.push(other),
                }
            }
            if !data.is_empty() || reduced_items.is_empty() {
                reduced_items.push(LogicalExpr::Data(data));
            }
            Ok(LogicalExpr::Union(reduced_items))
        }
        other => {
            // Reduce children where possible but keep this operator: it
            // still depends on an unavailable source.  Children are reduced
            // first (propagating errors), then spliced back in order.
            let reduced_children: Vec<LogicalExpr> = other
                .children()
                .into_iter()
                .map(|child| reduce(child, resolved, eval))
                .collect::<Result<_>>()?;
            let index = std::cell::Cell::new(0usize);
            let rebuilt = other.map_children(&|_child| {
                let i = index.get();
                index.set(i + 1);
                reduced_children[i].clone()
            });
            Ok(rebuilt)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecOutcome, SourceCallStats};
    use disco_algebra::{data_of, ScalarOp};
    use disco_value::{StructValue, Value};

    fn person(name: &str, salary: i64) -> Value {
        Value::Struct(
            StructValue::new(vec![
                ("name", Value::from(name)),
                ("salary", Value::Int(salary)),
            ])
            .unwrap(),
        )
    }

    /// Builds the paper's two-source plan and a resolution where r0 is
    /// unavailable and r1 answered with Sam.
    fn paper_scenario() -> (LogicalExpr, ResolvedExecs) {
        let branch = |extent: &str, repo: &str| {
            LogicalExpr::get(extent)
                .submit(repo, "w0", extent)
                .filter(ScalarExpr::binary(
                    ScalarOp::Gt,
                    ScalarExpr::attr("salary"),
                    ScalarExpr::constant(10i64),
                ))
                .bind("y")
                .map_project(ScalarExpr::var_field("y", "name"))
        };
        let plan = LogicalExpr::Union(vec![branch("person0", "r0"), branch("person1", "r1")]);
        let mut resolved = ResolvedExecs::default();
        resolved.insert(
            ExecKey::new("r0", "person0", &LogicalExpr::get("person0")),
            ExecOutcome::Unavailable,
            SourceCallStats {
                repository: "r0".into(),
                extent: "person0".into(),
                available: false,
                rows_returned: 0,
                rows_scanned: 0,
                latency: std::time::Duration::ZERO,
            },
        );
        resolved.insert(
            ExecKey::new("r1", "person1", &LogicalExpr::get("person1")),
            ExecOutcome::Rows([person("Sam", 50)].into_iter().collect()),
            SourceCallStats {
                repository: "r1".into(),
                extent: "person1".into(),
                available: true,
                rows_returned: 1,
                rows_scanned: 1,
                latency: std::time::Duration::from_millis(1),
            },
        );
        (plan, resolved)
    }

    #[test]
    fn substitution_replaces_only_available_sources() {
        let (plan, resolved) = paper_scenario();
        let substituted = substitute_resolved(&plan, &resolved);
        assert_eq!(substituted.collect_submits().len(), 1);
        assert!(!is_fully_resolved(&substituted));
    }

    #[test]
    fn partial_evaluation_produces_the_paper_partial_answer() {
        let (plan, resolved) = paper_scenario();
        let substituted = substitute_resolved(&plan, &resolved);
        let (data, residual) = partial_evaluate(&substituted, &resolved).unwrap();
        assert_eq!(data, [Value::from("Sam")].into_iter().collect());
        let residual = residual.expect("residual query over r0");
        let text = print_expr(&logical_to_oql(&residual));
        assert_eq!(text, "select y.name from y in person0 where y.salary > 10");
        // The combined answer is the §1.3 form.
        let answer = Answer::partial(
            data,
            residual,
            ExecutionStats {
                unavailable: vec!["r0".into()],
                ..ExecutionStats::default()
            },
        );
        assert!(!answer.is_complete());
        assert_eq!(
            answer.as_query_text(),
            "union(select y.name from y in person0 where y.salary > 10, bag(\"Sam\"))"
        );
        assert_eq!(answer.unavailable_sources(), &["r0".to_owned()]);
    }

    #[test]
    fn fully_available_plans_collapse_to_data() {
        let (plan, mut resolved) = {
            let (plan, _) = paper_scenario();
            (plan, ResolvedExecs::default())
        };
        resolved.insert(
            ExecKey::new("r0", "person0", &LogicalExpr::get("person0")),
            ExecOutcome::Rows([person("Mary", 200)].into_iter().collect()),
            SourceCallStats {
                repository: "r0".into(),
                extent: "person0".into(),
                available: true,
                rows_returned: 1,
                rows_scanned: 1,
                latency: std::time::Duration::ZERO,
            },
        );
        resolved.insert(
            ExecKey::new("r1", "person1", &LogicalExpr::get("person1")),
            ExecOutcome::Rows([person("Sam", 50)].into_iter().collect()),
            SourceCallStats {
                repository: "r1".into(),
                extent: "person1".into(),
                available: true,
                rows_returned: 1,
                rows_scanned: 1,
                latency: std::time::Duration::ZERO,
            },
        );
        let substituted = substitute_resolved(&plan, &resolved);
        assert!(is_fully_resolved(&substituted));
        let (data, residual) = partial_evaluate(&substituted, &resolved).unwrap();
        assert!(residual.is_none());
        assert_eq!(
            data,
            [Value::from("Mary"), Value::from("Sam")]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn complete_answers_print_as_data() {
        let answer = Answer::complete(
            [Value::from("Mary"), Value::from("Sam")]
                .into_iter()
                .collect(),
            ExecutionStats::default(),
        );
        assert!(answer.is_complete());
        assert_eq!(answer.as_query_text(), "bag(\"Mary\", \"Sam\")");
        assert!(answer.residual_oql().is_none());
    }

    #[test]
    fn join_touching_unavailable_source_stays_residual() {
        // A mediator join where one side is unavailable cannot produce data;
        // the whole join is residual.
        let left = LogicalExpr::get("person0")
            .submit("r0", "w0", "person0")
            .bind("x");
        let right = LogicalExpr::Data([person("Sam", 50)].into_iter().collect()).bind("y");
        let plan = LogicalExpr::Join {
            left: Box::new(left),
            right: Box::new(right),
            predicate: Some(ScalarExpr::binary(
                ScalarOp::Eq,
                ScalarExpr::var_field("x", "name"),
                ScalarExpr::var_field("y", "name"),
            )),
        }
        .map_project(ScalarExpr::var_field("x", "name"));
        let resolved = ResolvedExecs::default();
        let (data, residual) = partial_evaluate(&plan, &resolved).unwrap();
        assert!(data.is_empty());
        assert!(residual.is_some());
    }

    #[test]
    fn data_only_unions_have_no_residual() {
        let plan = LogicalExpr::Union(vec![data_of(["a"]), data_of(["b"])]);
        let (data, residual) = partial_evaluate(&plan, &ResolvedExecs::default()).unwrap();
        assert_eq!(data.len(), 2);
        assert!(residual.is_none());
    }
}
