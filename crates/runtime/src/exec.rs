//! Resolution of `exec` calls: the runtime's interface to wrappers (§3.3,
//! §4).
//!
//! Every `exec` node of a physical plan names a repository, a wrapper and
//! an extent, and carries the logical expression to ship.  The runtime
//! issues all calls **in parallel**; calls to available sources succeed,
//! calls to unavailable sources block; "after a designated time period,
//! query evaluation stops" and the sources that have not answered are
//! classified unavailable.
//!
//! For every finished call the arguments, the time taken and the amount of
//! data generated are recorded into the calibration store, feeding the
//! self-calibrating cost model.

use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use disco_algebra::{LogicalExpr, PhysicalExpr};
use disco_catalog::Catalog;
use disco_optimizer::CalibrationStore;
use disco_value::Bag;
use disco_wrapper::{
    check_type_conformance, expected_after_expr, map_expr_to_source, map_rows_to_mediator,
    WrapperError, WrapperRegistry,
};

use crate::{Result, RuntimeError};

/// Identity of one `exec` call (used to de-duplicate identical calls and to
/// join results back into the plan).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ExecKey {
    /// Repository name.
    pub repository: String,
    /// Extent name.
    pub extent: String,
    /// Display form of the shipped (mediator name space) expression.
    pub expr: String,
}

impl ExecKey {
    /// Builds the key for an `exec` / `submit` node.
    #[must_use]
    pub fn new(repository: &str, extent: &str, expr: &LogicalExpr) -> Self {
        ExecKey {
            repository: repository.to_owned(),
            extent: extent.to_owned(),
            expr: expr.to_string(),
        }
    }
}

/// The outcome of one `exec` call.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// The source answered with rows (already renamed into the mediator
    /// name space).
    Rows(Bag),
    /// The source did not answer (unavailable, or still blocked at the
    /// deadline).
    Unavailable,
}

/// Statistics of one `exec` call, for traces and experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceCallStats {
    /// Repository name.
    pub repository: String,
    /// Extent accessed.
    pub extent: String,
    /// Whether the source answered.
    pub available: bool,
    /// Rows returned to the mediator (data transferred).
    pub rows_returned: usize,
    /// Rows the source scanned to answer.
    pub rows_scanned: usize,
    /// Latency of the call (simulated network + source time).
    pub latency: Duration,
}

/// Configuration of a plan execution.
#[derive(Debug, Clone)]
pub struct ExecutionConfig {
    /// The "designated time period" after which unanswered sources are
    /// classified unavailable and partial evaluation kicks in.
    pub deadline: Option<Duration>,
    /// Record finished calls into the calibration store.
    pub calibration: Option<Arc<CalibrationStore>>,
    /// Worker threads for the mediator-side combine step (the
    /// morsel-driven parallel engine).  `0` (the default) defers to the
    /// `DISCO_THREADS` environment variable; `1` is the serial path.
    /// This is independent of the wrapper calls, which are always issued
    /// in parallel (one thread per source call).
    pub threads: usize,
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        ExecutionConfig {
            deadline: Some(Duration::from_millis(500)),
            calibration: None,
            threads: 0,
        }
    }
}

/// The resolved `exec` calls of one plan execution.
#[derive(Debug, Clone, Default)]
pub struct ResolvedExecs {
    outcomes: BTreeMap<ExecKey, ExecOutcome>,
    stats: Vec<SourceCallStats>,
}

impl ResolvedExecs {
    /// Looks up the outcome for one call.
    #[must_use]
    pub fn outcome(&self, key: &ExecKey) -> Option<&ExecOutcome> {
        self.outcomes.get(key)
    }

    /// Returns `true` when every call succeeded.
    #[must_use]
    pub fn all_available(&self) -> bool {
        self.outcomes
            .values()
            .all(|o| matches!(o, ExecOutcome::Rows(_)))
    }

    /// The repositories that did not answer, sorted and de-duplicated.
    #[must_use]
    pub fn unavailable_repositories(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .outcomes
            .iter()
            .filter(|(_, o)| matches!(o, ExecOutcome::Unavailable))
            .map(|(k, _)| k.repository.clone())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Per-call statistics.
    #[must_use]
    pub fn stats(&self) -> &[SourceCallStats] {
        &self.stats
    }

    /// Total rows transferred from sources to the mediator.
    #[must_use]
    pub fn rows_transferred(&self) -> usize {
        self.stats.iter().map(|s| s.rows_returned).sum()
    }

    /// Number of `exec` calls issued.
    #[must_use]
    pub fn call_count(&self) -> usize {
        self.stats.len()
    }

    /// Inserts an outcome (used by tests and by the executor).
    pub fn insert(&mut self, key: ExecKey, outcome: ExecOutcome, stats: SourceCallStats) {
        self.outcomes.insert(key, outcome);
        self.stats.push(stats);
    }
}

/// Collects the distinct `exec` calls of a physical plan, including those
/// nested inside correlated-aggregate sub-plans.
#[must_use]
pub fn collect_exec_calls(plan: &PhysicalExpr) -> Vec<(ExecKey, String, LogicalExpr)> {
    let mut out: Vec<(ExecKey, String, LogicalExpr)> = Vec::new();
    let mut push = |repository: &str, wrapper: &str, extent: &str, logical: &LogicalExpr| {
        let key = ExecKey::new(repository, extent, logical);
        if !out.iter().any(|(k, _, _)| *k == key) {
            out.push((key, wrapper.to_owned(), logical.clone()));
        }
    };
    plan.walk(&mut |node| {
        if let PhysicalExpr::Exec {
            repository,
            wrapper,
            extent,
            logical,
        } = node
        {
            push(repository, wrapper, extent, logical);
            // Sub-plans inside the shipped expression never contain submits
            // (they are pushable operators only), but the *mediator-side*
            // operators above may carry aggregate sub-plans; those are
            // handled below.
        }
    });
    // Aggregate sub-plans hide further submits inside scalar expressions.
    let logical = plan.to_logical();
    collect_submits_in_scalars(&logical, &mut |repository, wrapper, extent, inner| {
        push(repository, wrapper, extent, inner);
    });
    out
}

/// Walks a logical plan and reports every `submit` reachable only through
/// scalar aggregate sub-plans.
fn collect_submits_in_scalars<F>(plan: &LogicalExpr, report: &mut F)
where
    F: FnMut(&str, &str, &str, &LogicalExpr),
{
    fn walk_scalar<F>(expr: &disco_algebra::ScalarExpr, report: &mut F)
    where
        F: FnMut(&str, &str, &str, &LogicalExpr),
    {
        use disco_algebra::ScalarExpr as S;
        match expr {
            S::Agg(_, plan) => walk_plan(plan, report),
            S::Binary { left, right, .. } => {
                walk_scalar(left, report);
                walk_scalar(right, report);
            }
            S::Not(inner) | S::Field(inner, _) => walk_scalar(inner, report),
            S::StructLit(fields) => {
                for (_, e) in fields {
                    walk_scalar(e, report);
                }
            }
            S::Call(_, args) => {
                for a in args {
                    walk_scalar(a, report);
                }
            }
            S::Const(_) | S::Attr(_) | S::Var(_) => {}
        }
    }
    fn walk_plan<F>(plan: &LogicalExpr, report: &mut F)
    where
        F: FnMut(&str, &str, &str, &LogicalExpr),
    {
        if let LogicalExpr::Submit {
            repository,
            wrapper,
            extent,
            expr,
        } = plan
        {
            report(repository, wrapper, extent, expr);
        }
        match plan {
            LogicalExpr::Filter { predicate, .. } => walk_scalar(predicate, report),
            LogicalExpr::MapProject { projection, .. } => walk_scalar(projection, report),
            LogicalExpr::Join {
                predicate: Some(p), ..
            } => walk_scalar(p, report),
            _ => {}
        }
        for child in plan.children() {
            walk_plan(child, report);
        }
    }
    walk_plan(plan, report);
}

/// Issues every `exec` call of the plan in parallel and gathers outcomes,
/// applying the extent's transformation map in both directions and the
/// run-time type check.
///
/// # Errors
///
/// Hard wrapper errors (capability violations, type conflicts, unknown
/// tables) abort the execution; unavailability does not.
pub fn resolve_execs(
    plan: &PhysicalExpr,
    registry: &WrapperRegistry,
    catalog: &Catalog,
    config: &ExecutionConfig,
) -> Result<ResolvedExecs> {
    let calls = collect_exec_calls(plan);
    let mut resolved = ResolvedExecs::default();
    if calls.is_empty() {
        return Ok(resolved);
    }

    enum CallResult {
        Ok {
            rows: Bag,
            rows_scanned: usize,
            latency: Duration,
        },
        Unavailable,
        Failed(WrapperError),
    }

    let (tx, rx) = mpsc::channel::<(usize, CallResult, f64)>();
    let mut handles = Vec::new();
    let mut call_meta = Vec::new();

    for (index, (key, wrapper_name, shipped)) in calls.iter().enumerate() {
        let extent_meta = catalog.extent(&key.extent)?.clone();
        let expected: Vec<String> = catalog
            .attributes_of(extent_meta.interface())?
            .iter()
            .map(|a| a.name().to_owned())
            .collect();
        let expected = expected_after_expr(shipped, &expected);
        let wrapper = registry
            .wrapper(wrapper_name)
            .ok_or_else(|| RuntimeError::UnknownWrapper(wrapper_name.clone()))?;
        let map = extent_meta.map().clone();
        let shipped = shipped.clone();
        let key_clone = key.clone();
        let tx = tx.clone();
        call_meta.push((key.clone(), key_clone.extent.clone()));
        let handle = std::thread::spawn(move || {
            let started = Instant::now();
            let source_expr = map_expr_to_source(&shipped, &map);
            let outcome = match wrapper.submit(&source_expr) {
                Ok(answer) => {
                    let rows = map_rows_to_mediator(&answer.rows, &map);
                    match check_type_conformance(&rows, &expected, &key_clone.extent) {
                        Ok(()) => CallResult::Ok {
                            rows,
                            rows_scanned: answer.rows_scanned,
                            latency: answer.latency,
                        },
                        Err(err) => CallResult::Failed(err),
                    }
                }
                Err(WrapperError::Unavailable { .. }) => CallResult::Unavailable,
                Err(other) => CallResult::Failed(other),
            };
            let elapsed_ms = started.elapsed().as_secs_f64() * 1000.0;
            // The receiver may have given up at the deadline; ignore send errors.
            let _ = tx.send((index, outcome, elapsed_ms));
        });
        handles.push(handle);
    }
    drop(tx);

    let deadline_at = config.deadline.map(|d| Instant::now() + d);
    let mut received: BTreeMap<usize, (CallResult, f64)> = BTreeMap::new();
    loop {
        if received.len() == calls.len() {
            break;
        }
        let timeout = match deadline_at {
            Some(at) => {
                let now = Instant::now();
                if now >= at {
                    break;
                }
                at - now
            }
            None => Duration::from_secs(3600),
        };
        match rx.recv_timeout(timeout) {
            Ok((index, outcome, elapsed_ms)) => {
                received.insert(index, (outcome, elapsed_ms));
            }
            Err(mpsc::RecvTimeoutError::Timeout) => break,
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }

    for (index, (key, _, shipped)) in calls.iter().enumerate() {
        match received.remove(&index) {
            Some((
                CallResult::Ok {
                    rows,
                    rows_scanned,
                    latency,
                },
                elapsed_ms,
            )) => {
                if let Some(store) = &config.calibration {
                    // Record both the wall-clock elapsed time and the
                    // simulated latency — the simulated latency dominates.
                    let time_ms = latency.as_secs_f64() * 1000.0 + elapsed_ms.min(1.0);
                    store.record(&key.repository, shipped, time_ms, rows.len());
                }
                let stats = SourceCallStats {
                    repository: key.repository.clone(),
                    extent: key.extent.clone(),
                    available: true,
                    rows_returned: rows.len(),
                    rows_scanned,
                    latency,
                };
                resolved.insert(key.clone(), ExecOutcome::Rows(rows), stats);
            }
            Some((CallResult::Unavailable, _)) | None => {
                let stats = SourceCallStats {
                    repository: key.repository.clone(),
                    extent: key.extent.clone(),
                    available: false,
                    rows_returned: 0,
                    rows_scanned: 0,
                    latency: Duration::ZERO,
                };
                resolved.insert(key.clone(), ExecOutcome::Unavailable, stats);
            }
            Some((CallResult::Failed(err), _)) => return Err(RuntimeError::Wrapper(err)),
        }
    }
    Ok(resolved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_algebra::lower;
    use disco_catalog::{Attribute, InterfaceDef, MetaExtent, Repository, TypeRef, WrapperDef};
    use disco_source::{generator, NetworkProfile, RelationalStore, SimulatedLink};
    use disco_wrapper::RelationalWrapper;

    fn setup() -> (Catalog, WrapperRegistry) {
        let mut catalog = Catalog::new();
        catalog
            .define_interface(
                InterfaceDef::new("Person")
                    .with_extent_name("person")
                    .with_attribute(Attribute::new("id", TypeRef::Int))
                    .with_attribute(Attribute::new("name", TypeRef::String))
                    .with_attribute(Attribute::new("salary", TypeRef::Int)),
            )
            .unwrap();
        catalog
            .add_wrapper(WrapperDef::new("w0", "relational"))
            .unwrap();
        catalog.add_repository(Repository::new("r0")).unwrap();
        catalog.add_repository(Repository::new("r1")).unwrap();
        catalog
            .add_extent(MetaExtent::new("person0", "Person", "w0", "r0"))
            .unwrap();
        catalog
            .add_extent(MetaExtent::new("person1", "Person", "w0", "r1"))
            .unwrap();

        let registry = WrapperRegistry::new();
        let store = std::sync::Arc::new(RelationalStore::new());
        store.put_table(generator::person_table("person0", 10, 0, 1));
        store.put_table(generator::person_table("person1", 10, 1, 1));
        let link = std::sync::Arc::new(SimulatedLink::new("r0", NetworkProfile::fast(), 1));
        registry.register(std::sync::Arc::new(RelationalWrapper::new(
            "w0", store, link,
        )));
        (catalog, registry)
    }

    fn union_plan() -> PhysicalExpr {
        lower(&LogicalExpr::Union(vec![
            LogicalExpr::get("person0").submit("r0", "w0", "person0"),
            LogicalExpr::get("person1").submit("r1", "w0", "person1"),
        ]))
        .unwrap()
    }

    #[test]
    fn all_calls_resolve_in_parallel() {
        let (catalog, registry) = setup();
        let resolved = resolve_execs(
            &union_plan(),
            &registry,
            &catalog,
            &ExecutionConfig::default(),
        )
        .unwrap();
        assert!(resolved.all_available());
        assert_eq!(resolved.call_count(), 2);
        assert_eq!(resolved.rows_transferred(), 20);
        assert!(resolved.unavailable_repositories().is_empty());
    }

    #[test]
    fn calibration_records_each_call() {
        let (catalog, registry) = setup();
        let store = Arc::new(CalibrationStore::new());
        let config = ExecutionConfig {
            deadline: None,
            calibration: Some(Arc::clone(&store)),
            ..ExecutionConfig::default()
        };
        resolve_execs(&union_plan(), &registry, &catalog, &config).unwrap();
        assert_eq!(store.exact_shapes(), 2);
    }

    #[test]
    fn unknown_wrapper_is_a_hard_error() {
        let (catalog, registry) = setup();
        let plan =
            lower(&LogicalExpr::get("person0").submit("r0", "w_missing", "person0")).unwrap();
        let err =
            resolve_execs(&plan, &registry, &catalog, &ExecutionConfig::default()).unwrap_err();
        assert!(matches!(err, RuntimeError::UnknownWrapper(_)));
    }

    #[test]
    fn duplicate_exec_calls_are_issued_once() {
        let (catalog, registry) = setup();
        let plan = lower(&LogicalExpr::Union(vec![
            LogicalExpr::get("person0").submit("r0", "w0", "person0"),
            LogicalExpr::get("person0").submit("r0", "w0", "person0"),
        ]))
        .unwrap();
        let resolved =
            resolve_execs(&plan, &registry, &catalog, &ExecutionConfig::default()).unwrap();
        assert_eq!(resolved.call_count(), 1);
    }

    #[test]
    fn collect_exec_calls_sees_aggregate_subplans() {
        use disco_algebra::{AggKind, ScalarExpr};
        let logical = LogicalExpr::get("person0")
            .submit("r0", "w0", "person0")
            .bind("x")
            .map_project(ScalarExpr::Agg(
                AggKind::Sum,
                Box::new(LogicalExpr::get("person1").submit("r1", "w0", "person1")),
            ));
        let plan = lower(&logical).unwrap();
        let calls = collect_exec_calls(&plan);
        assert_eq!(
            calls.len(),
            2,
            "both the outer and the nested submit are seen"
        );
    }
}
