//! Resolution of `exec` calls: the runtime's interface to wrappers (§3.3,
//! §4).
//!
//! Every `exec` node of a physical plan names a repository, a wrapper and
//! an extent, and carries the logical expression to ship.  The runtime
//! issues all calls **in parallel**; calls to available sources succeed,
//! calls to unavailable sources block; "after a designated time period,
//! query evaluation stops" and the sources that have not answered are
//! classified unavailable.
//!
//! # Streamed resolution
//!
//! [`resolve_execs_streamed`] returns immediately: every call becomes a
//! [`PendingSource`] — a spool the wrapper thread fills with mapped,
//! type-checked row chunks while the cursor pipeline is already pulling
//! through [`crate::pipeline`]'s pending scans.  The slowest repository
//! no longer gates the start of the combine step.  At the execution
//! deadline, spools that are still streaming flip to unavailable, the
//! wrapper call is cancelled (so a timed-out call does not keep running
//! detached in the background), and the executor falls back to the same
//! partial evaluation the blocking path performs.
//!
//! [`resolve_execs`] — the blocking form — is now a thin driver over the
//! streamed one: spawn every call, then wait for all spools (bounded by
//! the deadline) and finalize them into materialized outcomes, so both
//! paths share one classification and cancellation logic.
//!
//! For every finished call the arguments, the time taken and the amount of
//! data generated are recorded into the calibration store, feeding the
//! self-calibrating cost model.

use std::collections::BTreeMap;
use std::fs::File;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use disco_algebra::{LogicalExpr, PhysicalExpr};
use disco_catalog::{Catalog, TypeMap};
use disco_optimizer::CalibrationStore;
use disco_value::{approx_value_bytes, Bag, Value};
use disco_wrapper::{
    check_type_conformance, expected_after_expr, map_expr_to_source, map_rows_to_mediator,
    AnswerSink, Wrapper, WrapperError, WrapperRegistry,
};

use crate::pipeline::spill::{self, SpillFile};
use crate::pipeline::{AdaptiveMode, MemBudget};
use crate::pool::SourcePool;
use crate::{Result, RuntimeError};

/// Locks a mutex, ignoring poisoning (the guarded state stays consistent:
/// producers never panic while holding the lock, and a contained wrapper
/// panic is surfaced separately as `WorkerPanic`).
fn lock<T>(mutex: &StdMutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Identity of one `exec` call (used to de-duplicate identical calls and to
/// join results back into the plan).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ExecKey {
    /// Repository name.
    pub repository: String,
    /// Extent name.
    pub extent: String,
    /// Display form of the shipped (mediator name space) expression.
    pub expr: String,
}

impl ExecKey {
    /// Builds the key for an `exec` / `submit` node.
    #[must_use]
    pub fn new(repository: &str, extent: &str, expr: &LogicalExpr) -> Self {
        ExecKey {
            repository: repository.to_owned(),
            extent: extent.to_owned(),
            expr: expr.to_string(),
        }
    }
}

/// The outcome of one `exec` call.
#[derive(Debug, Clone)]
pub enum ExecOutcome {
    /// The source answered with rows (already renamed into the mediator
    /// name space).
    Rows(Bag),
    /// The source did not answer (unavailable, or still blocked at the
    /// deadline).
    Unavailable,
    /// The call is still streaming: the wrapper thread pushes mapped,
    /// type-checked row chunks into the [`PendingSource`] spool while the
    /// pipeline pulls.  Finalization
    /// ([`ResolvedExecs::finalize_streamed`]) turns this into
    /// [`ExecOutcome::Rows`] or [`ExecOutcome::Unavailable`].
    Pending(Arc<PendingSource>),
}

impl PartialEq for ExecOutcome {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ExecOutcome::Rows(a), ExecOutcome::Rows(b)) => a == b,
            (ExecOutcome::Unavailable, ExecOutcome::Unavailable) => true,
            (ExecOutcome::Pending(a), ExecOutcome::Pending(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// How the executor resolves `exec` calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResolutionMode {
    /// Wrapper answers stream into the combine step as they arrive
    /// (chunk-level overlap of source latency and mediator work).  The
    /// production default.
    #[default]
    Streamed,
    /// Wait for every wrapper call (bounded by the deadline) before the
    /// combine step starts — the pre-streaming behaviour, kept for
    /// differential testing and A/B measurement.
    Blocking,
}

/// Shared wakeup channel of one streamed resolution: every spool bumps the
/// generation and notifies on any progress (chunk arrival or terminal
/// status), so consumers waiting on *any* source (a union polling its
/// branches) park on one condition variable.
pub(crate) struct ResolutionEvents {
    generation: StdMutex<u64>,
    arrived: Condvar,
    deadline: Option<Instant>,
}

impl std::fmt::Debug for ResolutionEvents {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResolutionEvents")
            .field("generation", &*lock(&self.generation))
            .field("deadline", &self.deadline)
            .finish()
    }
}

impl ResolutionEvents {
    pub(crate) fn new(deadline: Option<Instant>) -> Self {
        ResolutionEvents {
            generation: StdMutex::new(0),
            arrived: Condvar::new(),
            deadline,
        }
    }

    /// The current generation; read **before** inspecting spool state so
    /// that [`ResolutionEvents::wait_after`] cannot miss a wakeup.
    pub(crate) fn generation(&self) -> u64 {
        *lock(&self.generation)
    }

    /// Whether the execution deadline has already passed.
    pub(crate) fn deadline_passed(&self) -> bool {
        self.deadline.is_some_and(|at| Instant::now() >= at)
    }

    fn notify(&self) {
        *lock(&self.generation) += 1;
        self.arrived.notify_all();
    }

    /// Blocks until the generation moves past `seen` (some source made
    /// progress) or the deadline passes; returns `false` on deadline.
    pub(crate) fn wait_after(&self, seen: u64) -> bool {
        let mut generation = lock(&self.generation);
        loop {
            if *generation != seen {
                return true;
            }
            match self.deadline {
                None => {
                    generation = self
                        .arrived
                        .wait(generation)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                Some(at) => {
                    let now = Instant::now();
                    if now >= at {
                        return false;
                    }
                    let (guard, _timeout) = self
                        .arrived
                        .wait_timeout(generation, at - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    generation = guard;
                }
            }
        }
    }
}

/// Terminal or in-flight state of one streamed call.
#[derive(Debug)]
enum SpoolStatus {
    /// The wrapper is still producing chunks.
    Streaming,
    /// Every chunk arrived; the summary fields below are valid.
    Done,
    /// The wrapper reported unavailability (or the deadline expired while
    /// the call was still streaming).
    Unavailable,
    /// A hard wrapper error (capability violation, type conflict, …).
    Failed(WrapperError),
    /// The wrapper call panicked; contained via `catch_unwind`.
    Panicked(String),
}

/// What a consumer observed when asking a spool for progress.
#[derive(Debug)]
pub(crate) enum Progress {
    /// New rows past the consumer's read index.
    Rows(Vec<Value>),
    /// The stream completed and the read index is at the end.
    Done,
    /// The source is unavailable (reported, or deadline-flipped).
    Unavailable,
    /// Hard wrapper error.
    Failed(WrapperError),
    /// The wrapper call panicked.
    Panicked(String),
    /// A spilled spool chunk could not be read back from disk.
    SpillError(String),
}

/// One chunk of spool rows moved to the disk tier.
struct DiskChunk {
    /// Absolute index of the chunk's first row in the full stream.
    start_row: usize,
    /// Rows in the chunk.
    rows: usize,
    /// Byte offset of the chunk in the spill file.
    offset: u64,
    /// Serialized length in bytes.
    len: usize,
}

/// The disk tier of a budget-bounded spool: the oldest rows, chunked into
/// one delete-on-drop spill file.  Chunks cover `[0, base)` of the stream
/// contiguously; the hot `rows` vector holds `[base, total)`.
struct SpoolSpill {
    _guard: SpillFile,
    file: File,
    chunks: Vec<DiskChunk>,
    /// Index of the first chunk not wholly below the high-water mark.
    unread_idx: usize,
    /// Serialized bytes in chunks at or past `unread_idx` — what the
    /// producer's backpressure loop compares against its cap.
    unread_bytes: usize,
    /// Highest absolute row index any consumer has been served past.
    high_water: usize,
    /// Total bytes ever written to the tier (metrics).
    bytes_spilled: u64,
}

impl SpoolSpill {
    /// Advances the high-water mark; returns `true` when that retired
    /// chunks from the unread window (worth waking a blocked producer).
    fn advance_high_water(&mut self, served_to: usize) -> bool {
        if served_to > self.high_water {
            self.high_water = served_to;
        }
        let mut freed = false;
        while let Some(chunk) = self.chunks.get(self.unread_idx) {
            if chunk.start_row + chunk.rows > self.high_water {
                break;
            }
            self.unread_bytes -= chunk.len;
            self.unread_idx += 1;
            freed = true;
        }
        freed
    }
}

struct SpoolState {
    /// The hot window: rows `[base, base + rows.len())` of the stream.
    rows: Vec<Value>,
    /// Absolute index of `rows[0]`; rows below it live in the disk tier.
    base: usize,
    /// Approximate payload bytes of the hot window.
    hot_bytes: usize,
    spill: Option<SpoolSpill>,
    /// Set after a spill write failure: stop spilling, keep rows hot.
    spill_dead: bool,
    /// Set by finalizers ([`PendingSource::await_len`] /
    /// `final_outcome`): they block until the call *completes*, so the
    /// producer must not be throttled on their behalf — the disk tier
    /// then grows as needed while RAM stays bounded by the hot window.
    unthrottled: bool,
    status: SpoolStatus,
    rows_scanned: usize,
    latency: Duration,
}

impl SpoolState {
    /// Total rows of the stream so far (disk tier + hot window).
    fn total_rows(&self) -> usize {
        self.base + self.rows.len()
    }

    /// Moves the oldest hot rows to the disk tier until the hot window is
    /// at half its cap (hysteresis: fewer, larger chunks).  On a write
    /// failure the tier is marked dead and rows stay in memory.
    fn spill_front(&mut self, hot_cap: usize) {
        if self.spill_dead {
            return;
        }
        let target = hot_cap / 2;
        let mut k = 0usize;
        let mut freed = 0usize;
        while self.hot_bytes - freed > target && k < self.rows.len() {
            freed += approx_value_bytes(&self.rows[k]);
            k += 1;
        }
        if k == 0 {
            return;
        }
        if self.spill.is_none() {
            match SpillFile::create() {
                Ok((guard, file)) => {
                    self.spill = Some(SpoolSpill {
                        _guard: guard,
                        file,
                        chunks: Vec::new(),
                        unread_idx: 0,
                        unread_bytes: 0,
                        high_water: 0,
                        bytes_spilled: 0,
                    });
                }
                Err(err) => {
                    self.spill_dead = true;
                    eprintln!("disco: spool spill unavailable ({err}); keeping rows in memory");
                    return;
                }
            }
        }
        let encoded = spill::encode_rows(&self.rows[..k]);
        let tier = self.spill.as_mut().expect("opened above");
        match spill::append_chunk(&mut tier.file, &encoded) {
            Ok(offset) => {
                tier.chunks.push(DiskChunk {
                    start_row: self.base,
                    rows: k,
                    offset,
                    len: encoded.len(),
                });
                tier.unread_bytes += encoded.len();
                tier.bytes_spilled += encoded.len() as u64;
                // The chunk may already be below the high-water mark (a
                // consumer outran the producer); retire it immediately.
                tier.advance_high_water(tier.high_water);
                self.rows.drain(..k);
                self.base += k;
                self.hot_bytes -= freed;
            }
            Err(err) => {
                self.spill_dead = true;
                eprintln!("disco: spool spill write failed ({err}); keeping rows in memory");
            }
        }
    }

    /// Serves rows starting at an absolute index that was spilled.
    fn read_spilled(&mut self, from: usize, max: usize) -> Progress {
        let Some(tier) = self.spill.as_mut() else {
            return Progress::SpillError("spool disk tier missing".to_owned());
        };
        let found = tier.chunks.binary_search_by(|c| {
            if from < c.start_row {
                std::cmp::Ordering::Greater
            } else if from >= c.start_row + c.rows {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        });
        let Ok(idx) = found else {
            return Progress::SpillError(format!("spool spill chunk for row {from} missing"));
        };
        let chunk = &tier.chunks[idx];
        let decoded = spill::read_chunk(&mut tier.file, chunk.offset, chunk.len)
            .and_then(|buf| spill::decode_rows(&buf, chunk.rows));
        match decoded {
            Ok(rows) => {
                let lo = from - chunk.start_row;
                let end = (lo + max.max(1)).min(rows.len());
                Progress::Rows(rows[lo..end].to_vec())
            }
            Err(err) => Progress::SpillError(format!("reading spool spill chunk: {err}")),
        }
    }

    /// Reassembles the full stream (disk tier in order, then the hot
    /// window) for final materialization.
    fn take_all_rows(&mut self) -> std::result::Result<Vec<Value>, String> {
        let hot = std::mem::take(&mut self.rows);
        let Some(tier) = self.spill.as_mut() else {
            return Ok(hot);
        };
        let mut all = Vec::with_capacity(self.base + hot.len());
        for chunk in &tier.chunks {
            let rows = spill::read_chunk(&mut tier.file, chunk.offset, chunk.len)
                .and_then(|buf| spill::decode_rows(&buf, chunk.rows))
                .map_err(|e| format!("reading spool spill chunk: {e}"))?;
            all.extend(rows);
        }
        all.extend(hot);
        Ok(all)
    }
}

/// Byte caps of a budget-bounded spool.
struct SpoolCaps {
    /// Hot-window cap: above it the oldest rows move to disk.
    hot: usize,
    /// Unread-disk cap: above it the producer blocks until a consumer
    /// catches up (or a finalizer unthrottles the spool).
    disk: usize,
}

impl SpoolCaps {
    fn from_budget(budget: Option<usize>) -> Option<SpoolCaps> {
        budget.map(|b| SpoolCaps {
            hot: (b / 4).max(1),
            disk: b.max(1),
        })
    }
}

/// A channel-backed *pending answer*: the spool one wrapper thread fills
/// with mapped, type-checked rows while any number of pipeline cursors
/// read it (each with its own read index — duplicate scans of the same
/// `exec` key share one call, exactly as in blocking resolution).
pub struct PendingSource {
    repository: String,
    extent: String,
    events: Arc<ResolutionEvents>,
    /// Set at the deadline (or on hard failure): tells the wrapper call to
    /// stop producing — the fix for timed-out calls running detached
    /// forever in the background.
    cancel: AtomicBool,
    /// `Some` under a bounded memory budget: the spool becomes a hybrid
    /// memory/disk buffer with a bounded hot window, and the producer
    /// backpressures when the unread disk tier exceeds its cap.
    caps: Option<SpoolCaps>,
    /// Time this call spent queued behind a [`SourcePool`] cap before
    /// its wrapper was invoked, in microseconds; folded into the
    /// query's `source_wait` at finalization.
    queue_wait_us: AtomicU64,
    state: StdMutex<SpoolState>,
}

impl std::fmt::Debug for PendingSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = lock(&self.state);
        f.debug_struct("PendingSource")
            .field("repository", &self.repository)
            .field("extent", &self.extent)
            .field("rows", &state.rows.len())
            .field("status", &state.status)
            .finish()
    }
}

impl PendingSource {
    fn new(
        repository: String,
        extent: String,
        events: Arc<ResolutionEvents>,
        budget: Option<usize>,
    ) -> Self {
        PendingSource {
            repository,
            extent,
            events,
            cancel: AtomicBool::new(false),
            caps: SpoolCaps::from_budget(budget),
            queue_wait_us: AtomicU64::new(0),
            state: StdMutex::new(SpoolState {
                rows: Vec::new(),
                base: 0,
                hot_bytes: 0,
                spill: None,
                spill_dead: false,
                unthrottled: false,
                status: SpoolStatus::Streaming,
                rows_scanned: 0,
                latency: Duration::ZERO,
            }),
        }
    }

    /// The repository this call targets.
    #[must_use]
    pub fn repository(&self) -> &str {
        &self.repository
    }

    /// Whether the consumer side disconnected (deadline or hard error).
    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Disconnects the wrapper call: it observes cancellation at its next
    /// chunk boundary (or sleep slice) and returns.
    pub(crate) fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
        self.events.notify();
    }

    /// Producer side: appends one chunk; `false` when cancelled.
    ///
    /// Under a bounded budget this is also the backpressure point: when
    /// the unread disk tier exceeds its cap the wrapper thread *blocks*
    /// here until a consumer catches up, a finalizer unthrottles the
    /// spool, the call is cancelled, or the deadline passes (which
    /// reports cancellation, matching the unavailable classification the
    /// consumer side is about to apply).
    fn push_chunk(&self, mut rows: Vec<Value>) -> bool {
        if self.is_cancelled() {
            return false;
        }
        let Some(caps) = &self.caps else {
            {
                let mut state = lock(&self.state);
                state.rows.append(&mut rows);
            }
            self.events.notify();
            return !self.is_cancelled();
        };
        loop {
            let seen = self.events.generation();
            if self.is_cancelled() {
                return false;
            }
            let throttled = {
                let state = lock(&self.state);
                !state.unthrottled
                    && state
                        .spill
                        .as_ref()
                        .is_some_and(|tier| tier.unread_bytes > caps.disk)
            };
            if !throttled {
                break;
            }
            if !self.events.wait_after(seen) {
                return false;
            }
        }
        {
            let mut state = lock(&self.state);
            state.hot_bytes += rows.iter().map(approx_value_bytes).sum::<usize>();
            state.rows.append(&mut rows);
            if state.hot_bytes > caps.hot {
                state.spill_front(caps.hot);
            }
        }
        self.events.notify();
        !self.is_cancelled()
    }

    /// Records how long the call waited for a [`SourcePool`] permit.
    fn note_queue_wait(&self, waited: Duration) {
        self.queue_wait_us
            .store(waited.as_micros() as u64, Ordering::Relaxed);
    }

    /// Time the call spent queued behind a connection-pool cap.
    pub(crate) fn queue_wait(&self) -> Duration {
        Duration::from_micros(self.queue_wait_us.load(Ordering::Relaxed))
    }

    /// Bytes this spool has written to its disk tier.
    pub(crate) fn spilled_bytes(&self) -> u64 {
        lock(&self.state)
            .spill
            .as_ref()
            .map_or(0, |tier| tier.bytes_spilled)
    }

    /// Disables producer backpressure: called by the finalizers, which
    /// wait for *completion* — throttling the producer on their behalf
    /// would deadlock.  RAM stays bounded by the hot window; the disk
    /// tier grows as needed.
    fn unthrottle(&self) {
        {
            let mut state = lock(&self.state);
            if state.unthrottled {
                return;
            }
            state.unthrottled = true;
        }
        self.events.notify();
    }

    /// Producer side: sets a terminal status.
    fn finish(&self, status: SpoolStatus) {
        {
            let mut state = lock(&self.state);
            // A deadline flip to `Unavailable` is sticky: a call finishing
            // after it was classified unavailable stays unavailable, like
            // an answer arriving after the blocking path's deadline.
            if matches!(state.status, SpoolStatus::Streaming) {
                state.status = status;
            }
        }
        self.events.notify();
    }

    fn finish_done(&self, rows_scanned: usize, latency: Duration) {
        {
            let mut state = lock(&self.state);
            if matches!(state.status, SpoolStatus::Streaming) {
                state.rows_scanned = rows_scanned;
                state.latency = latency;
                state.status = SpoolStatus::Done;
            }
        }
        self.events.notify();
    }

    /// Interrupts the call from the consumer side (a parallel phase
    /// aborting on another worker's failure): same classification as a
    /// deadline overrun, so waiters blocked on this spool wake promptly
    /// and the wrapper call winds down.
    pub(crate) fn interrupt(&self) {
        self.timeout();
    }

    /// Classifies a deadline overrun: a still-streaming spool flips to
    /// unavailable and the wrapper call is cancelled.
    fn timeout(&self) {
        {
            let mut state = lock(&self.state);
            if matches!(state.status, SpoolStatus::Streaming) {
                state.status = SpoolStatus::Unavailable;
            }
        }
        self.cancel();
    }

    /// Whether a consumer at read index `from` can make progress without
    /// blocking (rows available, or a terminal status to report).
    pub(crate) fn ready(&self, from: usize) -> bool {
        let state = lock(&self.state);
        state.total_rows() > from || !matches!(state.status, SpoolStatus::Streaming)
    }

    /// Row count so far (tests and diagnostics).
    #[must_use]
    pub fn rows_arrived(&self) -> usize {
        lock(&self.state).total_rows()
    }

    /// Non-blocking final-length probe: `Some(total rows)` only when the
    /// wrapper call has already completed successfully, `None` while it
    /// is still streaming (or after a failure).  The adaptive hash-join
    /// build side uses this to start building on whichever side answered
    /// first instead of blocking on the final spool length.
    #[must_use]
    pub fn finished_len(&self) -> Option<usize> {
        let state = lock(&self.state);
        match state.status {
            SpoolStatus::Done => Some(state.total_rows()),
            _ => None,
        }
    }

    /// The one wait loop every consumer goes through: blocks until
    /// `inspect` yields a value, with the missed-wakeup protocol (read
    /// the event generation *before* inspecting state) and one deadline
    /// policy point — once the deadline passes, a still-streaming spool
    /// is classified unavailable and its wrapper call cancelled *before*
    /// the next inspection, whether the consumer was blocked or keeping
    /// pace with arriving chunks.  §4's "query evaluation stops" applies
    /// even to a source that trickles just fast enough to never block
    /// its consumer, exactly as in blocking resolution.
    fn wait_until<T>(&self, mut inspect: impl FnMut(&mut SpoolState) -> Option<T>) -> T {
        loop {
            let seen = self.events.generation();
            if self.events.deadline_passed() {
                self.timeout();
            }
            {
                let mut state = lock(&self.state);
                if let Some(out) = inspect(&mut state) {
                    return out;
                }
            }
            if !self.events.wait_after(seen) {
                self.timeout();
            }
        }
    }

    /// Blocks until progress past `from` (bounded by the deadline, which
    /// flips the spool unavailable), returning at most `max` rows and the
    /// time spent in the call.
    pub(crate) fn wait_rows(&self, from: usize, max: usize) -> (Progress, Duration) {
        let started = Instant::now();
        let progress = self.wait_until(|state| {
            // Terminal failures win over buffered rows: once the source
            // is classified unavailable (deadline or reported), its data
            // is residual — stop feeding the pipeline immediately.
            match &state.status {
                SpoolStatus::Unavailable => return Some(Progress::Unavailable),
                SpoolStatus::Failed(err) => return Some(Progress::Failed(err.clone())),
                SpoolStatus::Panicked(msg) => return Some(Progress::Panicked(msg.clone())),
                SpoolStatus::Streaming | SpoolStatus::Done => {}
            }
            if state.total_rows() > from {
                let progress = if from >= state.base {
                    let lo = from - state.base;
                    let end = (lo + max.max(1)).min(state.rows.len());
                    Progress::Rows(state.rows[lo..end].to_vec())
                } else {
                    // Row `from` was moved to the disk tier.
                    state.read_spilled(from, max)
                };
                if let Progress::Rows(rows) = &progress {
                    let served_to = from + rows.len();
                    if state
                        .spill
                        .as_mut()
                        .is_some_and(|tier| tier.advance_high_water(served_to))
                    {
                        // Retired unread chunks: a producer blocked on the
                        // disk cap can make progress again.
                        self.events.notify();
                    }
                }
                return Some(progress);
            }
            match state.status {
                SpoolStatus::Done => Some(Progress::Done),
                _ => None,
            }
        });
        (progress, started.elapsed())
    }

    /// Blocks until the call completes (bounded by the deadline) and
    /// returns its final row count — `None` when it did not complete.
    /// Used for hash-join build-side estimation, so the build/probe
    /// orientation (and with it `rows_materialized`) is identical to the
    /// blocking path's.
    pub(crate) fn await_len(&self) -> Option<usize> {
        self.unthrottle();
        self.wait_until(|state| match &state.status {
            SpoolStatus::Streaming => None,
            SpoolStatus::Done => Some(Some(state.total_rows())),
            _ => Some(None),
        })
    }

    /// Waits for a terminal status and renders the final outcome + stats.
    fn final_outcome(&self) -> (ExecOutcome, SourceCallStats, Option<RuntimeError>) {
        self.unthrottle();
        let (outcome, available, error) = self.wait_until(|state| match &state.status {
            SpoolStatus::Streaming => None,
            SpoolStatus::Done => match state.take_all_rows() {
                Ok(rows) => Some((ExecOutcome::Rows(Bag::from(rows)), true, None)),
                Err(msg) => Some((
                    ExecOutcome::Unavailable,
                    false,
                    Some(RuntimeError::Spill(msg)),
                )),
            },
            SpoolStatus::Unavailable => Some((ExecOutcome::Unavailable, false, None)),
            SpoolStatus::Failed(err) => Some((
                ExecOutcome::Unavailable,
                false,
                Some(RuntimeError::Wrapper(err.clone())),
            )),
            SpoolStatus::Panicked(msg) => Some((
                ExecOutcome::Unavailable,
                false,
                Some(RuntimeError::WorkerPanic(msg.clone())),
            )),
        });
        let (rows_returned, rows_scanned, latency) = {
            let state = lock(&self.state);
            match &outcome {
                ExecOutcome::Rows(rows) => (rows.len(), state.rows_scanned, state.latency),
                _ => (0, 0, Duration::ZERO),
            }
        };
        let stats = SourceCallStats {
            repository: self.repository.clone(),
            extent: self.extent.clone(),
            available,
            rows_returned,
            rows_scanned,
            latency,
        };
        (outcome, stats, error)
    }
}

/// Statistics of one `exec` call, for traces and experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceCallStats {
    /// Repository name.
    pub repository: String,
    /// Extent accessed.
    pub extent: String,
    /// Whether the source answered.
    pub available: bool,
    /// Rows returned to the mediator (data transferred).
    pub rows_returned: usize,
    /// Rows the source scanned to answer.
    pub rows_scanned: usize,
    /// Latency of the call (simulated network + source time).
    pub latency: Duration,
}

/// Configuration of a plan execution.
#[derive(Debug, Clone)]
pub struct ExecutionConfig {
    /// The "designated time period" after which unanswered sources are
    /// classified unavailable and partial evaluation kicks in.
    pub deadline: Option<Duration>,
    /// Record finished calls into the calibration store.
    pub calibration: Option<Arc<CalibrationStore>>,
    /// Worker threads for the mediator-side combine step (the
    /// morsel-driven parallel engine).  `0` (the default) defers to the
    /// `DISCO_THREADS` environment variable; `1` is the serial path.
    /// This is independent of the wrapper calls, which are always issued
    /// in parallel (one thread per source call).
    pub threads: usize,
    /// Whether wrapper answers stream into the combine step as they
    /// arrive ([`ResolutionMode::Streamed`], the default) or the combine
    /// step waits for every call ([`ResolutionMode::Blocking`]).
    pub resolution: ResolutionMode,
    /// Memory budget for the execution ([`MemBudget::Auto`], the
    /// default, defers to `DISCO_MEM_BUDGET`).  Bounded budgets make
    /// every [`PendingSource`] spool a hybrid memory/disk buffer and are
    /// forwarded to the pipeline's spilling breakers.
    pub mem_budget: MemBudget,
    /// Shared wrapper-connection pool gating the wrapper-call threads.
    /// `None` (the default) spawns every call unqueued; a serving layer
    /// shares one [`SourcePool`] across all its executors so per-source
    /// concurrency caps apply across concurrent queries.  Time a call
    /// spends queued is metered into the query's `source_wait`.
    pub source_pool: Option<Arc<SourcePool>>,
    /// Cap on the total rows transferred from sources to this query.
    /// Once the budget is exhausted, the still-streaming wrapper calls
    /// are cancelled through the same path a deadline takes: their
    /// spools flip to unavailable and the query completes as a partial
    /// answer whose residual re-fetches the cancelled sources.  `None`
    /// (the default) is unlimited.
    pub row_budget: Option<usize>,
    /// Heterogeneity-aware scheduling: speed-proportional morsel
    /// claiming and adaptive hash-join build-side selection.
    /// [`AdaptiveMode::Auto`] (the default) defers to the
    /// `DISCO_ADAPTIVE` environment variable.
    pub adaptive: AdaptiveMode,
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        ExecutionConfig {
            deadline: Some(Duration::from_millis(500)),
            calibration: None,
            threads: 0,
            resolution: ResolutionMode::default(),
            mem_budget: MemBudget::default(),
            source_pool: None,
            row_budget: None,
            adaptive: AdaptiveMode::default(),
        }
    }
}

/// Shared row budget of one query: every spool's sink charges the rows
/// it pushes against the same counter, so the cap applies to the query's
/// total transfer, not per source.
#[derive(Debug)]
pub(crate) struct RowBudget {
    limit: usize,
    used: AtomicUsize,
}

impl RowBudget {
    fn new(limit: usize) -> Self {
        RowBudget {
            limit,
            used: AtomicUsize::new(0),
        }
    }

    /// Charges `rows` against the budget; `false` when the budget is
    /// exhausted (the chunk must not be delivered).
    fn charge(&self, rows: usize) -> bool {
        let before = self.used.fetch_add(rows, Ordering::Relaxed);
        before.saturating_add(rows) <= self.limit
    }
}

/// The resolved `exec` calls of one plan execution.
///
/// Entries are either materialized ([`ExecOutcome::Rows`] /
/// [`ExecOutcome::Unavailable`], with stats recorded) or *pending*
/// ([`ExecOutcome::Pending`]): spools still being filled by wrapper
/// threads.  [`ResolvedExecs::finalize_streamed`] waits (bounded by the
/// execution deadline) and materializes every pending entry.
#[derive(Debug, Clone, Default)]
pub struct ResolvedExecs {
    outcomes: BTreeMap<ExecKey, ExecOutcome>,
    stats: Vec<SourceCallStats>,
    /// Pending entries in call-collection order, so finalized stats keep
    /// the order the blocking path records.
    pending_order: Vec<ExecKey>,
    /// The shared wakeup channel of a streamed resolution.
    events: Option<Arc<ResolutionEvents>>,
    /// Bytes the pending spools spilled to disk (bounded hot windows),
    /// accumulated at finalization.
    spool_bytes_spilled: u64,
    /// Time the calls spent queued behind a [`SourcePool`] cap,
    /// accumulated at finalization and folded into `source_wait`.
    queue_wait: Duration,
}

impl ResolvedExecs {
    /// The shared event channel, when this resolution is streamed.
    pub(crate) fn events(&self) -> Option<&Arc<ResolutionEvents>> {
        self.events.as_ref()
    }

    /// Whether any entry is still a pending (streaming) spool.
    #[must_use]
    pub fn has_pending(&self) -> bool {
        self.outcomes
            .values()
            .any(|o| matches!(o, ExecOutcome::Pending(_)))
    }

    /// Disconnects every pending wrapper call (used when an execution
    /// aborts on a hard error): each call observes cancellation at its
    /// next chunk boundary and winds down instead of running detached.
    pub fn cancel_pending(&self) {
        for outcome in self.outcomes.values() {
            if let ExecOutcome::Pending(source) = outcome {
                source.cancel();
            }
        }
    }

    /// Waits (bounded by the execution deadline) for every pending spool
    /// and materializes it: completed calls become [`ExecOutcome::Rows`]
    /// with stats, everything else — including calls still streaming at
    /// the deadline, which are cancelled — becomes
    /// [`ExecOutcome::Unavailable`], exactly the classification the
    /// blocking path applies.
    ///
    /// # Errors
    ///
    /// Returns the first hard wrapper error or contained wrapper panic,
    /// after cancelling the remaining calls.
    pub fn finalize_streamed(&mut self) -> Result<()> {
        let keys = std::mem::take(&mut self.pending_order);
        let mut failure: Option<RuntimeError> = None;
        for key in keys {
            let Some(ExecOutcome::Pending(source)) = self.outcomes.get(&key) else {
                continue;
            };
            let source = Arc::clone(source);
            if failure.is_some() {
                // Already failing: disconnect instead of waiting.
                source.cancel();
                self.spool_bytes_spilled += source.spilled_bytes();
                self.queue_wait += source.queue_wait();
                self.outcomes.insert(key, ExecOutcome::Unavailable);
                continue;
            }
            let (outcome, stats, error) = source.final_outcome();
            self.spool_bytes_spilled += source.spilled_bytes();
            self.queue_wait += source.queue_wait();
            self.outcomes.insert(key, outcome);
            self.stats.push(stats);
            if let Some(error) = error {
                failure = Some(error);
            }
        }
        match failure {
            Some(error) => Err(error),
            None => Ok(()),
        }
    }
    /// Looks up the outcome for one call.
    #[must_use]
    pub fn outcome(&self, key: &ExecKey) -> Option<&ExecOutcome> {
        self.outcomes.get(key)
    }

    /// Returns `true` when every call succeeded.
    #[must_use]
    pub fn all_available(&self) -> bool {
        self.outcomes
            .values()
            .all(|o| matches!(o, ExecOutcome::Rows(_)))
    }

    /// The repositories that did not answer, sorted and de-duplicated.
    #[must_use]
    pub fn unavailable_repositories(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .outcomes
            .iter()
            .filter(|(_, o)| matches!(o, ExecOutcome::Unavailable))
            .map(|(k, _)| k.repository.clone())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Per-call statistics.
    #[must_use]
    pub fn stats(&self) -> &[SourceCallStats] {
        &self.stats
    }

    /// Bytes the streamed spools spilled to disk under a bounded memory
    /// budget (0 when unbounded, or before finalization).
    #[must_use]
    pub fn spool_bytes_spilled(&self) -> u64 {
        self.spool_bytes_spilled
    }

    /// Time the wrapper calls spent queued behind a [`SourcePool`]
    /// concurrency cap (zero without a pool, or before finalization).
    /// The executor folds this into `ExecutionStats::source_wait`; like
    /// the per-call waits it sums over calls, so it can exceed the
    /// query's wall-clock time.
    #[must_use]
    pub fn source_queue_wait(&self) -> Duration {
        self.queue_wait
    }

    /// Total rows transferred from sources to the mediator.
    #[must_use]
    pub fn rows_transferred(&self) -> usize {
        self.stats.iter().map(|s| s.rows_returned).sum()
    }

    /// Number of `exec` calls issued.
    #[must_use]
    pub fn call_count(&self) -> usize {
        self.stats.len()
    }

    /// Inserts an outcome (used by tests and by the executor).
    pub fn insert(&mut self, key: ExecKey, outcome: ExecOutcome, stats: SourceCallStats) {
        self.outcomes.insert(key, outcome);
        self.stats.push(stats);
    }
}

/// Collects the distinct `exec` calls of a physical plan, including those
/// nested inside correlated-aggregate sub-plans.
#[must_use]
pub fn collect_exec_calls(plan: &PhysicalExpr) -> Vec<(ExecKey, String, LogicalExpr)> {
    let mut out: Vec<(ExecKey, String, LogicalExpr)> = Vec::new();
    let mut push = |repository: &str, wrapper: &str, extent: &str, logical: &LogicalExpr| {
        let key = ExecKey::new(repository, extent, logical);
        if !out.iter().any(|(k, _, _)| *k == key) {
            out.push((key, wrapper.to_owned(), logical.clone()));
        }
    };
    plan.walk(&mut |node| {
        if let PhysicalExpr::Exec {
            repository,
            wrapper,
            extent,
            logical,
        } = node
        {
            push(repository, wrapper, extent, logical);
            // Sub-plans inside the shipped expression never contain submits
            // (they are pushable operators only), but the *mediator-side*
            // operators above may carry aggregate sub-plans; those are
            // handled below.
        }
    });
    // Aggregate sub-plans hide further submits inside scalar expressions.
    let logical = plan.to_logical();
    collect_submits_in_scalars(&logical, &mut |repository, wrapper, extent, inner| {
        push(repository, wrapper, extent, inner);
    });
    out
}

/// Walks a logical plan and reports every `submit` reachable only through
/// scalar aggregate sub-plans.
fn collect_submits_in_scalars<F>(plan: &LogicalExpr, report: &mut F)
where
    F: FnMut(&str, &str, &str, &LogicalExpr),
{
    fn walk_scalar<F>(expr: &disco_algebra::ScalarExpr, report: &mut F)
    where
        F: FnMut(&str, &str, &str, &LogicalExpr),
    {
        use disco_algebra::ScalarExpr as S;
        match expr {
            S::Agg(_, plan) => walk_plan(plan, report),
            S::Binary { left, right, .. } => {
                walk_scalar(left, report);
                walk_scalar(right, report);
            }
            S::Not(inner) | S::Field(inner, _) => walk_scalar(inner, report),
            S::StructLit(fields) => {
                for (_, e) in fields {
                    walk_scalar(e, report);
                }
            }
            S::Call(_, args) => {
                for a in args {
                    walk_scalar(a, report);
                }
            }
            S::Const(_) | S::Attr(_) | S::Var(_) => {}
        }
    }
    fn walk_plan<F>(plan: &LogicalExpr, report: &mut F)
    where
        F: FnMut(&str, &str, &str, &LogicalExpr),
    {
        if let LogicalExpr::Submit {
            repository,
            wrapper,
            extent,
            expr,
        } = plan
        {
            report(repository, wrapper, extent, expr);
        }
        match plan {
            LogicalExpr::Filter { predicate, .. } => walk_scalar(predicate, report),
            LogicalExpr::MapProject { projection, .. } => walk_scalar(projection, report),
            LogicalExpr::Join {
                predicate: Some(p), ..
            } => walk_scalar(p, report),
            _ => {}
        }
        for child in plan.children() {
            walk_plan(child, report);
        }
    }
    walk_plan(plan, report);
}

/// Issues every `exec` call of the plan in parallel and waits for all of
/// them (bounded by the deadline) before returning materialized outcomes
/// — the blocking form, implemented as [`resolve_execs_streamed`] followed
/// by [`ResolvedExecs::finalize_streamed`] so both paths share one
/// classification and cancellation logic.
///
/// # Errors
///
/// Hard wrapper errors (capability violations, type conflicts, unknown
/// tables) abort the execution; unavailability does not.
pub fn resolve_execs(
    plan: &PhysicalExpr,
    registry: &WrapperRegistry,
    catalog: &Catalog,
    config: &ExecutionConfig,
) -> Result<ResolvedExecs> {
    let mut resolved = resolve_execs_streamed(plan, registry, catalog, config)?;
    resolved.finalize_streamed()?;
    Ok(resolved)
}

/// One spawned wrapper call, ready to run on its own thread.
struct PreparedCall {
    key: ExecKey,
    shipped: LogicalExpr,
    wrapper: Arc<dyn Wrapper>,
    map: TypeMap,
    expected: Vec<String>,
}

/// Issues every `exec` call of the plan in parallel and returns
/// immediately: each entry of the result is a [`PendingSource`] spool that
/// the wrapper thread fills with mapped, type-checked row chunks while the
/// pipeline pulls (§4's "designated time period" moves into the stream —
/// at the deadline, still-streaming spools flip to unavailable and the
/// call is cancelled).
///
/// # Errors
///
/// Catalog and registry lookups fail before any thread is spawned;
/// wrapper-side errors surface later, through the spools.
pub fn resolve_execs_streamed(
    plan: &PhysicalExpr,
    registry: &WrapperRegistry,
    catalog: &Catalog,
    config: &ExecutionConfig,
) -> Result<ResolvedExecs> {
    let calls = collect_exec_calls(plan);
    let mut resolved = ResolvedExecs::default();
    if calls.is_empty() {
        return Ok(resolved);
    }

    // Look everything up before spawning anything, so a hard lookup error
    // never leaves half the calls running.
    let mut prepared = Vec::with_capacity(calls.len());
    for (key, wrapper_name, shipped) in calls {
        let extent_meta = catalog.extent(&key.extent)?.clone();
        let expected: Vec<String> = catalog
            .attributes_of(extent_meta.interface())?
            .iter()
            .map(|a| a.name().to_owned())
            .collect();
        let expected = expected_after_expr(&shipped, &expected);
        let wrapper = registry
            .wrapper(&wrapper_name)
            .ok_or_else(|| RuntimeError::UnknownWrapper(wrapper_name.clone()))?;
        prepared.push(PreparedCall {
            key,
            shipped,
            wrapper,
            map: extent_meta.map().clone(),
            expected,
        });
    }

    let deadline_at = config.deadline.map(|d| Instant::now() + d);
    let events = Arc::new(ResolutionEvents::new(deadline_at));
    resolved.events = Some(Arc::clone(&events));
    let spool_budget = config.mem_budget.resolve();
    // One budget shared by every call of this query: the cap bounds the
    // total transfer, not each source individually.
    let row_budget = config
        .row_budget
        .map(|limit| Arc::new(RowBudget::new(limit)));
    for call in prepared {
        let source = Arc::new(PendingSource::new(
            call.key.repository.clone(),
            call.key.extent.clone(),
            Arc::clone(&events),
            spool_budget,
        ));
        resolved.pending_order.push(call.key.clone());
        resolved
            .outcomes
            .insert(call.key.clone(), ExecOutcome::Pending(Arc::clone(&source)));
        let calibration = config.calibration.clone();
        let pool = config.source_pool.clone();
        let budget = row_budget.clone();
        std::thread::spawn(move || {
            // Gate the call through the shared connection pool before the
            // wrapper sees it.  The permit is held for the whole call.
            let mut _permit = None;
            if let Some(pool) = &pool {
                if pool.cap(&call.key.repository) > 0 {
                    let (permit, waited) =
                        pool.acquire(&call.key.repository, &|| source.is_cancelled());
                    source.note_queue_wait(waited);
                    match permit {
                        Some(permit) => _permit = Some(permit),
                        None => {
                            // Cancelled while queued (deadline or abort):
                            // never invoke the wrapper.
                            source.finish(SpoolStatus::Unavailable);
                            return;
                        }
                    }
                }
            }
            run_wrapper_call(&source, call, calibration.as_deref(), budget.as_deref());
        });
    }
    Ok(resolved)
}

/// The [`AnswerSink`] a wrapper call streams into: chunks are renamed into
/// the mediator name space, type-checked, and appended to the spool.
struct SpoolSink<'a> {
    spool: &'a PendingSource,
    map: &'a TypeMap,
    expected: &'a [String],
    extent: &'a str,
    /// The query-wide row budget; a chunk that exhausts it trips the
    /// spool to unavailable instead of being delivered.
    budget: Option<&'a RowBudget>,
    /// A per-chunk type-conformance failure, reported after the call.
    conformance: Option<WrapperError>,
    rows_pushed: usize,
}

impl AnswerSink for SpoolSink<'_> {
    fn push(&mut self, rows: Bag) -> bool {
        if self.conformance.is_some() {
            return false;
        }
        let mapped = map_rows_to_mediator(&rows, self.map);
        if let Err(err) = check_type_conformance(&mapped, self.expected, self.extent) {
            self.conformance = Some(err);
            return false;
        }
        if let Some(budget) = self.budget {
            if !budget.charge(mapped.len()) {
                // Budget exhausted: cancel this call through the same
                // sticky-unavailable path a deadline takes, so the query
                // completes as a partial answer with a residual.
                self.spool.timeout();
                return false;
            }
        }
        self.rows_pushed += mapped.len();
        self.spool.push_chunk(mapped.into_values())
    }

    fn is_cancelled(&self) -> bool {
        self.spool.is_cancelled()
    }
}

/// Body of one wrapper-call thread: stream the answer into the spool,
/// contain panics, and record the finished call into the calibration
/// store.
fn run_wrapper_call(
    spool: &PendingSource,
    call: PreparedCall,
    calibration: Option<&CalibrationStore>,
    budget: Option<&RowBudget>,
) {
    let started = Instant::now();
    let source_expr = map_expr_to_source(&call.shipped, &call.map);
    let mut sink = SpoolSink {
        spool,
        map: &call.map,
        expected: &call.expected,
        extent: &call.key.extent,
        budget,
        conformance: None,
        rows_pushed: 0,
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        call.wrapper.submit_streaming(&source_expr, &mut sink)
    }));
    let elapsed_ms = started.elapsed().as_secs_f64() * 1000.0;
    let rows_pushed = sink.rows_pushed;
    let conformance = sink.conformance.take();
    match outcome {
        Err(payload) => spool.finish(SpoolStatus::Panicked(
            crate::pipeline::parallel::panic_message(&*payload),
        )),
        Ok(_) if conformance.is_some() => {
            spool.finish(SpoolStatus::Failed(conformance.expect("checked")));
        }
        Ok(Ok(summary)) => {
            if !spool.is_cancelled() {
                if let Some(store) = calibration {
                    // Record both the wall-clock elapsed time and the
                    // simulated latency — the simulated latency dominates.
                    let time_ms = summary.latency.as_secs_f64() * 1000.0 + elapsed_ms.min(1.0);
                    store.record(&call.key.repository, &call.shipped, time_ms, rows_pushed);
                }
            }
            spool.finish_done(summary.rows_scanned, summary.latency);
        }
        Ok(Err(WrapperError::Unavailable { .. })) => spool.finish(SpoolStatus::Unavailable),
        Ok(Err(other)) => spool.finish(SpoolStatus::Failed(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_algebra::lower;
    use disco_catalog::{Attribute, InterfaceDef, MetaExtent, Repository, TypeRef, WrapperDef};
    use disco_source::{generator, NetworkProfile, RelationalStore, SimulatedLink};
    use disco_wrapper::RelationalWrapper;

    fn setup() -> (Catalog, WrapperRegistry) {
        let mut catalog = Catalog::new();
        catalog
            .define_interface(
                InterfaceDef::new("Person")
                    .with_extent_name("person")
                    .with_attribute(Attribute::new("id", TypeRef::Int))
                    .with_attribute(Attribute::new("name", TypeRef::String))
                    .with_attribute(Attribute::new("salary", TypeRef::Int)),
            )
            .unwrap();
        catalog
            .add_wrapper(WrapperDef::new("w0", "relational"))
            .unwrap();
        catalog.add_repository(Repository::new("r0")).unwrap();
        catalog.add_repository(Repository::new("r1")).unwrap();
        catalog
            .add_extent(MetaExtent::new("person0", "Person", "w0", "r0"))
            .unwrap();
        catalog
            .add_extent(MetaExtent::new("person1", "Person", "w0", "r1"))
            .unwrap();

        let registry = WrapperRegistry::new();
        let store = std::sync::Arc::new(RelationalStore::new());
        store.put_table(generator::person_table("person0", 10, 0, 1));
        store.put_table(generator::person_table("person1", 10, 1, 1));
        let link = std::sync::Arc::new(SimulatedLink::new("r0", NetworkProfile::fast(), 1));
        registry.register(std::sync::Arc::new(RelationalWrapper::new(
            "w0", store, link,
        )));
        (catalog, registry)
    }

    fn union_plan() -> PhysicalExpr {
        lower(&LogicalExpr::Union(vec![
            LogicalExpr::get("person0").submit("r0", "w0", "person0"),
            LogicalExpr::get("person1").submit("r1", "w0", "person1"),
        ]))
        .unwrap()
    }

    #[test]
    fn all_calls_resolve_in_parallel() {
        let (catalog, registry) = setup();
        let resolved = resolve_execs(
            &union_plan(),
            &registry,
            &catalog,
            &ExecutionConfig::default(),
        )
        .unwrap();
        assert!(resolved.all_available());
        assert_eq!(resolved.call_count(), 2);
        assert_eq!(resolved.rows_transferred(), 20);
        assert!(resolved.unavailable_repositories().is_empty());
    }

    #[test]
    fn calibration_records_each_call() {
        let (catalog, registry) = setup();
        let store = Arc::new(CalibrationStore::new());
        let config = ExecutionConfig {
            deadline: None,
            calibration: Some(Arc::clone(&store)),
            ..ExecutionConfig::default()
        };
        resolve_execs(&union_plan(), &registry, &catalog, &config).unwrap();
        assert_eq!(store.exact_shapes(), 2);
    }

    #[test]
    fn unknown_wrapper_is_a_hard_error() {
        let (catalog, registry) = setup();
        let plan =
            lower(&LogicalExpr::get("person0").submit("r0", "w_missing", "person0")).unwrap();
        let err =
            resolve_execs(&plan, &registry, &catalog, &ExecutionConfig::default()).unwrap_err();
        assert!(matches!(err, RuntimeError::UnknownWrapper(_)));
    }

    #[test]
    fn duplicate_exec_calls_are_issued_once() {
        let (catalog, registry) = setup();
        let plan = lower(&LogicalExpr::Union(vec![
            LogicalExpr::get("person0").submit("r0", "w0", "person0"),
            LogicalExpr::get("person0").submit("r0", "w0", "person0"),
        ]))
        .unwrap();
        let resolved =
            resolve_execs(&plan, &registry, &catalog, &ExecutionConfig::default()).unwrap();
        assert_eq!(resolved.call_count(), 1);
    }

    #[test]
    fn streamed_resolution_returns_pending_spools_then_finalizes() {
        let (catalog, registry) = setup();
        let mut resolved = resolve_execs_streamed(
            &union_plan(),
            &registry,
            &catalog,
            &ExecutionConfig::default(),
        )
        .unwrap();
        assert!(
            resolved.has_pending(),
            "entries start as pending spools, not materialized outcomes"
        );
        assert_eq!(resolved.call_count(), 0, "no stats before finalization");
        resolved.finalize_streamed().unwrap();
        assert!(!resolved.has_pending());
        assert!(resolved.all_available());
        assert_eq!(resolved.call_count(), 2);
        assert_eq!(resolved.rows_transferred(), 20);
    }

    #[test]
    fn collect_exec_calls_sees_aggregate_subplans() {
        use disco_algebra::{AggKind, ScalarExpr};
        let logical = LogicalExpr::get("person0")
            .submit("r0", "w0", "person0")
            .bind("x")
            .map_project(ScalarExpr::Agg(
                AggKind::Sum,
                Box::new(LogicalExpr::get("person1").submit("r1", "w0", "person1")),
            ));
        let plan = lower(&logical).unwrap();
        let calls = collect_exec_calls(&plan);
        assert_eq!(
            calls.len(),
            2,
            "both the outer and the nested submit are seen"
        );
    }
}
