//! Regression tests for the hash-based evaluator: `HashJoin`,
//! `MkDistinct` and `NestedLoopJoin` must produce multiset-equal results
//! to their reference strategies, before and after the zero-clone
//! refactor.
//!
//! `HashJoin` is checked against the same logical join forced through
//! `NestedLoopJoin` (the two physical algorithms implement one logical
//! operator), and `MkDistinct` against a naive O(n²) distinct.

use disco_algebra::{lower, Env, LogicalExpr, PhysicalExpr, ScalarExpr, ScalarOp};
use disco_runtime::{evaluate_logical, evaluate_physical, ResolvedExecs};
use disco_value::{Bag, StructValue, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn person(id: i64, name: &str, salary: i64) -> Value {
    Value::Struct(
        StructValue::new(vec![
            ("id", Value::Int(id)),
            ("name", Value::from(name)),
            ("salary", Value::Int(salary)),
        ])
        .unwrap(),
    )
}

fn random_people(rng: &mut StdRng, rows: usize, id_space: i64) -> Bag {
    (0..rows)
        .map(|_| {
            person(
                rng.gen_range(0..id_space),
                &format!("p{}", rng.gen_range(0..id_space)),
                rng.gen_range(0..100i64),
            )
        })
        .collect()
}

/// The equi-join plan over two bags; `lower` picks `HashJoin` for it.
fn equi_join_plan(left: Bag, right: Bag) -> LogicalExpr {
    LogicalExpr::Join {
        left: Box::new(LogicalExpr::Data(left).bind("x")),
        right: Box::new(LogicalExpr::Data(right).bind("y")),
        predicate: Some(ScalarExpr::binary(
            ScalarOp::Eq,
            ScalarExpr::var_field("x", "id"),
            ScalarExpr::var_field("y", "id"),
        )),
    }
    .map_project(ScalarExpr::StructLit(vec![
        ("lname".into(), ScalarExpr::var_field("x", "name")),
        ("rname".into(), ScalarExpr::var_field("y", "name")),
        (
            "total".into(),
            ScalarExpr::binary(
                ScalarOp::Add,
                ScalarExpr::var_field("x", "salary"),
                ScalarExpr::var_field("y", "salary"),
            ),
        ),
    ]))
}

/// Rewrites every `HashJoin` in a physical plan into the equivalent
/// `NestedLoopJoin` (same logical predicate, brute-force algorithm).
fn force_nested_loop(plan: &PhysicalExpr) -> PhysicalExpr {
    match plan {
        PhysicalExpr::HashJoin {
            left,
            right,
            left_key,
            right_key,
            residual,
        } => {
            let eq = ScalarExpr::binary(ScalarOp::Eq, left_key.clone(), right_key.clone());
            let predicate = match residual {
                Some(r) => ScalarExpr::binary(ScalarOp::And, eq, r.clone()),
                None => eq,
            };
            PhysicalExpr::NestedLoopJoin {
                left: Box::new(force_nested_loop(left)),
                right: Box::new(force_nested_loop(right)),
                predicate: Some(predicate),
            }
        }
        PhysicalExpr::FilterOp { input, predicate } => PhysicalExpr::FilterOp {
            input: Box::new(force_nested_loop(input)),
            predicate: predicate.clone(),
        },
        PhysicalExpr::MapOp { input, projection } => PhysicalExpr::MapOp {
            input: Box::new(force_nested_loop(input)),
            projection: projection.clone(),
        },
        PhysicalExpr::BindOp { var, input } => PhysicalExpr::BindOp {
            var: var.clone(),
            input: Box::new(force_nested_loop(input)),
        },
        PhysicalExpr::MkDistinct(inner) => {
            PhysicalExpr::MkDistinct(Box::new(force_nested_loop(inner)))
        }
        PhysicalExpr::MkUnion(items) => {
            PhysicalExpr::MkUnion(items.iter().map(force_nested_loop).collect())
        }
        other => other.clone(),
    }
}

/// Naive O(n²) distinct used as the reference for the hash-based one.
fn naive_distinct(bag: &Bag) -> Bag {
    let mut kept: Vec<Value> = Vec::new();
    for v in bag {
        if !kept.iter().any(|k| k == v) {
            kept.push(v.clone());
        }
    }
    kept.into_iter().collect()
}

#[test]
fn hash_join_matches_nested_loop_join() {
    let resolved = ResolvedExecs::default();
    for seed in 0..30u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let left_rows = rng.gen_range(0..40usize);
        let left = random_people(&mut rng, left_rows, 8);
        let right_rows = rng.gen_range(0..40usize);
        let right = random_people(&mut rng, right_rows, 8);
        let plan = equi_join_plan(left, right);
        let physical = lower(&plan).expect("lowers");
        let nested = force_nested_loop(&physical);
        assert!(
            format!("{physical}").contains("hashjoin"),
            "seed {seed}: plan must exercise the hash join, got {physical}"
        );
        assert!(format!("{nested}").contains("nljoin"));
        let via_hash = evaluate_physical(&physical, &resolved).expect("hash join evaluates");
        let via_nested = evaluate_physical(&nested, &resolved).expect("nl join evaluates");
        assert_eq!(
            via_hash, via_nested,
            "seed {seed}: hash join and nested-loop join must be multiset-equal"
        );
    }
}

#[test]
fn hash_join_with_residual_matches_nested_loop_join() {
    let resolved = ResolvedExecs::default();
    for seed in 0..15u64 {
        let mut rng = StdRng::seed_from_u64(0xCAFE + seed);
        let left = random_people(&mut rng, 30, 6);
        let right = random_people(&mut rng, 30, 6);
        let plan = LogicalExpr::Join {
            left: Box::new(LogicalExpr::Data(left).bind("x")),
            right: Box::new(LogicalExpr::Data(right).bind("y")),
            predicate: Some(ScalarExpr::binary(
                ScalarOp::And,
                ScalarExpr::binary(
                    ScalarOp::Eq,
                    ScalarExpr::var_field("x", "id"),
                    ScalarExpr::var_field("y", "id"),
                ),
                ScalarExpr::binary(
                    ScalarOp::Lt,
                    ScalarExpr::var_field("x", "salary"),
                    ScalarExpr::var_field("y", "salary"),
                ),
            )),
        }
        .map_project(ScalarExpr::var_field("x", "name"));
        let physical = lower(&plan).expect("lowers");
        assert!(format!("{physical}").contains("hashjoin"));
        let via_hash = evaluate_physical(&physical, &resolved).unwrap();
        let via_nested = evaluate_physical(&force_nested_loop(&physical), &resolved).unwrap();
        assert_eq!(via_hash, via_nested, "seed {seed}");
    }
}

#[test]
fn distinct_matches_naive_distinct() {
    let resolved = ResolvedExecs::default();
    for seed in 0..30u64 {
        let mut rng = StdRng::seed_from_u64(0xD157 + seed);
        let n_rows = rng.gen_range(0..60usize);
        let rows = random_people(&mut rng, n_rows, 5);
        let plan = LogicalExpr::Distinct(Box::new(LogicalExpr::Data(rows.clone())));
        let got = evaluate_logical(&plan, &resolved, &Env::root()).unwrap();
        let want = naive_distinct(&rows);
        assert_eq!(got, want, "seed {seed}");
        // Distinct twice is distinct once.
        let twice = LogicalExpr::Distinct(Box::new(plan));
        assert_eq!(
            evaluate_logical(&twice, &resolved, &Env::root()).unwrap(),
            want,
            "seed {seed}"
        );
    }
}

#[test]
fn join_output_rows_share_input_storage() {
    // The zero-clone claim, observable through Arc sharing: a joined output
    // row's field values are the *same* Arc allocations as the input rows'.
    let resolved = ResolvedExecs::default();
    let left: Bag = [person(1, "Mary", 200)].into_iter().collect();
    let right: Bag = [person(1, "Sam", 50)].into_iter().collect();
    let plan = LogicalExpr::Join {
        left: Box::new(LogicalExpr::Data(left.clone()).bind("x")),
        right: Box::new(LogicalExpr::Data(right).bind("y")),
        predicate: Some(ScalarExpr::binary(
            ScalarOp::Eq,
            ScalarExpr::var_field("x", "id"),
            ScalarExpr::var_field("y", "id"),
        )),
    }
    .map_project(ScalarExpr::var_field("x", "name"));
    let out = evaluate_logical(&plan, &resolved, &Env::root()).unwrap();
    assert_eq!(out.len(), 1);
    let got = out.iter().next().unwrap();
    let original = left.iter().next().unwrap().field("name").unwrap();
    match (got, original) {
        (Value::Str(a), Value::Str(b)) => {
            assert!(
                std::sync::Arc::ptr_eq(a, b),
                "projected value must share the input row's string storage"
            );
        }
        other => panic!("unexpected values {other:?}"),
    }
}
