//! Differential and fault-injection suite for **streamed source
//! resolution**: wrapper answers feed the cursor pipeline as they arrive
//! (`ResolutionMode::Streamed`) and must be observationally equivalent to
//! the blocking collect-then-combine path (`ResolutionMode::Blocking`) —
//! multiset-equal data, identical residual plans under injected
//! unavailability, identical `rows_materialized` — at 1, 2 and 4 worker
//! threads.  Fault injection covers degraded (trickling) sources,
//! mid-stream hard failures, panicking wrappers, and the deadline
//! regression: a slow source under a deadline yields the fast sources'
//! data plus a residual plan, with `time_to_first_row` well under the
//! deadline.

mod common;

use std::sync::Arc;
use std::time::Duration;

use disco_algebra::CapabilitySet;
use disco_algebra::{lower, AggKind, LogicalExpr, ScalarExpr, ScalarOp};
use disco_catalog::{
    Attribute, Catalog, InterfaceDef, MetaExtent, Repository, TypeRef, WrapperDef,
};
use disco_runtime::{AdaptiveMode, Answer, Executor, ResolutionMode, RuntimeError};
use disco_source::{generator, Availability, NetworkProfile, RelationalStore, SimulatedLink};
use disco_value::Value;
use disco_wrapper::{RelationalWrapper, Wrapper, WrapperAnswer, WrapperError, WrapperRegistry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A federation of `n` relational person sources (`person0..person{n-1}`
/// on repositories `r0..`), each behind its own simulated link.
struct Federation {
    catalog: Catalog,
    registry: WrapperRegistry,
    links: Vec<Arc<SimulatedLink>>,
}

fn federation_with(profiles: &[NetworkProfile], rows: usize, seed: u64) -> Federation {
    let mut catalog = Catalog::new();
    catalog
        .define_interface(
            InterfaceDef::new("Person")
                .with_extent_name("person")
                .with_attribute(Attribute::new("id", TypeRef::Int))
                .with_attribute(Attribute::new("name", TypeRef::String))
                .with_attribute(Attribute::new("salary", TypeRef::Int)),
        )
        .unwrap();
    let registry = WrapperRegistry::new();
    let mut links = Vec::new();
    for (i, profile) in profiles.iter().enumerate() {
        let extent = format!("person{i}");
        let repo = format!("r{i}");
        let wrapper_name = format!("w{i}");
        catalog
            .add_wrapper(WrapperDef::new(&wrapper_name, "relational"))
            .unwrap();
        catalog.add_repository(Repository::new(&repo)).unwrap();
        catalog
            .add_extent(MetaExtent::new(&extent, "Person", &wrapper_name, &repo))
            .unwrap();
        let store = Arc::new(RelationalStore::new());
        store.put_table(generator::person_table(&extent, rows, i as u64, seed));
        let link = Arc::new(SimulatedLink::new(&repo, profile.clone(), seed + i as u64));
        registry.register(Arc::new(RelationalWrapper::new(
            &wrapper_name,
            store,
            Arc::clone(&link),
        )));
        links.push(link);
    }
    Federation {
        catalog,
        registry,
        links,
    }
}

/// An instant, deterministic profile (no real sleeps, no jitter).
fn instant_profile(chunk_rows: usize) -> NetworkProfile {
    NetworkProfile {
        jitter: 0.0,
        chunk_rows,
        ..NetworkProfile::fast()
    }
}

fn branch(i: usize, threshold: i64) -> LogicalExpr {
    LogicalExpr::get(format!("person{i}"))
        .submit(format!("r{i}"), format!("w{i}"), format!("person{i}"))
        .filter(ScalarExpr::binary(
            ScalarOp::Gt,
            ScalarExpr::attr("salary"),
            ScalarExpr::constant(threshold),
        ))
        .bind("x")
        .map_project(ScalarExpr::var_field("x", "name"))
}

/// A random federated plan over `n` sources, in the shape families the
/// mediator produces (union of per-source scans, equi-join of two
/// sources, aggregate over a source, distinct over a union).
fn random_federated_plan(rng: &mut StdRng, n: usize) -> LogicalExpr {
    match rng.gen_range(0..4) {
        0 => {
            let branches = (0..n).map(|i| branch(i, rng.gen_range(0..600))).collect();
            LogicalExpr::Union(branches)
        }
        1 if n >= 2 => {
            let a = rng.gen_range(0..n);
            let b = (a + 1 + rng.gen_range(0..n - 1)) % n;
            LogicalExpr::Join {
                left: Box::new(
                    LogicalExpr::get(format!("person{a}"))
                        .submit(format!("r{a}"), format!("w{a}"), format!("person{a}"))
                        .bind("x"),
                ),
                right: Box::new(
                    LogicalExpr::get(format!("person{b}"))
                        .submit(format!("r{b}"), format!("w{b}"), format!("person{b}"))
                        .bind("y"),
                ),
                predicate: Some(ScalarExpr::binary(
                    ScalarOp::Eq,
                    ScalarExpr::var_field("x", "id"),
                    ScalarExpr::var_field("y", "id"),
                )),
            }
            .map_project(ScalarExpr::var_field("x", "name"))
        }
        2 => LogicalExpr::Aggregate {
            func: [AggKind::Sum, AggKind::Count, AggKind::Min, AggKind::Max]
                [rng.gen_range(0..4usize)],
            input: Box::new(
                LogicalExpr::get("person0")
                    .submit("r0", "w0", "person0")
                    .bind("x")
                    .map_project(ScalarExpr::var_field("x", "salary")),
            ),
        },
        _ => {
            let branches = (0..n).map(|i| branch(i, rng.gen_range(0..600))).collect();
            LogicalExpr::Distinct(Box::new(LogicalExpr::Union(branches)))
        }
    }
}

fn execute(
    federation: &Federation,
    plan: &LogicalExpr,
    mode: ResolutionMode,
    threads: usize,
    deadline: Option<Duration>,
) -> disco_runtime::Result<Answer> {
    let physical = lower(plan).unwrap();
    Executor::new(federation.registry.clone())
        .with_resolution(mode)
        .with_threads(threads)
        .with_deadline(deadline)
        .execute(&physical, &federation.catalog)
}

/// Asserts full observational equivalence of the two resolution modes.
fn assert_equivalent(plan: &LogicalExpr, federation: &Federation, threads: usize, label: &str) {
    let deadline = Some(Duration::from_secs(5));
    let blocking = execute(
        federation,
        plan,
        ResolutionMode::Blocking,
        threads,
        deadline,
    )
    .unwrap_or_else(|e| panic!("{label}: blocking failed: {e}"));
    let streamed = execute(
        federation,
        plan,
        ResolutionMode::Streamed,
        threads,
        deadline,
    )
    .unwrap_or_else(|e| panic!("{label}: streamed failed: {e}"));
    assert_eq!(
        blocking.data(),
        streamed.data(),
        "{label}: answer multisets differ"
    );
    assert_eq!(
        blocking.is_complete(),
        streamed.is_complete(),
        "{label}: completeness differs"
    );
    assert_eq!(
        blocking.residual(),
        streamed.residual(),
        "{label}: residual plans differ"
    );
    assert_eq!(
        blocking.unavailable_sources(),
        streamed.unavailable_sources(),
        "{label}: unavailable classification differs"
    );
    assert_eq!(
        blocking.stats().rows_materialized,
        streamed.stats().rows_materialized,
        "{label}: rows_materialized differs"
    );
    assert_eq!(
        blocking.stats().rows_transferred,
        streamed.stats().rows_transferred,
        "{label}: rows_transferred differs"
    );
    assert_eq!(
        blocking.stats().exec_calls,
        streamed.stats().exec_calls,
        "{label}: exec_calls differs"
    );
}

#[test]
fn random_plans_differential_all_available() {
    let mut rng = StdRng::seed_from_u64(0xd15c0);
    for trial in 0..24 {
        let n = rng.gen_range(2..5usize);
        let chunk_rows = [0usize, 3, 16][rng.gen_range(0..3usize)];
        let federation = federation_with(
            &vec![instant_profile(chunk_rows); n],
            rng.gen_range(1..40),
            trial,
        );
        let plan = random_federated_plan(&mut rng, n);
        for threads in [1usize, 2, 4] {
            assert_equivalent(
                &plan,
                &federation,
                threads,
                &format!("trial {trial} threads {threads} chunks {chunk_rows}"),
            );
        }
    }
}

#[test]
fn random_plans_differential_with_injected_unavailability() {
    let mut rng = StdRng::seed_from_u64(0xfeed);
    for trial in 0..24 {
        let n = rng.gen_range(2..5usize);
        let chunk_rows = [0usize, 5][rng.gen_range(0..2usize)];
        let federation = federation_with(
            &vec![instant_profile(chunk_rows); n],
            rng.gen_range(1..30),
            100 + trial,
        );
        // Each source independently goes down; keep at least one run with
        // everything down to cover the pure-residual shape.
        let mut any_down = false;
        for link in &federation.links {
            if rng.gen_bool(0.4) {
                link.set_availability(Availability::Unavailable);
                any_down = true;
            }
        }
        if !any_down {
            federation.links[0].set_availability(Availability::Unavailable);
        }
        let plan = random_federated_plan(&mut rng, n);
        for threads in [1usize, 4] {
            assert_equivalent(
                &plan,
                &federation,
                threads,
                &format!("trial {trial} threads {threads}"),
            );
        }
    }
}

#[test]
fn degraded_source_streams_slowly_but_equivalently() {
    // A wrapper that trickles chunks out (degraded throughput) must still
    // produce the same answer as the blocking path, within the deadline.
    let degraded = NetworkProfile {
        jitter: 0.0,
        chunk_rows: 4,
        real_sleep: true,
        availability: Availability::Degraded { chunk_extra_ms: 5 },
        ..NetworkProfile::fast()
    };
    let mut profiles = vec![instant_profile(4); 3];
    profiles[1] = degraded;
    let federation = federation_with(&profiles, 24, 7);
    let plan = LogicalExpr::Union((0..3).map(|i| branch(i, 0)).collect());
    assert_equivalent(&plan, &federation, 1, "degraded");
    assert_equivalent(&plan, &federation, 4, "degraded parallel");
}

// ---------------------------------------------------------------------
// Adaptive scheduling over streamed federations: the adaptive build-side
// choice (build whichever source answered first) and rate-scaled claims
// must be answer-transparent in both resolution modes.
// ---------------------------------------------------------------------

fn execute_adaptive(
    federation: &Federation,
    plan: &LogicalExpr,
    mode: ResolutionMode,
    threads: usize,
    adaptive: AdaptiveMode,
) -> Answer {
    let physical = lower(plan).unwrap();
    Executor::new(federation.registry.clone())
        .with_resolution(mode)
        .with_threads(threads)
        .with_adaptive(adaptive)
        .with_deadline(Some(Duration::from_secs(5)))
        .execute(&physical, &federation.catalog)
        .expect("federated plan executes")
}

#[test]
fn adaptive_scheduling_is_transparent_over_streamed_federations() {
    let mut rng = StdRng::seed_from_u64(0xADA);
    for trial in 0..8u64 {
        let n = rng.gen_range(2..5usize);
        // One source trickles behind the others so the adaptive engine
        // has a genuinely heterogeneous federation to schedule around.
        let mut profiles = vec![instant_profile(4); n];
        profiles[0] = NetworkProfile {
            real_sleep: true,
            availability: Availability::Degraded { chunk_extra_ms: 2 },
            ..instant_profile(4)
        };
        let federation = federation_with(&profiles, rng.gen_range(10..40), 300 + trial);
        let plan = random_federated_plan(&mut rng, n);
        for mode in [ResolutionMode::Blocking, ResolutionMode::Streamed] {
            for threads in [1usize, 4] {
                let pinned = execute_adaptive(&federation, &plan, mode, threads, AdaptiveMode::Off);
                let adaptive =
                    execute_adaptive(&federation, &plan, mode, threads, AdaptiveMode::On);
                let label = format!("trial {trial} {mode:?} threads {threads}");
                // `rows_materialized` is deliberately NOT compared: the
                // adaptive build-side choice may buffer the other input.
                assert_eq!(
                    pinned.data(),
                    adaptive.data(),
                    "{label}: answer multisets differ"
                );
                assert_eq!(
                    pinned.is_complete(),
                    adaptive.is_complete(),
                    "{label}: completeness differs"
                );
                assert_eq!(
                    pinned.residual(),
                    adaptive.residual(),
                    "{label}: residual plans differ"
                );
                assert_eq!(
                    pinned.unavailable_sources(),
                    adaptive.unavailable_sources(),
                    "{label}: unavailable classification differs"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Fault injection: mid-stream failure and panicking wrappers.
// ---------------------------------------------------------------------

/// A wrapper that pushes one chunk and then fails hard mid-stream.
struct FailsMidStream;

impl Wrapper for FailsMidStream {
    fn name(&self) -> &str {
        "w_fail"
    }
    fn kind(&self) -> &str {
        "relational"
    }
    fn capabilities(&self) -> CapabilitySet {
        CapabilitySet::full()
    }
    fn submit(&self, _expr: &LogicalExpr) -> Result<WrapperAnswer, WrapperError> {
        Err(WrapperError::TypeConflict {
            extent: "person0".into(),
            missing_attribute: "salary".into(),
        })
    }
    fn submit_streaming(
        &self,
        _expr: &LogicalExpr,
        sink: &mut dyn disco_wrapper::AnswerSink,
    ) -> Result<disco_wrapper::AnswerSummary, WrapperError> {
        sink.push([common::person(1, "early", 10)].into_iter().collect());
        Err(WrapperError::TypeConflict {
            extent: "person0".into(),
            missing_attribute: "salary".into(),
        })
    }
}

/// A wrapper whose call panics.
struct PanicsOnSubmit;

impl Wrapper for PanicsOnSubmit {
    fn name(&self) -> &str {
        "w_panic"
    }
    fn kind(&self) -> &str {
        "relational"
    }
    fn capabilities(&self) -> CapabilitySet {
        CapabilitySet::full()
    }
    fn submit(&self, _expr: &LogicalExpr) -> Result<WrapperAnswer, WrapperError> {
        panic!("wrapper exploded mid-call");
    }
}

/// One healthy source plus one faulty wrapper, under a short deadline.
fn faulty_federation(faulty: Arc<dyn Wrapper>) -> (Federation, LogicalExpr) {
    let mut federation = federation_with(&[instant_profile(0)], 8, 3);
    let wrapper_name = faulty.name().to_owned();
    federation
        .catalog
        .add_wrapper(WrapperDef::new(&wrapper_name, "relational"))
        .unwrap();
    federation
        .catalog
        .add_repository(Repository::new("r_faulty"))
        .unwrap();
    federation
        .catalog
        .add_extent(MetaExtent::new(
            "person_faulty",
            "Person",
            &wrapper_name,
            "r_faulty",
        ))
        .unwrap();
    federation.registry.register(faulty);
    let plan = LogicalExpr::Union(vec![
        branch(0, -1),
        LogicalExpr::get("person_faulty")
            .submit("r_faulty", &wrapper_name, "person_faulty")
            .bind("x")
            .map_project(ScalarExpr::var_field("x", "name")),
    ]);
    (federation, plan)
}

#[test]
fn mid_stream_failure_surfaces_identically_in_both_modes() {
    let (federation, plan) = faulty_federation(Arc::new(FailsMidStream));
    let deadline = Some(Duration::from_millis(500));
    let started = std::time::Instant::now();
    for mode in [ResolutionMode::Blocking, ResolutionMode::Streamed] {
        let err = execute(&federation, &plan, mode, 1, deadline).unwrap_err();
        assert!(
            matches!(
                err,
                RuntimeError::Wrapper(WrapperError::TypeConflict { .. })
            ),
            "{mode:?}: expected the mid-stream failure, got {err}"
        );
    }
    assert!(
        started.elapsed() < Duration::from_secs(4),
        "failure handling must not hang past the deadline"
    );
}

#[test]
fn panicking_wrapper_surfaces_worker_panic_in_both_modes() {
    let (federation, plan) = faulty_federation(Arc::new(PanicsOnSubmit));
    let deadline = Some(Duration::from_millis(500));
    let started = std::time::Instant::now();
    for mode in [ResolutionMode::Blocking, ResolutionMode::Streamed] {
        let err = execute(&federation, &plan, mode, 1, deadline).unwrap_err();
        assert!(
            matches!(err, RuntimeError::WorkerPanic(_)),
            "{mode:?}: expected a contained panic, got {err}"
        );
    }
    assert!(
        started.elapsed() < Duration::from_secs(4),
        "panic handling must not hang past the deadline"
    );
}

// ---------------------------------------------------------------------
// Deadline regression: fast sources answer, the slow one goes residual.
// ---------------------------------------------------------------------

#[test]
fn deadline_returns_fast_data_plus_residual_for_the_slow_source() {
    let fast = NetworkProfile {
        base_latency_us: 500,
        per_row_us: 5,
        jitter: 0.0,
        real_sleep: true,
        chunk_rows: 8,
        availability: Availability::Available,
    };
    let slow = NetworkProfile {
        availability: Availability::Slow { extra_ms: 1500 },
        ..fast.clone()
    };
    let federation = federation_with(&[fast.clone(), fast, slow], 16, 11);
    let plan = LogicalExpr::Union((0..3).map(|i| branch(i, -1)).collect());
    let deadline = Duration::from_millis(250);
    let answer = execute(
        &federation,
        &plan,
        ResolutionMode::Streamed,
        1,
        Some(deadline),
    )
    .unwrap();
    assert!(!answer.is_complete(), "slow source must go residual");
    assert_eq!(answer.unavailable_sources(), &["r2".to_owned()]);
    assert_eq!(
        answer.data().len(),
        32,
        "both fast sources' rows are in the data part"
    );
    let residual = answer.residual_oql().expect("residual over r2");
    assert!(
        residual.contains("person2"),
        "residual names the slow extent: {residual}"
    );
    assert!(
        !residual.contains("person0") && !residual.contains("person1"),
        "fast extents are fully answered: {residual}"
    );
    let t_first = answer
        .time_to_first_row()
        .expect("fast rows reached the sink during streaming");
    assert!(
        t_first < deadline,
        "first row ({t_first:?}) must arrive well before the deadline ({deadline:?})"
    );
}

// ---------------------------------------------------------------------
// The deadline leak fix: timed-out calls observe the disconnect and stop.
// ---------------------------------------------------------------------

#[test]
fn timed_out_wrapper_call_is_cancelled_not_leaked() {
    // 40 chunks * 30 ms: the call would keep trickling for ~1.2 s after
    // a 60 ms deadline if cancellation did not reach it.
    let trickle = NetworkProfile {
        base_latency_us: 100,
        per_row_us: 0,
        jitter: 0.0,
        real_sleep: true,
        chunk_rows: 5,
        availability: Availability::Degraded { chunk_extra_ms: 30 },
    };
    let federation = federation_with(&[instant_profile(0), trickle], 200, 13);
    let plan = LogicalExpr::Union(vec![branch(0, -1), branch(1, -1)]);
    let started = std::time::Instant::now();
    let answer = execute(
        &federation,
        &plan,
        ResolutionMode::Streamed,
        1,
        Some(Duration::from_millis(60)),
    )
    .unwrap();
    assert!(
        started.elapsed() < Duration::from_millis(700),
        "deadline classification must not wait out the stream, took {:?}",
        started.elapsed()
    );
    assert!(!answer.is_complete());
    assert_eq!(answer.unavailable_sources(), &["r1".to_owned()]);
    // Give the cancelled call time to observe the disconnect, then check
    // that chunk production has stopped for good.
    std::thread::sleep(Duration::from_millis(200));
    let after_cancel = federation.links[1].chunk_count();
    assert!(
        after_cancel < 40,
        "the call must stop early, produced {after_cancel} chunks"
    );
    std::thread::sleep(Duration::from_millis(400));
    assert_eq!(
        federation.links[1].chunk_count(),
        after_cancel,
        "a timed-out call kept producing chunks in the background"
    );
}

#[test]
fn parallel_worker_failure_interrupts_a_blocked_stream_claim() {
    // A trickling pending leaf under the parallel scheduler: one worker's
    // chunk evaluation panics (the `__disco_panic_if__` fail point) while
    // other workers are blocked claiming chunks.  The abort must
    // interrupt the stream — surfacing the failure promptly instead of
    // waiting out the remaining ~1 s of trickle (or the deadline).
    let trickle = NetworkProfile {
        base_latency_us: 100,
        per_row_us: 0,
        jitter: 0.0,
        real_sleep: true,
        chunk_rows: 5,
        availability: Availability::Degraded { chunk_extra_ms: 25 },
    };
    let federation = federation_with(&[trickle], 200, 19);
    let panic_if = ScalarExpr::Call(
        "__disco_panic_if__".into(),
        vec![ScalarExpr::binary(
            ScalarOp::Eq,
            ScalarExpr::attr("id"),
            ScalarExpr::constant(0i64),
        )],
    );
    let plan = LogicalExpr::get("person0")
        .submit("r0", "w0", "person0")
        .filter(panic_if)
        .bind("x")
        .map_project(ScalarExpr::var_field("x", "name"));
    let started = std::time::Instant::now();
    let err = execute(
        &federation,
        &plan,
        ResolutionMode::Streamed,
        4,
        Some(Duration::from_secs(10)),
    )
    .unwrap_err();
    assert!(
        matches!(err, RuntimeError::WorkerPanic(_)),
        "expected the contained fail-point panic, got {err}"
    );
    assert!(
        started.elapsed() < Duration::from_millis(600),
        "abort must interrupt the blocked stream claim, took {:?}",
        started.elapsed()
    );
}

// ---------------------------------------------------------------------
// Sanity: streamed complete answers report first-row latency.
// ---------------------------------------------------------------------

#[test]
fn streamed_complete_answers_report_time_to_first_row() {
    let federation = federation_with(&vec![instant_profile(4); 3], 12, 17);
    let plan = LogicalExpr::Union((0..3).map(|i| branch(i, 0)).collect());
    let answer = execute(
        &federation,
        &plan,
        ResolutionMode::Streamed,
        1,
        Some(Duration::from_secs(5)),
    )
    .unwrap();
    assert!(answer.is_complete());
    assert!(answer.time_to_first_row().is_some());
    assert!(answer.time_to_first_row().unwrap() <= answer.stats().elapsed);
}

/// Keep the shared generator linked in (it also documents the common
/// module is reusable from this suite, as the other differential suites
/// do).
#[test]
fn shared_generator_produces_plans() {
    let mut rng = StdRng::seed_from_u64(1);
    let plan = common::random_plan(&mut rng);
    let _ = format!("{plan}");
    let _ = Value::Int(0);
}
