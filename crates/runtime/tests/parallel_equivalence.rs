//! Differential, determinism and poison-safety tests for the
//! morsel-driven parallel engine.
//!
//! Four claims are pinned here:
//!
//! 1. **Differential equivalence**: random plans from the shared
//!    generator produce multiset-identical answers through the reference
//!    (bag-at-a-time) evaluator, the serial streaming engine, and the
//!    parallel engine at 1/2/4/8 threads — and identical partial-answer
//!    data *and residual plans* under random source availability.
//! 2. **Determinism**: the same plan executed repeatedly on a contended
//!    pool yields the same result multiset and the same
//!    `rows_materialized` count every run, and that count equals the
//!    serial engine's at every thread count.
//! 3. **Poison safety**: a cursor that panics mid-batch on a worker —
//!    join build side, probe side, or a union branch — surfaces as an
//!    `Err` from `evaluate_physical_with_options`, not a hang or abort.
//! 4. **Metric merging**: per-worker `PipelineMetrics` sum exactly
//!    (`merge` / `Add`), so `ExecutionStats.rows_materialized` is the
//!    same number the serial engine reports.

mod common;

use common::{person, random_partial_scenario, random_plan};
use disco_algebra::{lower, LogicalExpr, ScalarExpr, ScalarOp};
use disco_runtime::{
    evaluate_physical_with, evaluate_physical_with_options, partial_evaluate_opts,
    partial_evaluate_reference, reference, substitute_resolved, AdaptiveMode, MemBudget,
    PipelineMetrics, PipelineOptions, ResolvedExecs, RuntimeError,
};
use disco_value::Bag;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn opts(threads: usize) -> PipelineOptions {
    PipelineOptions {
        threads,
        ..PipelineOptions::default()
    }
}

#[test]
fn parallel_engine_matches_reference_and_serial_on_random_plans() {
    let resolved = ResolvedExecs::default();
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(0x9A7A11E1 + seed);
        let plan = random_plan(&mut rng);
        let physical = lower(&plan).expect("plan lowers");
        let expected =
            reference::evaluate_physical(&physical, &resolved).expect("reference evaluates");
        for threads in THREAD_COUNTS {
            let actual = evaluate_physical_with_options(&physical, &resolved, opts(threads))
                .expect("parallel evaluates");
            assert_eq!(
                actual, expected,
                "seed {seed}, {threads} threads: answers must be multiset-equal for {physical}"
            );
        }
    }
}

#[test]
fn parallel_partial_evaluation_preserves_data_and_residual_plans() {
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(0x9A47 + seed);
        let (plan, resolved) = random_partial_scenario(&mut rng);
        let substituted = substitute_resolved(&plan, &resolved);
        let (data_r, residual_r) =
            partial_evaluate_reference(&substituted, &resolved).expect("reference partial eval");
        for threads in THREAD_COUNTS {
            let (data_p, residual_p) =
                partial_evaluate_opts(&substituted, &resolved, opts(threads))
                    .expect("parallel partial eval");
            assert_eq!(
                data_p, data_r,
                "seed {seed}, {threads} threads: partial answer data must match"
            );
            assert_eq!(
                residual_p, residual_r,
                "seed {seed}, {threads} threads: residual plans must be identical"
            );
        }
    }
}

/// The deep-pipeline shape (filter → hash-join → computed projection →
/// distinct) at a size that yields many morsels per worker.
fn deep_pipeline_plan(left_rows: usize, right_rows: usize) -> LogicalExpr {
    let left: Bag = (0..left_rows)
        .map(|i| person((i % 97) as i64, &format!("p{}", i % 61), (i % 199) as i64))
        .collect();
    let right: Bag = (0..right_rows)
        .map(|i| person((i % 97) as i64, &format!("r{}", i % 13), (i % 53) as i64))
        .collect();
    LogicalExpr::Distinct(Box::new(
        LogicalExpr::Join {
            left: Box::new(LogicalExpr::Data(left).bind("x").filter(ScalarExpr::binary(
                ScalarOp::Gt,
                ScalarExpr::var_field("x", "salary"),
                ScalarExpr::constant(40i64),
            ))),
            right: Box::new(LogicalExpr::Data(right).bind("y")),
            predicate: Some(ScalarExpr::binary(
                ScalarOp::Eq,
                ScalarExpr::var_field("x", "id"),
                ScalarExpr::var_field("y", "id"),
            )),
        }
        .map_project(ScalarExpr::StructLit(vec![
            ("name".into(), ScalarExpr::var_field("x", "name")),
            (
                "total".into(),
                ScalarExpr::binary(
                    ScalarOp::Add,
                    ScalarExpr::var_field("x", "salary"),
                    ScalarExpr::var_field("y", "salary"),
                ),
            ),
        ])),
    ))
}

#[test]
fn repeated_parallel_runs_are_deterministic_in_results_and_metrics() {
    let resolved = ResolvedExecs::default();
    let physical = lower(&deep_pipeline_plan(2_000, 400)).expect("lowers");

    // The serial engine sets the expectation for both the answer and the
    // breaker-buffering count.
    let serial_metrics = PipelineMetrics::new();
    let expected = evaluate_physical_with(&physical, &resolved, &serial_metrics, opts(1))
        .expect("serial evaluates");
    let expected_materialized = serial_metrics.rows_materialized();
    assert!(expected_materialized > 0, "the shape has pipeline breakers");

    // 50 runs on a contended pool: same multiset, same metrics, every run.
    for run in 0..50u32 {
        let metrics = PipelineMetrics::new();
        let out =
            evaluate_physical_with(&physical, &resolved, &metrics, opts(4)).expect("evaluates");
        assert_eq!(out, expected, "run {run}: result multiset must not vary");
        assert_eq!(
            metrics.rows_materialized(),
            expected_materialized,
            "run {run}: rows_materialized must not depend on scheduling"
        );
        assert_eq!(metrics.rows_emitted(), expected.len(), "run {run}");
    }

    // And the count is thread-count-invariant, not merely stable.
    for threads in THREAD_COUNTS {
        let metrics = PipelineMetrics::new();
        let out = evaluate_physical_with(&physical, &resolved, &metrics, opts(threads))
            .expect("evaluates");
        assert_eq!(out, expected);
        assert_eq!(
            metrics.rows_materialized(),
            expected_materialized,
            "{threads} threads: breakers must buffer exactly the serial row count"
        );
    }
}

#[test]
fn union_distinct_is_deterministic_across_runs() {
    let resolved = ResolvedExecs::default();
    let branches: Vec<LogicalExpr> = (0..8)
        .map(|b| {
            LogicalExpr::Data(
                (0..500)
                    .map(|i| {
                        person(
                            ((b * 31 + i) % 89) as i64,
                            &format!("n{}", i % 47),
                            i as i64,
                        )
                    })
                    .collect::<Bag>(),
            )
        })
        .collect();
    let physical = lower(&LogicalExpr::Distinct(Box::new(LogicalExpr::Union(
        branches,
    ))))
    .expect("lowers");
    let serial = evaluate_physical_with_options(&physical, &resolved, opts(1)).expect("serial");
    for _ in 0..50 {
        let metrics = PipelineMetrics::new();
        let out =
            evaluate_physical_with(&physical, &resolved, &metrics, opts(8)).expect("evaluates");
        assert_eq!(out, serial);
        assert_eq!(metrics.rows_materialized(), serial.len());
    }
}

// ---------------------------------------------------------------------
// Poison safety: a panicking cursor must surface as Err, not hang/abort
// ---------------------------------------------------------------------

/// A filter predicate that panics when `var.id == id` (the
/// `__disco_panic_if__` fail point built into scalar evaluation).
fn panic_on_id(var: &str, id: i64) -> ScalarExpr {
    ScalarExpr::Call(
        "__disco_panic_if__".into(),
        vec![ScalarExpr::binary(
            ScalarOp::Eq,
            ScalarExpr::var_field(var, "id"),
            ScalarExpr::constant(id),
        )],
    )
}

fn people(rows: usize) -> Bag {
    (0..rows)
        .map(|i| person((i % 64) as i64, &format!("p{i}"), (i % 100) as i64))
        .collect()
}

fn join_with_poison(poison_build: bool) -> LogicalExpr {
    // 4000 probe-side rows vs 400 build-side rows: the smaller right
    // input is the build side under the Auto policy, and both sides span
    // multiple morsels.
    let mut left = LogicalExpr::Data(people(4_000)).bind("x");
    let mut right = LogicalExpr::Data(people(400)).bind("y");
    if poison_build {
        right = right.filter(panic_on_id("y", 23));
    } else {
        left = left.filter(panic_on_id("x", 23));
    }
    LogicalExpr::Join {
        left: Box::new(left),
        right: Box::new(right),
        predicate: Some(ScalarExpr::binary(
            ScalarOp::Eq,
            ScalarExpr::var_field("x", "id"),
            ScalarExpr::var_field("y", "id"),
        )),
    }
    .map_project(ScalarExpr::var_field("x", "name"))
}

fn assert_worker_panic(plan: &LogicalExpr, threads: usize) {
    let physical = lower(plan).expect("lowers");
    let resolved = ResolvedExecs::default();
    // Pin the budget unbounded: these tests target the *parallel* engine's
    // panic containment, and a bounded budget (e.g. a `DISCO_MEM_BUDGET`
    // forced through the environment) routes breaker-terminal plans to the
    // serial path by design — where an injected panic is a real panic, not
    // a contained `WorkerPanic`.
    let options = PipelineOptions {
        mem_budget: MemBudget::Unbounded,
        ..opts(threads)
    };
    let err = evaluate_physical_with_options(&physical, &resolved, options)
        .expect_err("the injected panic must surface as an error");
    assert!(
        matches!(err, RuntimeError::WorkerPanic(_)),
        "expected WorkerPanic, got: {err}"
    );
    assert!(err.to_string().contains("injected panic"));
}

#[test]
fn panic_on_join_build_side_surfaces_as_error() {
    for threads in [2, 4] {
        assert_worker_panic(&join_with_poison(true), threads);
    }
}

#[test]
fn panic_on_join_probe_side_surfaces_as_error() {
    for threads in [2, 4] {
        assert_worker_panic(&join_with_poison(false), threads);
    }
}

#[test]
fn panic_in_union_branch_surfaces_as_error() {
    let branches = vec![
        LogicalExpr::Data(people(1_000))
            .bind("x")
            .map_project(ScalarExpr::var_field("x", "name")),
        LogicalExpr::Data(people(1_000))
            .bind("x")
            .filter(panic_on_id("x", 23))
            .map_project(ScalarExpr::var_field("x", "name")),
        LogicalExpr::Data(people(1_000))
            .bind("x")
            .map_project(ScalarExpr::var_field("x", "name")),
    ];
    for threads in [2, 4] {
        assert_worker_panic(&LogicalExpr::Union(branches.clone()), threads);
    }
}

#[test]
fn pool_stays_usable_after_a_poisoned_execution() {
    // A panicked evaluation must not wedge anything process-wide: the
    // very next parallel evaluation on fresh scoped workers succeeds.
    let resolved = ResolvedExecs::default();
    assert_worker_panic(&join_with_poison(true), 4);
    let physical = lower(&deep_pipeline_plan(1_000, 100)).expect("lowers");
    let ok = evaluate_physical_with_options(&physical, &resolved, opts(4)).expect("recovers");
    let serial = evaluate_physical_with_options(&physical, &resolved, opts(1)).expect("serial");
    assert_eq!(ok, serial);
}

// ---------------------------------------------------------------------
// Metric merging
// ---------------------------------------------------------------------

#[test]
fn metrics_merge_sums_counts_exactly() {
    let resolved = ResolvedExecs::default();
    let physical = lower(&deep_pipeline_plan(500, 100)).expect("lowers");
    // Two independent executions counted into two instances...
    let a = PipelineMetrics::new();
    evaluate_physical_with(&physical, &resolved, &a, opts(1)).expect("evaluates");
    let b = PipelineMetrics::new();
    evaluate_physical_with(&physical, &resolved, &b, opts(1)).expect("evaluates");
    // ...merge to exactly the sum, via both `merge` and `Add`.
    let merged = PipelineMetrics::new();
    merged.merge(&a);
    merged.merge(&b);
    assert_eq!(
        merged.rows_materialized(),
        a.rows_materialized() + b.rows_materialized()
    );
    assert_eq!(merged.rows_merged(), a.rows_merged() + b.rows_merged());
    assert_eq!(merged.rows_emitted(), a.rows_emitted() + b.rows_emitted());
    let added = &a + &b;
    assert_eq!(added.rows_materialized(), merged.rows_materialized());
    assert_eq!(added.rows_merged(), merged.rows_merged());
    assert_eq!(added.rows_emitted(), merged.rows_emitted());
}

#[test]
fn executor_stats_report_serial_counts_at_any_thread_count() {
    // `ExecutionStats.rows_materialized` flows from merged per-worker
    // metrics; pin that the number matches the serial engine through the
    // public instrumented entry point.
    let resolved = ResolvedExecs::default();
    let physical = lower(&deep_pipeline_plan(1_500, 300)).expect("lowers");
    let serial = PipelineMetrics::new();
    evaluate_physical_with(&physical, &resolved, &serial, opts(1)).expect("serial");
    for threads in THREAD_COUNTS {
        let metrics = PipelineMetrics::new();
        evaluate_physical_with(&physical, &resolved, &metrics, opts(threads)).expect("evaluates");
        assert_eq!(metrics.rows_materialized(), serial.rows_materialized());
        assert_eq!(metrics.rows_merged(), serial.rows_merged());
        assert_eq!(metrics.rows_emitted(), serial.rows_emitted());
    }
}

// ---------------------------------------------------------------------
// Heterogeneity-aware adaptive scheduling: answers must be identical to
// the pinned scheduler's at every thread count.
// ---------------------------------------------------------------------

#[test]
fn adaptive_scheduling_matches_pinned_answers_on_random_plans() {
    let resolved = ResolvedExecs::default();
    for seed in 0..25u64 {
        let mut rng = StdRng::seed_from_u64(0xADA9 + seed);
        let plan = random_plan(&mut rng);
        let physical = lower(&plan).expect("plan lowers");
        let expected =
            reference::evaluate_physical(&physical, &resolved).expect("reference evaluates");
        for threads in [1usize, 2, 4] {
            for adaptive in [AdaptiveMode::Off, AdaptiveMode::On] {
                let options = PipelineOptions {
                    threads,
                    adaptive,
                    ..PipelineOptions::default()
                };
                let actual = evaluate_physical_with_options(&physical, &resolved, options)
                    .expect("evaluates");
                assert_eq!(
                    actual, expected,
                    "seed {seed}, {threads} threads, {adaptive:?}: answers must be \
                     multiset-equal with and without adaptive scheduling"
                );
            }
        }
    }
}

#[test]
fn adaptive_deep_pipeline_is_stable_across_repeated_contended_runs() {
    // Adaptive claiming varies morsel boundaries with observed worker
    // speed, so repeated contended runs exercise many different claim
    // sequences — the answer must never move.
    let resolved = ResolvedExecs::default();
    let physical = lower(&deep_pipeline_plan(2_000, 400)).expect("lowers");
    let pinned = evaluate_physical_with_options(
        &physical,
        &resolved,
        PipelineOptions {
            threads: 1,
            adaptive: AdaptiveMode::Off,
            ..PipelineOptions::default()
        },
    )
    .expect("pinned serial evaluates");
    for threads in THREAD_COUNTS {
        for run in 0..10u32 {
            let options = PipelineOptions {
                threads,
                adaptive: AdaptiveMode::On,
                ..PipelineOptions::default()
            };
            let out = evaluate_physical_with_options(&physical, &resolved, options)
                .expect("adaptive evaluates");
            assert_eq!(
                out, pinned,
                "run {run}, {threads} threads: adaptive claiming must not change the answer"
            );
        }
    }
}

#[test]
fn build_side_orientation_is_respected_in_parallel() {
    use disco_runtime::BuildSide;
    let left: Bag = people(900);
    let right: Bag = people(90);
    let plan = LogicalExpr::Join {
        left: Box::new(LogicalExpr::Data(left.clone()).bind("x")),
        right: Box::new(LogicalExpr::Data(right.clone()).bind("y")),
        predicate: Some(ScalarExpr::binary(
            ScalarOp::Eq,
            ScalarExpr::var_field("x", "id"),
            ScalarExpr::var_field("y", "id"),
        )),
    }
    .map_project(ScalarExpr::var_field("x", "name"));
    let physical = lower(&plan).expect("lowers");
    let resolved = ResolvedExecs::default();
    for (side, buffered) in [
        (BuildSide::Auto, right.len()),
        (BuildSide::Right, right.len()),
        (BuildSide::Left, left.len()),
    ] {
        let metrics = PipelineMetrics::new();
        let options = PipelineOptions {
            build_side: side,
            threads: 4,
            ..PipelineOptions::default()
        };
        let out =
            evaluate_physical_with(&physical, &resolved, &metrics, options).expect("evaluates");
        let serial = evaluate_physical_with_options(
            &physical,
            &resolved,
            PipelineOptions {
                build_side: side,
                threads: 1,
                ..PipelineOptions::default()
            },
        )
        .expect("serial");
        assert_eq!(out, serial);
        assert_eq!(
            metrics.rows_materialized(),
            buffered,
            "{side:?}: the chosen build side must be the buffered one"
        );
    }
}
