//! Shared plan/value generators for the differential test suites
//! (`streaming_equivalence.rs`, `parallel_equivalence.rs`): seeded random
//! person bags, random mediator-shaped plans, and random partial-answer
//! scenarios with mixed source availability.

#![allow(dead_code)] // each integration test compiles its own copy

use disco_algebra::{LogicalExpr, ScalarExpr, ScalarOp};
use disco_runtime::{ExecKey, ExecOutcome, ResolvedExecs, SourceCallStats};
use disco_value::{Bag, StructValue, Value};
use rand::rngs::StdRng;
use rand::Rng;

pub fn person(id: i64, name: &str, salary: i64) -> Value {
    Value::Struct(
        StructValue::new(vec![
            ("id", Value::Int(id)),
            ("name", Value::from(name)),
            ("salary", Value::Int(salary)),
        ])
        .unwrap(),
    )
}

pub fn random_people(rng: &mut StdRng, rows: usize, id_space: i64) -> Bag {
    (0..rows)
        .map(|_| {
            person(
                rng.gen_range(0..id_space),
                &format!("p{}", rng.gen_range(0..id_space)),
                rng.gen_range(0..100i64),
            )
        })
        .collect()
}

/// A random source pipeline bound to `var`: data, optionally filtered.
pub fn random_branch(rng: &mut StdRng, var: &str) -> LogicalExpr {
    let rows = rng.gen_range(0..30);
    let source = LogicalExpr::Data(random_people(rng, rows, 8)).bind(var);
    if rng.gen_bool(0.5) {
        source.filter(ScalarExpr::binary(
            ScalarOp::Gt,
            ScalarExpr::var_field(var, "salary"),
            ScalarExpr::constant(rng.gen_range(0..100i64)),
        ))
    } else {
        source
    }
}

/// One random plan out of the shape families the mediator produces.
pub fn random_plan(rng: &mut StdRng) -> LogicalExpr {
    match rng.gen_range(0..6) {
        // filter → map
        0 => random_branch(rng, "x").map_project(ScalarExpr::var_field("x", "name")),
        // union of branches, optionally distinct
        1 => {
            let n = rng.gen_range(2..4);
            let branches = (0..n)
                .map(|_| random_branch(rng, "x").map_project(ScalarExpr::var_field("x", "name")))
                .collect();
            let union = LogicalExpr::Union(branches);
            if rng.gen_bool(0.5) {
                LogicalExpr::Distinct(Box::new(union))
            } else {
                union
            }
        }
        // equi-join (lowers to a hash join) → computed projection
        2 => LogicalExpr::Join {
            left: Box::new(random_branch(rng, "x")),
            right: Box::new(random_branch(rng, "y")),
            predicate: Some(ScalarExpr::binary(
                ScalarOp::Eq,
                ScalarExpr::var_field("x", "id"),
                ScalarExpr::var_field("y", "id"),
            )),
        }
        .map_project(ScalarExpr::StructLit(vec![
            ("name".into(), ScalarExpr::var_field("x", "name")),
            (
                "total".into(),
                ScalarExpr::binary(
                    ScalarOp::Add,
                    ScalarExpr::var_field("x", "salary"),
                    ScalarExpr::var_field("y", "salary"),
                ),
            ),
        ])),
        // non-equi join (lowers to a nested loop)
        3 => LogicalExpr::Join {
            left: Box::new(random_branch(rng, "x")),
            right: Box::new(random_branch(rng, "y")),
            predicate: Some(ScalarExpr::binary(
                ScalarOp::Lt,
                ScalarExpr::var_field("x", "id"),
                ScalarExpr::var_field("y", "id"),
            )),
        }
        .map_project(ScalarExpr::var_field("x", "name")),
        // aggregate over a mapped, filtered source
        4 => {
            let func = [
                disco_algebra::AggKind::Sum,
                disco_algebra::AggKind::Count,
                disco_algebra::AggKind::Min,
                disco_algebra::AggKind::Max,
                disco_algebra::AggKind::Avg,
            ][rng.gen_range(0..5usize)];
            LogicalExpr::Aggregate {
                func,
                input: Box::new(
                    random_branch(rng, "x").map_project(ScalarExpr::var_field("x", "salary")),
                ),
            }
        }
        // distinct over a join projection (the deep-pipeline shape)
        _ => LogicalExpr::Distinct(Box::new(
            LogicalExpr::Join {
                left: Box::new(random_branch(rng, "x")),
                right: Box::new(random_branch(rng, "y")),
                predicate: Some(ScalarExpr::binary(
                    ScalarOp::Eq,
                    ScalarExpr::var_field("x", "id"),
                    ScalarExpr::var_field("y", "id"),
                )),
            }
            .map_project(ScalarExpr::var_field("y", "name")),
        )),
    }
}

pub fn stats_for(repo: &str, extent: &str, available: bool, rows: usize) -> SourceCallStats {
    SourceCallStats {
        repository: repo.to_owned(),
        extent: extent.to_owned(),
        available,
        rows_returned: rows,
        rows_scanned: rows,
        latency: std::time::Duration::ZERO,
    }
}

/// Builds a random federation query over `n` submit branches and a random
/// resolution in which each source independently answered or not.
pub fn random_partial_scenario(rng: &mut StdRng) -> (LogicalExpr, ResolvedExecs) {
    let n = rng.gen_range(1..5usize);
    let mut resolved = ResolvedExecs::default();
    let mut branches = Vec::with_capacity(n);
    for i in 0..n {
        let extent = format!("person{i}");
        let repo = format!("r{i}");
        let shipped = LogicalExpr::get(&extent);
        let branch = shipped
            .clone()
            .submit(&repo, "w0", &extent)
            .filter(ScalarExpr::binary(
                ScalarOp::Gt,
                ScalarExpr::attr("salary"),
                ScalarExpr::constant(rng.gen_range(0..100i64)),
            ))
            .bind("x")
            .map_project(ScalarExpr::var_field("x", "name"));
        branches.push(branch);
        let key = ExecKey::new(&repo, &extent, &shipped);
        if rng.gen_bool(0.6) {
            let n_rows = rng.gen_range(0..10);
            let rows = random_people(rng, n_rows, 6);
            let len = rows.len();
            resolved.insert(
                key,
                ExecOutcome::Rows(rows),
                stats_for(&repo, &extent, true, len),
            );
        } else {
            resolved.insert(
                key,
                ExecOutcome::Unavailable,
                stats_for(&repo, &extent, false, 0),
            );
        }
    }
    let plan = if branches.len() == 1 {
        branches.into_iter().next().unwrap()
    } else {
        LogicalExpr::Union(branches)
    };
    (plan, resolved)
}
