//! Differential tests for the memory-budgeted spill path.
//!
//! Three claims are pinned here:
//!
//! 1. **Budget transparency**: random plans from the shared generator
//!    produce multiset-identical answers — and identical
//!    `rows_materialized` counts — under a tiny memory budget (every
//!    pipeline breaker spills) and under the default unbounded budget,
//!    at 1 and 4 threads.  Partial answers of federated plans match too.
//! 2. **The budget actually engages**: the tiny-budget runs report
//!    nonzero `bytes_spilled` / `spill_partitions` in aggregate, while
//!    unbounded runs report exactly zero everywhere (including
//!    `peak_tracked_bytes`, which only bounded budgets track).
//! 3. **Error identity**: an evaluation error raised after spilling has
//!    begun surfaces with exactly the same error text as the unbounded
//!    path, at 1 and 4 threads.

mod common;

use common::{person, random_partial_scenario, random_plan};
use disco_algebra::{lower, AggKind, LogicalExpr, ScalarExpr, ScalarOp};
use disco_runtime::{
    evaluate_physical_with, partial_evaluate_opts, reference, substitute_resolved, MemBudget,
    PipelineMetrics, PipelineOptions, ResolvedExecs,
};
use disco_value::{Bag, StructValue, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREAD_COUNTS: [usize; 2] = [1, 4];

/// Small enough that any multi-row breaker state trips, large enough
/// that a single-row partition reload does not recurse to the deepest
/// spill level (which would only waste test time, not change answers).
const TINY_BUDGET: usize = 256;

/// The budget for the peak-bound tests: the inner-buffer shapes feed it
/// roughly 10x this many bytes, and admission trips at row granularity,
/// so the tracked peak may overshoot by at most one row — well inside
/// the ~1.02x bound below.  (`TINY_BUDGET` cannot make this claim: a
/// single ~150-byte person row is already more than 2% of 256 bytes.)
const INNER_BUDGET: usize = 65536;

/// `peak_tracked_bytes` must stay within ~1.02x of [`INNER_BUDGET`].
const PEAK_BOUND: usize = INNER_BUDGET + INNER_BUDGET / 50;

fn opts(threads: usize, mem_budget: MemBudget) -> PipelineOptions {
    PipelineOptions {
        threads,
        mem_budget,
        ..PipelineOptions::default()
    }
}

#[test]
fn tiny_budget_matches_unbounded_on_random_plans() {
    let resolved = ResolvedExecs::default();
    let mut spilled_total = 0u64;
    let mut partitions_total = 0usize;
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(0x5B111ED + seed);
        let plan = random_plan(&mut rng);
        let physical = lower(&plan).expect("plan lowers");
        let expected =
            reference::evaluate_physical(&physical, &resolved).expect("reference evaluates");
        for threads in THREAD_COUNTS {
            let unbounded = PipelineMetrics::new();
            let baseline = evaluate_physical_with(
                &physical,
                &resolved,
                &unbounded,
                opts(threads, MemBudget::Unbounded),
            )
            .expect("unbounded evaluates");
            assert_eq!(baseline, expected, "seed {seed}, {threads} threads");
            assert_eq!(
                unbounded.bytes_spilled(),
                0,
                "unbounded must never touch disk"
            );
            assert_eq!(unbounded.spill_partitions(), 0);
            assert_eq!(
                unbounded.peak_tracked_bytes(),
                0,
                "unbounded budgets do not track bytes"
            );

            let tiny = PipelineMetrics::new();
            let spilled = evaluate_physical_with(
                &physical,
                &resolved,
                &tiny,
                opts(threads, MemBudget::Bytes(TINY_BUDGET)),
            )
            .expect("tiny-budget evaluates");
            assert_eq!(
                spilled, expected,
                "seed {seed}, {threads} threads: spilling must not change the answer"
            );
            assert_eq!(
                tiny.rows_materialized(),
                unbounded.rows_materialized(),
                "seed {seed}, {threads} threads: rows_materialized must not depend on spilling"
            );
            spilled_total += tiny.bytes_spilled();
            partitions_total += tiny.spill_partitions();
        }
    }
    assert!(
        spilled_total > 0,
        "40 random plans under a {TINY_BUDGET}-byte budget must spill somewhere"
    );
    assert!(partitions_total > 0);
}

#[test]
fn tiny_budget_preserves_partial_answers_of_federated_plans() {
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(0x5B111 + seed);
        let (plan, resolved) = random_partial_scenario(&mut rng);
        let substituted = substitute_resolved(&plan, &resolved);
        for threads in THREAD_COUNTS {
            let (data_u, residual_u) =
                partial_evaluate_opts(&substituted, &resolved, opts(threads, MemBudget::Unbounded))
                    .expect("unbounded partial eval");
            let (data_t, residual_t) = partial_evaluate_opts(
                &substituted,
                &resolved,
                opts(threads, MemBudget::Bytes(TINY_BUDGET)),
            )
            .expect("tiny-budget partial eval");
            assert_eq!(
                data_t, data_u,
                "seed {seed}, {threads} threads: partial answer data must match"
            );
            assert_eq!(
                residual_t, residual_u,
                "seed {seed}, {threads} threads: residual plans must be identical"
            );
        }
    }
}

/// The deep-pipeline shape (filter → hash-join → computed projection →
/// distinct): both breaker kinds hold multi-kilobyte state, so a 4 KiB
/// budget forces both the join build table and the distinct seen-set to
/// disk.
fn deep_pipeline_plan(left_rows: usize, right_rows: usize) -> LogicalExpr {
    let left: Bag = (0..left_rows)
        .map(|i| person((i % 97) as i64, &format!("p{}", i % 61), (i % 199) as i64))
        .collect();
    let right: Bag = (0..right_rows)
        .map(|i| person((i % 97) as i64, &format!("r{}", i % 13), (i % 53) as i64))
        .collect();
    LogicalExpr::Distinct(Box::new(
        LogicalExpr::Join {
            left: Box::new(LogicalExpr::Data(left).bind("x").filter(ScalarExpr::binary(
                ScalarOp::Gt,
                ScalarExpr::var_field("x", "salary"),
                ScalarExpr::constant(40i64),
            ))),
            right: Box::new(LogicalExpr::Data(right).bind("y")),
            predicate: Some(ScalarExpr::binary(
                ScalarOp::Eq,
                ScalarExpr::var_field("x", "id"),
                ScalarExpr::var_field("y", "id"),
            )),
        }
        .map_project(ScalarExpr::StructLit(vec![
            ("name".into(), ScalarExpr::var_field("x", "name")),
            (
                "total".into(),
                ScalarExpr::binary(
                    ScalarOp::Add,
                    ScalarExpr::var_field("x", "salary"),
                    ScalarExpr::var_field("y", "salary"),
                ),
            ),
        ])),
    ))
}

#[test]
fn deep_join_distinct_pipeline_spills_and_matches() {
    let resolved = ResolvedExecs::default();
    let physical = lower(&deep_pipeline_plan(2_000, 400)).expect("lowers");

    let unbounded = PipelineMetrics::new();
    let expected = evaluate_physical_with(
        &physical,
        &resolved,
        &unbounded,
        opts(1, MemBudget::Unbounded),
    )
    .expect("unbounded evaluates");
    assert_eq!(unbounded.bytes_spilled(), 0);

    for threads in THREAD_COUNTS {
        let metrics = PipelineMetrics::new();
        let out = evaluate_physical_with(
            &physical,
            &resolved,
            &metrics,
            opts(threads, MemBudget::Bytes(4096)),
        )
        .expect("budgeted evaluates");
        assert_eq!(out, expected, "{threads} threads");
        assert_eq!(
            metrics.rows_materialized(),
            unbounded.rows_materialized(),
            "{threads} threads: breaker buffering must be budget-invariant"
        );
        assert!(
            metrics.bytes_spilled() > 0,
            "{threads} threads: a 4 KiB budget must spill this shape"
        );
        assert!(
            metrics.spill_partitions() >= 8,
            "{threads} threads: at least one full fan-out"
        );
        assert!(metrics.peak_tracked_bytes() > 0);
    }
}

/// A join+distinct whose probe side contains one malformed row (missing
/// the projected field) *late* in the input — the error is raised after
/// the build side has already spilled under a tiny budget.
fn poisoned_plan() -> LogicalExpr {
    let left: Bag = (0..800)
        .map(|i| {
            if i == 777 {
                Value::Struct(StructValue::new(vec![("id", Value::Int((i % 97) as i64))]).unwrap())
            } else {
                person((i % 97) as i64, &format!("p{i}"), (i % 199) as i64)
            }
        })
        .collect();
    let right: Bag = (0..200)
        .map(|i| person((i % 97) as i64, &format!("r{i}"), (i % 53) as i64))
        .collect();
    LogicalExpr::Distinct(Box::new(
        LogicalExpr::Join {
            left: Box::new(LogicalExpr::Data(left).bind("x")),
            right: Box::new(LogicalExpr::Data(right).bind("y")),
            predicate: Some(ScalarExpr::binary(
                ScalarOp::Eq,
                ScalarExpr::var_field("x", "id"),
                ScalarExpr::var_field("y", "id"),
            )),
        }
        .map_project(ScalarExpr::binary(
            ScalarOp::Add,
            ScalarExpr::var_field("x", "salary"),
            ScalarExpr::var_field("y", "salary"),
        )),
    ))
}

#[test]
fn errors_after_spill_match_the_unbounded_error_exactly() {
    let resolved = ResolvedExecs::default();
    let physical = lower(&poisoned_plan()).expect("lowers");
    for threads in THREAD_COUNTS {
        let unbounded = evaluate_physical_with(
            &physical,
            &resolved,
            &PipelineMetrics::new(),
            opts(threads, MemBudget::Unbounded),
        )
        .expect_err("missing field errors");
        let tiny_metrics = PipelineMetrics::new();
        let tiny = evaluate_physical_with(
            &physical,
            &resolved,
            &tiny_metrics,
            opts(threads, MemBudget::Bytes(TINY_BUDGET)),
        )
        .expect_err("missing field errors under budget too");
        assert_eq!(
            tiny.to_string(),
            unbounded.to_string(),
            "{threads} threads: identical error text"
        );
        assert!(
            tiny_metrics.bytes_spilled() > 0,
            "{threads} threads: the error must have been raised after spilling began"
        );
    }
}

/// Pins the PR 8 bound documented in ROADMAP ("known bounds"): once a
/// distinct's seen-set trips the budget, its **residual emission order
/// is partition-major** — the values emitted before the trip keep
/// first-occurrence order, the rest come grouped by spill partition, not
/// in input order.  Bag answers are order-insensitive so this is
/// invisible to answer equality, but order-sensitive consumers (e.g.
/// error tests that rely on which row a pipeline reaches first) must pin
/// against the multiset, never the spilled sequence.
#[test]
fn spilled_distinct_residual_emission_is_partition_major_not_input_order() {
    let resolved = ResolvedExecs::default();
    // 1024 distinct values: several pipeline batches, so the budget trip
    // (acted on at batch boundaries) leaves a real residual to spill.
    let input: Vec<Value> = (0..1024).map(Value::Int).collect();
    let physical = lower(&LogicalExpr::Distinct(Box::new(LogicalExpr::Data(
        input.iter().cloned().collect::<Bag>(),
    ))))
    .expect("lowers");
    let first_occurrence: Vec<Value> = (0..1024).map(Value::Int).collect();

    let unbounded = evaluate_physical_with(
        &physical,
        &resolved,
        &PipelineMetrics::new(),
        opts(1, MemBudget::Unbounded),
    )
    .expect("unbounded evaluates");
    // In memory, emission order IS first-occurrence order.
    assert_eq!(unbounded.as_slice(), first_occurrence.as_slice());

    // The spill partition router is seeded per cursor, so the residual
    // order varies run to run; every run must satisfy the bound, and at
    // least one must visibly depart from input order.
    let mut any_departed = false;
    for run in 0..5 {
        let metrics = PipelineMetrics::new();
        let spilled = evaluate_physical_with(
            &physical,
            &resolved,
            &metrics,
            opts(1, MemBudget::Bytes(TINY_BUDGET)),
        )
        .expect("budgeted evaluates");
        assert!(
            metrics.bytes_spilled() > 0,
            "run {run}: the distinct must actually spill"
        );
        // Multiset identity and exactly-once emission: the per-partition
        // seen runs must prevent re-emission across partitions.
        assert_eq!(spilled, unbounded, "run {run}: answers must match");
        assert_eq!(spilled.len(), first_occurrence.len(), "run {run}");
        // The pre-trip prefix preserves first-occurrence order: the
        // emitted sequence starts with some prefix of the input order.
        let emitted = spilled.as_slice();
        let prefix = emitted
            .iter()
            .zip(&first_occurrence)
            .take_while(|(a, b)| a == b)
            .count();
        assert!(
            prefix < emitted.len() || !any_departed,
            "run {run}: a fully in-order spilled emission is possible but \
             must not be relied on"
        );
        if emitted[prefix..] != first_occurrence[prefix..] {
            any_departed = true;
        }
    }
    assert!(
        any_departed,
        "five spilled runs over 1024 values never departed from input order — \
         either the router became deterministic-in-order (update the \
         partition-major docs) or the budget never tripped"
    );
}

// ---------------------------------------------------------------------
// The buffered inner sides (nested-loop and merge-tuples joins) and
// correlated sub-queries share the breakers' budget: ~10x-budget inputs
// must complete with identical answers and a bounded tracked peak.
// ---------------------------------------------------------------------

/// A non-equi join (lowers to a nested loop) whose right side is ~10x
/// [`INNER_BUDGET`] bytes, so most of the inner buffer lands in the
/// spilled tail and every left row replays it from disk.
fn nested_loop_plan(left_rows: usize, right_rows: usize) -> LogicalExpr {
    let left: Bag = (0..left_rows)
        .map(|i| person(95 + (i % 5) as i64, &format!("L{i}"), i as i64))
        .collect();
    let right: Bag = (0..right_rows)
        .map(|i| person((i % 101) as i64, &format!("R{}", i % 17), (i % 211) as i64))
        .collect();
    LogicalExpr::Join {
        left: Box::new(LogicalExpr::Data(left).bind("x")),
        right: Box::new(LogicalExpr::Data(right).bind("y")),
        predicate: Some(ScalarExpr::binary(
            ScalarOp::Lt,
            ScalarExpr::var_field("x", "id"),
            ScalarExpr::var_field("y", "id"),
        )),
    }
    .map_project(ScalarExpr::StructLit(vec![
        ("name".into(), ScalarExpr::var_field("y", "name")),
        (
            "total".into(),
            ScalarExpr::binary(
                ScalarOp::Add,
                ScalarExpr::var_field("x", "salary"),
                ScalarExpr::var_field("y", "salary"),
            ),
        ),
    ]))
}

#[test]
fn nested_loop_inner_buffer_spills_within_the_peak_bound_and_matches() {
    let resolved = ResolvedExecs::default();
    let physical = lower(&nested_loop_plan(16, 4_500)).expect("lowers");

    let unbounded = PipelineMetrics::new();
    let expected = evaluate_physical_with(
        &physical,
        &resolved,
        &unbounded,
        opts(1, MemBudget::Unbounded),
    )
    .expect("unbounded evaluates");
    assert_eq!(unbounded.bytes_spilled(), 0);
    assert!(
        !expected.is_empty(),
        "the non-equi predicate must match pairs"
    );

    for threads in THREAD_COUNTS {
        let metrics = PipelineMetrics::new();
        let out = evaluate_physical_with(
            &physical,
            &resolved,
            &metrics,
            opts(threads, MemBudget::Bytes(INNER_BUDGET)),
        )
        .expect("budgeted evaluates");
        assert_eq!(
            out, expected,
            "{threads} threads: the spilled inner must not change the answer"
        );
        assert!(
            metrics.bytes_spilled() > 0,
            "{threads} threads: a ~10x-budget inner side must spill"
        );
        let peak = metrics.peak_tracked_bytes();
        assert!(peak > 0, "{threads} threads: bounded budgets track bytes");
        assert!(
            peak <= PEAK_BOUND,
            "{threads} threads: peak {peak} exceeds ~1.02x of the \
             {INNER_BUDGET}-byte budget"
        );
    }
}

/// A source-style merge-tuples join whose right side is ~10x the budget;
/// its inner buffer holds raw `Value`s rather than frame rows but runs
/// through the same admit/seal/tail-pass machinery.
fn merge_tuples_plan(left_rows: usize, right_rows: usize) -> LogicalExpr {
    let left: Bag = (0..left_rows)
        .map(|i| person((i % 13) as i64, &format!("L{i}"), i as i64))
        .collect();
    let right: Bag = (0..right_rows)
        .map(|i| person((i % 101) as i64, &format!("R{}", i % 17), (i % 211) as i64))
        .collect();
    LogicalExpr::SourceJoin {
        left: Box::new(LogicalExpr::Data(left)),
        right: Box::new(LogicalExpr::Data(right)),
        on: vec![("id".into(), "id".into())],
    }
}

#[test]
fn merge_tuples_inner_buffer_spills_within_the_peak_bound_and_matches() {
    let resolved = ResolvedExecs::default();
    let physical = lower(&merge_tuples_plan(16, 4_500)).expect("lowers");

    let unbounded = PipelineMetrics::new();
    let expected = evaluate_physical_with(
        &physical,
        &resolved,
        &unbounded,
        opts(1, MemBudget::Unbounded),
    )
    .expect("unbounded evaluates");
    assert_eq!(unbounded.bytes_spilled(), 0);
    assert!(!expected.is_empty(), "the equi keys must match pairs");

    for threads in THREAD_COUNTS {
        let metrics = PipelineMetrics::new();
        let out = evaluate_physical_with(
            &physical,
            &resolved,
            &metrics,
            opts(threads, MemBudget::Bytes(INNER_BUDGET)),
        )
        .expect("budgeted evaluates");
        assert_eq!(
            out, expected,
            "{threads} threads: the spilled inner must not change the answer"
        );
        assert!(
            metrics.bytes_spilled() > 0,
            "{threads} threads: a ~10x-budget inner side must spill"
        );
        let peak = metrics.peak_tracked_bytes();
        assert!(
            peak <= PEAK_BOUND,
            "{threads} threads: peak {peak} exceeds ~1.02x of the \
             {INNER_BUDGET}-byte budget"
        );
    }
}

/// A correlated aggregate whose per-outer-row sub-query runs a distinct
/// over ~10x-budget data: the sub-query's seen-set charges the *parent*
/// execution's shared budget, so it must spill — and the parent's
/// tracked peak stays within the same ~1.02x bound.
fn correlated_distinct_plan(outer_rows: usize, inner_rows: usize) -> LogicalExpr {
    let inner: Bag = (0..inner_rows)
        .map(|i| person((i % 397) as i64, &format!("n{i}"), (i % 397) as i64))
        .collect();
    let subplan = LogicalExpr::Distinct(Box::new(
        LogicalExpr::Data(inner)
            .bind("z")
            .filter(ScalarExpr::binary(
                ScalarOp::Lt,
                ScalarExpr::var_field("x", "id"),
                ScalarExpr::var_field("z", "salary"),
            ))
            .map_project(ScalarExpr::var_field("z", "name")),
    ));
    LogicalExpr::Data(
        (0..outer_rows)
            .map(|i| person(i as i64, &format!("O{i}"), i as i64))
            .collect::<Bag>(),
    )
    .bind("x")
    .map_project(ScalarExpr::StructLit(vec![
        ("name".into(), ScalarExpr::var_field("x", "name")),
        (
            "matches".into(),
            ScalarExpr::Agg(AggKind::Count, Box::new(subplan)),
        ),
    ]))
}

#[test]
fn correlated_subqueries_spill_against_the_parent_budget() {
    let resolved = ResolvedExecs::default();
    let physical = lower(&correlated_distinct_plan(8, 4_000)).expect("lowers");

    let unbounded = PipelineMetrics::new();
    let expected = evaluate_physical_with(
        &physical,
        &resolved,
        &unbounded,
        opts(1, MemBudget::Unbounded),
    )
    .expect("unbounded evaluates");
    assert_eq!(unbounded.bytes_spilled(), 0);

    for threads in THREAD_COUNTS {
        let metrics = PipelineMetrics::new();
        let out = evaluate_physical_with(
            &physical,
            &resolved,
            &metrics,
            opts(threads, MemBudget::Bytes(INNER_BUDGET)),
        )
        .expect("budgeted evaluates");
        assert_eq!(
            out, expected,
            "{threads} threads: spilled sub-queries must not change the answer"
        );
        assert!(
            metrics.bytes_spilled() > 0,
            "{threads} threads: each sub-query's distinct holds ~10x the \
             shared budget and must spill"
        );
        let peak = metrics.peak_tracked_bytes();
        assert!(
            peak <= PEAK_BOUND,
            "{threads} threads: peak {peak} exceeds ~1.02x of the \
             {INNER_BUDGET}-byte budget shared with sub-queries"
        );
    }
}

/// A nested-loop join whose left (streamed) side carries one malformed
/// row — missing `id`, so the predicate itself errors — after the right
/// side has already been buffered and spilled.
fn poisoned_nested_loop_plan() -> LogicalExpr {
    let left: Bag = (0..800)
        .map(|i| {
            if i == 177 {
                Value::Struct(StructValue::new(vec![("name", Value::from("broken"))]).unwrap())
            } else {
                // ids far above every right id: the Lt predicate matches
                // nothing, keeping the run cheap.
                person(200 + (i % 5) as i64, &format!("p{i}"), i as i64)
            }
        })
        .collect();
    let right: Bag = (0..1_200)
        .map(|i| person((i % 101) as i64, &format!("r{}", i % 17), (i % 211) as i64))
        .collect();
    LogicalExpr::Join {
        left: Box::new(LogicalExpr::Data(left).bind("x")),
        right: Box::new(LogicalExpr::Data(right).bind("y")),
        predicate: Some(ScalarExpr::binary(
            ScalarOp::Lt,
            ScalarExpr::var_field("x", "id"),
            ScalarExpr::var_field("y", "id"),
        )),
    }
    .map_project(ScalarExpr::var_field("x", "name"))
}

#[test]
fn nested_loop_errors_after_spill_match_the_unbounded_error_exactly() {
    let resolved = ResolvedExecs::default();
    let physical = lower(&poisoned_nested_loop_plan()).expect("lowers");
    for threads in THREAD_COUNTS {
        let unbounded = evaluate_physical_with(
            &physical,
            &resolved,
            &PipelineMetrics::new(),
            opts(threads, MemBudget::Unbounded),
        )
        .expect_err("missing field errors");
        let metrics = PipelineMetrics::new();
        let budgeted = evaluate_physical_with(
            &physical,
            &resolved,
            &metrics,
            opts(threads, MemBudget::Bytes(INNER_BUDGET)),
        )
        .expect_err("missing field errors under budget too");
        assert_eq!(
            budgeted.to_string(),
            unbounded.to_string(),
            "{threads} threads: identical error text"
        );
        assert!(
            metrics.bytes_spilled() > 0,
            "{threads} threads: the inner buffer spilled before the error"
        );
    }
}
