//! Differential tests: the columnar (vectorized-kernel) engine against
//! the row-at-a-time cursor path.
//!
//! Every test runs the same plan with `ColumnarMode::On` and
//! `ColumnarMode::Off` and asserts multiset-equal answers plus identical
//! breaker metrics (`rows_materialized`, `rows_merged`, `rows_emitted`).
//! The value-plane edge cases the kernels must preserve are pinned
//! explicitly: NaN under `total_cmp`, null propagation through
//! comparisons and arithmetic, dictionary-column equality for
//! content-equal strings from distinct allocations, empty and
//! all-filtered selections, irregular (mixed-type / missing-field)
//! batches, and error identity between the kernel bail-out path and the
//! row evaluator.  The vectorized hash join gets its own section: float
//! and NaN keys under `total_cmp`, null keys, dictionary and
//! non-dictionary string keys from distinct allocations, batch-size
//! invariance across the join boundary, and thread-count × mode parity.

mod common;

use common::random_plan;
use disco_algebra::{lower, LogicalExpr, ScalarExpr, ScalarOp};
use disco_runtime::{
    evaluate_physical_with, ColumnarMode, MemBudget, PipelineMetrics, PipelineOptions,
    ResolvedExecs,
};
use disco_value::{Bag, StructValue, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn options(mode: ColumnarMode) -> PipelineOptions {
    // Serial by default so kernel-coverage counts are exact per plan; the
    // thread-parity tests below pass explicit thread counts.
    PipelineOptions {
        threads: 1,
        columnar: mode,
        ..PipelineOptions::default()
    }
}

/// Runs both modes, asserts equivalence, and returns the columnar run.
fn assert_modes_agree(plan: &LogicalExpr) -> (Bag, PipelineMetrics) {
    modes_agree(plan, MemBudget::default())
}

/// Like [`assert_modes_agree`] with the memory budget pinned unbounded —
/// for the join kernel-engagement assertions: a bounded budget (e.g. a
/// `DISCO_MEM_BUDGET` forced through the environment) makes the fused
/// join decline to the spillable row path by design, which would read
/// here as a vectorization regression.
fn assert_modes_agree_unbounded(plan: &LogicalExpr) -> (Bag, PipelineMetrics) {
    modes_agree(plan, MemBudget::Unbounded)
}

fn modes_agree(plan: &LogicalExpr, mem_budget: MemBudget) -> (Bag, PipelineMetrics) {
    let run = |mode| {
        let physical = lower(plan).expect("plan lowers");
        let resolved = ResolvedExecs::default();
        let metrics = PipelineMetrics::new();
        let options = PipelineOptions {
            mem_budget,
            ..options(mode)
        };
        let bag = evaluate_physical_with(&physical, &resolved, &metrics, options)
            .expect("plan evaluates");
        (bag, metrics)
    };
    let (on, m_on) = run(ColumnarMode::On);
    let (off, m_off) = run(ColumnarMode::Off);
    assert_eq!(on, off, "columnar answer must equal the row-path answer");
    assert_eq!(
        m_on.rows_materialized(),
        m_off.rows_materialized(),
        "breakers must buffer identical row counts in both modes"
    );
    assert_eq!(m_on.rows_merged(), m_off.rows_merged());
    assert_eq!(m_on.rows_emitted(), m_off.rows_emitted());
    assert_eq!(m_off.rows_kernel(), 0, "row path reports no kernel rows");
    assert_eq!(m_off.rows_fallback(), 0, "row path reports no fallback");
    (on, m_on)
}

fn row(fields: Vec<(&str, Value)>) -> Value {
    Value::Struct(StructValue::new(fields).expect("distinct field names"))
}

fn people(rows: i64) -> Bag {
    (0..rows)
        .map(|i| {
            row(vec![
                ("id", Value::Int(i % 16)),
                ("name", Value::from(format!("p-{}", i % 16))),
                ("salary", Value::Int((i * 37) % 100)),
            ])
        })
        .collect()
}

fn salary_gt(limit: i64) -> ScalarExpr {
    ScalarExpr::binary(
        ScalarOp::Gt,
        ScalarExpr::var_field("x", "salary"),
        ScalarExpr::constant(limit),
    )
}

#[test]
fn columnar_matches_row_path_on_random_plans() {
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(0xC01A + seed);
        let plan = random_plan(&mut rng);
        assert_modes_agree(&plan);
    }
}

#[test]
fn e9_pipelines_run_fully_kernel_covered() {
    let rows = 500i64;
    let filter_project = LogicalExpr::Data(people(rows))
        .bind("x")
        .filter(salary_gt(50))
        .map_project(ScalarExpr::var_field("x", "name"));
    let (_, metrics) = assert_modes_agree(&filter_project);
    assert_eq!(
        metrics.rows_kernel(),
        rows as usize,
        "every scanned row vectorized"
    );
    assert_eq!(metrics.rows_fallback(), 0, "no per-row fallback");

    let distinct = LogicalExpr::Distinct(Box::new(
        LogicalExpr::Data(people(rows))
            .bind("x")
            .map_project(ScalarExpr::var_field("x", "name")),
    ));
    let (answer, metrics) = assert_modes_agree(&distinct);
    assert_eq!(answer.len(), 16);
    assert_eq!(metrics.rows_kernel(), rows as usize);
    assert_eq!(metrics.rows_fallback(), 0);
}

#[test]
fn nan_ordering_matches_total_cmp_in_both_modes() {
    let bag: Bag = [
        Value::Float(f64::NAN),
        Value::Float(f64::INFINITY),
        Value::Float(1.0),
        Value::Float(-0.0),
        Value::Float(0.0),
        Value::Int(2),
        Value::Null,
    ]
    .into_iter()
    .map(|v| row(vec![("v", v)]))
    .collect();
    // Under `total_cmp` NaN sorts above +inf, and -0.0 below 0.0.
    let gt_zero = LogicalExpr::Data(bag.clone())
        .bind("x")
        .filter(ScalarExpr::binary(
            ScalarOp::Gt,
            ScalarExpr::var_field("x", "v"),
            ScalarExpr::Const(Value::Float(0.0)),
        ));
    let (answer, _) = assert_modes_agree(&gt_zero);
    assert_eq!(answer.len(), 4, "NaN, +inf, 1.0 and Int(2) exceed 0.0");

    // NaN == NaN and -0.0 != 0.0 under the value plane's equality.
    let eq_nan = LogicalExpr::Data(bag).bind("x").filter(ScalarExpr::binary(
        ScalarOp::Eq,
        ScalarExpr::var_field("x", "v"),
        ScalarExpr::Const(Value::Float(f64::NAN)),
    ));
    let (answer, _) = assert_modes_agree(&eq_nan);
    assert_eq!(answer.len(), 1);
}

#[test]
fn null_masks_propagate_through_comparisons_and_arithmetic() {
    let bag: Bag = (0..50)
        .map(|i| {
            let v = if i % 5 == 0 {
                Value::Null
            } else {
                Value::Int(i)
            };
            row(vec![("salary", v)])
        })
        .collect();
    // Ordered comparisons on null are false; nulls must never survive.
    let cmp = LogicalExpr::Data(bag.clone())
        .bind("x")
        .filter(salary_gt(-1));
    let (answer, _) = assert_modes_agree(&cmp);
    assert_eq!(answer.len(), 40, "the 10 null salaries compare false");

    // Arithmetic on null yields null, and `Null == Null` is true, so the
    // null rows survive this self-comparison — in both modes.
    let arith = LogicalExpr::Data(bag).bind("x").filter(ScalarExpr::binary(
        ScalarOp::Eq,
        ScalarExpr::binary(
            ScalarOp::Add,
            ScalarExpr::var_field("x", "salary"),
            ScalarExpr::constant(0i64),
        ),
        ScalarExpr::var_field("x", "salary"),
    ));
    let (answer, _) = assert_modes_agree(&arith);
    assert_eq!(answer.len(), 50, "null + 0 is null and Null == Null holds");
}

#[test]
fn dictionary_columns_dedup_content_equal_strings_from_distinct_allocations() {
    // Every row allocates its own string: equal content, different Arcs.
    // The dictionary must code by content, exactly like `Value` equality.
    let bag: Bag = (0..300)
        .map(|i| row(vec![("name", Value::from(format!("dup-{}", i % 7)))]))
        .collect();
    let plan = LogicalExpr::Distinct(Box::new(
        LogicalExpr::Data(bag)
            .bind("x")
            .map_project(ScalarExpr::var_field("x", "name")),
    ));
    let (answer, metrics) = assert_modes_agree(&plan);
    assert_eq!(answer.len(), 7);
    assert_eq!(
        metrics.rows_materialized(),
        7,
        "one seen-set copy per distinct value"
    );
    assert_eq!(metrics.rows_kernel(), 300);
}

#[test]
fn empty_and_all_filtered_selections_are_sound() {
    let empty = LogicalExpr::Data(Bag::new())
        .bind("x")
        .filter(salary_gt(0))
        .map_project(ScalarExpr::var_field("x", "name"));
    let (answer, metrics) = assert_modes_agree(&empty);
    assert!(answer.is_empty());
    assert_eq!(metrics.rows_kernel() + metrics.rows_fallback(), 0);

    let all_filtered = LogicalExpr::Data(people(200))
        .bind("x")
        .filter(salary_gt(1_000_000))
        .map_project(ScalarExpr::var_field("x", "name"));
    let (answer, metrics) = assert_modes_agree(&all_filtered);
    assert!(answer.is_empty());
    assert_eq!(
        metrics.rows_kernel(),
        200,
        "all-filtered batches still vectorize"
    );
    assert_eq!(metrics.rows_emitted(), 0);
}

#[test]
fn mixed_type_columns_and_cross_type_comparisons_agree() {
    // `salary` mixes ints, floats and strings: the column decodes as
    // boxed values and every comparison runs element-wise through
    // `eval_binary` (`total_cmp` is a total order across types).
    let bag: Bag = (0..60)
        .map(|i| {
            let v = match i % 3 {
                0 => Value::Int(i),
                1 => Value::Float(i as f64 + 0.5),
                _ => Value::from(format!("s{i}")),
            };
            row(vec![("salary", v)])
        })
        .collect();
    let plan = LogicalExpr::Data(bag).bind("x").filter(salary_gt(10));
    assert_modes_agree(&plan);
}

#[test]
fn missing_fields_report_the_row_paths_exact_error() {
    // Row 3 lacks `salary`: the kernel path must refuse the batch and let
    // the row evaluator produce its precise error.
    let bag: Bag = (0..5)
        .map(|i| {
            if i == 3 {
                row(vec![("id", Value::Int(i))])
            } else {
                row(vec![("id", Value::Int(i)), ("salary", Value::Int(i))])
            }
        })
        .collect();
    let plan = LogicalExpr::Data(bag).bind("x").filter(salary_gt(0));
    let physical = lower(&plan).expect("plan lowers");
    let resolved = ResolvedExecs::default();
    let on = evaluate_physical_with(
        &physical,
        &resolved,
        &PipelineMetrics::new(),
        options(ColumnarMode::On),
    )
    .expect_err("missing field errors");
    let off = evaluate_physical_with(
        &physical,
        &resolved,
        &PipelineMetrics::new(),
        options(ColumnarMode::Off),
    )
    .expect_err("missing field errors");
    assert_eq!(on.to_string(), off.to_string(), "identical error text");
}

#[test]
fn division_by_zero_bails_to_the_row_paths_exact_error() {
    let bag: Bag = (0..10)
        .map(|i| row(vec![("d", Value::Int(i % 3))]))
        .collect();
    let plan = LogicalExpr::Data(bag)
        .bind("x")
        .map_project(ScalarExpr::binary(
            ScalarOp::Div,
            ScalarExpr::constant(100i64),
            ScalarExpr::var_field("x", "d"),
        ));
    let physical = lower(&plan).expect("plan lowers");
    let resolved = ResolvedExecs::default();
    let on = evaluate_physical_with(
        &physical,
        &resolved,
        &PipelineMetrics::new(),
        options(ColumnarMode::On),
    )
    .expect_err("division by zero");
    let off = evaluate_physical_with(
        &physical,
        &resolved,
        &PipelineMetrics::new(),
        options(ColumnarMode::Off),
    )
    .expect_err("division by zero");
    assert_eq!(on.to_string(), off.to_string());
}

/// An equi-join of `left` and `right` on field `key` of both sides, with
/// a compound map over the pair — the shape the vectorized join fuses.
fn join_on(left: Bag, right: Bag, key: &str) -> LogicalExpr {
    LogicalExpr::Join {
        left: Box::new(LogicalExpr::Data(left).bind("x")),
        right: Box::new(LogicalExpr::Data(right).bind("y")),
        predicate: Some(ScalarExpr::binary(
            ScalarOp::Eq,
            ScalarExpr::var_field("x", key),
            ScalarExpr::var_field("y", key),
        )),
    }
    .map_project(ScalarExpr::StructLit(vec![
        ("l".into(), ScalarExpr::var_field("x", key)),
        ("r".into(), ScalarExpr::var_field("y", key)),
    ]))
}

#[test]
fn join_vectorizes_build_and_probe_rows() {
    let plan = join_on(people(400), people(40), "id");
    let (answer, metrics) = assert_modes_agree_unbounded(&plan);
    assert_eq!(answer.len(), 400 * 40 / 16, "~25 matches per probe row");
    assert_eq!(
        metrics.rows_kernel(),
        440,
        "every build and probe row vectorized"
    );
    assert_eq!(metrics.rows_fallback(), 0);
    assert_eq!(metrics.rows_materialized(), 40, "build side only");
}

#[test]
fn join_float_and_nan_keys_match_under_total_cmp() {
    // NaN == NaN and -0.0 != 0.0 under the value plane's total order; the
    // batched hasher and the row path must group keys identically.
    let keys = [
        Value::Float(f64::NAN),
        Value::Float(f64::INFINITY),
        Value::Float(-0.0),
        Value::Float(0.0),
        Value::Float(1.5),
        Value::Int(1),
    ];
    let side = |reps: usize| -> Bag {
        keys.iter()
            .cycle()
            .take(keys.len() * reps)
            .map(|v| row(vec![("id", v.clone())]))
            .collect()
    };
    let plan = join_on(side(3), side(2), "id");
    let (answer, _) = assert_modes_agree(&plan);
    // Every key matches only itself: 6 distinct keys × 3 × 2 pairs.
    assert_eq!(answer.len(), 36);
}

#[test]
fn join_null_keys_match_null_keys_in_both_modes() {
    // `Null == Null` holds in the value plane, so null keys join with
    // null keys — the kernel path must not mask them out.
    let side = |rows: i64| -> Bag {
        (0..rows)
            .map(|i| {
                let v = if i % 4 == 0 {
                    Value::Null
                } else {
                    Value::Int(i % 3)
                };
                row(vec![("id", v)])
            })
            .collect()
    };
    let plan = join_on(side(40), side(20), "id");
    assert_modes_agree(&plan);
}

#[test]
fn join_string_keys_hash_by_content_across_allocations() {
    // Build and probe keys come from distinct allocations (and distinct
    // dictionaries); low-cardinality sides dictionary-encode while the
    // high-cardinality probe may not — grouping must stay content-based.
    let dict_side: Bag = (0..120)
        .map(|i| row(vec![("id", Value::from(format!("key-{}", i % 6)))]))
        .collect();
    let wide_side: Bag = (0..90)
        .map(|i| row(vec![("id", Value::from(format!("key-{}", i % 45)))]))
        .collect();
    let plan = join_on(wide_side, dict_side, "id");
    let (answer, metrics) = assert_modes_agree_unbounded(&plan);
    // Shared keys are key-0..key-5: each appears 2× left and 20× right.
    assert_eq!(answer.len(), 6 * 2 * 20);
    assert_eq!(metrics.rows_kernel(), 210, "both sides stay vectorized");
}

#[test]
fn join_answers_survive_any_batch_size_across_the_boundary() {
    let plan = join_on(people(333), people(77), "id");
    let physical = lower(&plan).expect("plan lowers");
    let resolved = ResolvedExecs::default();
    let mut reference: Option<(Bag, usize, usize)> = None;
    for batch_rows in [1usize, 13, 256, 4096] {
        let metrics = PipelineMetrics::new();
        let opts = PipelineOptions {
            batch_rows,
            ..options(ColumnarMode::On)
        };
        let bag =
            evaluate_physical_with(&physical, &resolved, &metrics, opts).expect("plan evaluates");
        let snapshot = (bag, metrics.rows_materialized(), metrics.rows_emitted());
        match &reference {
            None => reference = Some(snapshot),
            Some(expected) => assert_eq!(
                expected, &snapshot,
                "batch_rows={batch_rows} must not change the join's behaviour"
            ),
        }
    }
}

#[test]
fn join_plans_agree_across_thread_counts_and_modes() {
    // The deep-pipeline shape (filtered build input, compound map,
    // distinct sink) exercises the partitioned columnar spine, the
    // vectorized build scatter and the shared-table probe together.
    let joined = LogicalExpr::Join {
        left: Box::new(
            LogicalExpr::Data(people(600))
                .bind("x")
                .filter(salary_gt(30)),
        ),
        right: Box::new(LogicalExpr::Data(people(60)).bind("y")),
        predicate: Some(ScalarExpr::binary(
            ScalarOp::Eq,
            ScalarExpr::var_field("x", "id"),
            ScalarExpr::var_field("y", "id"),
        )),
    }
    .map_project(ScalarExpr::StructLit(vec![
        ("name".into(), ScalarExpr::var_field("x", "name")),
        (
            "total".into(),
            ScalarExpr::binary(
                ScalarOp::Add,
                ScalarExpr::var_field("x", "salary"),
                ScalarExpr::var_field("y", "salary"),
            ),
        ),
    ]));
    let plan = LogicalExpr::Distinct(Box::new(joined));
    let physical = lower(&plan).expect("plan lowers");
    let resolved = ResolvedExecs::default();
    let mut reference: Option<(Bag, usize)> = None;
    for threads in [1usize, 2, 4] {
        for mode in [ColumnarMode::On, ColumnarMode::Off] {
            let metrics = PipelineMetrics::new();
            let opts = PipelineOptions {
                threads,
                ..options(mode)
            };
            let bag = evaluate_physical_with(&physical, &resolved, &metrics, opts)
                .expect("plan evaluates");
            let snapshot = (bag, metrics.rows_materialized());
            match &reference {
                None => reference = Some(snapshot),
                Some(expected) => assert_eq!(
                    expected, &snapshot,
                    "threads={threads} mode={mode:?} must match the serial row path"
                ),
            }
        }
    }
}

#[test]
fn join_key_errors_are_identical_across_threads_and_modes() {
    // Probe row 7 lacks the key field: every engine configuration must
    // surface the row evaluator's exact error.
    let probe: Bag = (0..20)
        .map(|i| {
            if i == 7 {
                row(vec![("other", Value::Int(i))])
            } else {
                row(vec![("id", Value::Int(i % 4))])
            }
        })
        .collect();
    let plan = join_on(probe, people(40), "id");
    let physical = lower(&plan).expect("plan lowers");
    let resolved = ResolvedExecs::default();
    let mut reference: Option<String> = None;
    for threads in [1usize, 2, 4] {
        for mode in [ColumnarMode::On, ColumnarMode::Off] {
            let opts = PipelineOptions {
                threads,
                ..options(mode)
            };
            let err = evaluate_physical_with(&physical, &resolved, &PipelineMetrics::new(), opts)
                .expect_err("missing key field errors");
            let text = err.to_string();
            match &reference {
                None => reference = Some(text),
                Some(expected) => assert_eq!(
                    expected, &text,
                    "threads={threads} mode={mode:?} must report identical error text"
                ),
            }
        }
    }
}

#[test]
fn batch_size_does_not_change_answers_or_metrics() {
    let plan = LogicalExpr::Distinct(Box::new(
        LogicalExpr::Data(people(333))
            .bind("x")
            .filter(salary_gt(20))
            .map_project(ScalarExpr::var_field("x", "name")),
    ));
    let physical = lower(&plan).expect("plan lowers");
    let resolved = ResolvedExecs::default();
    let mut reference: Option<(Bag, usize, usize)> = None;
    for batch_rows in [1usize, 7, 64, 4096] {
        let metrics = PipelineMetrics::new();
        let opts = PipelineOptions {
            batch_rows,
            ..options(ColumnarMode::On)
        };
        let bag =
            evaluate_physical_with(&physical, &resolved, &metrics, opts).expect("plan evaluates");
        let snapshot = (bag, metrics.rows_materialized(), metrics.rows_emitted());
        match &reference {
            None => reference = Some(snapshot),
            Some(expected) => assert_eq!(
                expected, &snapshot,
                "batch_rows={batch_rows} must not change observable behaviour"
            ),
        }
    }
}
