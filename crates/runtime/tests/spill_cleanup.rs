//! Spill files must never outlive the execution that created them.
//!
//! Runs a spilling evaluation with `DISCO_SPILL_DIR` pointed at a fresh
//! private directory and asserts the directory holds no `disco-spill-*`
//! files afterwards — on the success path *and* when the evaluation
//! dies mid-spill with an error.  This lives in its own test binary
//! (its own process) because it mutates process environment variables;
//! the two tests additionally serialize on a lock since tests within
//! one binary run on sibling threads.

mod common;

use std::fs;
use std::sync::Mutex;

use common::person;
use disco_algebra::{lower, LogicalExpr, ScalarExpr, ScalarOp};
use disco_runtime::{
    evaluate_physical_with, MemBudget, PipelineMetrics, PipelineOptions, ResolvedExecs,
};
use disco_value::{Bag, StructValue, Value};

static SPILL_DIR_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with `DISCO_SPILL_DIR` pointed at a fresh directory and
/// returns its result plus the `disco-spill-*` files left behind.
fn with_spill_dir<T>(name: &str, f: impl FnOnce() -> T) -> (T, Vec<String>) {
    let _guard = SPILL_DIR_LOCK.lock().unwrap();
    let dir =
        std::env::temp_dir().join(format!("disco-spill-cleanup-{}-{name}", std::process::id()));
    fs::create_dir_all(&dir).expect("create spill dir");
    std::env::set_var("DISCO_SPILL_DIR", &dir);
    let out = f();
    std::env::remove_var("DISCO_SPILL_DIR");
    let leftovers: Vec<String> = fs::read_dir(&dir)
        .expect("read spill dir")
        .filter_map(|entry| entry.ok())
        .map(|entry| entry.file_name().to_string_lossy().into_owned())
        .filter(|file| file.starts_with("disco-spill-"))
        .collect();
    let _ = fs::remove_dir_all(&dir);
    (out, leftovers)
}

fn join_distinct(left: Bag, right: Bag) -> LogicalExpr {
    LogicalExpr::Distinct(Box::new(
        LogicalExpr::Join {
            left: Box::new(LogicalExpr::Data(left).bind("x")),
            right: Box::new(LogicalExpr::Data(right).bind("y")),
            predicate: Some(ScalarExpr::binary(
                ScalarOp::Eq,
                ScalarExpr::var_field("x", "id"),
                ScalarExpr::var_field("y", "id"),
            )),
        }
        .map_project(ScalarExpr::binary(
            ScalarOp::Add,
            ScalarExpr::var_field("x", "salary"),
            ScalarExpr::var_field("y", "salary"),
        )),
    ))
}

fn people(rows: usize) -> Bag {
    (0..rows)
        .map(|i| person((i % 53) as i64, &format!("p{i}"), (i % 199) as i64))
        .collect()
}

fn budgeted() -> PipelineOptions {
    PipelineOptions {
        mem_budget: MemBudget::Bytes(4096),
        ..PipelineOptions::default()
    }
}

#[test]
fn spill_files_are_cleaned_up_on_success() {
    let physical = lower(&join_distinct(people(1_500), people(300))).expect("lowers");
    let resolved = ResolvedExecs::default();
    let (bytes_spilled, leftovers) = with_spill_dir("success", || {
        let metrics = PipelineMetrics::new();
        evaluate_physical_with(&physical, &resolved, &metrics, budgeted()).expect("evaluates");
        metrics.bytes_spilled()
    });
    assert!(bytes_spilled > 0, "the run must actually have spilled");
    assert!(
        leftovers.is_empty(),
        "spill files must be deleted on success, found: {leftovers:?}"
    );
}

#[test]
fn spill_files_are_cleaned_up_on_error() {
    // One malformed probe row (no `salary`) late in the input: the
    // projection errors after the build side has already spilled.
    let mut left = people(1_500);
    left.insert(Value::Struct(
        StructValue::new(vec![("id", Value::Int(7))]).unwrap(),
    ));
    let physical = lower(&join_distinct(left, people(300))).expect("lowers");
    let resolved = ResolvedExecs::default();
    let ((bytes_spilled, err), leftovers) = with_spill_dir("error", || {
        let metrics = PipelineMetrics::new();
        let err = evaluate_physical_with(&physical, &resolved, &metrics, budgeted())
            .expect_err("the malformed row must error");
        (metrics.bytes_spilled(), err)
    });
    assert!(bytes_spilled > 0, "the run must have spilled before dying");
    assert!(
        leftovers.is_empty(),
        "spill files must be deleted on the error path too, found: {leftovers:?} (error was: {err})"
    );
}
