//! Differential tests: the streaming cursor engine against the
//! bag-at-a-time reference evaluator (`disco_runtime::reference`), over
//! seeded randomized plans.
//!
//! Three claims are pinned here:
//!
//! 1. **Full evaluation**: for random pipelines (filter, map, project,
//!    hash/nested-loop join, union, distinct, aggregates) the streaming
//!    engine is multiset-equal to the reference evaluator.
//! 2. **Build-side selection**: forcing the hash-join build side to
//!    either input yields identical answers, and `Auto` buffers the
//!    smaller input.
//! 3. **Partial evaluation**: with random subsets of sources unavailable,
//!    the streaming path produces the *identical* `Answer` data and
//!    residual plan as the seed materializing path.

mod common;

use common::{random_branch, random_partial_scenario, random_people, random_plan, stats_for};
use disco_algebra::{lower, Env, LogicalExpr, ScalarExpr, ScalarOp};
use disco_runtime::pipeline::{self, PipelineMetrics, PipelineOptions};
use disco_runtime::{
    evaluate_physical, partial_evaluate, partial_evaluate_reference, reference,
    substitute_resolved, BuildSide, ExecKey, ExecOutcome, ResolvedExecs,
};
use disco_value::Bag;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn streaming_engine_matches_reference_on_random_plans() {
    let resolved = ResolvedExecs::default();
    for seed in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(0x5EED + seed);
        let plan = random_plan(&mut rng);
        let physical = lower(&plan).expect("plan lowers");
        let streamed = evaluate_physical(&physical, &resolved).expect("streaming evaluates");
        let reference =
            reference::evaluate_physical(&physical, &resolved).expect("reference evaluates");
        assert_eq!(
            streamed, reference,
            "seed {seed}: streaming and reference answers must be multiset-equal for {physical}"
        );
    }
}

/// The equi-join plan over two bags; `lower` picks `HashJoin` for it.
fn equi_join_plan(left: Bag, right: Bag) -> LogicalExpr {
    LogicalExpr::Join {
        left: Box::new(LogicalExpr::Data(left).bind("x")),
        right: Box::new(LogicalExpr::Data(right).bind("y")),
        predicate: Some(ScalarExpr::binary(
            ScalarOp::Eq,
            ScalarExpr::var_field("x", "id"),
            ScalarExpr::var_field("y", "id"),
        )),
    }
    .map_project(ScalarExpr::StructLit(vec![
        ("lname".into(), ScalarExpr::var_field("x", "name")),
        ("rname".into(), ScalarExpr::var_field("y", "name")),
    ]))
}

fn evaluate_with_build_side(
    plan: &disco_algebra::PhysicalExpr,
    side: BuildSide,
) -> (Bag, PipelineMetrics) {
    let resolved = ResolvedExecs::default();
    let metrics = PipelineMetrics::new();
    let root = Env::root();
    let cursor = pipeline::open_with(
        plan,
        &resolved,
        &root,
        &metrics,
        PipelineOptions {
            build_side: side,
            ..PipelineOptions::default()
        },
    )
    .expect("opens");
    let bag = pipeline::collect(cursor, &metrics).expect("collects");
    (bag, metrics)
}

#[test]
fn hash_join_output_is_identical_for_both_build_orientations() {
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(0xB51D + seed);
        let left_rows = rng.gen_range(0..40);
        let left = random_people(&mut rng, left_rows, 8);
        let right_rows = rng.gen_range(0..40);
        let right = random_people(&mut rng, right_rows, 8);
        let physical = lower(&equi_join_plan(left, right)).expect("lowers");
        assert!(format!("{physical}").contains("hashjoin"));
        let (build_left, _) = evaluate_with_build_side(&physical, BuildSide::Left);
        let (build_right, _) = evaluate_with_build_side(&physical, BuildSide::Right);
        assert_eq!(
            build_left, build_right,
            "seed {seed}: build-side orientation must not change the answer"
        );
        let (auto, _) = evaluate_with_build_side(&physical, BuildSide::Auto);
        assert_eq!(auto, build_right, "seed {seed}");
    }
}

#[test]
fn auto_build_side_buffers_the_smaller_input() {
    let mut rng = StdRng::seed_from_u64(0xA070);
    let small = random_people(&mut rng, 7, 8);
    let large = random_people(&mut rng, 40, 8);

    // Small input on the left: Auto must build on the left (7 rows), not
    // the conventional right.
    let physical = lower(&equi_join_plan(small.clone(), large.clone())).expect("lowers");
    let (_, metrics) = evaluate_with_build_side(&physical, BuildSide::Auto);
    assert_eq!(metrics.rows_materialized(), small.len());

    // Small input on the right: Auto keeps the right-side build.
    let physical = lower(&equi_join_plan(large.clone(), small.clone())).expect("lowers");
    let (_, metrics) = evaluate_with_build_side(&physical, BuildSide::Auto);
    assert_eq!(metrics.rows_materialized(), small.len());

    // Forcing the large side buffers the large side.
    let (_, metrics) = evaluate_with_build_side(&physical, BuildSide::Left);
    assert_eq!(metrics.rows_materialized(), large.len());
}

#[test]
fn pipeline_behavior_classification_matches_engine_buffering() {
    // The algebra's streaming/breaker classification must agree with what
    // the engine actually buffers: plans built purely from operators
    // classified `Streaming` record zero materialized rows, and any plan
    // containing a breaker records at least one.  This pins
    // `PhysicalExpr::pipeline_behavior` to the cursor implementations so
    // the two cannot silently drift apart.
    use disco_algebra::PipelineBehavior;
    let mut rng = StdRng::seed_from_u64(0xC1A5);
    let plans = vec![
        // streaming-only shapes
        random_branch(&mut rng, "x").map_project(ScalarExpr::var_field("x", "name")),
        LogicalExpr::Union(vec![
            LogicalExpr::Data(random_people(&mut rng, 10, 4)).project(["name"]),
            LogicalExpr::Data(random_people(&mut rng, 10, 4)).project(["name"]),
        ]),
        // breaker-containing shapes
        equi_join_plan(
            random_people(&mut rng, 12, 4),
            random_people(&mut rng, 6, 4),
        ),
        LogicalExpr::Distinct(Box::new(
            random_branch(&mut rng, "x").map_project(ScalarExpr::var_field("x", "name")),
        )),
    ];
    let resolved = ResolvedExecs::default();
    for plan in plans {
        let physical = lower(&plan).expect("lowers");
        let mut streaming_only = true;
        physical.walk(&mut |node| {
            if node.pipeline_behavior() != PipelineBehavior::Streaming {
                streaming_only = false;
            }
        });
        let metrics = PipelineMetrics::new();
        let root = Env::root();
        let cursor = pipeline::open(&physical, &resolved, &root, &metrics).expect("opens");
        let out = pipeline::collect(cursor, &metrics).expect("collects");
        if streaming_only {
            assert_eq!(
                metrics.rows_materialized(),
                0,
                "streaming-classified plan must buffer nothing: {physical}"
            );
        } else if !out.is_empty() {
            assert!(
                metrics.rows_materialized() > 0,
                "breaker-classified plan must record its buffered rows: {physical}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Partial evaluation: streaming vs. the seed materializing path
// ---------------------------------------------------------------------

#[test]
fn partial_evaluation_matches_reference_on_random_availability() {
    for seed in 0..80u64 {
        let mut rng = StdRng::seed_from_u64(0x9A47 + seed);
        let (plan, resolved) = random_partial_scenario(&mut rng);
        let substituted = substitute_resolved(&plan, &resolved);
        let (data_s, residual_s) =
            partial_evaluate(&substituted, &resolved).expect("streaming partial eval");
        let (data_r, residual_r) =
            partial_evaluate_reference(&substituted, &resolved).expect("reference partial eval");
        assert_eq!(
            data_s, data_r,
            "seed {seed}: partial answer data must match"
        );
        assert_eq!(
            residual_s, residual_r,
            "seed {seed}: residual plans must be identical"
        );
    }
}

#[test]
fn join_with_unavailable_side_stays_residual_in_both_engines() {
    let mut rng = StdRng::seed_from_u64(0xDEAD);
    let available_rows = random_people(&mut rng, 5, 4);
    let mut resolved = ResolvedExecs::default();
    let shipped = LogicalExpr::get("person0");
    resolved.insert(
        ExecKey::new("r0", "person0", &shipped),
        ExecOutcome::Unavailable,
        stats_for("r0", "person0", false, 0),
    );
    let plan = LogicalExpr::Join {
        left: Box::new(shipped.submit("r0", "w0", "person0").bind("x")),
        right: Box::new(LogicalExpr::Data(available_rows).bind("y")),
        predicate: Some(ScalarExpr::binary(
            ScalarOp::Eq,
            ScalarExpr::var_field("x", "id"),
            ScalarExpr::var_field("y", "id"),
        )),
    }
    .map_project(ScalarExpr::var_field("x", "name"));
    let substituted = substitute_resolved(&plan, &resolved);
    let (data_s, residual_s) = partial_evaluate(&substituted, &resolved).unwrap();
    let (data_r, residual_r) = partial_evaluate_reference(&substituted, &resolved).unwrap();
    assert!(data_s.is_empty());
    assert_eq!(data_s, data_r);
    assert_eq!(residual_s, residual_r);
    assert!(residual_s.is_some(), "the join must stay residual");
}
