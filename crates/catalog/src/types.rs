/// A reference to a type in the mediator schema.
///
/// Covers the ODMG literal types used by the paper's examples (`String`,
/// `Short`) plus collections and named interface types.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TypeRef {
    /// Character string (`attribute String name`).
    String,
    /// Integer — the paper's `Short` salaries map here.
    Int,
    /// Floating point number.
    Float,
    /// Boolean.
    Bool,
    /// A bag of some element type.
    Bag(Box<TypeRef>),
    /// A list of some element type.
    List(Box<TypeRef>),
    /// A reference to a named interface defined in the mediator.
    Interface(String),
}

impl TypeRef {
    /// Parses the ODL spelling of a literal type name.
    ///
    /// `Short`, `Long`, `Integer` and `Int` all map to [`TypeRef::Int`];
    /// unknown names become [`TypeRef::Interface`] references.
    #[must_use]
    pub fn from_odl_name(name: &str) -> TypeRef {
        match name {
            "String" | "string" => TypeRef::String,
            "Short" | "Long" | "Int" | "Integer" | "short" | "long" | "int" => TypeRef::Int,
            "Float" | "Double" | "float" | "double" => TypeRef::Float,
            "Boolean" | "Bool" | "boolean" | "bool" => TypeRef::Bool,
            other => TypeRef::Interface(other.to_owned()),
        }
    }
}

impl std::fmt::Display for TypeRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TypeRef::String => write!(f, "String"),
            TypeRef::Int => write!(f, "Short"),
            TypeRef::Float => write!(f, "Float"),
            TypeRef::Bool => write!(f, "Boolean"),
            TypeRef::Bag(inner) => write!(f, "Bag<{inner}>"),
            TypeRef::List(inner) => write!(f, "List<{inner}>"),
            TypeRef::Interface(name) => write!(f, "{name}"),
        }
    }
}

/// A named, typed attribute of an interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    name: String,
    ty: TypeRef,
}

impl Attribute {
    /// Creates an attribute.
    pub fn new(name: impl Into<String>, ty: TypeRef) -> Self {
        Attribute {
            name: name.into(),
            ty,
        }
    }

    /// The attribute name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute type.
    #[must_use]
    pub fn ty(&self) -> &TypeRef {
        &self.ty
    }
}

/// An ODMG interface definition in the mediator schema.
///
/// Mirrors the paper's ODL examples:
///
/// ```text
/// interface Person (extent person) {
///     attribute String name;
///     attribute Short salary; }
/// ```
///
/// DISCO extends the standard by associating a *bag of extents* with each
/// interface; the extents themselves are registered separately as
/// [`crate::MetaExtent`] objects, while the `extent person` clause here only
/// names the implicit union extent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceDef {
    name: String,
    supertype: Option<String>,
    extent_name: Option<String>,
    attributes: Vec<Attribute>,
}

impl InterfaceDef {
    /// Creates an interface definition with no attributes.
    pub fn new(name: impl Into<String>) -> Self {
        InterfaceDef {
            name: name.into(),
            supertype: None,
            extent_name: None,
            attributes: Vec::new(),
        }
    }

    /// Names the supertype (`interface Student : Person { }`).
    #[must_use]
    pub fn with_supertype(mut self, supertype: impl Into<String>) -> Self {
        self.supertype = Some(supertype.into());
        self
    }

    /// Declares the implicit extent name (`interface Person (extent person)`).
    #[must_use]
    pub fn with_extent_name(mut self, extent: impl Into<String>) -> Self {
        self.extent_name = Some(extent.into());
        self
    }

    /// Adds an attribute.
    #[must_use]
    pub fn with_attribute(mut self, attribute: Attribute) -> Self {
        self.attributes.push(attribute);
        self
    }

    /// The interface name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared supertype, if any.
    #[must_use]
    pub fn supertype(&self) -> Option<&str> {
        self.supertype.as_deref()
    }

    /// The implicit extent name, if declared.
    #[must_use]
    pub fn extent_name(&self) -> Option<&str> {
        self.extent_name.as_deref()
    }

    /// The attributes declared directly on this interface (not inherited).
    #[must_use]
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Looks up an attribute declared directly on this interface.
    #[must_use]
    pub fn attribute(&self, name: &str) -> Option<&Attribute> {
        self.attributes.iter().find(|a| a.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odl_name_mapping() {
        assert_eq!(TypeRef::from_odl_name("String"), TypeRef::String);
        assert_eq!(TypeRef::from_odl_name("Short"), TypeRef::Int);
        assert_eq!(TypeRef::from_odl_name("Float"), TypeRef::Float);
        assert_eq!(
            TypeRef::from_odl_name("Person"),
            TypeRef::Interface("Person".into())
        );
    }

    #[test]
    fn display_round_trips_literal_names() {
        assert_eq!(TypeRef::String.to_string(), "String");
        assert_eq!(TypeRef::Int.to_string(), "Short");
        assert_eq!(
            TypeRef::Bag(Box::new(TypeRef::String)).to_string(),
            "Bag<String>"
        );
    }

    #[test]
    fn interface_builder_matches_paper_person() {
        let person = InterfaceDef::new("Person")
            .with_extent_name("person")
            .with_attribute(Attribute::new("name", TypeRef::String))
            .with_attribute(Attribute::new("salary", TypeRef::Int));
        assert_eq!(person.name(), "Person");
        assert_eq!(person.extent_name(), Some("person"));
        assert_eq!(person.attributes().len(), 2);
        assert_eq!(person.attribute("salary").unwrap().ty(), &TypeRef::Int);
        assert!(person.attribute("age").is_none());
        assert!(person.supertype().is_none());
    }

    #[test]
    fn student_subtype_declaration() {
        let student = InterfaceDef::new("Student").with_supertype("Person");
        assert_eq!(student.supertype(), Some("Person"));
        assert!(student.attributes().is_empty());
    }
}
