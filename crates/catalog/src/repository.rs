/// A repository object — "essentially the address of a database or some
/// other type of repository" (§2).
///
/// The paper's example:
///
/// ```text
/// r0 := Repository(host="rodin", name="db", address="123.45.6.7")
/// ```
///
/// The definition of `Repository` is deliberately open-ended ("other
/// attributes which describe the maintainer of the data source, the cost
/// of accessing the data source, etc., can be added"), so arbitrary extra
/// properties are supported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Repository {
    name: String,
    host: Option<String>,
    db_name: Option<String>,
    address: Option<String>,
    properties: Vec<(String, String)>,
}

impl Repository {
    /// Creates a repository known by `name` (the variable the DBA binds it
    /// to, e.g. `r0`).
    pub fn new(name: impl Into<String>) -> Self {
        Repository {
            name: name.into(),
            host: None,
            db_name: None,
            address: None,
            properties: Vec::new(),
        }
    }

    /// Sets the host machine.
    #[must_use]
    pub fn with_host(mut self, host: impl Into<String>) -> Self {
        self.host = Some(host.into());
        self
    }

    /// Sets the database name inside the repository.
    #[must_use]
    pub fn with_db_name(mut self, db_name: impl Into<String>) -> Self {
        self.db_name = Some(db_name.into());
        self
    }

    /// Sets the network address.
    #[must_use]
    pub fn with_address(mut self, address: impl Into<String>) -> Self {
        self.address = Some(address.into());
        self
    }

    /// Attaches an arbitrary descriptive property (maintainer, cost hints…).
    #[must_use]
    pub fn with_property(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.properties.push((key.into(), value.into()));
        self
    }

    /// The repository name (e.g. `r0`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The host, if set.
    #[must_use]
    pub fn host(&self) -> Option<&str> {
        self.host.as_deref()
    }

    /// The database name, if set.
    #[must_use]
    pub fn db_name(&self) -> Option<&str> {
        self.db_name.as_deref()
    }

    /// The network address, if set.
    #[must_use]
    pub fn address(&self) -> Option<&str> {
        self.address.as_deref()
    }

    /// Looks up an extra property.
    #[must_use]
    pub fn property(&self, key: &str) -> Option<&str> {
        self.properties
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Iterates over all extra properties.
    pub fn properties(&self) -> impl Iterator<Item = (&str, &str)> {
        self.properties
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repository_matches_paper_example() {
        let r0 = Repository::new("r0")
            .with_host("rodin")
            .with_db_name("db")
            .with_address("123.45.6.7");
        assert_eq!(r0.name(), "r0");
        assert_eq!(r0.host(), Some("rodin"));
        assert_eq!(r0.db_name(), Some("db"));
        assert_eq!(r0.address(), Some("123.45.6.7"));
    }

    #[test]
    fn extra_properties_are_open_ended() {
        let r = Repository::new("r1")
            .with_property("maintainer", "louiqa")
            .with_property("access_cost", "high");
        assert_eq!(r.property("maintainer"), Some("louiqa"));
        assert_eq!(r.property("missing"), None);
        assert_eq!(r.properties().count(), 2);
    }
}
