/// The catalog-level record of a wrapper object (§2, second step).
///
/// The paper's DBA writes `w0 := WrapperPostgres();` — the catalog records
/// that a wrapper named `w0` of kind `postgres` exists.  The executable
/// wrapper implementation itself lives in the `disco-wrapper` crate and is
/// bound to this name by the mediator at registration time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrapperDef {
    name: String,
    kind: String,
    properties: Vec<(String, String)>,
}

impl WrapperDef {
    /// Creates a wrapper record with a name (e.g. `w0`) and a kind
    /// (e.g. `postgres`, `csv`, `document`).
    pub fn new(name: impl Into<String>, kind: impl Into<String>) -> Self {
        WrapperDef {
            name: name.into(),
            kind: kind.into(),
            properties: Vec::new(),
        }
    }

    /// Attaches an arbitrary configuration property.
    #[must_use]
    pub fn with_property(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.properties.push((key.into(), value.into()));
        self
    }

    /// The wrapper name (e.g. `w0`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The wrapper kind (which implementation to instantiate).
    #[must_use]
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// Looks up a configuration property.
    #[must_use]
    pub fn property(&self, key: &str) -> Option<&str> {
        self.properties
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapper_def_records_name_and_kind() {
        let w0 = WrapperDef::new("w0", "postgres");
        assert_eq!(w0.name(), "w0");
        assert_eq!(w0.kind(), "postgres");
        assert_eq!(w0.property("anything"), None);
    }

    #[test]
    fn wrapper_def_carries_properties() {
        let w = WrapperDef::new("w1", "csv").with_property("delimiter", ";");
        assert_eq!(w.property("delimiter"), Some(";"));
    }
}
