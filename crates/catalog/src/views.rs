/// A view definition — the paper's `define <name> as <query>` (§2.2.3).
///
/// "Views do not have explicit objects associated with them.  The objects
/// are referenced through the query name and are generated through
/// executing the query."  The catalog stores the view body as OQL text
/// (keeping this crate independent of the parser); the mediator parses and
/// expands it at query time.  The list of referenced names is recorded so
/// the catalog can reject cyclic view definitions ("a view can reference
/// other views, as long as the references are not cyclic").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewDef {
    name: String,
    body: String,
    references: Vec<String>,
}

impl ViewDef {
    /// Creates a view with the given OQL body.
    pub fn new(name: impl Into<String>, body: impl Into<String>) -> Self {
        ViewDef {
            name: name.into(),
            body: body.into(),
            references: Vec::new(),
        }
    }

    /// Records the extent/view names the body references (used for cycle
    /// detection).  Typically produced by the OQL resolver.
    #[must_use]
    pub fn with_references<I, S>(mut self, refs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.references = refs.into_iter().map(Into::into).collect();
        self
    }

    /// The view (query) name, e.g. `double` or `multiple`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The OQL body of the view.
    #[must_use]
    pub fn body(&self) -> &str {
        &self.body
    }

    /// The names referenced by the body.
    #[must_use]
    pub fn references(&self) -> &[String] {
        &self.references
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_def_holds_paper_double_view() {
        let v = ViewDef::new(
            "double",
            "select struct(name: x.name, salary: x.salary + y.salary) \
             from x in person0, y in person1 where x.id = y.id",
        )
        .with_references(["person0", "person1"]);
        assert_eq!(v.name(), "double");
        assert_eq!(
            v.references(),
            &["person0".to_owned(), "person1".to_owned()]
        );
        assert!(v.body().contains("x.salary + y.salary"));
    }
}
