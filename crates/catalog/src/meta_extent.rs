use crate::TypeMap;

/// One instance of the paper's `MetaExtent` meta-data type (§2.1).
///
/// ```text
/// interface MetaExtent (extent metaextent) {
///     attribute String name;
///     attribute Extent e;
///     attribute Type interface;
///     attribute Wrapper wrapper;
///     attribute Repository repository;
///     attribute Map map; }
/// ```
///
/// Each `MetaExtent` represents the collection of data in exactly one data
/// source; "this intuition is the key to the DISCO data model".  The DISCO
/// special syntax
///
/// ```text
/// extent person0 of Person wrapper w0 repository r0;
/// ```
///
/// creates one of these records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaExtent {
    extent_name: String,
    interface: String,
    wrapper: String,
    repository: String,
    map: TypeMap,
}

impl MetaExtent {
    /// Creates a meta-extent with an identity map.
    pub fn new(
        extent_name: impl Into<String>,
        interface: impl Into<String>,
        wrapper: impl Into<String>,
        repository: impl Into<String>,
    ) -> Self {
        MetaExtent {
            extent_name: extent_name.into(),
            interface: interface.into(),
            wrapper: wrapper.into(),
            repository: repository.into(),
            map: TypeMap::new(),
        }
    }

    /// Attaches a local transformation map (§2.2.2).
    #[must_use]
    pub fn with_map(mut self, map: TypeMap) -> Self {
        self.map = map;
        self
    }

    /// The extent name in the mediator (e.g. `person0`).
    #[must_use]
    pub fn extent_name(&self) -> &str {
        &self.extent_name
    }

    /// The mediator interface whose extent this is (e.g. `Person`).
    #[must_use]
    pub fn interface(&self) -> &str {
        &self.interface
    }

    /// The wrapper used to access the data source (e.g. `w0`).
    #[must_use]
    pub fn wrapper(&self) -> &str {
        &self.wrapper
    }

    /// The repository holding the data source (e.g. `r0`).
    #[must_use]
    pub fn repository(&self) -> &str {
        &self.repository
    }

    /// The local transformation map (identity when none was declared).
    #[must_use]
    pub fn map(&self) -> &TypeMap {
        &self.map
    }

    /// The name of the relation / collection inside the data source.
    ///
    /// "The extent name is determined by the name of the data source in the
    /// repository" unless a map overrides it.
    #[must_use]
    pub fn source_relation(&self) -> String {
        self.map.extent_to_relation(&self.extent_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_extent_defaults_match_paper() {
        let m = MetaExtent::new("person0", "Person", "w0", "r0");
        assert_eq!(m.extent_name(), "person0");
        assert_eq!(m.interface(), "Person");
        assert_eq!(m.wrapper(), "w0");
        assert_eq!(m.repository(), "r0");
        assert!(m.map().is_identity());
        assert_eq!(m.source_relation(), "person0");
    }

    #[test]
    fn map_overrides_source_relation() {
        let map = TypeMap::builder()
            .relation("person0", "personprime0")
            .attribute("name", "n")
            .build()
            .unwrap();
        let m = MetaExtent::new("personprime0", "PersonPrime", "w0", "r0").with_map(map);
        assert_eq!(m.source_relation(), "person0");
    }
}
