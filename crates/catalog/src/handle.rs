//! Copy-on-write catalog sharing for concurrent sessions.
//!
//! A mediator serving many clients cannot let DDL (`&mut Catalog`) block
//! in-flight queries.  [`CatalogHandle`] solves this with immutable
//! snapshots: readers take an `Arc<Catalog>` and keep planning/executing
//! against it for the whole query, while writers clone the current
//! snapshot, mutate the clone, and atomically swap it in.  A schema
//! update therefore never invalidates — or even pauses — a query that
//! was admitted against the previous snapshot.

use std::sync::{Arc, PoisonError, RwLock};

use crate::schema::Catalog;

/// An `Arc`-shared, copy-on-write handle to a [`Catalog`].
///
/// Cloning the handle is cheap and every clone observes the same
/// underlying catalog.  [`CatalogHandle::snapshot`] is wait-free apart
/// from one short read-lock acquisition; [`CatalogHandle::update`]
/// clones the current catalog, applies the mutation to the clone, and
/// swaps — the previous snapshot stays alive for as long as any query
/// still holds it.
///
/// # Examples
///
/// ```
/// use disco_catalog::{CatalogHandle, InterfaceDef};
///
/// let handle = CatalogHandle::default();
/// let before = handle.snapshot();
/// handle
///     .update(|catalog| catalog.define_interface(InterfaceDef::new("Person")))
///     .unwrap();
/// // The old snapshot is untouched; the new one sees the interface.
/// assert!(before.interface("Person").is_err());
/// assert!(handle.snapshot().interface("Person").is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CatalogHandle {
    current: Arc<RwLock<Arc<Catalog>>>,
}

impl CatalogHandle {
    /// Wraps an existing catalog (e.g. one built by a `Mediator`'s
    /// registration calls) into a shareable handle.
    #[must_use]
    pub fn new(catalog: Catalog) -> Self {
        CatalogHandle {
            current: Arc::new(RwLock::new(Arc::new(catalog))),
        }
    }

    /// The current immutable snapshot.  Hold it for the duration of one
    /// query: concurrent [`CatalogHandle::update`]s produce *new*
    /// snapshots and never mutate this one.
    #[must_use]
    pub fn snapshot(&self) -> Arc<Catalog> {
        Arc::clone(&self.current.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// The generation counter of the current snapshot (bumped by every
    /// catalog mutation) — the key the plan cache invalidates on.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.snapshot().generation()
    }

    /// Applies a schema update copy-on-write: clones the current
    /// catalog, runs `mutate` on the clone, and — only if it succeeds —
    /// swaps the clone in as the new snapshot.  On error the handle is
    /// unchanged (updates are transactional per closure).
    ///
    /// Writers hold the write lock for the whole clone–mutate–swap, so
    /// concurrent updates serialize and lost-update races cannot occur.
    /// Queries already holding a snapshot are unaffected; a concurrent
    /// [`CatalogHandle::snapshot`] call waits only for the in-progress
    /// update to finish.
    ///
    /// # Errors
    ///
    /// Propagates whatever `mutate` returns.
    pub fn update<T, E>(&self, mutate: impl FnOnce(&mut Catalog) -> Result<T, E>) -> Result<T, E> {
        let mut slot = self.current.write().unwrap_or_else(PoisonError::into_inner);
        let mut next = (**slot).clone();
        let out = mutate(&mut next)?;
        *slot = Arc::new(next);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::InterfaceDef;

    #[test]
    fn snapshots_are_immutable_under_updates() {
        let handle = CatalogHandle::default();
        let empty = handle.snapshot();
        handle
            .update(|c| c.define_interface(InterfaceDef::new("Person")))
            .unwrap();
        assert!(empty.interface("Person").is_err());
        assert!(handle.snapshot().interface("Person").is_ok());
        assert!(handle.generation() > empty.generation());
    }

    #[test]
    fn failed_updates_leave_the_handle_unchanged() {
        let handle = CatalogHandle::default();
        handle
            .update(|c| c.define_interface(InterfaceDef::new("Person")))
            .unwrap();
        let generation = handle.generation();
        // Duplicate definition fails; the snapshot must not advance.
        assert!(handle
            .update(|c| c.define_interface(InterfaceDef::new("Person")))
            .is_err());
        assert_eq!(handle.generation(), generation);
    }

    #[test]
    fn clones_share_one_catalog() {
        let handle = CatalogHandle::default();
        let alias = handle.clone();
        handle
            .update(|c| c.define_interface(InterfaceDef::new("Person")))
            .unwrap();
        assert!(alias.snapshot().interface("Person").is_ok());
    }
}
