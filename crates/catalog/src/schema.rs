use std::collections::BTreeMap;

use crate::{
    Attribute, CatalogError, InterfaceDef, MetaExtent, Repository, Result, ViewDef, WrapperDef,
};

/// What a name in an OQL `from` clause resolves to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameBinding {
    /// A single registered extent (one data source), e.g. `person0`.
    Extent(MetaExtent),
    /// The implicit union extent of an interface, e.g. `person` —
    /// dynamically all extents registered for the interface.
    InterfaceExtent {
        /// The interface whose extents are collected.
        interface: String,
        /// The extents currently registered for that interface.
        extents: Vec<MetaExtent>,
    },
    /// The recursive union extent `person*` — the extents of the interface
    /// *and of all its subtypes* (§2.2.1).
    RecursiveExtent {
        /// The root interface of the subtype closure.
        interface: String,
        /// The extents of the interface and all its subtypes.
        extents: Vec<MetaExtent>,
    },
    /// A view (`define … as …`); the body must be expanded by the parser.
    View(ViewDef),
}

/// The mediator's internal schema catalog (the "internal db" of Fig. 2).
///
/// Holds interfaces, meta-extents, repositories, wrapper records and view
/// definitions, and answers the name-resolution and subtyping questions the
/// optimizer and runtime ask.  Every mutation bumps a generation counter so
/// cached query plans can be invalidated, as required by §3.3 ("the
/// mediator must monitor updates to extents, and modify or recompute plans
/// that are affected").
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    interfaces: BTreeMap<String, InterfaceDef>,
    extents: BTreeMap<String, MetaExtent>,
    repositories: BTreeMap<String, Repository>,
    wrappers: BTreeMap<String, WrapperDef>,
    views: BTreeMap<String, ViewDef>,
    generation: u64,
}

impl Catalog {
    /// Creates an empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Catalog::default()
    }

    /// The catalog generation, incremented on every mutation.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn bump(&mut self) {
        self.generation += 1;
    }

    // ------------------------------------------------------------------
    // Interfaces and subtyping
    // ------------------------------------------------------------------

    /// Defines a mediator interface (ODL `interface`).
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::DuplicateInterface`] if the name is taken,
    /// [`CatalogError::UnknownSupertype`] if the named supertype is not yet
    /// defined, and [`CatalogError::CyclicSubtype`] if the interface names
    /// itself as supertype.
    pub fn define_interface(&mut self, def: InterfaceDef) -> Result<()> {
        if self.interfaces.contains_key(def.name()) {
            return Err(CatalogError::DuplicateInterface(def.name().to_owned()));
        }
        if let Some(sup) = def.supertype() {
            if sup == def.name() {
                return Err(CatalogError::CyclicSubtype(def.name().to_owned()));
            }
            if !self.interfaces.contains_key(sup) {
                return Err(CatalogError::UnknownSupertype {
                    interface: def.name().to_owned(),
                    supertype: sup.to_owned(),
                });
            }
        }
        self.interfaces.insert(def.name().to_owned(), def);
        self.bump();
        Ok(())
    }

    /// Looks up an interface definition.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::UnknownInterface`] when absent.
    pub fn interface(&self, name: &str) -> Result<&InterfaceDef> {
        self.interfaces
            .get(name)
            .ok_or_else(|| CatalogError::UnknownInterface(name.to_owned()))
    }

    /// Returns `true` if the interface is defined.
    #[must_use]
    pub fn has_interface(&self, name: &str) -> bool {
        self.interfaces.contains_key(name)
    }

    /// Iterates over all interface definitions in name order.
    pub fn interfaces(&self) -> impl Iterator<Item = &InterfaceDef> {
        self.interfaces.values()
    }

    /// All attributes of an interface, including inherited ones
    /// (supertype attributes first).
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::UnknownInterface`] when absent.
    pub fn attributes_of(&self, name: &str) -> Result<Vec<Attribute>> {
        let mut chain = Vec::new();
        let mut current = Some(name.to_owned());
        while let Some(n) = current {
            let def = self.interface(&n)?;
            chain.push(def);
            current = def.supertype().map(ToOwned::to_owned);
            if chain.len() > self.interfaces.len() {
                return Err(CatalogError::CyclicSubtype(name.to_owned()));
            }
        }
        let mut attrs = Vec::new();
        for def in chain.iter().rev() {
            for a in def.attributes() {
                if !attrs.iter().any(|x: &Attribute| x.name() == a.name()) {
                    attrs.push(a.clone());
                }
            }
        }
        Ok(attrs)
    }

    /// Returns `true` if `sub` is `sup` or a (transitive) subtype of it.
    #[must_use]
    pub fn is_subtype_of(&self, sub: &str, sup: &str) -> bool {
        let mut current = Some(sub.to_owned());
        let mut steps = 0usize;
        while let Some(n) = current {
            if n == sup {
                return true;
            }
            steps += 1;
            if steps > self.interfaces.len() + 1 {
                return false;
            }
            current = self
                .interfaces
                .get(&n)
                .and_then(|d| d.supertype().map(ToOwned::to_owned));
        }
        false
    }

    /// The subtype closure of `name`: the interface itself plus every
    /// (transitive) subtype, in name order.
    #[must_use]
    pub fn subtype_closure(&self, name: &str) -> Vec<String> {
        self.interfaces
            .keys()
            .filter(|candidate| self.is_subtype_of(candidate, name))
            .cloned()
            .collect()
    }

    // ------------------------------------------------------------------
    // Repositories and wrappers
    // ------------------------------------------------------------------

    /// Registers a repository object.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::DuplicateRepository`] if the name is taken.
    pub fn add_repository(&mut self, repo: Repository) -> Result<()> {
        if self.repositories.contains_key(repo.name()) {
            return Err(CatalogError::DuplicateRepository(repo.name().to_owned()));
        }
        self.repositories.insert(repo.name().to_owned(), repo);
        self.bump();
        Ok(())
    }

    /// Looks up a repository.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::UnknownRepository`] when absent.
    pub fn repository(&self, name: &str) -> Result<&Repository> {
        self.repositories
            .get(name)
            .ok_or_else(|| CatalogError::UnknownRepository(name.to_owned()))
    }

    /// Iterates over repositories in name order.
    pub fn repositories(&self) -> impl Iterator<Item = &Repository> {
        self.repositories.values()
    }

    /// Registers a wrapper record.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::DuplicateWrapper`] if the name is taken.
    pub fn add_wrapper(&mut self, wrapper: WrapperDef) -> Result<()> {
        if self.wrappers.contains_key(wrapper.name()) {
            return Err(CatalogError::DuplicateWrapper(wrapper.name().to_owned()));
        }
        self.wrappers.insert(wrapper.name().to_owned(), wrapper);
        self.bump();
        Ok(())
    }

    /// Looks up a wrapper record.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::UnknownWrapper`] when absent.
    pub fn wrapper(&self, name: &str) -> Result<&WrapperDef> {
        self.wrappers
            .get(name)
            .ok_or_else(|| CatalogError::UnknownWrapper(name.to_owned()))
    }

    /// Iterates over wrapper records in name order.
    pub fn wrappers(&self) -> impl Iterator<Item = &WrapperDef> {
        self.wrappers.values()
    }

    // ------------------------------------------------------------------
    // Extents
    // ------------------------------------------------------------------

    /// Registers a meta-extent (the DISCO `extent … of … wrapper …
    /// repository …;` declaration).
    ///
    /// # Errors
    ///
    /// Returns an error if the extent name is already used, or if the
    /// interface, wrapper or repository it references is unknown.
    pub fn add_extent(&mut self, extent: MetaExtent) -> Result<()> {
        if self.extents.contains_key(extent.extent_name()) {
            return Err(CatalogError::DuplicateExtent(
                extent.extent_name().to_owned(),
            ));
        }
        if !self.interfaces.contains_key(extent.interface()) {
            return Err(CatalogError::UnknownInterface(
                extent.interface().to_owned(),
            ));
        }
        if !self.wrappers.contains_key(extent.wrapper()) {
            return Err(CatalogError::UnknownWrapper(extent.wrapper().to_owned()));
        }
        if !self.repositories.contains_key(extent.repository()) {
            return Err(CatalogError::UnknownRepository(
                extent.repository().to_owned(),
            ));
        }
        self.extents.insert(extent.extent_name().to_owned(), extent);
        self.bump();
        Ok(())
    }

    /// Removes a registered extent.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::UnknownExtent`] when absent.
    pub fn remove_extent(&mut self, name: &str) -> Result<MetaExtent> {
        let removed = self
            .extents
            .remove(name)
            .ok_or_else(|| CatalogError::UnknownExtent(name.to_owned()))?;
        self.bump();
        Ok(removed)
    }

    /// Looks up a single extent by name.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::UnknownExtent`] when absent.
    pub fn extent(&self, name: &str) -> Result<&MetaExtent> {
        self.extents
            .get(name)
            .ok_or_else(|| CatalogError::UnknownExtent(name.to_owned()))
    }

    /// Iterates over all registered extents in name order (the paper's
    /// `metaextent` extent).
    pub fn meta_extents(&self) -> impl Iterator<Item = &MetaExtent> {
        self.extents.values()
    }

    /// The extents registered for an interface.
    ///
    /// With `include_subtypes = false` this is the paper's implicit extent
    /// (`person`); with `true` it is the recursive `person*` extent that
    /// also collects subtype extents (§2.2.1).
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::UnknownInterface`] when the interface is not
    /// defined.
    pub fn extents_of_interface(
        &self,
        interface: &str,
        include_subtypes: bool,
    ) -> Result<Vec<MetaExtent>> {
        if !self.interfaces.contains_key(interface) {
            return Err(CatalogError::UnknownInterface(interface.to_owned()));
        }
        let accepted: Vec<String> = if include_subtypes {
            self.subtype_closure(interface)
        } else {
            vec![interface.to_owned()]
        };
        Ok(self
            .extents
            .values()
            .filter(|e| accepted.iter().any(|i| i == e.interface()))
            .cloned()
            .collect())
    }

    // ------------------------------------------------------------------
    // Views
    // ------------------------------------------------------------------

    /// Defines a view (`define … as …`).
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::DuplicateView`] if the name is taken and
    /// [`CatalogError::CyclicView`] if, following the recorded references,
    /// the new view would participate in a reference cycle.
    pub fn define_view(&mut self, view: ViewDef) -> Result<()> {
        if self.views.contains_key(view.name()) {
            return Err(CatalogError::DuplicateView(view.name().to_owned()));
        }
        // Cycle check: walk references transitively from the new view.
        let mut stack: Vec<String> = view.references().to_vec();
        let mut visited: Vec<String> = Vec::new();
        while let Some(name) = stack.pop() {
            if name == view.name() {
                return Err(CatalogError::CyclicView(view.name().to_owned()));
            }
            if visited.contains(&name) {
                continue;
            }
            visited.push(name.clone());
            if let Some(other) = self.views.get(&name) {
                stack.extend(other.references().iter().cloned());
            }
        }
        self.views.insert(view.name().to_owned(), view);
        self.bump();
        Ok(())
    }

    /// Removes a view.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::UnknownView`] when absent.
    pub fn remove_view(&mut self, name: &str) -> Result<ViewDef> {
        let removed = self
            .views
            .remove(name)
            .ok_or_else(|| CatalogError::UnknownView(name.to_owned()))?;
        self.bump();
        Ok(removed)
    }

    /// Looks up a view.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::UnknownView`] when absent.
    pub fn view(&self, name: &str) -> Result<&ViewDef> {
        self.views
            .get(name)
            .ok_or_else(|| CatalogError::UnknownView(name.to_owned()))
    }

    /// Iterates over views in name order.
    pub fn views(&self) -> impl Iterator<Item = &ViewDef> {
        self.views.values()
    }

    // ------------------------------------------------------------------
    // Name resolution
    // ------------------------------------------------------------------

    /// Resolves a name appearing in an OQL `from` clause.
    ///
    /// Resolution order: registered extent (`person0`), recursive extent
    /// (`person*`), implicit interface extent (`person`), then view.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::UnresolvedName`] when nothing matches.
    pub fn resolve(&self, name: &str) -> Result<NameBinding> {
        if let Some(extent) = self.extents.get(name) {
            return Ok(NameBinding::Extent(extent.clone()));
        }
        if let Some(stripped) = name.strip_suffix('*') {
            if let Some(interface) = self.interface_by_extent_name(stripped) {
                let extents = self.extents_of_interface(&interface, true)?;
                return Ok(NameBinding::RecursiveExtent { interface, extents });
            }
            if self.interfaces.contains_key(stripped) {
                let extents = self.extents_of_interface(stripped, true)?;
                return Ok(NameBinding::RecursiveExtent {
                    interface: stripped.to_owned(),
                    extents,
                });
            }
        }
        if let Some(interface) = self.interface_by_extent_name(name) {
            let extents = self.extents_of_interface(&interface, false)?;
            return Ok(NameBinding::InterfaceExtent { interface, extents });
        }
        if self.interfaces.contains_key(name) {
            let extents = self.extents_of_interface(name, false)?;
            return Ok(NameBinding::InterfaceExtent {
                interface: name.to_owned(),
                extents,
            });
        }
        if let Some(view) = self.views.get(name) {
            return Ok(NameBinding::View(view.clone()));
        }
        Err(CatalogError::UnresolvedName(name.to_owned()))
    }

    /// Finds the interface whose declared implicit extent name is `name`.
    #[must_use]
    pub fn interface_by_extent_name(&self, name: &str) -> Option<String> {
        self.interfaces
            .values()
            .find(|d| d.extent_name() == Some(name))
            .map(|d| d.name().to_owned())
    }

    /// Summary statistics used by the scaling experiment (E5) and the
    /// catalog component.
    #[must_use]
    pub fn stats(&self) -> CatalogStats {
        CatalogStats {
            interfaces: self.interfaces.len(),
            extents: self.extents.len(),
            repositories: self.repositories.len(),
            wrappers: self.wrappers.len(),
            views: self.views.len(),
        }
    }
}

/// Size of each catalog section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogStats {
    /// Number of interfaces.
    pub interfaces: usize,
    /// Number of registered extents (= data sources).
    pub extents: usize,
    /// Number of repositories.
    pub repositories: usize,
    /// Number of wrapper records.
    pub wrappers: usize,
    /// Number of views.
    pub views: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Attribute, TypeRef};

    /// Builds the catalog of the paper's running example: Person with
    /// extents person0/person1, Student subtype with student0/student1.
    fn paper_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.define_interface(
            InterfaceDef::new("Person")
                .with_extent_name("person")
                .with_attribute(Attribute::new("name", TypeRef::String))
                .with_attribute(Attribute::new("salary", TypeRef::Int)),
        )
        .unwrap();
        c.define_interface(InterfaceDef::new("Student").with_supertype("Person"))
            .unwrap();
        c.add_wrapper(WrapperDef::new("w0", "relational")).unwrap();
        for r in ["r0", "r1", "r2", "r3"] {
            c.add_repository(Repository::new(r)).unwrap();
        }
        c.add_extent(MetaExtent::new("person0", "Person", "w0", "r0"))
            .unwrap();
        c.add_extent(MetaExtent::new("person1", "Person", "w0", "r1"))
            .unwrap();
        c.add_extent(MetaExtent::new("student0", "Student", "w0", "r2"))
            .unwrap();
        c.add_extent(MetaExtent::new("student1", "Student", "w0", "r3"))
            .unwrap();
        c
    }

    #[test]
    fn person_extent_contains_only_person_sources() {
        let c = paper_catalog();
        let plain = c.extents_of_interface("Person", false).unwrap();
        assert_eq!(plain.len(), 2, "person contains person0 and person1 only");
        let recursive = c.extents_of_interface("Person", true).unwrap();
        assert_eq!(recursive.len(), 4, "person* also collects student extents");
    }

    #[test]
    fn resolve_extent_interface_and_star() {
        let c = paper_catalog();
        assert!(matches!(
            c.resolve("person0").unwrap(),
            NameBinding::Extent(_)
        ));
        match c.resolve("person").unwrap() {
            NameBinding::InterfaceExtent { interface, extents } => {
                assert_eq!(interface, "Person");
                assert_eq!(extents.len(), 2);
            }
            other => panic!("unexpected binding {other:?}"),
        }
        match c.resolve("person*").unwrap() {
            NameBinding::RecursiveExtent { interface, extents } => {
                assert_eq!(interface, "Person");
                assert_eq!(extents.len(), 4);
            }
            other => panic!("unexpected binding {other:?}"),
        }
        assert!(matches!(
            c.resolve("nothing").unwrap_err(),
            CatalogError::UnresolvedName(_)
        ));
    }

    #[test]
    fn subtype_queries() {
        let c = paper_catalog();
        assert!(c.is_subtype_of("Student", "Person"));
        assert!(c.is_subtype_of("Person", "Person"));
        assert!(!c.is_subtype_of("Person", "Student"));
        assert_eq!(c.subtype_closure("Person"), vec!["Person", "Student"]);
    }

    #[test]
    fn inherited_attributes_are_visible_on_subtype() {
        let c = paper_catalog();
        let attrs = c.attributes_of("Student").unwrap();
        let names: Vec<&str> = attrs.iter().map(Attribute::name).collect();
        assert_eq!(names, vec!["name", "salary"]);
    }

    #[test]
    fn adding_extent_requires_existing_interface_wrapper_repository() {
        let mut c = paper_catalog();
        assert!(matches!(
            c.add_extent(MetaExtent::new("x0", "Nope", "w0", "r0")),
            Err(CatalogError::UnknownInterface(_))
        ));
        assert!(matches!(
            c.add_extent(MetaExtent::new("x0", "Person", "wz", "r0")),
            Err(CatalogError::UnknownWrapper(_))
        ));
        assert!(matches!(
            c.add_extent(MetaExtent::new("x0", "Person", "w0", "rz")),
            Err(CatalogError::UnknownRepository(_))
        ));
        assert!(matches!(
            c.add_extent(MetaExtent::new("person0", "Person", "w0", "r0")),
            Err(CatalogError::DuplicateExtent(_))
        ));
    }

    #[test]
    fn generation_bumps_on_every_mutation() {
        let mut c = Catalog::new();
        let g0 = c.generation();
        c.define_interface(InterfaceDef::new("T")).unwrap();
        assert!(c.generation() > g0);
        let g1 = c.generation();
        c.add_repository(Repository::new("r")).unwrap();
        c.add_wrapper(WrapperDef::new("w", "relational")).unwrap();
        c.add_extent(MetaExtent::new("t0", "T", "w", "r")).unwrap();
        assert!(c.generation() > g1);
        let g2 = c.generation();
        c.remove_extent("t0").unwrap();
        assert!(c.generation() > g2);
    }

    #[test]
    fn view_cycles_are_rejected() {
        let mut c = Catalog::new();
        c.define_view(ViewDef::new("a", "select x from x in b").with_references(["b"]))
            .unwrap();
        // b references a, and a references b -> cycle.
        let err = c
            .define_view(ViewDef::new("b", "select x from x in a").with_references(["a"]))
            .unwrap_err();
        // Wait: the cycle is only detected if following the *new* view's
        // references reaches the new view itself. b -> a -> b: yes.
        assert!(matches!(err, CatalogError::CyclicView(_)));
        // Non-cyclic chains are fine.
        c.define_view(ViewDef::new("c", "select x from x in a").with_references(["a"]))
            .unwrap();
    }

    #[test]
    fn self_referential_view_is_rejected() {
        let mut c = Catalog::new();
        let err = c
            .define_view(ViewDef::new("v", "select x from x in v").with_references(["v"]))
            .unwrap_err();
        assert!(matches!(err, CatalogError::CyclicView(_)));
    }

    #[test]
    fn unknown_supertype_and_cyclic_supertype_rejected() {
        let mut c = Catalog::new();
        assert!(matches!(
            c.define_interface(InterfaceDef::new("A").with_supertype("Missing")),
            Err(CatalogError::UnknownSupertype { .. })
        ));
        assert!(matches!(
            c.define_interface(InterfaceDef::new("A").with_supertype("A")),
            Err(CatalogError::CyclicSubtype(_))
        ));
    }

    #[test]
    fn stats_count_each_section() {
        let c = paper_catalog();
        let s = c.stats();
        assert_eq!(s.interfaces, 2);
        assert_eq!(s.extents, 4);
        assert_eq!(s.repositories, 4);
        assert_eq!(s.wrappers, 1);
        assert_eq!(s.views, 0);
    }

    #[test]
    fn removing_unknown_items_errors() {
        let mut c = Catalog::new();
        assert!(c.remove_extent("nope").is_err());
        assert!(c.remove_view("nope").is_err());
        assert!(c.view("nope").is_err());
        assert!(c.wrapper("nope").is_err());
        assert!(c.repository("nope").is_err());
        assert!(c.interface("nope").is_err());
        assert!(c.extent("nope").is_err());
    }
}
