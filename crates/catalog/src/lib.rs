//! # disco-catalog
//!
//! The mediator data model of DISCO (§2 of the paper): an ODMG-93–style
//! schema extended so that *data sources are first-class objects*.
//!
//! The extensions the paper introduces, all implemented here:
//!
//! * **multiple extents per interface** — each [`MetaExtent`] mirrors the
//!   collection of objects in one data source; the implicit extent of an
//!   interface (e.g. `person`) is the union of all its registered extents,
//! * **`MetaExtent`** — the meta-data type recording
//!   `name / interface / wrapper / repository / map` for every source,
//! * **[`Repository`]** — "essentially the address of a database",
//! * **[`WrapperDef`]** — the catalog-level record of a wrapper object,
//! * **local transformation [`TypeMap`]s** — flat renamings between a
//!   mediator type and a data-source type (§2.2.2),
//! * **subtyping** with the recursive-extent syntax `person*` (§2.2.1),
//! * **views** (`define … as …`) for reconciling dissimilar structures
//!   (§2.2.3, §2.3),
//! * **the catalog component** (C in Fig. 1) which tracks which mediator
//!   advertises which interfaces.
//!
//! # Examples
//!
//! ```
//! use disco_catalog::{Catalog, InterfaceDef, Attribute, TypeRef, Repository, WrapperDef, MetaExtent};
//!
//! # fn main() -> Result<(), disco_catalog::CatalogError> {
//! let mut catalog = Catalog::new();
//! catalog.define_interface(
//!     InterfaceDef::new("Person")
//!         .with_extent_name("person")
//!         .with_attribute(Attribute::new("name", TypeRef::String))
//!         .with_attribute(Attribute::new("salary", TypeRef::Int)),
//! )?;
//! catalog.add_repository(Repository::new("r0").with_host("rodin").with_address("123.45.6.7"))?;
//! catalog.add_wrapper(WrapperDef::new("w0", "postgres"))?;
//! catalog.add_extent(MetaExtent::new("person0", "Person", "w0", "r0"))?;
//! assert_eq!(catalog.extents_of_interface("Person", false)?.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog_component;
mod error;
mod handle;
mod map;
mod meta_extent;
mod repository;
mod schema;
mod types;
mod views;
mod wrapper_def;

pub use catalog_component::{CatalogComponent, MediatorAdvertisement};
pub use error::CatalogError;
pub use handle::CatalogHandle;
pub use map::{MapEntry, TypeMap};
pub use meta_extent::MetaExtent;
pub use repository::Repository;
pub use schema::{Catalog, NameBinding};
pub use types::{Attribute, InterfaceDef, TypeRef};
pub use views::ViewDef;
pub use wrapper_def::WrapperDef;

/// Convenience result alias for catalog operations.
pub type Result<T> = std::result::Result<T, CatalogError>;
