use std::fmt;

/// Errors produced by catalog (schema / meta-data) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// An interface with this name is already defined.
    DuplicateInterface(String),
    /// No interface with this name is defined.
    UnknownInterface(String),
    /// An extent with this name is already registered.
    DuplicateExtent(String),
    /// No extent with this name is registered.
    UnknownExtent(String),
    /// A repository with this name is already registered.
    DuplicateRepository(String),
    /// No repository with this name is registered.
    UnknownRepository(String),
    /// A wrapper with this name is already registered.
    DuplicateWrapper(String),
    /// No wrapper with this name is registered.
    UnknownWrapper(String),
    /// A view with this name is already defined.
    DuplicateView(String),
    /// No view with this name is defined.
    UnknownView(String),
    /// Defining this view would create a cyclic reference chain.
    CyclicView(String),
    /// The local transformation map is malformed.
    InvalidMap(String),
    /// The supertype named in an interface definition does not exist.
    UnknownSupertype {
        /// Interface being defined.
        interface: String,
        /// The missing supertype.
        supertype: String,
    },
    /// The subtype graph would become cyclic.
    CyclicSubtype(String),
    /// An attribute referenced in a map or query does not belong to the type.
    UnknownAttribute {
        /// The interface the attribute was looked up on.
        interface: String,
        /// The missing attribute.
        attribute: String,
    },
    /// A name could not be resolved to an extent, interface or view.
    UnresolvedName(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::DuplicateInterface(n) => write!(f, "interface already defined: {n}"),
            CatalogError::UnknownInterface(n) => write!(f, "unknown interface: {n}"),
            CatalogError::DuplicateExtent(n) => write!(f, "extent already defined: {n}"),
            CatalogError::UnknownExtent(n) => write!(f, "unknown extent: {n}"),
            CatalogError::DuplicateRepository(n) => write!(f, "repository already defined: {n}"),
            CatalogError::UnknownRepository(n) => write!(f, "unknown repository: {n}"),
            CatalogError::DuplicateWrapper(n) => write!(f, "wrapper already defined: {n}"),
            CatalogError::UnknownWrapper(n) => write!(f, "unknown wrapper: {n}"),
            CatalogError::DuplicateView(n) => write!(f, "view already defined: {n}"),
            CatalogError::UnknownView(n) => write!(f, "unknown view: {n}"),
            CatalogError::CyclicView(n) => write!(f, "cyclic view definition: {n}"),
            CatalogError::InvalidMap(msg) => write!(f, "invalid transformation map: {msg}"),
            CatalogError::UnknownSupertype {
                interface,
                supertype,
            } => write!(
                f,
                "interface {interface} names unknown supertype {supertype}"
            ),
            CatalogError::CyclicSubtype(n) => write!(f, "cyclic subtype relationship at {n}"),
            CatalogError::UnknownAttribute {
                interface,
                attribute,
            } => write!(f, "interface {interface} has no attribute {attribute}"),
            CatalogError::UnresolvedName(n) => write!(f, "unresolved name: {n}"),
        }
    }
}

impl std::error::Error for CatalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            CatalogError::UnknownExtent("person0".into()).to_string(),
            "unknown extent: person0"
        );
        assert_eq!(
            CatalogError::UnknownAttribute {
                interface: "Person".into(),
                attribute: "age".into()
            }
            .to_string(),
            "interface Person has no attribute age"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CatalogError>();
    }
}
