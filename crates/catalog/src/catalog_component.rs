use std::collections::BTreeMap;

use crate::{CatalogError, Result};

/// What one mediator advertises to the catalog component: the interfaces it
/// exposes and the number of data sources behind each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MediatorAdvertisement {
    mediator: String,
    interfaces: Vec<String>,
    extent_count: usize,
}

impl MediatorAdvertisement {
    /// Creates an advertisement for `mediator`.
    pub fn new(mediator: impl Into<String>) -> Self {
        MediatorAdvertisement {
            mediator: mediator.into(),
            interfaces: Vec::new(),
            extent_count: 0,
        }
    }

    /// Adds an advertised interface.
    #[must_use]
    pub fn with_interface(mut self, interface: impl Into<String>) -> Self {
        self.interfaces.push(interface.into());
        self
    }

    /// Records how many extents (data sources) back the advertisement.
    #[must_use]
    pub fn with_extent_count(mut self, count: usize) -> Self {
        self.extent_count = count;
        self
    }

    /// The advertising mediator's name.
    #[must_use]
    pub fn mediator(&self) -> &str {
        &self.mediator
    }

    /// The advertised interfaces.
    #[must_use]
    pub fn interfaces(&self) -> &[String] {
        &self.interfaces
    }

    /// The number of data sources behind the mediator.
    #[must_use]
    pub fn extent_count(&self) -> usize {
        self.extent_count
    }
}

/// The catalog component — "special mediators, catalogs, keep track of
/// collections of databases, wrappers, and mediators in the system.
/// Catalogs do not have total knowledge of all elements of the system;
/// however, they provide an overview of the entire system." (§1.1, C in
/// Fig. 1).
///
/// Mediators register advertisements; applications and other mediators ask
/// the catalog which mediators can answer queries over a given interface.
#[derive(Debug, Clone, Default)]
pub struct CatalogComponent {
    advertisements: BTreeMap<String, MediatorAdvertisement>,
}

impl CatalogComponent {
    /// Creates an empty catalog component.
    #[must_use]
    pub fn new() -> Self {
        CatalogComponent::default()
    }

    /// Registers (or refreshes) a mediator's advertisement.  Re-registering
    /// replaces the previous advertisement, so mediators can update the
    /// catalog as sources are added.
    pub fn advertise(&mut self, advertisement: MediatorAdvertisement) {
        self.advertisements
            .insert(advertisement.mediator().to_owned(), advertisement);
    }

    /// Removes a mediator from the catalog.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::UnresolvedName`] when the mediator is not
    /// registered.
    pub fn withdraw(&mut self, mediator: &str) -> Result<MediatorAdvertisement> {
        self.advertisements
            .remove(mediator)
            .ok_or_else(|| CatalogError::UnresolvedName(mediator.to_owned()))
    }

    /// The mediators advertising a given interface, in name order.
    #[must_use]
    pub fn mediators_for_interface(&self, interface: &str) -> Vec<&MediatorAdvertisement> {
        self.advertisements
            .values()
            .filter(|a| a.interfaces().iter().any(|i| i == interface))
            .collect()
    }

    /// Looks up one mediator's advertisement.
    #[must_use]
    pub fn advertisement(&self, mediator: &str) -> Option<&MediatorAdvertisement> {
        self.advertisements.get(mediator)
    }

    /// Number of registered mediators.
    #[must_use]
    pub fn len(&self) -> usize {
        self.advertisements.len()
    }

    /// Returns `true` when no mediator is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.advertisements.is_empty()
    }

    /// Iterates over all advertisements in mediator-name order.
    pub fn iter(&self) -> impl Iterator<Item = &MediatorAdvertisement> {
        self.advertisements.values()
    }

    /// Total number of data sources known through advertisements — the
    /// "overview of the entire system" the paper mentions.
    #[must_use]
    pub fn total_extents(&self) -> usize {
        self.advertisements
            .values()
            .map(MediatorAdvertisement::extent_count)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advertise_and_lookup() {
        let mut c = CatalogComponent::new();
        c.advertise(
            MediatorAdvertisement::new("env-mediator")
                .with_interface("Measurement")
                .with_extent_count(12),
        );
        c.advertise(
            MediatorAdvertisement::new("hr-mediator")
                .with_interface("Person")
                .with_interface("Student")
                .with_extent_count(4),
        );
        assert_eq!(c.len(), 2);
        assert_eq!(c.total_extents(), 16);
        let person_mediators = c.mediators_for_interface("Person");
        assert_eq!(person_mediators.len(), 1);
        assert_eq!(person_mediators[0].mediator(), "hr-mediator");
        assert!(c.mediators_for_interface("Nothing").is_empty());
    }

    #[test]
    fn readvertising_replaces_previous_entry() {
        let mut c = CatalogComponent::new();
        c.advertise(MediatorAdvertisement::new("m").with_extent_count(1));
        c.advertise(MediatorAdvertisement::new("m").with_extent_count(5));
        assert_eq!(c.len(), 1);
        assert_eq!(c.advertisement("m").unwrap().extent_count(), 5);
    }

    #[test]
    fn withdraw_removes_and_errors_on_missing() {
        let mut c = CatalogComponent::new();
        c.advertise(MediatorAdvertisement::new("m"));
        assert!(c.withdraw("m").is_ok());
        assert!(c.is_empty());
        assert!(c.withdraw("m").is_err());
    }
}
