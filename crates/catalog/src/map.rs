use crate::{CatalogError, Result};

/// One equivalence in a local transformation map.
///
/// The paper (§2.2.2) restricts maps to a flat list of string
/// equivalences: either the data-source relation name equated with the
/// mediator extent name, or a source attribute equated with a mediator
/// attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapEntry {
    /// Name on the data-source side.
    source: String,
    /// Name on the mediator side.
    mediator: String,
}

impl MapEntry {
    /// Creates an equivalence `source = mediator`.
    pub fn new(source: impl Into<String>, mediator: impl Into<String>) -> Self {
        MapEntry {
            source: source.into(),
            mediator: mediator.into(),
        }
    }

    /// The data-source-side name.
    #[must_use]
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The mediator-side name.
    #[must_use]
    pub fn mediator(&self) -> &str {
        &self.mediator
    }
}

/// A *local transformation map*: the flat renaming between a mediator type
/// and a data-source type (§2.2.2).
///
/// The paper's example maps the `PersonPrime` mediator type onto the
/// `person0` source relation:
///
/// ```text
/// extent personprime0 of PersonPrime wrapper w0 repository r0
///     map ((person0=personprime0),(name=n),(salary=s));
/// ```
///
/// The first entry relates the source relation name (`person0`) to the
/// mediator extent name (`personprime0`); the remaining entries relate
/// source attribute names to mediator attribute names.  The mediator
/// applies the map *to queries before passing them to wrappers* (mediator →
/// source direction) and wrappers apply the inverse to answers.
///
/// # Examples
///
/// ```
/// use disco_catalog::TypeMap;
///
/// let map = TypeMap::builder()
///     .relation("person0", "personprime0")
///     .attribute("name", "n")
///     .attribute("salary", "s")
///     .build()
///     .unwrap();
/// assert_eq!(map.mediator_to_source("n"), "name");
/// assert_eq!(map.source_to_mediator("salary"), "s");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TypeMap {
    relation: Option<MapEntry>,
    attributes: Vec<MapEntry>,
}

impl TypeMap {
    /// Creates an empty (identity) map.
    #[must_use]
    pub fn new() -> Self {
        TypeMap::default()
    }

    /// Starts building a map.
    #[must_use]
    pub fn builder() -> TypeMapBuilder {
        TypeMapBuilder::default()
    }

    /// Returns `true` when the map has no entries (identity behaviour).
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.relation.is_none() && self.attributes.is_empty()
    }

    /// The relation-name equivalence, if present.
    #[must_use]
    pub fn relation(&self) -> Option<&MapEntry> {
        self.relation.as_ref()
    }

    /// The attribute equivalences.
    #[must_use]
    pub fn attributes(&self) -> &[MapEntry] {
        &self.attributes
    }

    /// Translates a mediator-side attribute name to the data-source name.
    /// Unmapped names pass through unchanged.
    #[must_use]
    pub fn mediator_to_source(&self, mediator_attr: &str) -> String {
        self.attributes
            .iter()
            .find(|e| e.mediator() == mediator_attr)
            .map_or_else(|| mediator_attr.to_owned(), |e| e.source().to_owned())
    }

    /// Translates a data-source attribute name to the mediator name.
    /// Unmapped names pass through unchanged.
    #[must_use]
    pub fn source_to_mediator(&self, source_attr: &str) -> String {
        self.attributes
            .iter()
            .find(|e| e.source() == source_attr)
            .map_or_else(|| source_attr.to_owned(), |e| e.mediator().to_owned())
    }

    /// Translates the mediator extent name to the data-source relation
    /// name.  Without a relation entry the extent name passes through,
    /// matching the paper's default "the extent name is determined by the
    /// name of the data source in the repository".
    #[must_use]
    pub fn extent_to_relation(&self, extent_name: &str) -> String {
        match &self.relation {
            Some(entry) if entry.mediator() == extent_name => entry.source().to_owned(),
            _ => extent_name.to_owned(),
        }
    }

    /// Returns the inverse map (source and mediator sides swapped).
    #[must_use]
    pub fn inverse(&self) -> TypeMap {
        TypeMap {
            relation: self
                .relation
                .as_ref()
                .map(|e| MapEntry::new(e.mediator(), e.source())),
            attributes: self
                .attributes
                .iter()
                .map(|e| MapEntry::new(e.mediator(), e.source()))
                .collect(),
        }
    }

    /// Parses the paper's concrete syntax
    /// `((person0=personprime0),(name=n),(salary=s))`.
    ///
    /// The first pair whose left-hand side differs from every declared
    /// mediator attribute is taken as the relation equivalence; in practice
    /// callers pass the extent name so the first entry is used as the
    /// relation mapping whenever its right-hand side equals the extent
    /// name.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::InvalidMap`] on malformed syntax.
    pub fn parse(text: &str, extent_name: &str) -> Result<TypeMap> {
        let trimmed = text.trim();
        let inner = trimmed
            .strip_prefix('(')
            .and_then(|s| s.strip_suffix(')'))
            .ok_or_else(|| {
                CatalogError::InvalidMap(format!("expected outer parentheses: {text}"))
            })?;
        let mut builder = TypeMap::builder();
        for raw_pair in split_pairs(inner) {
            let pair = raw_pair.trim();
            let pair = pair
                .strip_prefix('(')
                .and_then(|s| s.strip_suffix(')'))
                .ok_or_else(|| {
                    CatalogError::InvalidMap(format!("expected parenthesised pair: {raw_pair}"))
                })?;
            let mut sides = pair.splitn(2, '=');
            let left = sides
                .next()
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .ok_or_else(|| CatalogError::InvalidMap(format!("missing left side: {pair}")))?;
            let right = sides
                .next()
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .ok_or_else(|| CatalogError::InvalidMap(format!("missing right side: {pair}")))?;
            if right == extent_name && builder.relation.is_none() {
                builder = builder.relation(left, right);
            } else {
                builder = builder.attribute(left, right);
            }
        }
        builder.build()
    }
}

/// Splits `"(a=b),(c=d)"` into `["(a=b)", "(c=d)"]`, respecting nesting.
fn split_pairs(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for c in s.chars() {
        match c {
            '(' => {
                depth += 1;
                current.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                current.push(c);
            }
            ',' if depth == 0 => {
                if !current.trim().is_empty() {
                    out.push(current.trim().to_owned());
                }
                current = String::new();
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        out.push(current.trim().to_owned());
    }
    out
}

/// Builder for [`TypeMap`].
#[derive(Debug, Clone, Default)]
pub struct TypeMapBuilder {
    relation: Option<MapEntry>,
    attributes: Vec<MapEntry>,
}

impl TypeMapBuilder {
    /// Sets the relation-name equivalence (`source_relation = extent_name`).
    #[must_use]
    pub fn relation(mut self, source: impl Into<String>, mediator: impl Into<String>) -> Self {
        self.relation = Some(MapEntry::new(source, mediator));
        self
    }

    /// Adds an attribute equivalence (`source_attr = mediator_attr`).
    #[must_use]
    pub fn attribute(mut self, source: impl Into<String>, mediator: impl Into<String>) -> Self {
        self.attributes.push(MapEntry::new(source, mediator));
        self
    }

    /// Finishes the map.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::InvalidMap`] when the same mediator or source
    /// attribute appears twice (maps must be one-to-one).
    pub fn build(self) -> Result<TypeMap> {
        for (i, a) in self.attributes.iter().enumerate() {
            for b in &self.attributes[i + 1..] {
                if a.mediator() == b.mediator() {
                    return Err(CatalogError::InvalidMap(format!(
                        "mediator attribute mapped twice: {}",
                        a.mediator()
                    )));
                }
                if a.source() == b.source() {
                    return Err(CatalogError::InvalidMap(format!(
                        "source attribute mapped twice: {}",
                        a.source()
                    )));
                }
            }
        }
        Ok(TypeMap {
            relation: self.relation,
            attributes: self.attributes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_map() -> TypeMap {
        TypeMap::builder()
            .relation("person0", "personprime0")
            .attribute("name", "n")
            .attribute("salary", "s")
            .build()
            .unwrap()
    }

    #[test]
    fn mediator_to_source_renames_mapped_attributes() {
        let m = paper_map();
        assert_eq!(m.mediator_to_source("n"), "name");
        assert_eq!(m.mediator_to_source("s"), "salary");
        assert_eq!(m.mediator_to_source("unmapped"), "unmapped");
    }

    #[test]
    fn source_to_mediator_is_the_inverse_direction() {
        let m = paper_map();
        assert_eq!(m.source_to_mediator("name"), "n");
        assert_eq!(m.source_to_mediator("salary"), "s");
    }

    #[test]
    fn extent_to_relation_uses_relation_entry() {
        let m = paper_map();
        assert_eq!(m.extent_to_relation("personprime0"), "person0");
        assert_eq!(m.extent_to_relation("other"), "other");
        assert_eq!(TypeMap::new().extent_to_relation("person0"), "person0");
    }

    #[test]
    fn inverse_round_trips() {
        let m = paper_map();
        let inv = m.inverse();
        assert_eq!(inv.mediator_to_source("name"), "n");
        assert_eq!(inv.inverse(), m);
    }

    #[test]
    fn identity_map_passes_everything_through() {
        let m = TypeMap::new();
        assert!(m.is_identity());
        assert_eq!(m.mediator_to_source("x"), "x");
        assert_eq!(m.source_to_mediator("x"), "x");
    }

    #[test]
    fn parse_paper_syntax() {
        let m = TypeMap::parse(
            "((person0=personprime0),(name=n),(salary=s))",
            "personprime0",
        )
        .unwrap();
        assert_eq!(m, paper_map());
    }

    #[test]
    fn parse_rejects_malformed_text() {
        assert!(TypeMap::parse("person0=personprime0", "personprime0").is_err());
        assert!(TypeMap::parse("((person0))", "personprime0").is_err());
        assert!(TypeMap::parse("((=x))", "x").is_err());
    }

    #[test]
    fn duplicate_attribute_mappings_are_rejected() {
        let err = TypeMap::builder()
            .attribute("a", "x")
            .attribute("b", "x")
            .build()
            .unwrap_err();
        assert!(matches!(err, CatalogError::InvalidMap(_)));
        let err = TypeMap::builder()
            .attribute("a", "x")
            .attribute("a", "y")
            .build()
            .unwrap_err();
        assert!(matches!(err, CatalogError::InvalidMap(_)));
    }
}
