//! Property-style tests for the canonical `Hash`/`Eq`/`total_cmp` triangle
//! on [`Value`].
//!
//! The invariants the hash join, hash distinct and hash-based multiset
//! equality all rely on:
//!
//! * `a == b` (i.e. `total_cmp == Equal`) implies `hash(a) == hash(b)` —
//!   including `Int`/`Float` cross-variant equality, `-0.0`/`0.0`/`NaN`
//!   edge cases, permuted struct fields and permuted bags,
//! * `total_cmp` is a total order: reflexive, antisymmetric, transitive.
//!
//! Values are generated with a seeded deterministic RNG (the offline
//! `rand` shim); every failure reproduces from its printed seed.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use disco_value::{Bag, StructValue, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn hash_of(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// Random value generator, depth-bounded.
fn random_value(rng: &mut StdRng, depth: u32) -> Value {
    let variants = if depth == 0 { 6 } else { 9 };
    match rng.gen_range(0..variants as u32) {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_bool(0.5)),
        2 => match rng.gen_range(0..4u32) {
            0 => Value::Int(rng.gen_range(-100..100i64)),
            1 => Value::Int(9_007_199_254_740_990 + rng.gen_range(0..6i64)),
            2 => Value::Int(i64::MIN + rng.gen_range(0..3i64)),
            _ => Value::Int(i64::MAX - rng.gen_range(0..3i64)),
        },
        3 => {
            // Floats including the nasty ones.
            match rng.gen_range(0..6u32) {
                0 => Value::Float(0.0),
                1 => Value::Float(-0.0),
                2 => Value::Float(f64::NAN),
                3 => Value::Float(f64::INFINITY),
                4 => Value::Float(f64::NEG_INFINITY),
                _ => Value::Float(rng.gen_range(-100.0..100.0)),
            }
        }
        4 => {
            let len = rng.gen_range(0..6usize);
            let s: String = (0..len)
                .map(|_| char::from(b'a' + u8::try_from(rng.gen_range(0..4u32)).unwrap()))
                .collect();
            Value::from(s)
        }
        // Small ints again so collections collide often.
        5 => Value::Int(rng.gen_range(0..4i64)),
        6 => {
            let n = rng.gen_range(0..4usize);
            let mut fields: Vec<(String, Value)> = Vec::new();
            while fields.len() < n {
                let name = format!("f{}", rng.gen_range(0..6u32));
                if fields.iter().all(|(existing, _)| *existing != name) {
                    fields.push((name, random_value(rng, depth - 1)));
                }
            }
            Value::Struct(StructValue::new(fields).unwrap())
        }
        7 => {
            let n = rng.gen_range(0..4usize);
            Value::list((0..n).map(|_| random_value(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0..5usize);
            Value::Bag((0..n).map(|_| random_value(rng, depth - 1)).collect())
        }
    }
}

/// Deterministic Fisher–Yates shuffle driven by the test RNG.
fn shuffle<T>(rng: &mut StdRng, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..(i + 1));
        items.swap(i, j);
    }
}

#[test]
fn equal_values_hash_equal() {
    let mut checked_equal = 0usize;
    for seed in 0..500u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_value(&mut rng, 3);
        let b = random_value(&mut rng, 3);
        if a == b {
            checked_equal += 1;
            assert_eq!(hash_of(&a), hash_of(&b), "seed {seed}: {a:?} == {b:?}");
        }
        // Reflexivity: every value equals (and hashes like) its clone.
        assert_eq!(a, a.clone(), "seed {seed}");
        assert_eq!(hash_of(&a), hash_of(&a.clone()), "seed {seed}");
    }
    assert!(checked_equal > 0, "generator never produced an equal pair");
}

#[test]
fn permuted_struct_fields_hash_equal() {
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(0xB0 + seed);
        let n = rng.gen_range(1..5usize);
        let mut fields: Vec<(String, Value)> = Vec::new();
        while fields.len() < n {
            let name = format!("f{}", rng.gen_range(0..8u32));
            if fields.iter().all(|(existing, _)| *existing != name) {
                fields.push((name, random_value(&mut rng, 2)));
            }
        }
        let original = Value::Struct(StructValue::new(fields.clone()).unwrap());
        shuffle(&mut rng, &mut fields);
        let permuted = Value::Struct(StructValue::new(fields).unwrap());
        assert_eq!(original, permuted, "seed {seed}");
        assert_eq!(hash_of(&original), hash_of(&permuted), "seed {seed}");
    }
}

#[test]
fn permuted_bags_hash_equal() {
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(0xBA6 + seed);
        let n = rng.gen_range(0..8usize);
        let mut items: Vec<Value> = (0..n).map(|_| random_value(&mut rng, 2)).collect();
        let original = Value::Bag(items.iter().cloned().collect());
        shuffle(&mut rng, &mut items);
        let permuted = Value::Bag(items.into_iter().collect());
        assert_eq!(original, permuted, "seed {seed}");
        assert_eq!(hash_of(&original), hash_of(&permuted), "seed {seed}");
    }
}

#[test]
fn int_float_cross_variant_consistency() {
    for i in -50..50i64 {
        #[allow(clippy::cast_precision_loss)]
        let f = Value::Float(i as f64);
        let n = Value::Int(i);
        assert_eq!(n, f);
        assert_eq!(hash_of(&n), hash_of(&f));
    }
    // Negative zero: distinct from positive zero under the IEEE total
    // order, equal to nothing but itself.
    let neg = Value::Float(-0.0);
    let pos = Value::Float(0.0);
    assert_ne!(neg, pos);
    assert_eq!(Value::Int(0), pos);
    assert_eq!(hash_of(&Value::Int(0)), hash_of(&pos));
    assert_eq!(neg, neg.clone());
    assert_eq!(hash_of(&neg), hash_of(&neg.clone()));
    // NaN equals itself under total_cmp (same bit pattern).
    let nan = Value::Float(f64::NAN);
    assert_eq!(nan, nan.clone());
    assert_eq!(hash_of(&nan), hash_of(&nan.clone()));
}

#[test]
fn total_cmp_is_antisymmetric_and_transitive() {
    for seed in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(0x707A1_u64.wrapping_add(seed));
        let samples: Vec<Value> = (0..12).map(|_| random_value(&mut rng, 2)).collect();
        for a in &samples {
            for b in &samples {
                assert_eq!(
                    a.total_cmp(b),
                    b.total_cmp(a).reverse(),
                    "antisymmetry: {a:?} vs {b:?}"
                );
                for c in &samples {
                    use std::cmp::Ordering::{Equal, Greater, Less};
                    let (ab, bc, ac) = (a.total_cmp(b), b.total_cmp(c), a.total_cmp(c));
                    match (ab, bc) {
                        (Less | Equal, Less) | (Less, Equal) => {
                            assert_eq!(ac, Less, "transitivity: {a:?} {b:?} {c:?}");
                        }
                        (Greater | Equal, Greater) | (Greater, Equal) => {
                            assert_eq!(ac, Greater, "transitivity: {a:?} {b:?} {c:?}");
                        }
                        (Equal, Equal) => {
                            assert_eq!(ac, Equal, "transitivity: {a:?} {b:?} {c:?}");
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}

#[test]
fn nested_bag_equality_handles_duplicates() {
    // Multiset semantics on nested bags: Bag(Bag(1,2), Bag(1,2)) equals a
    // permutation of itself but not Bag(Bag(1,2), Bag(2,2)).
    let b12a: Bag = [Value::Int(1), Value::Int(2)].into_iter().collect();
    let b12b: Bag = [Value::Int(2), Value::Int(1)].into_iter().collect();
    let b22: Bag = [Value::Int(2), Value::Int(2)].into_iter().collect();
    let x = Value::Bag(
        [Value::Bag(b12a.clone()), Value::Bag(b12a.clone())]
            .into_iter()
            .collect(),
    );
    let y = Value::Bag(
        [Value::Bag(b12b.clone()), Value::Bag(b12a.clone())]
            .into_iter()
            .collect(),
    );
    let z = Value::Bag([Value::Bag(b12a), Value::Bag(b22)].into_iter().collect());
    assert_eq!(x, y);
    assert_eq!(hash_of(&x), hash_of(&y));
    assert_ne!(x, z);
}
