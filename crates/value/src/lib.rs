//! # disco-value
//!
//! Value model for the DISCO heterogeneous-database mediator reproduction.
//!
//! The DISCO paper (Tomasic, Raschid, Valduriez, 1995/1996) is built on the
//! ODMG-93 object model and the OQL query language.  Queries produce *bags*
//! of values — literals, structs, or nested bags — and, under DISCO's
//! partial-evaluation semantics, an answer may even embed another query.
//! This crate provides the runtime representation of such values:
//!
//! * [`Value`] — a dynamically typed value (null, bool, int, float, string,
//!   struct, list, bag),
//! * [`StructValue`] — an ordered record of named fields, the result of the
//!   OQL `struct(...)` constructor,
//! * [`Bag`] — an unordered multiset, the canonical OQL collection, with
//!   multiset equality and the bag union used throughout the paper
//!   ("In DISCO, the union of two bags is a bag"),
//! * [`ValueError`] — error type for conversions and field access.
//!
//! # Shared (zero-clone) representation
//!
//! The mediator's job is to *combine* bags produced by many autonomous
//! sources, so rows are copied between operators constantly.  To make that
//! combine step O(1) per row, every heap-carrying variant is backed by an
//! [`std::sync::Arc`]:
//!
//! * `Value::Str` holds `Arc<str>`,
//! * [`StructValue`] holds `Arc<Vec<(Arc<str>, Value)>>` — field names are
//!   shared too, so projecting/renaming/merging rows reuses name storage,
//! * `Value::List` holds `Arc<Vec<Value>>`,
//! * [`Bag`] holds `Arc<Vec<Value>>` with copy-on-write mutation
//!   ([`Bag::insert`]/[`Bag::extend`] mutate in place while unique, clone
//!   only when shared).
//!
//! `Value::clone` is therefore always a reference-count bump, never a deep
//! copy.  Equality, ordering and hashing form a consistent triangle:
//! `total_cmp` is a total order (floats via [`f64::total_cmp`], structs as
//! field sets, bags as multisets), `Eq` is `total_cmp == Equal`, and
//! `Hash` is canonical with respect to it — numerically equal ints and
//! floats hash identically, and struct/bag hashes are order-independent
//! (commutative combine, no sorting, no clones).  That canonical hash is
//! what lets the runtime build hash joins and hash distinct directly on
//! `Value` keys.
//!
//! # Thread safety
//!
//! The whole value plane is immutable-after-construction and `Arc`-backed
//! with **no interior mutability**, so every type in this crate is
//! [`Send`] `+` [`Sync`]: a `&Value` borrowed from a plan literal or a
//! resolved source answer can be read from any worker of the runtime's
//! parallel (morsel-driven) engine, and owned values can move between
//! workers freely.  This guarantee is load-bearing — the parallel engine
//! shares borrowed rows across its worker pool — and is pinned by the
//! compile-time assertions below, so a future variant that introduced
//! `Rc` or `Cell` storage would fail to build rather than quietly making
//! the engine unsound.
//!
//! # Examples
//!
//! ```
//! use disco_value::{Value, Bag};
//!
//! // The answer of the paper's introductory query:
//! //   select x.name from x in person where x.salary > 10
//! let answer: Bag = ["Mary", "Sam"].into_iter().map(Value::from).collect();
//! assert_eq!(answer.len(), 2);
//! assert_eq!(answer.to_string(), r#"Bag("Mary", "Sam")"#);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bag;
mod chunk;
mod convert;
mod display;
mod error;
mod ord;
pub mod spill;
mod value;

pub use bag::{Bag, BagCursor};
pub use chunk::{ChunkBuilder, Column, ColumnarChunk, FnvHasher, KeyHasher, StrDict, NULL_CODE};
pub use error::ValueError;
pub use spill::{approx_value_bytes, read_value, write_value, RunReader, RunWriter};
pub use value::{StructValue, Value};

/// Convenience result alias for fallible value operations.
pub type Result<T> = std::result::Result<T, ValueError>;

// Compile-time `Send + Sync` audit (see the crate docs): the parallel
// engine shares `&Value` rows across worker threads, so losing either
// auto-trait on any of these types must be a build error, not a latent
// data race.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Value>();
    assert_send_sync::<StructValue>();
    assert_send_sync::<Bag>();
    assert_send_sync::<BagCursor>();
    assert_send_sync::<ValueError>();
    assert_send_sync::<ColumnarChunk>();
    assert_send_sync::<Column>();
    assert_send_sync::<ChunkBuilder>();
};
