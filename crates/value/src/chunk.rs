//! Columnar chunks: the batch-at-a-time value representation of the
//! mediator's combine step.
//!
//! The streaming cursor engine moves rows between operators in batches,
//! but until now each row stayed a fat tagged [`Value`] evaluated one at
//! a time.  A [`ColumnarChunk`] decodes one batch of struct rows into
//! *typed column vectors* — `i64`/`f64`/`bool` data with optional null
//! masks, dictionary-encoded `Arc<str>` columns — so scalar kernels can
//! run over whole columns without per-row enum dispatch.  Filters mark
//! surviving rows in a selection vector (owned by the engine) instead of
//! copying them.
//!
//! Decoding is strict: a chunk is only produced when **every** row of the
//! batch is a struct carrying **every** requested field.  Anything else —
//! a missing field, a non-struct row — makes [`ChunkBuilder::build`]
//! return `None`, and the engine evaluates that batch through the exact
//! per-row [`Value`] path instead.  A column whose values mix types stays
//! usable as a [`Column::Values`] vector, so only genuinely irregular
//! batches fall back.

use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, Hasher};
use std::sync::Arc;

use crate::{StructValue, Value};

/// FNV-1a, the classic tiny-string hasher: the dictionary interns short
/// attribute values (names, categories), for which FNV beats SipHash by a
/// wide margin and needs no external crate.
#[derive(Default)]
pub struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0 ^ 0xcbf2_9ce4_8422_2325
    }

    fn write(&mut self, bytes: &[u8]) {
        // The state starts at 0 and the offset basis is folded in at
        // `finish`, so `Default` stays derivable.
        let mut hash = self.0 ^ 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = hash ^ 0xcbf2_9ce4_8422_2325;
    }
}

/// Code used in dictionary columns for null slots (never a valid code:
/// the dictionary refuses to grow that far).
pub const NULL_CODE: u32 = u32::MAX;

/// A string dictionary shared by every chunk of one scan: equal strings
/// get equal codes, so downstream consumers (hash distinct, equality
/// probes) can work on dense `u32`s and hash each *distinct* string once
/// instead of once per row.
#[derive(Default)]
pub struct StrDict {
    map: HashMap<Arc<str>, u32, BuildHasherDefault<FnvHasher>>,
}

impl StrDict {
    /// An empty dictionary.
    #[must_use]
    pub fn new() -> Self {
        StrDict::default()
    }

    /// Number of distinct strings interned so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` when nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Interns `s`, returning its stable code.  Equal strings (by
    /// content) always return the same code.  `None` only when the
    /// dictionary is full (`u32` codes exhausted, [`NULL_CODE`] reserved).
    pub fn code(&mut self, s: &Arc<str>) -> Option<u32> {
        if let Some(&code) = self.map.get(s.as_ref()) {
            return Some(code);
        }
        let next = u32::try_from(self.map.len()).ok()?;
        if next == NULL_CODE {
            return None;
        }
        self.map.insert(Arc::clone(s), next);
        Some(next)
    }
}

/// One decoded column of a [`ColumnarChunk`].
///
/// Typed variants carry plain data vectors plus an optional null mask
/// (`Some` only when the batch actually contained nulls; masked slots
/// hold an arbitrary placeholder in the data vector).  Batches mixing
/// value types in one field decode to [`Column::Values`], which keeps
/// the column kernel-evaluable element-wise.
pub enum Column {
    /// All-integer (or null) values.
    Int {
        /// Row values; null slots hold `0`.
        data: Vec<i64>,
        /// Null mask, present only when the chunk has nulls in this column.
        nulls: Option<Vec<bool>>,
    },
    /// All-float (or null) values.
    Float {
        /// Row values; null slots hold `0.0`.
        data: Vec<f64>,
        /// Null mask, present only when the chunk has nulls in this column.
        nulls: Option<Vec<bool>>,
    },
    /// All-boolean (or null) values.
    Bool {
        /// Row values; null slots hold `false`.
        data: Vec<bool>,
        /// Null mask, present only when the chunk has nulls in this column.
        nulls: Option<Vec<bool>>,
    },
    /// All-string (or null) values, optionally dictionary-encoded.
    Str {
        /// Row values (`Arc` bumps of the original strings); null slots
        /// hold an empty string.
        values: Vec<Arc<str>>,
        /// Dictionary codes from the scan's [`StrDict`] (equal string ⇔
        /// equal code); null slots hold [`NULL_CODE`].  `None` when the
        /// builder was not asked to encode this field (or the dictionary
        /// overflowed).
        codes: Option<Vec<u32>>,
        /// Null mask, present only when the chunk has nulls in this column.
        nulls: Option<Vec<bool>>,
    },
    /// Mixed-type values kept as boxed [`Value`]s (`Arc` bumps).
    Values(Vec<Value>),
}

/// One batch of rows decoded into columns.
///
/// Column order matches the field order the [`ChunkBuilder`] was
/// configured with; every column has exactly [`ColumnarChunk::len`]
/// slots.
pub struct ColumnarChunk {
    len: usize,
    columns: Vec<Column>,
}

impl ColumnarChunk {
    /// Number of rows in the chunk.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` for an empty chunk.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The decoded column at builder field index `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range — column slots correspond
    /// one-to-one to the fields registered on the builder.
    #[must_use]
    pub fn column(&self, index: usize) -> &Column {
        &self.columns[index]
    }
}

impl Column {
    /// Re-boxes the value at row `i` as a [`Value`].  Null-masked slots
    /// come back as [`Value::Null`] regardless of the placeholder stored
    /// in the data vector, so the result is exactly the value the row
    /// carried before decoding.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range for the chunk the column came from.
    #[must_use]
    pub fn value_at(&self, i: usize) -> Value {
        let masked = |nulls: &Option<Vec<bool>>| nulls.as_ref().is_some_and(|m| m[i]);
        match self {
            Column::Int { data, nulls } => {
                if masked(nulls) {
                    Value::Null
                } else {
                    Value::Int(data[i])
                }
            }
            Column::Float { data, nulls } => {
                if masked(nulls) {
                    Value::Null
                } else {
                    Value::Float(data[i])
                }
            }
            Column::Bool { data, nulls } => {
                if masked(nulls) {
                    Value::Null
                } else {
                    Value::Bool(data[i])
                }
            }
            Column::Str { values, nulls, .. } => {
                if masked(nulls) {
                    Value::Null
                } else {
                    Value::Str(Arc::clone(&values[i]))
                }
            }
            Column::Values(values) => values[i].clone(),
        }
    }
}

/// Batched join-key hashing: hashes a key column in one pass, producing
/// hashes **bit-identical** to `RandomState::hash_one(&Value)` over the
/// re-boxed values — the contract that lets a columnar build side and a
/// per-row fallback insert into the *same* hash table.
///
/// Hashing funnels through the canonical `Hash for Value` impl (never a
/// re-derivation of it), so it cannot drift from the row path.  The one
/// shortcut is the dictionary-code cache: for [`Column::Str`] columns that
/// carry codes, each *distinct* code is hashed once and repeated keys hit
/// the cache.  A `KeyHasher` therefore belongs to **one** key column (one
/// dictionary's code space); sharing it across differently-coded columns
/// would alias unrelated codes.
pub struct KeyHasher {
    state: RandomState,
    /// `code → hash` cache, densely indexed (codes are allocated densely
    /// by [`StrDict`]); `filled` tracks which slots are populated.
    code_hashes: Vec<u64>,
    code_filled: Vec<bool>,
}

impl KeyHasher {
    /// A hasher over `state` — pass a clone of the join table's
    /// `RandomState` so spine-computed hashes agree with per-row
    /// `hash_one` lookups against the same table.
    #[must_use]
    pub fn with_state(state: RandomState) -> Self {
        KeyHasher {
            state,
            code_hashes: Vec::new(),
            code_filled: Vec::new(),
        }
    }

    /// The canonical hash of one key value under this hasher's state.
    #[must_use]
    pub fn hash_value(&self, v: &Value) -> u64 {
        self.state.hash_one(v)
    }

    /// The hash of a dictionary-coded string key, computed once per
    /// distinct code.  `code` must come from the one dictionary this
    /// hasher serves (see the type-level invariant).
    pub fn hash_str_code(&mut self, s: &Arc<str>, code: u32) -> u64 {
        let slot = code as usize;
        if slot >= self.code_filled.len() {
            self.code_hashes.resize(slot + 1, 0);
            self.code_filled.resize(slot + 1, false);
        }
        if !self.code_filled[slot] {
            self.code_hashes[slot] = self.state.hash_one(Value::Str(Arc::clone(s)));
            self.code_filled[slot] = true;
        }
        self.code_hashes[slot]
    }

    /// Hashes the selected rows of a key column in one pass, appending
    /// one hash per selection entry to `out`.
    ///
    /// # Panics
    ///
    /// Panics when a selection index is out of range for the column.
    pub fn hash_column(&mut self, col: &Column, sel: &[u32], out: &mut Vec<u64>) {
        out.reserve(sel.len());
        let null_hash = |state: &RandomState| state.hash_one(&Value::Null);
        match col {
            Column::Int { data, nulls } => {
                let nh = nulls.as_ref().map(|_| null_hash(&self.state));
                for &i in sel {
                    let i = i as usize;
                    if nulls.as_ref().is_some_and(|m| m[i]) {
                        out.push(nh.unwrap());
                    } else {
                        out.push(self.state.hash_one(Value::Int(data[i])));
                    }
                }
            }
            Column::Float { data, nulls } => {
                let nh = nulls.as_ref().map(|_| null_hash(&self.state));
                for &i in sel {
                    let i = i as usize;
                    if nulls.as_ref().is_some_and(|m| m[i]) {
                        out.push(nh.unwrap());
                    } else {
                        out.push(self.state.hash_one(Value::Float(data[i])));
                    }
                }
            }
            Column::Bool { data, nulls } => {
                let nh = nulls.as_ref().map(|_| null_hash(&self.state));
                for &i in sel {
                    let i = i as usize;
                    if nulls.as_ref().is_some_and(|m| m[i]) {
                        out.push(nh.unwrap());
                    } else {
                        out.push(self.state.hash_one(Value::Bool(data[i])));
                    }
                }
            }
            Column::Str {
                values,
                codes,
                nulls,
            } => {
                let nh = nulls.as_ref().map(|_| null_hash(&self.state));
                if let Some(codes) = codes {
                    for &i in sel {
                        let i = i as usize;
                        if codes[i] == NULL_CODE {
                            out.push(nh.unwrap());
                        } else {
                            out.push(self.hash_str_code(&values[i], codes[i]));
                        }
                    }
                } else {
                    for &i in sel {
                        let i = i as usize;
                        if nulls.as_ref().is_some_and(|m| m[i]) {
                            out.push(nh.unwrap());
                        } else {
                            out.push(self.state.hash_one(Value::Str(Arc::clone(&values[i]))));
                        }
                    }
                }
            }
            Column::Values(values) => {
                for &i in sel {
                    out.push(self.state.hash_one(&values[i as usize]));
                }
            }
        }
    }
}

/// Per-field decode state of a [`ChunkBuilder`].
struct FieldPlan {
    name: Arc<str>,
    /// Dictionary for [`Column::Str`] codes; `None` = plain strings.
    dict: Option<StrDict>,
    /// Guessed declaration-order position of the field, updated on the
    /// fly: rows from one source share their layout, so after the first
    /// row every lookup is a single indexed access plus a name check.
    guess: usize,
}

/// Decodes batches of struct rows into [`ColumnarChunk`]s.
///
/// One builder serves one scan: it is configured once with the fields the
/// compiled kernels reference and then fed consecutive row batches.  The
/// builder owns per-field dictionaries, so codes stay consistent across
/// every chunk of the scan.
///
/// # Examples
///
/// ```
/// use disco_value::{ChunkBuilder, Column, StructValue, Value};
///
/// let rows: Vec<Value> = (0..3)
///     .map(|i| {
///         Value::Struct(StructValue::new(vec![("salary", Value::Int(i * 100))]).unwrap())
///     })
///     .collect();
/// let mut builder = ChunkBuilder::new();
/// let salary = builder.add_field("salary");
/// let chunk = builder.build(&rows).expect("uniform struct rows decode");
/// match chunk.column(salary) {
///     Column::Int { data, nulls } => {
///         assert_eq!(data, &[0, 100, 200]);
///         assert!(nulls.is_none());
///     }
///     _ => panic!("salary decodes as an int column"),
/// }
/// ```
#[derive(Default)]
pub struct ChunkBuilder {
    fields: Vec<FieldPlan>,
}

impl ChunkBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        ChunkBuilder::default()
    }

    /// Registers a field to decode; returns its column index.
    pub fn add_field(&mut self, name: impl Into<Arc<str>>) -> usize {
        self.fields.push(FieldPlan {
            name: name.into(),
            dict: None,
            guess: 0,
        });
        self.fields.len() - 1
    }

    /// Registers a field to decode with dictionary-encoded string codes;
    /// returns its column index.
    pub fn add_dict_field(&mut self, name: impl Into<Arc<str>>) -> usize {
        let index = self.add_field(name);
        self.fields[index].dict = Some(StrDict::new());
        index
    }

    /// Number of registered fields.
    #[must_use]
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// Decodes one batch of rows into a chunk, or `None` when the batch
    /// cannot be decoded strictly — some row is not a struct, or lacks a
    /// registered field.  (`None` is the fallback signal, not an error:
    /// the caller evaluates the batch per-row instead, which reproduces
    /// the exact row-path behaviour including its error reporting.)
    pub fn build(&mut self, rows: &[Value]) -> Option<ColumnarChunk> {
        let mut columns = Vec::with_capacity(self.fields.len());
        let mut scratch: Vec<&Value> = Vec::with_capacity(rows.len());
        for plan in &mut self.fields {
            scratch.clear();
            for row in rows {
                let Value::Struct(s) = row else {
                    return None;
                };
                scratch.push(lookup_field(s, plan)?);
            }
            columns.push(encode_column(&scratch, plan.dict.as_mut()));
        }
        Some(ColumnarChunk {
            len: rows.len(),
            columns,
        })
    }
}

/// Field lookup with a positional fast path (see [`FieldPlan::guess`]).
fn lookup_field<'v>(row: &'v StructValue, plan: &mut FieldPlan) -> Option<&'v Value> {
    if let Some((name, value)) = row.field_at(plan.guess) {
        if name == plan.name.as_ref() {
            return Some(value);
        }
    }
    let (index, value) = row.position(plan.name.as_ref())?;
    plan.guess = index;
    Some(value)
}

/// Classifies and encodes one column's values.
fn encode_column(values: &[&Value], dict: Option<&mut StrDict>) -> Column {
    #[derive(PartialEq, Eq, Clone, Copy)]
    enum Kind {
        Unknown,
        Int,
        Float,
        Bool,
        Str,
        Mixed,
    }
    let mut kind = Kind::Unknown;
    let mut has_null = false;
    for v in values {
        let this = match v {
            Value::Null => {
                has_null = true;
                continue;
            }
            Value::Int(_) => Kind::Int,
            Value::Float(_) => Kind::Float,
            Value::Bool(_) => Kind::Bool,
            Value::Str(_) => Kind::Str,
            _ => Kind::Mixed,
        };
        kind = match kind {
            Kind::Unknown => this,
            k if k == this => k,
            _ => Kind::Mixed,
        };
        if kind == Kind::Mixed {
            break;
        }
    }
    let nulls = || {
        if has_null {
            Some(values.iter().map(|v| v.is_null()).collect())
        } else {
            None
        }
    };
    match kind {
        Kind::Int => Column::Int {
            data: values
                .iter()
                .map(|v| if let Value::Int(i) = v { *i } else { 0 })
                .collect(),
            nulls: nulls(),
        },
        Kind::Float => Column::Float {
            data: values
                .iter()
                .map(|v| if let Value::Float(f) = v { *f } else { 0.0 })
                .collect(),
            nulls: nulls(),
        },
        Kind::Bool => Column::Bool {
            data: values
                .iter()
                .map(|v| matches!(v, Value::Bool(true)))
                .collect(),
            nulls: nulls(),
        },
        Kind::Str => {
            let empty: Arc<str> = Arc::from("");
            let strs: Vec<Arc<str>> = values
                .iter()
                .map(|v| {
                    if let Value::Str(s) = v {
                        Arc::clone(s)
                    } else {
                        Arc::clone(&empty)
                    }
                })
                .collect();
            let codes = dict.and_then(|d| {
                let mut codes = Vec::with_capacity(values.len());
                for (s, v) in strs.iter().zip(values) {
                    if v.is_null() {
                        codes.push(NULL_CODE);
                    } else {
                        codes.push(d.code(s)?);
                    }
                }
                Some(codes)
            });
            Column::Str {
                values: strs,
                codes,
                nulls: nulls(),
            }
        }
        // All-null columns land here too: boxed values keep the exact
        // per-element semantics without a dedicated all-null encoding.
        Kind::Unknown | Kind::Mixed => {
            Column::Values(values.iter().map(|v| (*v).clone()).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn person(id: i64, name: &str) -> Value {
        Value::Struct(
            StructValue::new(vec![("id", Value::Int(id)), ("name", Value::from(name))]).unwrap(),
        )
    }

    #[test]
    fn decodes_typed_columns_with_dictionary_codes() {
        let rows = vec![person(1, "ann"), person(2, "bob"), person(3, "ann")];
        let mut b = ChunkBuilder::new();
        let id = b.add_field("id");
        let name = b.add_dict_field("name");
        let chunk = b.build(&rows).unwrap();
        assert_eq!(chunk.len(), 3);
        match chunk.column(id) {
            Column::Int { data, nulls } => {
                assert_eq!(data, &[1, 2, 3]);
                assert!(nulls.is_none());
            }
            _ => panic!("id is an int column"),
        }
        match chunk.column(name) {
            Column::Str { values, codes, .. } => {
                assert_eq!(values[0].as_ref(), "ann");
                let codes = codes.as_ref().unwrap();
                assert_eq!(codes[0], codes[2]);
                assert_ne!(codes[0], codes[1]);
            }
            _ => panic!("name is a str column"),
        }
    }

    #[test]
    fn dictionary_codes_are_stable_across_chunks() {
        let mut b = ChunkBuilder::new();
        let name = b.add_dict_field("name");
        let first = b.build(&[person(1, "ann"), person(2, "bob")]).unwrap();
        let second = b.build(&[person(3, "bob"), person(4, "cay")]).unwrap();
        let (
            Column::Str {
                codes: Some(c1), ..
            },
            Column::Str {
                codes: Some(c2), ..
            },
        ) = (first.column(name), second.column(name))
        else {
            panic!("dictionary columns");
        };
        assert_eq!(c1[1], c2[0], "equal strings share a code across chunks");
        assert_ne!(c2[0], c2[1]);
    }

    #[test]
    fn null_masks_mark_null_slots() {
        let rows = vec![
            Value::Struct(StructValue::new(vec![("x", Value::Int(1))]).unwrap()),
            Value::Struct(StructValue::new(vec![("x", Value::Null)]).unwrap()),
        ];
        let mut b = ChunkBuilder::new();
        let x = b.add_field("x");
        let chunk = b.build(&rows).unwrap();
        match chunk.column(x) {
            Column::Int { data, nulls } => {
                assert_eq!(data, &[1, 0]);
                assert_eq!(nulls.as_deref(), Some(&[false, true][..]));
            }
            _ => panic!("int column with nulls"),
        }
    }

    #[test]
    fn missing_field_or_non_struct_rows_refuse_to_decode() {
        let mut b = ChunkBuilder::new();
        b.add_field("salary");
        assert!(b.build(&[person(1, "ann")]).is_none(), "missing field");
        assert!(b.build(&[Value::Int(7)]).is_none(), "non-struct row");
    }

    #[test]
    fn key_hasher_matches_canonical_hash_one() {
        // Every column shape must hash bit-identically to
        // RandomState::hash_one over the re-boxed values — including
        // integral floats (which the canonical hash unifies with ints),
        // NaN, nulls, dictionary strings, and mixed columns.
        let rows: Vec<Value> = vec![
            Value::Struct(
                StructValue::new(vec![
                    ("i", Value::Int(42)),
                    ("f", Value::Float(42.0)),
                    ("g", Value::Float(f64::NAN)),
                    ("s", Value::from("ann")),
                    ("m", Value::Int(1)),
                ])
                .unwrap(),
            ),
            Value::Struct(
                StructValue::new(vec![
                    ("i", Value::Null),
                    ("f", Value::Float(2.5)),
                    ("g", Value::Float(-0.0)),
                    ("s", Value::from("ann")),
                    ("m", Value::from("one")),
                ])
                .unwrap(),
            ),
            Value::Struct(
                StructValue::new(vec![
                    ("i", Value::Int(-7)),
                    ("f", Value::Null),
                    ("g", Value::Float(1e300)),
                    ("s", Value::Null),
                    ("m", Value::Bool(true)),
                ])
                .unwrap(),
            ),
        ];
        let mut b = ChunkBuilder::new();
        let cols = vec![
            b.add_field("i"),
            b.add_field("f"),
            b.add_field("g"),
            b.add_dict_field("s"),
            b.add_field("m"),
        ];
        let chunk = b.build(&rows).unwrap();
        let sel: Vec<u32> = (0..rows.len() as u32).collect();
        let state = RandomState::new();
        for idx in cols {
            let col = chunk.column(idx);
            let mut kh = KeyHasher::with_state(state.clone());
            let mut hashes = Vec::new();
            kh.hash_column(col, &sel, &mut hashes);
            for (j, &i) in sel.iter().enumerate() {
                let expect = state.hash_one(col.value_at(i as usize));
                assert_eq!(hashes[j], expect, "column {idx} row {i}");
            }
        }
    }

    #[test]
    fn key_hasher_int_hash_matches_equal_float() {
        // Int(5) == Float(5.0) under total_cmp equality, so their hashes
        // agree; the batched primitive must preserve that across typed
        // columns for mixed int/float join keys to meet in one bucket.
        let state = RandomState::new();
        let kh = KeyHasher::with_state(state.clone());
        assert_eq!(
            kh.hash_value(&Value::Int(5)),
            kh.hash_value(&Value::Float(5.0))
        );
        assert_eq!(kh.hash_value(&Value::Int(5)), state.hash_one(Value::Int(5)));
    }

    #[test]
    fn column_value_at_reboxes_nulls() {
        let rows = vec![
            Value::Struct(StructValue::new(vec![("x", Value::Int(1))]).unwrap()),
            Value::Struct(StructValue::new(vec![("x", Value::Null)]).unwrap()),
        ];
        let mut b = ChunkBuilder::new();
        let x = b.add_field("x");
        let chunk = b.build(&rows).unwrap();
        assert_eq!(chunk.column(x).value_at(0), Value::Int(1));
        assert_eq!(chunk.column(x).value_at(1), Value::Null);
    }

    #[test]
    fn mixed_types_fall_back_to_boxed_values() {
        let rows = vec![
            Value::Struct(StructValue::new(vec![("x", Value::Int(1))]).unwrap()),
            Value::Struct(StructValue::new(vec![("x", Value::from("one"))]).unwrap()),
        ];
        let mut b = ChunkBuilder::new();
        let x = b.add_field("x");
        let chunk = b.build(&rows).unwrap();
        assert!(matches!(chunk.column(x), Column::Values(vs) if vs.len() == 2));
    }
}
