use std::fmt;

/// Error produced by value conversions and field access.
///
/// # Examples
///
/// ```
/// use disco_value::{Value, ValueError};
///
/// let v = Value::from("Mary");
/// let err = v.as_int().unwrap_err();
/// assert!(matches!(err, ValueError::TypeMismatch { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueError {
    /// The value had a different runtime type than the one requested.
    TypeMismatch {
        /// The type that was requested (e.g. `"int"`).
        expected: &'static str,
        /// The type the value actually has (e.g. `"string"`).
        found: &'static str,
    },
    /// A struct field was requested that does not exist.
    NoSuchField {
        /// Name of the missing field.
        field: String,
    },
    /// A field access was attempted on a value that is not a struct.
    NotAStruct {
        /// The runtime type of the value the access was attempted on.
        found: &'static str,
    },
    /// Two structs being merged define the same field.
    DuplicateField {
        /// Name of the duplicated field.
        field: String,
    },
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            ValueError::NoSuchField { field } => write!(f, "no such field: {field}"),
            ValueError::NotAStruct { found } => {
                write!(f, "field access on non-struct value of type {found}")
            }
            ValueError::DuplicateField { field } => write!(f, "duplicate field: {field}"),
        }
    }
}

impl std::error::Error for ValueError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ValueError::TypeMismatch {
            expected: "int",
            found: "string",
        };
        assert_eq!(e.to_string(), "type mismatch: expected int, found string");
        let e = ValueError::NoSuchField {
            field: "salary".into(),
        };
        assert_eq!(e.to_string(), "no such field: salary");
        let e = ValueError::NotAStruct { found: "bag" };
        assert_eq!(
            e.to_string(),
            "field access on non-struct value of type bag"
        );
        let e = ValueError::DuplicateField {
            field: "name".into(),
        };
        assert_eq!(e.to_string(), "duplicate field: name");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ValueError>();
    }
}
