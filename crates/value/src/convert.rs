//! `From` conversions into [`Value`] for Rust primitives.

use crate::{Bag, StructValue, Value};

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(std::sync::Arc::from(s))
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s.into())
    }
}

impl From<std::sync::Arc<str>> for Value {
    fn from(s: std::sync::Arc<str>) -> Self {
        Value::Str(s)
    }
}

impl From<StructValue> for Value {
    fn from(s: StructValue) -> Self {
        Value::Struct(s)
    }
}

impl From<Bag> for Value {
    fn from(b: Bag) -> Self {
        Value::Bag(b)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::list(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_conversions() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from(7i32), Value::Int(7));
        assert_eq!(Value::from(7u32), Value::Int(7));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(Value::from(String::from("hi")), Value::Str("hi".into()));
    }

    #[test]
    fn option_conversion_maps_none_to_null() {
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(3i64)), Value::Int(3));
    }

    #[test]
    fn collection_conversions() {
        let b: Bag = [Value::Int(1)].into_iter().collect();
        assert_eq!(Value::from(b.clone()), Value::Bag(b));
        assert_eq!(
            Value::from(vec![Value::Int(1)]),
            Value::list(vec![Value::Int(1)])
        );
        let s = StructValue::new(vec![("a", Value::Int(1))]).unwrap();
        assert_eq!(Value::from(s.clone()), Value::Struct(s));
    }
}
