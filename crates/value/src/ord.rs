//! Total ordering, equality and hashing for [`Value`].
//!
//! DISCO answers are bags; to make test assertions and benchmark output
//! deterministic we give values a *total* order: variants are ranked, floats
//! use [`f64::total_cmp`], structs compare as sorted field lists, and bags
//! compare as sorted multisets.  Equality is consistent with this order.

use std::cmp::Ordering;
use std::hash::{Hash, Hasher};

use crate::{StructValue, Value};

fn variant_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Float(_) => 3,
        Value::Str(_) => 4,
        Value::Struct(_) => 5,
        Value::List(_) => 6,
        Value::Bag(_) => 7,
    }
}

fn cmp_numeric(a: &Value, b: &Value) -> Option<Ordering> {
    let af = match a {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }?;
    let bf = match b {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }?;
    Some(af.total_cmp(&bf))
}

impl Value {
    /// Compares two values with the total order used for deterministic
    /// output.  Numeric values of different variants (`Int` vs `Float`)
    /// compare numerically, matching OQL comparison semantics.
    #[must_use]
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        if let Some(ord) = cmp_numeric(self, other) {
            // Numeric cross-variant comparison: 2 == 2.0, as in OQL.
            return ord;
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Struct(a), Value::Struct(b)) => cmp_struct(a, b),
            (Value::List(a), Value::List(b)) => cmp_seq(a, b),
            (Value::Bag(a), Value::Bag(b)) => {
                let mut av: Vec<&Value> = a.iter().collect();
                let mut bv: Vec<&Value> = b.iter().collect();
                av.sort_by(|x, y| x.total_cmp(y));
                bv.sort_by(|x, y| x.total_cmp(y));
                cmp_ref_seq(&av, &bv)
            }
            _ => variant_rank(self).cmp(&variant_rank(other)),
        }
    }
}

fn cmp_seq(a: &[Value], b: &[Value]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let ord = x.total_cmp(y);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

fn cmp_ref_seq(a: &[&Value], b: &[&Value]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let ord = x.total_cmp(y);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

fn cmp_struct(a: &StructValue, b: &StructValue) -> Ordering {
    // Compare as name-sorted field lists so that field declaration order
    // does not affect equality.
    let mut af: Vec<(&str, &Value)> = a.iter().collect();
    let mut bf: Vec<(&str, &Value)> = b.iter().collect();
    af.sort_by(|x, y| x.0.cmp(y.0));
    bf.sort_by(|x, y| x.0.cmp(y.0));
    for ((an, av), (bn, bv)) in af.iter().zip(bf.iter()) {
        let ord = an.cmp(bn);
        if ord != Ordering::Equal {
            return ord;
        }
        let ord = av.total_cmp(bv);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    af.len().cmp(&bf.len())
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.total_cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl PartialEq for StructValue {
    fn eq(&self, other: &Self) -> bool {
        cmp_struct(self, other) == Ordering::Equal
    }
}

impl Eq for StructValue {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and floats that are numerically equal must hash equally
            // because they compare equal.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
            Value::Struct(s) => {
                5u8.hash(state);
                let mut fields: Vec<(&str, &Value)> = s.iter().collect();
                fields.sort_by(|a, b| a.0.cmp(b.0));
                for (n, v) in fields {
                    n.hash(state);
                    v.hash(state);
                }
            }
            Value::List(l) => {
                6u8.hash(state);
                for v in l {
                    v.hash(state);
                }
            }
            Value::Bag(b) => {
                7u8.hash(state);
                let mut items: Vec<&Value> = b.iter().collect();
                items.sort();
                for v in items {
                    v.hash(state);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bag;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn numeric_cross_variant_equality() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_eq!(hash_of(&Value::Int(2)), hash_of(&Value::Float(2.0)));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn struct_equality_ignores_field_order() {
        let a = Value::new_struct(vec![("x", Value::Int(1)), ("y", Value::Int(2))]).unwrap();
        let b = Value::new_struct(vec![("y", Value::Int(2)), ("x", Value::Int(1))]).unwrap();
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn bag_equality_is_multiset_equality() {
        let a = Value::Bag(Bag::from_iter([Value::Int(1), Value::Int(2), Value::Int(2)]));
        let b = Value::Bag(Bag::from_iter([Value::Int(2), Value::Int(1), Value::Int(2)]));
        let c = Value::Bag(Bag::from_iter([Value::Int(1), Value::Int(2)]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn ordering_is_total_and_antisymmetric_on_samples() {
        let samples = vec![
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-3),
            Value::Int(0),
            Value::Float(0.5),
            Value::from("a"),
            Value::from("b"),
            Value::List(vec![Value::Int(1)]),
            Value::Bag(Bag::from_iter([Value::Int(1)])),
            Value::new_struct(vec![("k", Value::Int(1))]).unwrap(),
        ];
        for a in &samples {
            for b in &samples {
                let ab = a.total_cmp(b);
                let ba = b.total_cmp(a);
                assert_eq!(ab, ba.reverse(), "antisymmetry violated for {a:?} vs {b:?}");
                if ab == Ordering::Equal {
                    assert_eq!(hash_of(a), hash_of(b));
                }
            }
        }
    }

    #[test]
    fn nan_has_a_defined_position() {
        let nan = Value::Float(f64::NAN);
        // total_cmp puts NaN after all finite numbers; what matters is that
        // the comparison is stable and equality is reflexive.
        assert_eq!(nan, nan.clone());
        assert!(Value::Float(1.0) < nan);
    }

    #[test]
    fn lists_compare_lexicographically() {
        let a = Value::List(vec![Value::Int(1), Value::Int(2)]);
        let b = Value::List(vec![Value::Int(1), Value::Int(3)]);
        let c = Value::List(vec![Value::Int(1)]);
        assert!(a < b);
        assert!(c < a);
    }
}
