//! Total ordering, equality and hashing for [`Value`].
//!
//! DISCO answers are bags; to make test assertions and benchmark output
//! deterministic we give values a *total* order: variants are ranked, floats
//! use [`f64::total_cmp`], structs compare as field sets, and bags compare
//! as sorted multisets.  Equality is consistent with this order, and `Hash`
//! is canonical with respect to equality:
//!
//! * numerically equal `Int`/`Float` values hash identically (both hash the
//!   `f64` bit pattern of their numeric value),
//! * struct hashes are independent of field declaration order,
//! * bag hashes are independent of element order.
//!
//! Order independence is achieved by combining per-element hashes with a
//! commutative `wrapping_add` instead of sorting — hashing a bag is O(n)
//! with no allocation and no element clones.  Bag *comparison* sorts
//! references once per side ([`Bag::sorted_refs`]); the previous
//! implementation deep-cloned and re-sorted both bags on every comparison,
//! which made nested-bag comparison quadratic in practice.

use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crate::{StructValue, Value};

fn variant_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Float(_) => 3,
        Value::Str(_) => 4,
        Value::Struct(_) => 5,
        Value::List(_) => 6,
        Value::Bag(_) => 7,
    }
}

/// 2^63 as `f64` (exactly representable); the first float ≥ every `i64`.
const TWO_POW_63: f64 = 9_223_372_036_854_775_808.0;

/// Exact comparison of an `i64` against an `f64` — no precision loss for
/// integers beyond 2^53.  Numerically equal pairs tie-break through the
/// IEEE total order of `(a as f64, f)`, which keeps the overall order
/// transitive: `Int(0) > Float(-0.0)` just like `Float(0.0) > Float(-0.0)`,
/// and `Int(a) == Float(f)` exactly when `f` represents `a`.
#[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
fn cmp_int_float(a: i64, f: f64) -> Ordering {
    if f.is_nan() {
        // NaNs take their IEEE total-order position (above/below all
        // finite numbers depending on sign bit).
        return (a as f64).total_cmp(&f);
    }
    if f >= TWO_POW_63 {
        return Ordering::Less;
    }
    if f < -TWO_POW_63 {
        return Ordering::Greater;
    }
    // f is finite and within [-2^63, 2^63): its truncation converts to
    // i64 exactly.
    let t = f.trunc();
    let ti = t as i64;
    match a.cmp(&ti) {
        Ordering::Equal => {
            let fraction = f - t;
            if fraction == 0.0 {
                // Real values are equal; settle -0.0 et al. by total order.
                (a as f64).total_cmp(&f)
            } else if fraction > 0.0 {
                Ordering::Less
            } else {
                Ordering::Greater
            }
        }
        other => other,
    }
}

fn cmp_numeric(a: &Value, b: &Value) -> Option<Ordering> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Some(x.cmp(y)),
        (Value::Int(x), Value::Float(y)) => Some(cmp_int_float(*x, *y)),
        (Value::Float(x), Value::Int(y)) => Some(cmp_int_float(*y, *x).reverse()),
        (Value::Float(x), Value::Float(y)) => Some(x.total_cmp(y)),
        _ => None,
    }
}

impl Value {
    /// Compares two values with the total order used for deterministic
    /// output.  Numeric values of different variants (`Int` vs `Float`)
    /// compare numerically, matching OQL comparison semantics.
    #[must_use]
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        if let Some(ord) = cmp_numeric(self, other) {
            // Numeric cross-variant comparison: 2 == 2.0, as in OQL.
            return ord;
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Struct(a), Value::Struct(b)) => cmp_struct(a, b),
            (Value::List(a), Value::List(b)) => cmp_seq(a, b),
            (Value::Bag(a), Value::Bag(b)) => {
                if a.ptr_eq(b) {
                    return Ordering::Equal;
                }
                // Sort references once per side — elements are never cloned.
                cmp_ref_seq(&a.sorted_refs(), &b.sorted_refs())
            }
            _ => variant_rank(self).cmp(&variant_rank(other)),
        }
    }
}

fn cmp_seq(a: &[Value], b: &[Value]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let ord = x.total_cmp(y);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

fn cmp_ref_seq(a: &[&Value], b: &[&Value]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let ord = x.total_cmp(y);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

fn cmp_struct(a: &StructValue, b: &StructValue) -> Ordering {
    if a.ptr_eq(b) {
        return Ordering::Equal;
    }
    // Fast path: rows flowing through an operator pipeline almost always
    // share one schema, so field names line up positionally.  Positional
    // comparison is only *order-consistent* with the name-sorted general
    // path when the shared declaration order is itself name-sorted —
    // otherwise mixing the two paths would break transitivity.
    if a.len() == b.len() && same_sorted_field_names(a, b) {
        for ((_, av), (_, bv)) in a.iter().zip(b.iter()) {
            let ord = av.total_cmp(bv);
            if ord != Ordering::Equal {
                return ord;
            }
        }
        return Ordering::Equal;
    }
    // General path: compare as name-sorted field lists so that field
    // declaration order does not affect equality.
    let mut af: Vec<(&str, &Value)> = a.iter().collect();
    let mut bf: Vec<(&str, &Value)> = b.iter().collect();
    af.sort_by(|x, y| x.0.cmp(y.0));
    bf.sort_by(|x, y| x.0.cmp(y.0));
    for ((an, av), (bn, bv)) in af.iter().zip(bf.iter()) {
        let ord = an.cmp(bn);
        if ord != Ordering::Equal {
            return ord;
        }
        let ord = av.total_cmp(bv);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    af.len().cmp(&bf.len())
}

/// `true` when both structs declare identical field names in identical
/// positions *and* that declaration order is ascending by name.
fn same_sorted_field_names(a: &StructValue, b: &StructValue) -> bool {
    let mut prev: Option<&str> = None;
    for (an, bn) in a.field_names().zip(b.field_names()) {
        if an != bn {
            return false;
        }
        if let Some(p) = prev {
            if p >= an {
                return false;
            }
        }
        prev = Some(an);
    }
    true
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl PartialEq for StructValue {
    fn eq(&self, other: &Self) -> bool {
        cmp_struct(self, other) == Ordering::Equal
    }
}

impl Eq for StructValue {}

/// The standalone hash of one value, used as the element of commutative
/// (order-independent) multiset combines.  `DefaultHasher::new()` uses
/// fixed keys, so this is deterministic within a process — all a hash
/// table needs.
fn element_hash<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

impl Hash for Value {
    /// Canonical hash, consistent with `total_cmp` equality:
    /// `a == b` implies `hash(a) == hash(b)`, including the cross-variant
    /// `Int`/`Float` case, permuted struct fields and permuted bags.
    #[allow(clippy::cast_possible_truncation)]
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // An `Int` and a `Float` compare equal exactly when the float
            // represents the integer (see `cmp_int_float`), so integers
            // hash their `i64` value and exactly-integral in-range floats
            // hash the same `i64`; every other float hashes its bits.
            Value::Int(i) => {
                2u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                if f.is_finite() && f.fract() == 0.0 && (-TWO_POW_63..TWO_POW_63).contains(f) {
                    (*f as i64).hash(state);
                } else {
                    f.to_bits().hash(state);
                }
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.as_ref().hash(state);
            }
            Value::Struct(s) => {
                5u8.hash(state);
                s.hash(state);
            }
            Value::List(l) => {
                6u8.hash(state);
                for v in l.iter() {
                    v.hash(state);
                }
            }
            Value::Bag(b) => {
                7u8.hash(state);
                b.len().hash(state);
                // Commutative combine: order-independent without sorting.
                let mut acc = 0u64;
                for v in b.iter() {
                    acc = acc.wrapping_add(element_hash(v));
                }
                acc.hash(state);
            }
        }
    }
}

impl Hash for StructValue {
    /// Field-order-independent struct hash (commutative combine over
    /// `(name, value)` pair hashes).
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.len().hash(state);
        let mut acc = 0u64;
        for (name, value) in self.iter() {
            let mut h = DefaultHasher::new();
            name.hash(&mut h);
            value.hash(&mut h);
            acc = acc.wrapping_add(h.finish());
        }
        acc.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bag;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn numeric_cross_variant_equality() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_eq!(hash_of(&Value::Int(2)), hash_of(&Value::Float(2.0)));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn struct_equality_ignores_field_order() {
        let a = Value::new_struct(vec![("x", Value::Int(1)), ("y", Value::Int(2))]).unwrap();
        let b = Value::new_struct(vec![("y", Value::Int(2)), ("x", Value::Int(1))]).unwrap();
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn bag_equality_is_multiset_equality() {
        let a = Value::Bag(Bag::from_iter([
            Value::Int(1),
            Value::Int(2),
            Value::Int(2),
        ]));
        let b = Value::Bag(Bag::from_iter([
            Value::Int(2),
            Value::Int(1),
            Value::Int(2),
        ]));
        let c = Value::Bag(Bag::from_iter([Value::Int(1), Value::Int(2)]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn ordering_is_total_and_antisymmetric_on_samples() {
        let samples = vec![
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-3),
            Value::Int(0),
            Value::Float(0.5),
            Value::from("a"),
            Value::from("b"),
            Value::list(vec![Value::Int(1)]),
            Value::Bag(Bag::from_iter([Value::Int(1)])),
            Value::new_struct(vec![("k", Value::Int(1))]).unwrap(),
        ];
        for a in &samples {
            for b in &samples {
                let ab = a.total_cmp(b);
                let ba = b.total_cmp(a);
                assert_eq!(ab, ba.reverse(), "antisymmetry violated for {a:?} vs {b:?}");
                if ab == Ordering::Equal {
                    assert_eq!(hash_of(a), hash_of(b));
                }
            }
        }
    }

    #[test]
    fn nan_has_a_defined_position() {
        let nan = Value::Float(f64::NAN);
        // total_cmp puts NaN after all finite numbers; what matters is that
        // the comparison is stable and equality is reflexive.
        assert_eq!(nan, nan.clone());
        assert!(Value::Float(1.0) < nan);
        assert_eq!(hash_of(&nan), hash_of(&nan.clone()));
    }

    #[test]
    fn negative_zero_is_distinct_but_consistent() {
        // total_cmp orders -0.0 before 0.0 (IEEE total order), so they are
        // *not* equal under the canonical order — and their hashes are
        // free to differ.  What must hold: equal values hash equal.
        let neg = Value::Float(-0.0);
        let pos = Value::Float(0.0);
        assert_ne!(neg, pos);
        assert_eq!(neg, neg.clone());
        // Int(0) is numerically 0.0 (positive zero).
        assert_eq!(Value::Int(0), pos);
        assert_eq!(hash_of(&Value::Int(0)), hash_of(&pos));
    }

    #[test]
    fn large_ints_compare_exactly() {
        // 2^53 and 2^53 + 1 collapse to the same f64; they must stay
        // distinct as ints (the hash join and distinct rely on it).
        let a = Value::Int(9_007_199_254_740_992);
        let b = Value::Int(9_007_199_254_740_993);
        assert_ne!(a, b);
        assert!(a < b);
        assert_ne!(hash_of(&a), hash_of(&b));
        // A float that exactly represents a huge int equals it and hashes
        // with it; the next int up is strictly greater.
        #[allow(clippy::cast_precision_loss)]
        let f = Value::Float(9_007_199_254_740_992u64 as f64);
        assert_eq!(a, f);
        assert_eq!(hash_of(&a), hash_of(&f));
        assert!(f < b);
        // i64 extremes against out-of-range floats.
        assert!(Value::Int(i64::MAX) < Value::Float(TWO_POW_63));
        assert!(Value::Int(i64::MIN) > Value::Float(-TWO_POW_63 * 2.0));
        assert_eq!(
            Value::Int(i64::MIN),
            Value::Float(-TWO_POW_63),
            "-2^63 is exactly representable"
        );
        assert_eq!(
            hash_of(&Value::Int(i64::MIN)),
            hash_of(&Value::Float(-TWO_POW_63))
        );
        // Fractional floats order strictly between neighbouring ints.
        assert!(Value::Float(2.5) > Value::Int(2));
        assert!(Value::Float(2.5) < Value::Int(3));
        assert!(Value::Float(-2.5) < Value::Int(-2));
        assert!(Value::Float(-2.5) > Value::Int(-3));
    }

    #[test]
    fn distinct_keeps_large_ints_apart() {
        let bag: crate::Bag = [
            Value::Int(9_007_199_254_740_992),
            Value::Int(9_007_199_254_740_993),
        ]
        .into_iter()
        .collect();
        assert_eq!(bag.distinct().len(), 2);
    }

    #[test]
    fn lists_compare_lexicographically() {
        let a = Value::list(vec![Value::Int(1), Value::Int(2)]);
        let b = Value::list(vec![Value::Int(1), Value::Int(3)]);
        let c = Value::list(vec![Value::Int(1)]);
        assert!(a < b);
        assert!(c < a);
    }

    #[test]
    fn struct_fast_path_and_general_path_agree() {
        let same_order_a =
            Value::new_struct(vec![("a", Value::Int(1)), ("b", Value::Int(2))]).unwrap();
        let same_order_b =
            Value::new_struct(vec![("a", Value::Int(1)), ("b", Value::Int(3))]).unwrap();
        let permuted = Value::new_struct(vec![("b", Value::Int(3)), ("a", Value::Int(1))]).unwrap();
        assert_eq!(
            same_order_a.total_cmp(&same_order_b),
            same_order_a.total_cmp(&permuted),
            "fast path (same field order) and general path (permuted) must agree"
        );
        assert_eq!(same_order_b, permuted);
        assert_eq!(hash_of(&same_order_b), hash_of(&permuted));
    }
}
