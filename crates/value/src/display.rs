//! OQL-style display of values.
//!
//! Values print in the notation used by the paper's examples:
//! `Bag("Mary", "Sam")`, `struct(name: "Mary", salary: 200)`, string
//! literals with double quotes.  The output is valid OQL literal syntax so
//! that data embedded in a partial answer can be re-parsed by
//! `disco-oql`.

use std::fmt;

use crate::{Bag, StructValue, Value};

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "nil"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    // Keep a trailing ".0" so the literal re-parses as a float.
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "\"{}\"", escape(s)),
            Value::Struct(s) => write!(f, "{s}"),
            Value::List(items) => {
                write!(f, "list(")?;
                write_joined(f, items.iter())?;
                write!(f, ")")
            }
            Value::Bag(b) => write!(f, "{b}"),
        }
    }
}

impl fmt::Display for StructValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "struct(")?;
        let mut first = true;
        for (name, value) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{name}: {value}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Bag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bag(")?;
        write_joined(f, self.iter())?;
        write!(f, ")")
    }
}

fn write_joined<'a, I>(f: &mut fmt::Formatter<'_>, items: I) -> fmt::Result
where
    I: Iterator<Item = &'a Value>,
{
    let mut first = true;
    for item in items {
        if !first {
            write!(f, ", ")?;
        }
        first = false;
        write!(f, "{item}")?;
    }
    Ok(())
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            other => vec![other],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bag_of_strings_prints_like_the_paper() {
        let answer: Bag = [Value::from("Mary"), Value::from("Sam")]
            .into_iter()
            .collect();
        assert_eq!(answer.to_string(), r#"Bag("Mary", "Sam")"#);
    }

    #[test]
    fn struct_prints_in_oql_notation() {
        let s = Value::new_struct(vec![
            ("name", Value::from("Mary")),
            ("salary", Value::Int(200)),
        ])
        .unwrap();
        assert_eq!(s.to_string(), r#"struct(name: "Mary", salary: 200)"#);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Value::from("a\"b").to_string(), r#""a\"b""#);
        assert_eq!(Value::from("a\\b").to_string(), r#""a\\b""#);
    }

    #[test]
    fn null_and_bool_and_list() {
        assert_eq!(Value::Null.to_string(), "nil");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(
            Value::list(vec![Value::Int(1), Value::Int(2)]).to_string(),
            "list(1, 2)"
        );
    }

    #[test]
    fn empty_collections_print_nonempty_debug() {
        assert_eq!(Value::Bag(Bag::new()).to_string(), "Bag()");
        assert_eq!(format!("{:?}", Bag::new()), "Bag { items: [] }");
    }
}
